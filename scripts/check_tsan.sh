#!/usr/bin/env bash
# CI entry guarding the concurrent read phase: builds the tree with
# -fsanitize=thread (PEVM_SANITIZE=thread) and runs the test binaries that
# drive the thread-pool pipeline hard. Any data race in the parallel
# speculation path fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
cmake -B "$BUILD_DIR" -S . -DPEVM_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target determinism_test executor_test equivalence_test scheduled_test

for t in determinism_test executor_test equivalence_test scheduled_test; do
  echo "== TSan: $t =="
  "./$BUILD_DIR/tests/$t"
done
echo "ThreadSanitizer: all executor suites clean."
