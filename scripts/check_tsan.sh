#!/usr/bin/env bash
# CI entry guarding the concurrent read phase, the async prefetch pipeline,
# the chain runner's three-stage block pipeline, the shard-parallel committer
# (ShardedMpt per-shard apply/harvest + batched IncrementalStateTrie commits),
# the KV store's writer / reader / background-compaction concurrency, the
# telemetry recorder's lock-free rings (concurrent writers + live export) and
# the shared code cache (sharded shared-lock lookups, once-per-hash analysis,
# tier-1 promotion racing 16 reader threads) and the ops plane (HTTP scrape
# threads reading pipeline counters and the flight-recorder ring while the
# pipeline commits; the watchdog sampling concurrently):
# builds the tree with
# -fsanitize=thread (PEVM_SANITIZE=thread) and runs the suites that drive the
# thread-pool pipeline, the background prefetch engine, the streaming
# warm/execute/commit threads and the segment log hard. Any data race fails
# the script.
#
# Selection goes through ctest so gtest_discover_tests stays the single source
# of truth for what exists. An empty selection is a HARD FAILURE: a typo in
# the regex (or a target silently dropped from tests/CMakeLists.txt) must not
# let CI pass while sanitizing nothing.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
# The heavy differential batteries (DifferentialTest, the full
# ChainSpecDifferentialTest run) are excluded from the ctest selection: they
# are semantics oracles, not race drivers, and under TSan's ~10x slowdown they
# would dominate the gate. A reduced slice of the cross-block speculation
# battery runs separately below — it IS a race driver: spec thread vs exec
# commit frontier through the write-observer overlay.
TSAN_REGEX=${TSAN_REGEX:-'^(DeterminismTest|ThreadPoolTest|PrefetchPropertyTest|ExecutorPropertyTest|ExecutorTypedTest|ParallelEvmTest|BlockStmTest|TwoPhaseLockingTest|EquivalenceContention|ScheduledTest|ChainRunnerTest|ChainShutdownTest|BoundaryValidationTest|KvConcurrencyTest|KvCompactionTest|ChainPersistenceTest|ChainResumeTest|TelemetryTest|MetricsTest|OsThreads/InertnessTest|ShardedMptConcurrencyTest|IncrementalStateTrieTest|CodeCacheTest|CodeCacheDifferentialTest|BoundedQueueTest|SnapshotRegistryTest|QueryEngineTest|QueryInertnessTest|HttpServerTest|PrometheusTest|FlightRecorderTest|WatchdogTest|OpsPlaneTest|OpsInertnessTest)'}

cmake -B "$BUILD_DIR" -S . -DPEVM_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target determinism_test executor_test equivalence_test scheduled_test prefetch_test \
           chain_test chain_spec_test kv_test recovery_test telemetry_test trie_test \
           codecache_test bounded_queue_test query_test ops_test

cd "$BUILD_DIR"
selected=$(ctest -N -R "$TSAN_REGEX" | sed -n 's/^Total Tests: //p')
if [[ -z "$selected" || "$selected" -eq 0 ]]; then
  echo "FATAL: ctest selection '$TSAN_REGEX' matched ${selected:-0} tests." >&2
  echo "The TSan gate would have passed vacuously; fix the regex or the test registration." >&2
  exit 1
fi
echo "== TSan: running $selected tests matching $TSAN_REGEX =="
ctest -R "$TSAN_REGEX" --output-on-failure -j "$(nproc)"

echo "== TSan: reduced cross-block speculation battery =="
./tests/chain_spec_test --blocks=4 --gtest_filter='ChainSpecDifferentialTest.*'

echo "== TSan: reduced query-serving oracle battery =="
# Race driver for the snapshot registry: serving threads pin/read/release
# concurrently with the commit stage publishing, retiring and pruning.
./tests/query_test --blocks=6 --gtest_filter='QueryOracleTest.*'

echo "ThreadSanitizer: all $selected selected tests (+ battery slices) clean."
