#!/usr/bin/env python3
"""Compare fresh BENCH_*.json smoke numbers against committed baselines.

CI runs the bench smokes, then this script diffs the headline metrics against
the baselines committed under bench/baselines/. A drop of more than
--threshold (default 30%) on any higher-is-better metric fails the build; the
full trajectory table is printed either way so the log always shows where the
numbers are drifting, even while they stay inside the gate.

Usage:
  compare_bench.py --fresh-dir DIR [--baseline-dir bench/baselines]
                   [--threshold 0.30] [--update]

  --update rewrites the baselines from the fresh run (commit the result when
  a legitimate change moves the numbers).

Exit codes: 0 ok, 1 regression or missing file, 2 usage error.
"""

import argparse
import json
import os
import shutil
import sys

# (file, extractor) pairs; extractors yield (metric_name, value) tuples of
# higher-is-better numbers. Wall-clock metrics (blocks/s, qps) are noisy on
# shared runners — that is what the wide default threshold absorbs; the
# deterministic ratios (hit rate, oplog reduction) barely move run to run.
BENCH_FILES = ["BENCH_chain.json", "BENCH_query.json", "BENCH_codecache.json"]


def extract_chain(doc):
    for row in doc.get("results", []):
        key = "chain blocks/s os_threads={} overlap={}".format(
            row["os_threads"], "yes" if row["overlap_commit"] else "no"
        )
        yield key, float(row["blocks_per_sec"])


def extract_query(doc):
    baseline = doc.get("baseline", {})
    if "blocks_per_sec" in baseline:
        yield "query chain-blocks/s no-serving", float(baseline["blocks_per_sec"])
    for run in doc.get("runs", []):
        threads = run["serve_threads"]
        yield f"query qps serve_threads={threads}", float(run["qps"])
        yield f"query chain-blocks/s serve_threads={threads}", float(run["blocks_per_sec"])


def extract_codecache(doc):
    yield "codecache hit_rate", float(doc["hit_rate"])
    yield "codecache oplog_reduction", float(doc["oplog_reduction"])
    # Throughput proxy: interpreted instructions per wall-nanosecond of the
    # fused steady-state read phase.
    wall = float(doc.get("read_wall_ns_fused", 0))
    if wall > 0:
        yield "codecache instructions/us fused", 1000.0 * float(doc["instructions"]) / wall


EXTRACTORS = {
    "BENCH_chain.json": extract_chain,
    "BENCH_query.json": extract_query,
    "BENCH_codecache.json": extract_codecache,
}


def load_metrics(path, extractor):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return dict(extractor(doc))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh-dir", required=True, help="directory with fresh BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(__file__), "..", "bench", "baselines"),
    )
    parser.add_argument("--threshold", type=float, default=0.30)
    parser.add_argument("--update", action="store_true", help="rewrite baselines from fresh run")
    args = parser.parse_args()

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for name in BENCH_FILES:
            fresh = os.path.join(args.fresh_dir, name)
            if not os.path.exists(fresh):
                print(f"FATAL: --update but {fresh} is missing", file=sys.stderr)
                return 1
            shutil.copyfile(fresh, os.path.join(args.baseline_dir, name))
            print(f"baseline updated: {os.path.join(args.baseline_dir, name)}")
        return 0

    regressions = []
    rows = []
    for name in BENCH_FILES:
        fresh_path = os.path.join(args.fresh_dir, name)
        base_path = os.path.join(args.baseline_dir, name)
        for path, what in ((fresh_path, "fresh"), (base_path, "baseline")):
            if not os.path.exists(path):
                print(f"FATAL: {what} file missing: {path}", file=sys.stderr)
                return 1
        extractor = EXTRACTORS[name]
        fresh = load_metrics(fresh_path, extractor)
        base = load_metrics(base_path, extractor)
        for key in base:
            if key not in fresh:
                print(f"FATAL: metric '{key}' vanished from fresh {name}", file=sys.stderr)
                return 1
            delta = (fresh[key] - base[key]) / base[key] if base[key] else 0.0
            flag = ""
            if base[key] > 0 and delta < -args.threshold:
                flag = "REGRESSION"
                regressions.append((key, base[key], fresh[key], delta))
            rows.append((key, base[key], fresh[key], delta, flag))
        for key in fresh:
            if key not in base:
                # New metric with no baseline yet: report, never fail.
                rows.append((key, float("nan"), fresh[key], 0.0, "new"))

    width = max(len(r[0]) for r in rows) if rows else 20
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
    for key, base_v, fresh_v, delta, flag in rows:
        base_s = f"{base_v:12.4f}" if base_v == base_v else "           -"
        print(f"{key:<{width}}  {base_s}  {fresh_v:12.4f}  {delta:+7.1%}  {flag}")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.0%} vs committed baselines:",
            file=sys.stderr,
        )
        for key, base_v, fresh_v, delta in regressions:
            print(f"  {key}: {base_v:.4f} -> {fresh_v:.4f} ({delta:+.1%})", file=sys.stderr)
        print(
            "If this change is intentional, regenerate with "
            "scripts/compare_bench.py --update and commit the new baselines.",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no metric regressed more than {args.threshold:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
