#!/usr/bin/env bash
# CI entry for memory-safety: builds the tree with AddressSanitizer +
# UndefinedBehaviorSanitizer (PEVM_SANITIZE=address,undefined — the CMake
# option passes the value straight to -fsanitize=) and runs the suites that
# stress ownership boundaries hardest: the query tier's refcounted snapshot
# handles and deferred pruning (use-after-release is exactly the bug class
# the retention contract exists to prevent), the bounded queue's
# close/abort-with-items-in-flight paths, the KV store's segment buffers and
# compaction, the trie's node recycling, and the chain runner's
# shutdown/abort teardown.
#
# Selection goes through ctest so gtest_discover_tests stays the single
# source of truth. An empty selection is a HARD FAILURE — the gate must not
# pass while sanitizing nothing.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}
ASAN_REGEX=${ASAN_REGEX:-'^(BoundedQueueTest|SnapshotRegistryTest|QueryEngineTest|QueryInertnessTest|ChainRunnerTest|ChainShutdownTest|KvStoreTest|KvConcurrencyTest|KvCompactionTest|ShardedMpt|IncrementalStateTrieTest|WorldStateTest|StateViewTest|CodeCacheTest|HttpServerTest|FlightRecorderTest|WatchdogTest|OpsPlaneTest)'}

# Intentional process-lifetime singletons (the telemetry registry, memoized
# test fixtures) are leaked by design; leak checking would only report those.
export ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=0}

cmake -B "$BUILD_DIR" -S . -DPEVM_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bounded_queue_test query_test chain_test kv_test trie_test state_test \
           codecache_test ops_test

cd "$BUILD_DIR"
selected=$(ctest -N -R "$ASAN_REGEX" | sed -n 's/^Total Tests: //p')
if [[ -z "$selected" || "$selected" -eq 0 ]]; then
  echo "FATAL: ctest selection '$ASAN_REGEX' matched ${selected:-0} tests." >&2
  echo "The ASan gate would have passed vacuously; fix the regex or the test registration." >&2
  exit 1
fi
echo "== ASan+UBSan: running $selected tests matching $ASAN_REGEX =="
ctest -R "$ASAN_REGEX" --output-on-failure -j "$(nproc)"

echo "== ASan+UBSan: reduced query-serving oracle battery =="
# Lifetime stress: handles pinned across retention evictions, engine torn
# down with futures in flight, registry destroyed after every release.
./tests/query_test --blocks=6 --gtest_filter='QueryOracleTest.*'

echo "AddressSanitizer+UBSan: all $selected selected tests (+ query battery slice) clean."
