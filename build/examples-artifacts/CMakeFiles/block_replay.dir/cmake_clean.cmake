file(REMOVE_RECURSE
  "../examples/block_replay"
  "../examples/block_replay.pdb"
  "CMakeFiles/block_replay.dir/block_replay.cpp.o"
  "CMakeFiles/block_replay.dir/block_replay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
