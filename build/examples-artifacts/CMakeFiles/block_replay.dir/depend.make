# Empty dependencies file for block_replay.
# This may be replaced when dependencies are built.
