# Empty dependencies file for dex_swaps.
# This may be replaced when dependencies are built.
