file(REMOVE_RECURSE
  "../examples/dex_swaps"
  "../examples/dex_swaps.pdb"
  "CMakeFiles/dex_swaps.dir/dex_swaps.cpp.o"
  "CMakeFiles/dex_swaps.dir/dex_swaps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_swaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
