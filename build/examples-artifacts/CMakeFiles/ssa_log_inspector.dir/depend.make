# Empty dependencies file for ssa_log_inspector.
# This may be replaced when dependencies are built.
