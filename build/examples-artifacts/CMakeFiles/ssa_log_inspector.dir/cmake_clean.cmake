file(REMOVE_RECURSE
  "../examples/ssa_log_inspector"
  "../examples/ssa_log_inspector.pdb"
  "CMakeFiles/ssa_log_inspector.dir/ssa_log_inspector.cpp.o"
  "CMakeFiles/ssa_log_inspector.dir/ssa_log_inspector.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssa_log_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
