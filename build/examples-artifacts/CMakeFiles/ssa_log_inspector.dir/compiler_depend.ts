# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ssa_log_inspector.
