# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/trie_test[1]_include.cmake")
include("/root/repo/build/tests/state_test[1]_include.cmake")
include("/root/repo/build/tests/evm_test[1]_include.cmake")
include("/root/repo/build/tests/ssa_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/ssa_crosscontract_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/evm_opcode_test[1]_include.cmake")
include("/root/repo/build/tests/redo_property_test[1]_include.cmake")
include("/root/repo/build/tests/scheduled_test[1]_include.cmake")
include("/root/repo/build/tests/evm_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/ssa_callvalue_test[1]_include.cmake")
