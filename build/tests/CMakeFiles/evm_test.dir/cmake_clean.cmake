file(REMOVE_RECURSE
  "CMakeFiles/evm_test.dir/evm_test.cc.o"
  "CMakeFiles/evm_test.dir/evm_test.cc.o.d"
  "evm_test"
  "evm_test.pdb"
  "evm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
