# Empty compiler generated dependencies file for trie_test.
# This may be replaced when dependencies are built.
