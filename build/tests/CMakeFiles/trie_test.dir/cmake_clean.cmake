file(REMOVE_RECURSE
  "CMakeFiles/trie_test.dir/trie_test.cc.o"
  "CMakeFiles/trie_test.dir/trie_test.cc.o.d"
  "trie_test"
  "trie_test.pdb"
  "trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
