file(REMOVE_RECURSE
  "CMakeFiles/ssa_crosscontract_test.dir/ssa_crosscontract_test.cc.o"
  "CMakeFiles/ssa_crosscontract_test.dir/ssa_crosscontract_test.cc.o.d"
  "ssa_crosscontract_test"
  "ssa_crosscontract_test.pdb"
  "ssa_crosscontract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssa_crosscontract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
