# Empty dependencies file for ssa_crosscontract_test.
# This may be replaced when dependencies are built.
