# Empty compiler generated dependencies file for scheduled_test.
# This may be replaced when dependencies are built.
