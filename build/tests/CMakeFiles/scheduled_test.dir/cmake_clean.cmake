file(REMOVE_RECURSE
  "CMakeFiles/scheduled_test.dir/scheduled_test.cc.o"
  "CMakeFiles/scheduled_test.dir/scheduled_test.cc.o.d"
  "scheduled_test"
  "scheduled_test.pdb"
  "scheduled_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
