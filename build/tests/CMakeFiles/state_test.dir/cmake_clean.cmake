file(REMOVE_RECURSE
  "CMakeFiles/state_test.dir/state_test.cc.o"
  "CMakeFiles/state_test.dir/state_test.cc.o.d"
  "state_test"
  "state_test.pdb"
  "state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
