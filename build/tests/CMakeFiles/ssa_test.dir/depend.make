# Empty dependencies file for ssa_test.
# This may be replaced when dependencies are built.
