file(REMOVE_RECURSE
  "CMakeFiles/ssa_test.dir/ssa_test.cc.o"
  "CMakeFiles/ssa_test.dir/ssa_test.cc.o.d"
  "ssa_test"
  "ssa_test.pdb"
  "ssa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
