# Empty dependencies file for ssa_callvalue_test.
# This may be replaced when dependencies are built.
