file(REMOVE_RECURSE
  "CMakeFiles/ssa_callvalue_test.dir/ssa_callvalue_test.cc.o"
  "CMakeFiles/ssa_callvalue_test.dir/ssa_callvalue_test.cc.o.d"
  "ssa_callvalue_test"
  "ssa_callvalue_test.pdb"
  "ssa_callvalue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssa_callvalue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
