file(REMOVE_RECURSE
  "CMakeFiles/redo_property_test.dir/redo_property_test.cc.o"
  "CMakeFiles/redo_property_test.dir/redo_property_test.cc.o.d"
  "redo_property_test"
  "redo_property_test.pdb"
  "redo_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redo_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
