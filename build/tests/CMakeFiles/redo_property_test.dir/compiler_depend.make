# Empty compiler generated dependencies file for redo_property_test.
# This may be replaced when dependencies are built.
