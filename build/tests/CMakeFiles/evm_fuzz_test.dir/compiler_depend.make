# Empty compiler generated dependencies file for evm_fuzz_test.
# This may be replaced when dependencies are built.
