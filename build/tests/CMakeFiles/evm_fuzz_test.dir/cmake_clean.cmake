file(REMOVE_RECURSE
  "CMakeFiles/evm_fuzz_test.dir/evm_fuzz_test.cc.o"
  "CMakeFiles/evm_fuzz_test.dir/evm_fuzz_test.cc.o.d"
  "evm_fuzz_test"
  "evm_fuzz_test.pdb"
  "evm_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evm_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
