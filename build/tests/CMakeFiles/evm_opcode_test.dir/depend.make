# Empty dependencies file for evm_opcode_test.
# This may be replaced when dependencies are built.
