file(REMOVE_RECURSE
  "CMakeFiles/evm_opcode_test.dir/evm_opcode_test.cc.o"
  "CMakeFiles/evm_opcode_test.dir/evm_opcode_test.cc.o.d"
  "evm_opcode_test"
  "evm_opcode_test.pdb"
  "evm_opcode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evm_opcode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
