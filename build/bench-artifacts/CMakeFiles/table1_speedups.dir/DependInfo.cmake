
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_speedups.cc" "bench-artifacts/CMakeFiles/table1_speedups.dir/table1_speedups.cc.o" "gcc" "bench-artifacts/CMakeFiles/table1_speedups.dir/table1_speedups.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pevm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pevm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pevm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/pevm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pevm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/evm/CMakeFiles/pevm_evm.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/pevm_state.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/pevm_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pevm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
