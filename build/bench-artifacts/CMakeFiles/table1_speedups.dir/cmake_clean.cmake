file(REMOVE_RECURSE
  "../bench/table1_speedups"
  "../bench/table1_speedups.pdb"
  "CMakeFiles/table1_speedups.dir/table1_speedups.cc.o"
  "CMakeFiles/table1_speedups.dir/table1_speedups.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
