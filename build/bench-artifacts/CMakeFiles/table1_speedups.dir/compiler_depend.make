# Empty compiler generated dependencies file for table1_speedups.
# This may be replaced when dependencies are built.
