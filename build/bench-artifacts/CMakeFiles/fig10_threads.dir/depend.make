# Empty dependencies file for fig10_threads.
# This may be replaced when dependencies are built.
