file(REMOVE_RECURSE
  "../bench/fig10_threads"
  "../bench/fig10_threads.pdb"
  "CMakeFiles/fig10_threads.dir/fig10_threads.cc.o"
  "CMakeFiles/fig10_threads.dir/fig10_threads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
