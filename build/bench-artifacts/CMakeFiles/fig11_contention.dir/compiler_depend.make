# Empty compiler generated dependencies file for fig11_contention.
# This may be replaced when dependencies are built.
