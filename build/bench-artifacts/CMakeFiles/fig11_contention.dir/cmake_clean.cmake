file(REMOVE_RECURSE
  "../bench/fig11_contention"
  "../bench/fig11_contention.pdb"
  "CMakeFiles/fig11_contention.dir/fig11_contention.cc.o"
  "CMakeFiles/fig11_contention.dir/fig11_contention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
