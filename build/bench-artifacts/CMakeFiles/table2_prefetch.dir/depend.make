# Empty dependencies file for table2_prefetch.
# This may be replaced when dependencies are built.
