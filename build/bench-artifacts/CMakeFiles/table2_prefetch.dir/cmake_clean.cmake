file(REMOVE_RECURSE
  "../bench/table2_prefetch"
  "../bench/table2_prefetch.pdb"
  "CMakeFiles/table2_prefetch.dir/table2_prefetch.cc.o"
  "CMakeFiles/table2_prefetch.dir/table2_prefetch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
