file(REMOVE_RECURSE
  "../bench/overhead_analysis"
  "../bench/overhead_analysis.pdb"
  "CMakeFiles/overhead_analysis.dir/overhead_analysis.cc.o"
  "CMakeFiles/overhead_analysis.dir/overhead_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
