# Empty compiler generated dependencies file for fig12_blocksize.
# This may be replaced when dependencies are built.
