file(REMOVE_RECURSE
  "../bench/fig12_blocksize"
  "../bench/fig12_blocksize.pdb"
  "CMakeFiles/fig12_blocksize.dir/fig12_blocksize.cc.o"
  "CMakeFiles/fig12_blocksize.dir/fig12_blocksize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
