# Empty dependencies file for ablation_redo.
# This may be replaced when dependencies are built.
