file(REMOVE_RECURSE
  "../bench/ablation_redo"
  "../bench/ablation_redo.pdb"
  "CMakeFiles/ablation_redo.dir/ablation_redo.cc.o"
  "CMakeFiles/ablation_redo.dir/ablation_redo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_redo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
