file(REMOVE_RECURSE
  "../bench/microbench"
  "../bench/microbench.pdb"
  "CMakeFiles/microbench.dir/microbench.cc.o"
  "CMakeFiles/microbench.dir/microbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
