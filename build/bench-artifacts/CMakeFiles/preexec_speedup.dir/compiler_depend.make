# Empty compiler generated dependencies file for preexec_speedup.
# This may be replaced when dependencies are built.
