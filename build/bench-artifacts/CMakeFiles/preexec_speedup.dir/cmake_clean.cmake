file(REMOVE_RECURSE
  "../bench/preexec_speedup"
  "../bench/preexec_speedup.pdb"
  "CMakeFiles/preexec_speedup.dir/preexec_speedup.cc.o"
  "CMakeFiles/preexec_speedup.dir/preexec_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preexec_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
