file(REMOVE_RECURSE
  "../bench/schedule_validator"
  "../bench/schedule_validator.pdb"
  "CMakeFiles/schedule_validator.dir/schedule_validator.cc.o"
  "CMakeFiles/schedule_validator.dir/schedule_validator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_validator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
