# Empty dependencies file for schedule_validator.
# This may be replaced when dependencies are built.
