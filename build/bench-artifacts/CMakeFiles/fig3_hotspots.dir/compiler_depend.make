# Empty compiler generated dependencies file for fig3_hotspots.
# This may be replaced when dependencies are built.
