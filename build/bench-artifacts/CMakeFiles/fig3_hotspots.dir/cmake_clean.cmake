file(REMOVE_RECURSE
  "../bench/fig3_hotspots"
  "../bench/fig3_hotspots.pdb"
  "CMakeFiles/fig3_hotspots.dir/fig3_hotspots.cc.o"
  "CMakeFiles/fig3_hotspots.dir/fig3_hotspots.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
