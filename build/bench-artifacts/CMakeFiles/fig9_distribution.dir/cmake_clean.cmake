file(REMOVE_RECURSE
  "../bench/fig9_distribution"
  "../bench/fig9_distribution.pdb"
  "CMakeFiles/fig9_distribution.dir/fig9_distribution.cc.o"
  "CMakeFiles/fig9_distribution.dir/fig9_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
