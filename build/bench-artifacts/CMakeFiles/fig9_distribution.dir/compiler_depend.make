# Empty compiler generated dependencies file for fig9_distribution.
# This may be replaced when dependencies are built.
