file(REMOVE_RECURSE
  "libpevm_state.a"
)
