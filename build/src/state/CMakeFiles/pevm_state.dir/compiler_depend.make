# Empty compiler generated dependencies file for pevm_state.
# This may be replaced when dependencies are built.
