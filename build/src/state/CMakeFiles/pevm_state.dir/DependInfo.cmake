
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/state/state_view.cc" "src/state/CMakeFiles/pevm_state.dir/state_view.cc.o" "gcc" "src/state/CMakeFiles/pevm_state.dir/state_view.cc.o.d"
  "/root/repo/src/state/world_state.cc" "src/state/CMakeFiles/pevm_state.dir/world_state.cc.o" "gcc" "src/state/CMakeFiles/pevm_state.dir/world_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pevm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/pevm_trie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
