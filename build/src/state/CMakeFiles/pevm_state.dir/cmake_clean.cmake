file(REMOVE_RECURSE
  "CMakeFiles/pevm_state.dir/state_view.cc.o"
  "CMakeFiles/pevm_state.dir/state_view.cc.o.d"
  "CMakeFiles/pevm_state.dir/world_state.cc.o"
  "CMakeFiles/pevm_state.dir/world_state.cc.o.d"
  "libpevm_state.a"
  "libpevm_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
