file(REMOVE_RECURSE
  "CMakeFiles/pevm_workload.dir/assembler.cc.o"
  "CMakeFiles/pevm_workload.dir/assembler.cc.o.d"
  "CMakeFiles/pevm_workload.dir/block_gen.cc.o"
  "CMakeFiles/pevm_workload.dir/block_gen.cc.o.d"
  "CMakeFiles/pevm_workload.dir/contracts.cc.o"
  "CMakeFiles/pevm_workload.dir/contracts.cc.o.d"
  "libpevm_workload.a"
  "libpevm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
