file(REMOVE_RECURSE
  "libpevm_workload.a"
)
