# Empty compiler generated dependencies file for pevm_workload.
# This may be replaced when dependencies are built.
