file(REMOVE_RECURSE
  "CMakeFiles/pevm_baselines.dir/block_stm.cc.o"
  "CMakeFiles/pevm_baselines.dir/block_stm.cc.o.d"
  "CMakeFiles/pevm_baselines.dir/occ.cc.o"
  "CMakeFiles/pevm_baselines.dir/occ.cc.o.d"
  "CMakeFiles/pevm_baselines.dir/serial.cc.o"
  "CMakeFiles/pevm_baselines.dir/serial.cc.o.d"
  "CMakeFiles/pevm_baselines.dir/two_phase_locking.cc.o"
  "CMakeFiles/pevm_baselines.dir/two_phase_locking.cc.o.d"
  "libpevm_baselines.a"
  "libpevm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
