# Empty dependencies file for pevm_baselines.
# This may be replaced when dependencies are built.
