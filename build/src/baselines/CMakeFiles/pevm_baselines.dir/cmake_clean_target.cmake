file(REMOVE_RECURSE
  "libpevm_baselines.a"
)
