file(REMOVE_RECURSE
  "CMakeFiles/pevm_exec.dir/apply.cc.o"
  "CMakeFiles/pevm_exec.dir/apply.cc.o.d"
  "libpevm_exec.a"
  "libpevm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
