# Empty compiler generated dependencies file for pevm_exec.
# This may be replaced when dependencies are built.
