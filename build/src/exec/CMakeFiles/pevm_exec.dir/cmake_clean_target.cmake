file(REMOVE_RECURSE
  "libpevm_exec.a"
)
