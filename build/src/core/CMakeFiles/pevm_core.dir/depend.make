# Empty dependencies file for pevm_core.
# This may be replaced when dependencies are built.
