file(REMOVE_RECURSE
  "libpevm_core.a"
)
