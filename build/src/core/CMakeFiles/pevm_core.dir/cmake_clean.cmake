file(REMOVE_RECURSE
  "CMakeFiles/pevm_core.dir/oplog_printer.cc.o"
  "CMakeFiles/pevm_core.dir/oplog_printer.cc.o.d"
  "CMakeFiles/pevm_core.dir/parallel_evm.cc.o"
  "CMakeFiles/pevm_core.dir/parallel_evm.cc.o.d"
  "CMakeFiles/pevm_core.dir/redo.cc.o"
  "CMakeFiles/pevm_core.dir/redo.cc.o.d"
  "CMakeFiles/pevm_core.dir/scheduled.cc.o"
  "CMakeFiles/pevm_core.dir/scheduled.cc.o.d"
  "CMakeFiles/pevm_core.dir/ssa_builder.cc.o"
  "CMakeFiles/pevm_core.dir/ssa_builder.cc.o.d"
  "libpevm_core.a"
  "libpevm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
