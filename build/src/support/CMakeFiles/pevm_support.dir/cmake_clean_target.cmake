file(REMOVE_RECURSE
  "libpevm_support.a"
)
