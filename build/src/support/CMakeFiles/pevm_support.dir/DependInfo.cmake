
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/bytes.cc" "src/support/CMakeFiles/pevm_support.dir/bytes.cc.o" "gcc" "src/support/CMakeFiles/pevm_support.dir/bytes.cc.o.d"
  "/root/repo/src/support/keccak.cc" "src/support/CMakeFiles/pevm_support.dir/keccak.cc.o" "gcc" "src/support/CMakeFiles/pevm_support.dir/keccak.cc.o.d"
  "/root/repo/src/support/rlp.cc" "src/support/CMakeFiles/pevm_support.dir/rlp.cc.o" "gcc" "src/support/CMakeFiles/pevm_support.dir/rlp.cc.o.d"
  "/root/repo/src/support/u256.cc" "src/support/CMakeFiles/pevm_support.dir/u256.cc.o" "gcc" "src/support/CMakeFiles/pevm_support.dir/u256.cc.o.d"
  "/root/repo/src/support/zipf.cc" "src/support/CMakeFiles/pevm_support.dir/zipf.cc.o" "gcc" "src/support/CMakeFiles/pevm_support.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
