# Empty compiler generated dependencies file for pevm_support.
# This may be replaced when dependencies are built.
