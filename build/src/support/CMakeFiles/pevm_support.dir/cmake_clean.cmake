file(REMOVE_RECURSE
  "CMakeFiles/pevm_support.dir/bytes.cc.o"
  "CMakeFiles/pevm_support.dir/bytes.cc.o.d"
  "CMakeFiles/pevm_support.dir/keccak.cc.o"
  "CMakeFiles/pevm_support.dir/keccak.cc.o.d"
  "CMakeFiles/pevm_support.dir/rlp.cc.o"
  "CMakeFiles/pevm_support.dir/rlp.cc.o.d"
  "CMakeFiles/pevm_support.dir/u256.cc.o"
  "CMakeFiles/pevm_support.dir/u256.cc.o.d"
  "CMakeFiles/pevm_support.dir/zipf.cc.o"
  "CMakeFiles/pevm_support.dir/zipf.cc.o.d"
  "libpevm_support.a"
  "libpevm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
