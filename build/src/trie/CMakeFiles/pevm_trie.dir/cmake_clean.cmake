file(REMOVE_RECURSE
  "CMakeFiles/pevm_trie.dir/mpt.cc.o"
  "CMakeFiles/pevm_trie.dir/mpt.cc.o.d"
  "libpevm_trie.a"
  "libpevm_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
