file(REMOVE_RECURSE
  "libpevm_trie.a"
)
