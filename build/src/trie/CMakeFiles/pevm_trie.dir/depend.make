# Empty dependencies file for pevm_trie.
# This may be replaced when dependencies are built.
