file(REMOVE_RECURSE
  "CMakeFiles/pevm_evm.dir/eval.cc.o"
  "CMakeFiles/pevm_evm.dir/eval.cc.o.d"
  "CMakeFiles/pevm_evm.dir/interpreter.cc.o"
  "CMakeFiles/pevm_evm.dir/interpreter.cc.o.d"
  "CMakeFiles/pevm_evm.dir/opcode.cc.o"
  "CMakeFiles/pevm_evm.dir/opcode.cc.o.d"
  "libpevm_evm.a"
  "libpevm_evm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_evm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
