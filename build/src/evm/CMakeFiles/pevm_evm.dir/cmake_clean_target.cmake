file(REMOVE_RECURSE
  "libpevm_evm.a"
)
