# Empty dependencies file for pevm_evm.
# This may be replaced when dependencies are built.
