file(REMOVE_RECURSE
  "libpevm_sim.a"
)
