file(REMOVE_RECURSE
  "CMakeFiles/pevm_sim.dir/cost_model.cc.o"
  "CMakeFiles/pevm_sim.dir/cost_model.cc.o.d"
  "libpevm_sim.a"
  "libpevm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pevm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
