# Empty dependencies file for pevm_sim.
# This may be replaced when dependencies are built.
