// Walks through the paper's running example (§3.2 / Figure 5): two
// transferFrom transactions conflicting on balances[A], the SSA operation
// log generated for tx2, and the redo phase repairing the conflict.
//
//   $ ./build/examples/ssa_log_inspector
#include <cstdio>

#include "src/core/oplog_printer.h"
#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"
#include "src/workload/contracts.h"

using namespace pevm;

int main() {
  const Address token = Address::FromId(0x70CE);
  const Address a = Address::FromId(0xA);   // Owner "A".
  const Address b = Address::FromId(0xB);   // Recipient of tx1.
  const Address c = Address::FromId(0xC);   // Recipient of tx2.
  const Address d = Address::FromId(0xD);   // Sender of tx1.
  const Address e = Address::FromId(0xE);   // Sender of tx2.

  WorldState genesis;
  genesis.SetCode(token, BuildErc20Code());
  genesis.SetStorage(token, Erc20BalanceSlot(a), U256(100));
  genesis.SetStorage(token, Erc20AllowanceSlot(a, d), U256(1000));
  genesis.SetStorage(token, Erc20AllowanceSlot(a, e), U256(1000));
  genesis.SetBalance(d, U256::Exp(U256(10), U256(18)));
  genesis.SetBalance(e, U256::Exp(U256(10), U256(18)));

  auto transfer_from = [&](const Address& sender, const Address& to, uint64_t amount) {
    Transaction tx;
    tx.from = sender;
    tx.to = token;
    tx.data = Erc20TransferFromCall(a, to, U256(amount));
    tx.gas_limit = 200'000;
    tx.gas_price = U256(1);
    return tx;
  };
  Transaction tx1 = transfer_from(d, b, 10);  // transferFrom_D(A, B, 10)
  Transaction tx2 = transfer_from(e, c, 20);  // transferFrom_E(A, C, 20)

  BlockContext block;
  std::printf("== read phase: speculative execution of tx1 and tx2 against the same state ==\n");
  StateView view1(genesis);
  SsaBuilder builder1;
  ApplyTransaction(view1, block, tx1, &builder1);
  StateView view2(genesis);
  SsaBuilder builder2;
  Receipt r2 = ApplyTransaction(view2, block, tx2, &builder2);
  TxLog log2 = builder2.TakeLog();
  std::printf("tx2 executed speculatively: %s, gas %lld\n\n", EvmStatusName(r2.status),
              static_cast<long long>(r2.gas_used));

  std::printf("== SSA operation log of tx2 (cf. paper Figure 5) ==\n%s\n",
              FormatOpLog(log2).c_str());

  std::printf("== validation phase: commit tx1, then validate tx2 ==\n");
  WorldState state = genesis;
  state.Apply(view1.write_set());
  ConflictMap conflicts;
  for (const auto& [key, observed] : view2.read_set()) {
    U256 current = state.Get(key);
    if (current != observed) {
      conflicts.emplace(key, current);
      std::printf("conflict: %s observed %s, committed %s\n", key.ToString().c_str(),
                  observed.ToHexString().c_str(), current.ToHexString().c_str());
    }
  }

  std::printf("\n== redo phase: repair the conflicting operations only ==\n");
  RedoResult redo = RunRedo(log2, conflicts, [&](const StateKey& k) { return state.Get(k); });
  std::printf("redo %s: visited %zu DUG nodes, re-executed %zu of %zu log entries\n",
              redo.success ? "succeeded" : "failed", redo.dfs_visited, redo.reexecuted,
              log2.size());
  if (!redo.success) {
    return 1;
  }
  state.Apply(redo.write_set);

  std::printf("\nfinal balances[A]=%s balances[B]=%s balances[C]=%s (expected 70/10/20)\n",
              state.GetStorage(token, Erc20BalanceSlot(a)).ToString().c_str(),
              state.GetStorage(token, Erc20BalanceSlot(b)).ToString().c_str(),
              state.GetStorage(token, Erc20BalanceSlot(c)).ToString().c_str());
  return 0;
}
