// A DEX-heavy block: constant-product AMM swaps (with inter-contract CALLs
// into two ERC-20s) clustered on one hot pool — the workload where
// transaction-level concurrency control collapses and operation-level redo
// shines. Compares all four concurrency-control algorithms.
//
//   $ ./build/examples/dex_swaps
#include <cstdio>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/workload/contracts.h"

using namespace pevm;

int main() {
  const Address token0 = Address::FromId(0x70CE0);
  const Address token1 = Address::FromId(0x70CE1);
  const Address pool = Address::FromId(0xD00);
  const int kTraders = 96;

  WorldState genesis;
  genesis.SetCode(token0, BuildErc20Code());
  genesis.SetCode(token1, BuildErc20Code());
  genesis.SetCode(pool, BuildAmmCode());
  genesis.SetStorage(pool, U256(kAmmToken0Slot), U256::FromAddress(token0));
  genesis.SetStorage(pool, U256(kAmmToken1Slot), U256::FromAddress(token1));
  genesis.SetStorage(pool, U256(kAmmReserve0Slot), U256(1'000'000'000));
  genesis.SetStorage(pool, U256(kAmmReserve1Slot), U256(1'000'000'000));
  genesis.SetStorage(token0, Erc20BalanceSlot(pool), U256(1'000'000'000));
  genesis.SetStorage(token1, Erc20BalanceSlot(pool), U256(1'000'000'000));
  for (int t = 0; t < kTraders; ++t) {
    Address trader = Address::FromId(0x5000 + static_cast<uint64_t>(t));
    genesis.SetBalance(trader, U256::Exp(U256(10), U256(18)));
    genesis.SetStorage(token0, Erc20BalanceSlot(trader), U256(10'000'000));
    genesis.SetStorage(token1, Erc20BalanceSlot(trader), U256(10'000'000));
    genesis.SetStorage(token0, Erc20AllowanceSlot(trader, pool), ~U256{});
    genesis.SetStorage(token1, Erc20AllowanceSlot(trader, pool), ~U256{});
  }

  Block block;
  block.context.number = U256(14'000'000);
  block.context.coinbase = Address::FromId(0xC0FFEE);
  for (int t = 0; t < kTraders; ++t) {
    Transaction tx;
    tx.from = Address::FromId(0x5000 + static_cast<uint64_t>(t));
    tx.to = pool;
    tx.data = AmmSwapCall(U256(1000 + t * 13), /*zero_for_one=*/(t % 2) == 0);
    tx.gas_limit = 500'000;
    tx.gas_price = U256(1'000'000'000);
    block.transactions.push_back(tx);
  }

  ExecOptions options;
  options.threads = 16;
  SerialExecutor serial(options);
  WorldState serial_state = genesis;
  BlockReport serial_report = serial.Execute(block, serial_state);
  uint64_t serial_digest = serial_state.Digest();

  std::printf("%d swaps on one hot pool (every transaction conflicts on the reserves)\n\n",
              kTraders);
  std::printf("%-14s %-12s %-10s %s\n", "algorithm", "makespan", "speedup", "notes");
  std::printf("%-14s %9.1f us   1.00x\n", "serial", serial_report.makespan_ns / 1e3);

  auto run = [&](Executor& exec, const char* notes_fmt, auto... args) {
    WorldState state = genesis;
    BlockReport report = exec.Execute(block, state);
    char notes[128];
    std::snprintf(notes, sizeof(notes), notes_fmt, args(report)...);
    std::printf("%-14s %9.1f us  %5.2fx     %s%s\n", std::string(exec.name()).c_str(),
                report.makespan_ns / 1e3,
                static_cast<double>(serial_report.makespan_ns) /
                    static_cast<double>(report.makespan_ns),
                notes, state.Digest() == serial_digest ? "" : "  [STATE MISMATCH!]");
  };

  TwoPhaseLockingExecutor two_pl(options);
  run(two_pl, "%d lock aborts", [](const BlockReport& r) { return r.lock_aborts; });
  OccExecutor occ(options);
  run(occ, "%d full re-executions", [](const BlockReport& r) { return r.full_reexecutions; });
  BlockStmExecutor stm(options);
  run(stm, "%d aborts", [](const BlockReport& r) { return r.conflicts; });
  ParallelEvmExecutor pevm(options);
  run(pevm, "%d conflicts repaired by redo", [](const BlockReport& r) { return r.redo_success; });
  return 0;
}
