// Replays a sequence of mainnet-like blocks (the Table 1 workload) through
// every executor and reports per-block speedups plus the running state-root
// agreement — a miniature of the paper's §6.2 + §6.3 methodology.
//
//   $ ./build/examples/block_replay [num_blocks]
#include <cstdio>
#include <cstdlib>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/workload/block_gen.h"

using namespace pevm;

int main(int argc, char** argv) {
  int num_blocks = argc > 1 ? std::atoi(argv[1]) : 5;
  WorkloadConfig config;
  config.seed = 14'000'000;
  config.transactions_per_block = 180;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();

  ExecOptions options;
  options.threads = 16;
  SerialExecutor serial(options);
  TwoPhaseLockingExecutor two_pl(options);
  OccExecutor occ(options);
  BlockStmExecutor stm(options);
  ParallelEvmExecutor pevm(options);

  WorldState s0 = genesis;
  WorldState s1 = genesis;
  WorldState s2 = genesis;
  WorldState s3 = genesis;
  WorldState s4 = genesis;

  std::printf("replaying %d mainnet-like blocks (%d tx each, %d virtual threads)\n\n",
              num_blocks, config.transactions_per_block, options.threads);
  std::printf("%-8s %-10s %-8s %-8s %-10s %-12s %s\n", "block", "serial", "2pl", "occ",
              "block-stm", "parallelevm", "roots");
  for (int b = 0; b < num_blocks; ++b) {
    Block block = gen.MakeBlock();
    uint64_t t0 = serial.Execute(block, s0).makespan_ns;
    uint64_t t1 = two_pl.Execute(block, s1).makespan_ns;
    uint64_t t2 = occ.Execute(block, s2).makespan_ns;
    uint64_t t3 = stm.Execute(block, s3).makespan_ns;
    uint64_t t4 = pevm.Execute(block, s4).makespan_ns;
    bool agree = s0.Digest() == s1.Digest() && s0.Digest() == s2.Digest() &&
                 s0.Digest() == s3.Digest() && s0.Digest() == s4.Digest();
    std::printf("%-8llu %7.1fus  %-8.2f %-8.2f %-10.2f %-12.2f %s\n",
                static_cast<unsigned long long>(block.context.number.AsUint64()), t0 / 1e3,
                static_cast<double>(t0) / static_cast<double>(t1),
                static_cast<double>(t0) / static_cast<double>(t2),
                static_cast<double>(t0) / static_cast<double>(t3),
                static_cast<double>(t0) / static_cast<double>(t4), agree ? "match" : "MISMATCH");
    if (!agree) {
      return 1;
    }
  }
  // Final full Merkle root comparison (expensive, done once).
  bool final_match = s0.StateRoot() == s4.StateRoot();
  std::printf("\nfinal MPT state root (serial vs parallelevm): %s\n",
              final_match ? "match" : "MISMATCH");
  return final_match ? 0 : 1;
}
