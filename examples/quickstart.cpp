// Quickstart: execute a block of ERC-20 transfers with ParallelEVM and
// verify that the post-state matches serial execution.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API: building a world state, deploying a
// contract, assembling transactions, running an executor, and checking the
// Merkle state root.
#include <cstdio>

#include "src/baselines/serial.h"
#include "src/core/parallel_evm.h"
#include "src/exec/types.h"
#include "src/state/world_state.h"
#include "src/workload/contracts.h"

using namespace pevm;

int main() {
  // 1. A genesis world: one ERC-20 token, a few funded users.
  const Address token = Address::FromId(0x70CE);
  WorldState genesis;
  genesis.SetCode(token, BuildErc20Code());
  const int kUsers = 64;
  for (int u = 0; u < kUsers; ++u) {
    Address user = Address::FromId(0x1000 + static_cast<uint64_t>(u));
    genesis.SetBalance(user, U256::Exp(U256(10), U256(18)));  // 1 ether for gas.
    genesis.SetStorage(token, Erc20BalanceSlot(user), U256(1'000'000));
  }

  // 2. A block: every user sends tokens to user 0 (a classic hot receiver —
  // all transactions conflict on user 0's token balance).
  Block block;
  block.context.number = U256(14'000'000);
  block.context.coinbase = Address::FromId(0xC0FFEE);
  for (int u = 1; u < kUsers; ++u) {
    Transaction tx;
    tx.from = Address::FromId(0x1000 + static_cast<uint64_t>(u));
    tx.to = token;
    tx.data = Erc20TransferCall(Address::FromId(0x1000), U256(100 + u));
    tx.gas_limit = 150'000;
    tx.gas_price = U256(1'000'000'000);
    block.transactions.push_back(tx);
  }

  // 3. Execute with the serial baseline and with ParallelEVM.
  ExecOptions options;
  options.threads = 8;
  WorldState serial_state = genesis;
  WorldState parallel_state = genesis;
  SerialExecutor serial(options);
  ParallelEvmExecutor parallel(options);
  BlockReport serial_report = serial.Execute(block, serial_state);
  BlockReport parallel_report = parallel.Execute(block, parallel_state);

  // 4. Correctness: identical Merkle Patricia state roots (paper §6.2).
  Hash256 root_serial = serial_state.StateRoot();
  Hash256 root_parallel = parallel_state.StateRoot();
  bool match = root_serial == root_parallel;

  std::printf("block with %zu hot-receiver ERC-20 transfers\n", block.transactions.size());
  std::printf("serial makespan     : %8.1f us\n", serial_report.makespan_ns / 1e3);
  std::printf("parallelEVM makespan: %8.1f us  (speedup %.2fx on %d virtual threads)\n",
              parallel_report.makespan_ns / 1e3,
              static_cast<double>(serial_report.makespan_ns) /
                  static_cast<double>(parallel_report.makespan_ns),
              options.threads);
  std::printf("conflicts: %d, repaired by redo: %d, redo failures: %d\n",
              parallel_report.conflicts, parallel_report.redo_success,
              parallel_report.redo_fail);
  std::printf("state roots match: %s (0x%02x%02x%02x%02x...)\n", match ? "yes" : "NO",
              root_serial[0], root_serial[1], root_serial[2], root_serial[3]);
  return match ? 0 : 1;
}
