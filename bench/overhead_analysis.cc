// Reproduces the §6.4 overhead analysis:
//   * SSA operation-log generation overhead  (paper: ~4.5% per transaction —
//     here measured for real, in wall-clock time, on this machine),
//   * log size as a fraction of executed instructions (paper: 5.0%),
//   * entries re-executed per conflict (paper: ~7, 0.3% of instructions),
//   * redo-phase share of block processing time (paper: 4.9%),
//   * redo success rate (paper: 87% of conflicting transactions),
//   * memory overhead of the logs (paper: +4.41% process memory).
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"

namespace {

using Clock = std::chrono::steady_clock;

size_t TxLogBytes(const pevm::TxLog& log) {
  size_t bytes = sizeof(log) + log.entries.capacity() * sizeof(pevm::OpLogEntry);
  for (const pevm::OpLogEntry& e : log.entries) {
    bytes += e.operands.capacity() * sizeof(pevm::U256) + e.def_stack.capacity() * sizeof(pevm::Lsn) +
             e.def_memory.capacity() * sizeof(pevm::MemDep) + e.input_bytes.capacity();
  }
  for (const auto& uses : log.dug) {
    bytes += uses.capacity() * sizeof(pevm::Lsn);
  }
  bytes += (log.direct_reads.size() + log.latest_writes.size()) *
           (sizeof(pevm::StateKey) + sizeof(pevm::Lsn) + 16);
  return bytes;
}

}  // namespace

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 140000;
  config.transactions_per_block = 200;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, 8);

  std::printf("Section 6.4: ParallelEVM overhead analysis\n\n");

  // --- (1) Real wall-clock overhead of SSA log generation. ---
  {
    auto run = [&](bool with_ssa) {
      Clock::time_point start = Clock::now();
      WorldState state = genesis;
      uint64_t log_bytes = 0;
      uint64_t entries = 0;
      uint64_t instructions = 0;
      for (const Block& block : blocks) {
        for (const Transaction& tx : block.transactions) {
          StateView view(state);
          if (with_ssa) {
            SsaBuilder builder;
            Receipt r = ApplyTransaction(view, block.context, tx, &builder);
            TxLog log = builder.TakeLog();
            entries += log.size();
            log_bytes += TxLogBytes(log);
            instructions += r.stats.instructions;
          } else {
            Receipt r = ApplyTransaction(view, block.context, tx);
            instructions += r.stats.instructions;
          }
          state.Apply(view.write_set());
        }
      }
      double seconds = std::chrono::duration<double>(Clock::now() - start).count();
      struct Out {
        double seconds;
        uint64_t entries;
        uint64_t bytes;
        uint64_t instructions;
      };
      return Out{seconds, entries, log_bytes, instructions};
    };
    // Warm up, then measure.
    run(false);
    auto plain = run(false);
    auto ssa = run(true);
    std::printf("SSA log generation overhead (measured wall clock, %zu blocks):\n",
                blocks.size());
    std::printf("  plain execution: %.1f ms, with SSA log: %.1f ms -> overhead %.1f%% "
                "(paper: 4.5%%)\n",
                plain.seconds * 1e3, ssa.seconds * 1e3,
                100.0 * (ssa.seconds - plain.seconds) / plain.seconds);
    std::printf("Log compactness: %llu entries for %llu executed instructions -> %.1f%% "
                "(paper: 5.0%%)\n",
                static_cast<unsigned long long>(ssa.entries),
                static_cast<unsigned long long>(ssa.instructions),
                100.0 * static_cast<double>(ssa.entries) / static_cast<double>(ssa.instructions));
    std::printf("Log memory: %.1f KiB per block, %.2f KiB per transaction (paper: +4.41%% "
                "process RSS)\n\n",
                static_cast<double>(ssa.bytes) / 1024.0 / static_cast<double>(blocks.size()),
                static_cast<double>(ssa.bytes) / 1024.0 /
                    static_cast<double>(blocks.size() * config.transactions_per_block));
  }

  // --- (2) Redo-phase statistics from the full executor. ---
  {
    ExecOptions options;
    options.threads = 16;
    ParallelEvmExecutor pevm(options);
    WorldState state = genesis;
    int conflicts = 0;
    int redo_ok = 0;
    int redo_fail = 0;
    uint64_t reexecuted = 0;
    uint64_t redo_ns = 0;
    uint64_t makespan = 0;
    uint64_t instructions = 0;
    for (const Block& block : blocks) {
      BlockReport r = pevm.Execute(block, state);
      conflicts += r.conflicts;
      redo_ok += r.redo_success;
      redo_fail += r.redo_fail;
      reexecuted += r.redo_entries_reexecuted;
      redo_ns += r.redo_ns;
      makespan += r.makespan_ns;
      instructions += r.instructions;
    }
    std::printf("Redo phase over %zu blocks (%d conflicts):\n", blocks.size(), conflicts);
    std::printf("  entries re-executed per conflict: %.1f (paper: ~7)\n",
                redo_ok > 0 ? static_cast<double>(reexecuted) / redo_ok : 0.0);
    std::printf("  re-executed entries / executed instructions: %.2f%% (paper: 0.3%%)\n",
                100.0 * static_cast<double>(reexecuted) / static_cast<double>(instructions));
    std::printf("  redo share of block processing time: %.1f%% (paper: 4.9%%)\n",
                100.0 * static_cast<double>(redo_ns) / static_cast<double>(makespan));
    std::printf("  redo success rate: %.1f%% of conflicting transactions (paper: 87%%)\n",
                conflicts > 0 ? 100.0 * redo_ok / conflicts : 100.0);
  }
  return 0;
}
