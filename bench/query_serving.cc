// Query-serving bench (BENCH_query.json): the concurrent read-only tier
// answering eth-API traffic off root-pinned snapshots while the chain
// pipeline executes and commits the same stream.
//
// Three measurements per serving-thread count:
//   - qps: read queries answered per second of engine wall clock;
//   - serving latency percentiles (p50/p95/p99 of dequeue->response ns,
//     exact, from per-query samples);
//   - pipeline degradation: blocks/s with the tier hammering vs the
//     tier-off baseline (how much read traffic steals from the write path).
//
// Correctness self-checks (exit non-zero on violation):
//   - every run's per-block roots are bit-identical to the tier-off
//     baseline's and to a from-scratch serial replay (the tier is inert);
//   - a sample of responses is re-evaluated against the serial-replay state
//     at each response's pinned root and must match bit for bit.
//
// Usage: query_serving [--smoke] [--trace=<file>] [--metrics=<file>]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/chain/chain_runner.h"
#include "src/query/query_engine.h"
#include "src/state/state_view.h"

namespace pevm {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

uint64_t Percentile(std::vector<uint64_t>& samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[index];
}

struct RunResult {
  int serve_threads = 0;
  double qps = 0.0;
  uint64_t p50_ns = 0, p95_ns = 0, p99_ns = 0;
  double blocks_per_sec = 0.0;
  double degradation_pct = 0.0;  // Pipeline slowdown vs tier-off baseline.
  QueryStats stats;
  SnapshotStats snapshots;
  std::string final_root;
};

}  // namespace
}  // namespace pevm

int main(int argc, char** argv) {
  using namespace pevm;
  BenchFlags flags;
  if (!ParseBenchFlags(argc, argv, flags)) {
    return 2;
  }
  const bool smoke = flags.smoke;

  WorkloadConfig config;
  config.seed = 930'000;
  config.transactions_per_block = smoke ? 60 : 200;
  config.users = smoke ? 600 : 2'000;
  const int n_blocks = smoke ? 4 : 12;
  const int n_queries = smoke ? 600 : 8'000;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, n_blocks);

  QueryWorkloadConfig qc;
  qc.seed = 931'000;
  qc.burst = 32;               // Bursty open-loop arrivals...
  qc.burst_gap_ns = 200'000;   // ...200us apart.
  std::vector<TimedQuery> load = gen.MakeQueryLoad(n_queries, qc);

  // Serial-replay oracle: per-block states for response verification, roots
  // for the inertness check.
  std::vector<WorldState> replay_states;
  std::vector<std::string> oracle_roots;
  std::map<std::string, std::pair<uint64_t, size_t>> root_index;  // root -> (block, state idx)
  {
    WorldState state = genesis;
    replay_states.push_back(state);
    root_index[HexEncode(genesis.StateRoot())] = {0, 0};
    std::unique_ptr<Executor> oracle = MakeExecutor(ExecutorKind::kSerial, ExecOptions{});
    for (const Block& block : blocks) {
      oracle->Execute(block, state);
      replay_states.push_back(state);
      oracle_roots.push_back(HexEncode(state.StateRoot()));
      root_index[oracle_roots.back()] = {oracle_roots.size(), replay_states.size() - 1};
    }
  }

  auto run_chain = [&](bool query_tier, int serve_threads, RunResult* out) {
    ChainOptions options;
    options.ops_server.port = flags.ops_port;
    options.executor = ExecutorKind::kParallelEvm;
    options.exec.os_threads = 8;
    options.queue_depth = 4;
    options.query_tier = query_tier;
    options.query_retain = 8;
    ChainRunner runner(options, genesis);

    std::vector<std::future<QueryResponse>> futures;
    std::vector<QueryResponse> responses;
    uint64_t serve_wall_ns = 1;
    QueryStats stats;
    if (query_tier) {
      QueryEngineOptions qopt;
      qopt.threads = serve_threads;
      QueryEngine engine(*runner.snapshots(), qopt);
      futures.reserve(load.size());
      const uint64_t start = NowNs();
      // Open-loop submitter: replay each query at its generated offset
      // (sleep-until, so a saturated engine produces backpressure, not a
      // silently thinned schedule) while the block producer floods the
      // pipeline from this thread.
      std::thread submitter([&] {
        for (const TimedQuery& timed : load) {
          const uint64_t due = start + timed.offset_ns;
          uint64_t now = NowNs();
          if (due > now) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(due - now));
          }
          futures.push_back(engine.Submit(timed.request));
        }
      });
      for (const Block& block : blocks) {
        runner.Submit(block);
      }
      out->blocks_per_sec = runner.Finish().blocks_per_sec();
      submitter.join();
      responses.reserve(futures.size());
      for (std::future<QueryResponse>& f : futures) {
        responses.push_back(f.get());
      }
      serve_wall_ns = NowNs() - start;
      stats = engine.Stop();
      out->snapshots = runner.snapshots()->stats();
    } else {
      for (const Block& block : blocks) {
        runner.Submit(block);
      }
      out->blocks_per_sec = runner.Finish().blocks_per_sec();
    }
    ChainReport report = runner.Finish();
    out->final_root = HexEncode(report.final_root);

    // Inertness: roots must match the serial oracle exactly, tier or no tier.
    if (report.roots.size() != oracle_roots.size()) {
      std::fprintf(stderr, "FATAL: committed %zu blocks, oracle has %zu\n",
                   report.roots.size(), oracle_roots.size());
      return false;
    }
    for (size_t b = 0; b < oracle_roots.size(); ++b) {
      if (HexEncode(report.roots[b]) != oracle_roots[b]) {
        std::fprintf(stderr, "FATAL: root mismatch at block %zu (tier=%d threads=%d)\n", b,
                     query_tier ? 1 : 0, serve_threads);
        return false;
      }
    }

    if (query_tier) {
      // Exactness: every 8th response re-evaluated against the replay state
      // at its pinned root.
      std::vector<uint64_t> samples;
      samples.reserve(responses.size());
      for (size_t i = 0; i < responses.size(); ++i) {
        const QueryResponse& response = responses[i];
        if (!response.ok()) {
          std::fprintf(stderr, "FATAL: query %zu not served (status %d)\n", i,
                       static_cast<int>(response.status));
          return false;
        }
        samples.push_back(response.wall_ns);
        if (i % 8 != 0) {
          continue;
        }
        auto it = root_index.find(HexEncode(response.root));
        if (it == root_index.end()) {
          std::fprintf(stderr, "FATAL: query %zu served at unknown root\n", i);
          return false;
        }
        WorldStateReader reader(replay_states[it->second.second]);
        QueryResponse want =
            EvalQuery(load[i].request, reader, it->second.first, response.root);
        if (want.value != response.value || want.bytes != response.bytes ||
            want.call_status != response.call_status || want.gas_used != response.gas_used) {
          std::fprintf(stderr, "FATAL: query %zu diverged from serial replay at its root\n",
                       i);
          return false;
        }
      }
      out->serve_threads = serve_threads;
      out->qps = static_cast<double>(stats.served) * 1e9 / static_cast<double>(serve_wall_ns);
      out->p50_ns = Percentile(samples, 0.50);
      out->p95_ns = Percentile(samples, 0.95);
      out->p99_ns = Percentile(samples, 0.99);
      out->stats = stats;
    }
    return true;
  };

  std::printf("Query serving: %d blocks x %d txs + %d read queries (bursty, 32/200us)\n",
              n_blocks, config.transactions_per_block, n_queries);

  RunResult baseline;
  if (!run_chain(/*query_tier=*/false, 0, &baseline)) {
    return 1;
  }
  std::printf("baseline (tier off): %.2f blocks/s\n\n", baseline.blocks_per_sec);
  std::printf("%-8s %-12s %-10s %-10s %-10s %-11s %s\n", "threads", "qps", "p50_us",
              "p95_us", "p99_us", "blocks/s", "degradation");

  std::vector<int> sweep = smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  std::vector<RunResult> runs;
  for (int threads : sweep) {
    RunResult run;
    if (!run_chain(/*query_tier=*/true, threads, &run)) {
      return 1;
    }
    run.degradation_pct =
        baseline.blocks_per_sec <= 0.0
            ? 0.0
            : 100.0 * (1.0 - run.blocks_per_sec / baseline.blocks_per_sec);
    std::printf("%-8d %-12.0f %-10.1f %-10.1f %-10.1f %-11.2f %+.1f%%\n", threads, run.qps,
                run.p50_ns / 1e3, run.p95_ns / 1e3, run.p99_ns / 1e3, run.blocks_per_sec,
                run.degradation_pct);
    runs.push_back(run);
  }

  bool ok = WriteBenchJson("BENCH_query.json", [&](JsonWriter& w) {
    w.BeginObject();
    w.Field("bench", "query_serving");
    w.Field("smoke", smoke);
    w.BeginObject("workload");
    w.Field("blocks", n_blocks);
    w.Field("transactions_per_block", config.transactions_per_block);
    w.Field("queries", n_queries);
    w.Field("burst", qc.burst);
    w.Field("burst_gap_ns", qc.burst_gap_ns);
    w.EndObject();
    w.Field("oracle_final_root", oracle_roots.back());
    w.BeginObject("baseline");
    w.Field("blocks_per_sec", baseline.blocks_per_sec);
    w.EndObject();
    w.BeginArray("runs");
    for (const RunResult& run : runs) {
      w.BeginObject();
      w.Field("serve_threads", run.serve_threads);
      w.Field("qps", run.qps);
      w.Field("p50_ns", run.p50_ns);
      w.Field("p95_ns", run.p95_ns);
      w.Field("p99_ns", run.p99_ns);
      w.Field("blocks_per_sec", run.blocks_per_sec);
      w.Field("degradation_pct", run.degradation_pct);
      w.Field("served", run.stats.served);
      w.Field("unknown_root", run.stats.unknown_root);
      w.Field("calls_reverted", run.stats.calls_reverted);
      w.BeginObject("by_kind");
      for (int k = 0; k < kQueryKinds; ++k) {
        w.Field(QueryKindName(static_cast<QueryKind>(k)), run.stats.by_kind[k]);
      }
      w.EndObject();
      w.BeginObject("snapshots");
      w.Field("published", run.snapshots.published);
      w.Field("retired", run.snapshots.retired);
      w.Field("evictions_deferred", run.snapshots.evictions_deferred);
      w.Field("versions_appended", run.snapshots.versions_appended);
      w.Field("versions_folded", run.snapshots.versions_folded);
      w.Field("acquires", run.snapshots.acquires);
      w.EndObject();
      w.Field("final_root", run.final_root);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  });
  if (!WriteTelemetryArtifacts(flags)) {
    ok = false;
  }
  return ok ? 0 : 1;
}
