// Shared helpers for the table/figure reproduction benches. These benches
// report *virtual-time* speedups from the deterministic cost model
// (DESIGN.md §3.2): every algorithm really executes the blocks (states are
// cross-checked against serial), and the simulated makespan on N virtual
// worker threads produces the speedup. Results are deterministic.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/exec/apply.h"
#include "src/exec/executor.h"
#include "src/workload/block_gen.h"

namespace pevm {

struct AlgoResult {
  std::string name;
  double speedup = 0;
  BlockReport report;
};

// Executes `blocks` with every algorithm (serial first), asserts state
// equivalence, and returns per-algorithm aggregate speedups
// (total serial virtual time / total algorithm virtual time).
inline std::vector<AlgoResult> CompareAlgorithms(const WorldState& genesis,
                                                 const std::vector<Block>& blocks,
                                                 const ExecOptions& options,
                                                 bool include_preexec = false) {
  std::vector<std::unique_ptr<Executor>> algos;
  algos.push_back(std::make_unique<SerialExecutor>(options));
  algos.push_back(std::make_unique<TwoPhaseLockingExecutor>(options));
  algos.push_back(std::make_unique<OccExecutor>(options));
  algos.push_back(std::make_unique<BlockStmExecutor>(options));
  algos.push_back(std::make_unique<ParallelEvmExecutor>(options));
  if (include_preexec) {
    algos.push_back(std::make_unique<ParallelEvmExecutor>(options, /*pre_execution=*/true));
  }

  std::vector<AlgoResult> results;
  uint64_t serial_total = 0;
  uint64_t serial_digest = 0;
  for (auto& algo : algos) {
    WorldState state = genesis;
    uint64_t total = 0;
    BlockReport last;
    for (const Block& block : blocks) {
      last = algo->Execute(block, state);
      total += last.makespan_ns;
    }
    if (algo->name() == "serial") {
      serial_total = total;
      serial_digest = state.Digest();
    } else if (state.Digest() != serial_digest) {
      std::fprintf(stderr, "FATAL: %s diverged from serial execution\n",
                   std::string(algo->name()).c_str());
      std::exit(1);
    }
    AlgoResult r;
    r.name = std::string(algo->name());
    r.speedup = total == 0 ? 0.0 : static_cast<double>(serial_total) / static_cast<double>(total);
    r.report = last;
    results.push_back(std::move(r));
  }
  return results;
}

inline std::vector<Block> MakeBlocks(WorkloadGenerator& gen, int count) {
  std::vector<Block> blocks;
  blocks.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    blocks.push_back(gen.MakeBlock());
  }
  return blocks;
}

}  // namespace pevm

#endif  // BENCH_BENCH_UTIL_H_
