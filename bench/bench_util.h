// Shared helpers for the table/figure reproduction benches. These benches
// report *virtual-time* speedups from the deterministic cost model
// (DESIGN.md §3.2): every algorithm really executes the blocks (states are
// cross-checked against serial), and the simulated makespan on N virtual
// worker threads produces the speedup. Results are deterministic.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <concepts>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/exec/apply.h"
#include "src/exec/executor.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/workload/block_gen.h"

namespace pevm {

// --- Shared command-line surface. -----------------------------------------
//
// Every bench accepts the same flags:
//   --smoke            CI-sized run (each bench decides what that means)
//   --trace=<file>     enable the trace recorder, export Chrome JSON at exit
//   --metrics=<file>   snapshot the metrics registry to JSON at exit
//   --ops-port=<n>     serve the ops plane (/metrics, /healthz, ...) on
//                      127.0.0.1:<n> for the benches that run a ChainRunner
struct BenchFlags {
  bool smoke = false;
  std::string trace_path;
  std::string metrics_path;
  // Extra commit-batch depth for the chain bench's commit sweep (0 = off).
  // The sweep always covers {1, 4}; --commit-batch=N adds N to the set.
  size_t commit_batch = 0;
  // Ops-plane HTTP port (-1 = off, 0 = ephemeral). Benches without a
  // ChainRunner accept but ignore it.
  int ops_port = -1;
};

// Parses argv into `flags`; prints a diagnostic and returns false on an
// unknown flag. Turning on --trace flips the global recorder before the
// bench does any work, so thread-name registrations and early spans land.
inline bool ParseBenchFlags(int argc, char** argv, BenchFlags& flags) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--smoke") {
      flags.smoke = true;
    } else if (arg.starts_with("--trace=")) {
      flags.trace_path = arg.substr(sizeof("--trace=") - 1);
    } else if (arg.starts_with("--metrics=")) {
      flags.metrics_path = arg.substr(sizeof("--metrics=") - 1);
    } else if (arg.starts_with("--commit-batch=")) {
      std::string_view v = arg.substr(sizeof("--commit-batch=") - 1);
      size_t parsed = 0;
      for (char c : v) {
        if (c < '0' || c > '9') {
          std::fprintf(stderr, "bad --commit-batch value: %s\n", argv[i]);
          return false;
        }
        parsed = parsed * 10 + static_cast<size_t>(c - '0');
      }
      if (parsed == 0) {
        std::fprintf(stderr, "bad --commit-batch value: %s (must be >= 1)\n", argv[i]);
        return false;
      }
      flags.commit_batch = parsed;
    } else if (arg.starts_with("--ops-port=")) {
      std::string_view v = arg.substr(sizeof("--ops-port=") - 1);
      int parsed = 0;
      bool ok = !v.empty();
      for (char c : v) {
        if (c < '0' || c > '9') {
          ok = false;
          break;
        }
        parsed = parsed * 10 + (c - '0');
      }
      if (!ok || parsed > 65535) {
        std::fprintf(stderr, "bad --ops-port value: %s (0..65535)\n", argv[i]);
        return false;
      }
      flags.ops_port = parsed;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s (supported: --smoke --trace=<file> --metrics=<file> "
                   "--commit-batch=<n> --ops-port=<n>)\n",
                   argv[i]);
      return false;
    }
  }
  if (!flags.trace_path.empty()) {
    telemetry::SetEnabled(true);
  }
  return true;
}

// Exports whatever --trace / --metrics asked for. Call once, after the run
// quiesces (no Span objects alive). Returns false if any write failed.
inline bool WriteTelemetryArtifacts(const BenchFlags& flags) {
  bool ok = true;
  if (!flags.trace_path.empty()) {
    if (telemetry::WriteChromeTrace(flags.trace_path)) {
      std::printf("wrote %s (%zu threads, %llu events dropped)\n", flags.trace_path.c_str(),
                  telemetry::RegisteredThreads(),
                  static_cast<unsigned long long>(telemetry::DroppedEvents()));
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", flags.trace_path.c_str());
      ok = false;
    }
  }
  if (!flags.metrics_path.empty()) {
    // Fold per-thread trace-ring occupancy/drop gauges into the snapshot so
    // the metrics artifact reflects the recorder's state too.
    telemetry::UpdateTraceGauges();
    if (telemetry::WriteMetricsJson(flags.metrics_path)) {
      std::printf("wrote %s\n", flags.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n", flags.metrics_path.c_str());
      ok = false;
    }
  }
  return ok;
}

// --- BENCH_*.json emission. -----------------------------------------------
//
// Streaming JSON writer: tracks nesting and comma placement so every bench
// emits its machine-readable trajectory point through one code path instead
// of hand-balanced fprintf format strings. Output is pretty-printed (one
// field per line) purely for diffability; consumers just parse it.
class JsonWriter {
 public:
  explicit JsonWriter(FILE* out) : out_(out) {}

  void BeginObject(const char* key = nullptr) { Open('{', key); }
  void EndObject() { Close('}'); }
  void BeginArray(const char* key = nullptr) { Open('[', key); }
  void EndArray() { Close(']'); }

  void Field(const char* key, const char* value) {
    Label(key);
    WriteString(value);
  }
  void Field(const char* key, const std::string& value) { Field(key, value.c_str()); }
  void Field(const char* key, bool value) {
    Label(key);
    std::fputs(value ? "true" : "false", out_);
  }
  void Field(const char* key, double value, int precision = 4) {
    Label(key);
    std::fprintf(out_, "%.*f", precision, value);
  }
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  void Field(const char* key, T value) {
    Label(key);
    if constexpr (std::is_signed_v<T>) {
      std::fprintf(out_, "%lld", static_cast<long long>(value));
    } else {
      std::fprintf(out_, "%llu", static_cast<unsigned long long>(value));
    }
  }

 private:
  void Indent(int depth) {
    for (int i = 0; i < depth; ++i) {
      std::fputs("  ", out_);
    }
  }
  // Comma + newline bookkeeping before any value or key at the current depth.
  void Prefix() {
    if (depth_ > 0) {
      std::fputs(first_ ? "\n" : ",\n", out_);
      Indent(depth_);
    }
    first_ = false;
  }
  void Label(const char* key) {
    Prefix();
    if (key != nullptr) {
      WriteString(key);
      std::fputs(": ", out_);
    }
  }
  void Open(char bracket, const char* key) {
    Label(key);
    std::fputc(bracket, out_);
    ++depth_;
    first_ = true;
  }
  void Close(char bracket) {
    --depth_;
    if (!first_) {
      std::fputc('\n', out_);
      Indent(depth_);
    }
    std::fputc(bracket, out_);
    first_ = false;
    if (depth_ == 0) {
      std::fputc('\n', out_);
    }
  }
  void WriteString(const char* s) {
    std::fputc('"', out_);
    for (; *s != '\0'; ++s) {
      unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        std::fputc('\\', out_);
        std::fputc(c, out_);
      } else if (c < 0x20) {
        std::fprintf(out_, "\\u%04x", c);
      } else {
        std::fputc(c, out_);
      }
    }
    std::fputc('"', out_);
  }

  FILE* out_;
  int depth_ = 0;
  bool first_ = true;
};

// Opens `path` and hands the writer to `emit`. Returns false (with a
// diagnostic) if the file cannot be created; prints the customary
// "wrote <path>" breadcrumb on success.
template <typename Emit>
inline bool WriteBenchJson(const char* path, Emit emit) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  JsonWriter writer(out);
  emit(writer);
  std::fclose(out);
  std::printf("wrote %s\n", path);
  return true;
}

struct AlgoResult {
  std::string name;
  double speedup = 0;
  BlockReport report;
};

// Executes `blocks` with every algorithm (serial first), asserts state
// equivalence, and returns per-algorithm aggregate speedups
// (total serial virtual time / total algorithm virtual time).
inline std::vector<AlgoResult> CompareAlgorithms(const WorldState& genesis,
                                                 const std::vector<Block>& blocks,
                                                 const ExecOptions& options,
                                                 bool include_preexec = false) {
  std::vector<std::unique_ptr<Executor>> algos;
  algos.push_back(std::make_unique<SerialExecutor>(options));
  algos.push_back(std::make_unique<TwoPhaseLockingExecutor>(options));
  algos.push_back(std::make_unique<OccExecutor>(options));
  algos.push_back(std::make_unique<BlockStmExecutor>(options));
  algos.push_back(std::make_unique<ParallelEvmExecutor>(options));
  if (include_preexec) {
    algos.push_back(std::make_unique<ParallelEvmExecutor>(options, /*pre_execution=*/true));
  }

  std::vector<AlgoResult> results;
  uint64_t serial_total = 0;
  uint64_t serial_digest = 0;
  for (auto& algo : algos) {
    WorldState state = genesis;
    uint64_t total = 0;
    BlockReport last;
    for (const Block& block : blocks) {
      last = algo->Execute(block, state);
      total += last.makespan_ns;
    }
    if (algo->name() == "serial") {
      serial_total = total;
      serial_digest = state.Digest();
    } else if (state.Digest() != serial_digest) {
      std::fprintf(stderr, "FATAL: %s diverged from serial execution\n",
                   std::string(algo->name()).c_str());
      std::exit(1);
    }
    AlgoResult r;
    r.name = std::string(algo->name());
    r.speedup = total == 0 ? 0.0 : static_cast<double>(serial_total) / static_cast<double>(total);
    r.report = last;
    results.push_back(std::move(r));
  }
  return results;
}

inline std::vector<Block> MakeBlocks(WorkloadGenerator& gen, int count) {
  std::vector<Block> blocks;
  blocks.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    blocks.push_back(gen.MakeBlock());
  }
  return blocks;
}

}  // namespace pevm

#endif  // BENCH_BENCH_UTIL_H_
