// Reproduces Figure 12: impact of the number of transactions per block on
// ParallelEVM. Paper shape: larger blocks yield higher speedups (the
// fixed-cost serial sections amortize and the read phase saturates the
// worker pool).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 1200;
  config.users = 5000;  // Large blocks need many distinct senders.
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();

  ExecOptions options;
  options.threads = 16;
  SerialExecutor serial(options);
  ParallelEvmExecutor pevm(options);

  std::printf("Figure 12: impact of the block transaction number on ParallelEVM\n\n");
  std::printf("%-10s %-12s %s\n", "txs/block", "speedup", "redo conflicts");
  for (int size : {50, 100, 200, 400, 800, 1600}) {
    gen.SetTransactionsPerBlock(size);
    Block block = gen.MakeBlock();
    WorldState s_serial = genesis;
    WorldState s_pevm = genesis;
    uint64_t t_serial = serial.Execute(block, s_serial).makespan_ns;
    BlockReport r = pevm.Execute(block, s_pevm);
    if (s_serial.Digest() != s_pevm.Digest()) {
      std::fprintf(stderr, "FATAL: divergence at block size %d\n", size);
      return 1;
    }
    std::printf("%-10d %6.2fx      %d (%d repaired)\n", size,
                static_cast<double>(t_serial) / static_cast<double>(r.makespan_ns), r.conflicts,
                r.redo_success);
  }
  return 0;
}
