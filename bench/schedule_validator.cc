// The §7 extension (the paper's future work): operation-level schedules.
// The proposer runs ParallelEVM and embeds per-transaction plans
// (clean / redo-with-keys / fallback) in the block; validators follow the
// schedule, skipping read-set validation for clean transactions and SSA
// logging for everything that will not redo.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/scheduled.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 140000;
  config.transactions_per_block = 200;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, 10);

  ExecOptions options;
  options.threads = 16;

  uint64_t serial_total = 0;
  uint64_t digest = 0;
  {
    SerialExecutor serial(options);
    WorldState state = genesis;
    for (const Block& b : blocks) {
      serial_total += serial.Execute(b, state).makespan_ns;
    }
    digest = state.Digest();
  }

  // Proposer pass: produces schedules and the proposer's own timing.
  std::vector<BlockSchedule> schedules;
  uint64_t proposer_total = 0;
  {
    WorldState state = genesis;
    for (const Block& b : blocks) {
      ProposalResult proposal = ProposeBlock(b, state, options);
      proposer_total += proposal.report.makespan_ns;
      schedules.push_back(std::move(proposal.schedule));
    }
    if (state.Digest() != digest) {
      std::fprintf(stderr, "FATAL: proposer diverged\n");
      return 1;
    }
  }

  // Validator passes: scheduled (trusting) and plain ParallelEVM.
  uint64_t validator_total = 0;
  {
    WorldState state = genesis;
    for (size_t i = 0; i < blocks.size(); ++i) {
      validator_total += ExecuteWithSchedule(blocks[i], schedules[i], state, options).makespan_ns;
    }
    if (state.Digest() != digest) {
      std::fprintf(stderr, "FATAL: validator diverged\n");
      return 1;
    }
  }
  uint64_t plain_total = 0;
  {
    ParallelEvmExecutor pevm(options);
    WorldState state = genesis;
    for (const Block& b : blocks) {
      plain_total += pevm.Execute(b, state).makespan_ns;
    }
  }

  std::printf("Section 7 extension: operation-level schedules (proposer/validator split)\n\n");
  std::printf("%-28s %s\n", "configuration", "speedup vs serial");
  std::printf("%-28s %5.2fx\n", "proposer (makes schedule)",
              static_cast<double>(serial_total) / static_cast<double>(proposer_total));
  std::printf("%-28s %5.2fx\n", "validator (plain parallelevm)",
              static_cast<double>(serial_total) / static_cast<double>(plain_total));
  std::printf("%-28s %5.2fx\n", "validator (with schedule)",
              static_cast<double>(serial_total) / static_cast<double>(validator_total));
  std::printf("\nThe scheduled validator skips read-set validation for clean transactions\n"
              "and generates SSA logs only for transactions the schedule marks for redo,\n"
              "giving validators a consistent acceleration (paper section 7).\n");
  return 0;
}
