// Reproduces Table 1: average speedups over mainnet-like blocks.
// Paper: 2PL 1.26x | OCC 2.49x | Block-STM 2.82x | ParallelEVM 4.28x.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 140000;
  config.transactions_per_block = 200;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, 10);

  ExecOptions options;
  options.threads = 16;  // The paper's 8-core/16-thread machine.

  std::vector<AlgoResult> results = CompareAlgorithms(genesis, blocks, options);

  std::printf("Table 1: speedups achieved by different algorithms\n");
  std::printf("(mainnet-like blocks, %d tx/block, %d blocks, %d virtual threads)\n\n",
              config.transactions_per_block, static_cast<int>(blocks.size()), options.threads);
  std::printf("%-14s %-10s %s\n", "algorithm", "speedup", "paper");
  const char* paper[] = {"1.00x", "1.26x", "2.49x", "2.82x", "4.28x"};
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%-14s %5.2fx     %s\n", results[i].name.c_str(), results[i].speedup, paper[i]);
  }
  if (std::getenv("PEVM_BENCH_DEBUG") != nullptr) {
    for (const AlgoResult& r : results) {
      std::printf("[debug] %-14s makespan(last)=%8.1fus conflicts=%d redo_ok=%d "
                  "full_reexec=%d lock_aborts=%d\n",
                  r.name.c_str(), r.report.makespan_ns / 1e3, r.report.conflicts,
                  r.report.redo_success, r.report.full_reexecutions, r.report.lock_aborts);
    }
  }
  std::printf("\nParallelEVM conflict stats (last block): conflicts=%d redo_ok=%d redo_fail=%d "
              "full_reexec=%d\n",
              results[4].report.conflicts, results[4].report.redo_success,
              results[4].report.redo_fail, results[4].report.full_reexecutions);
  return 0;
}
