// Google-benchmark microbenchmarks for the substrates: 256-bit arithmetic,
// Keccak-256, MPT insertion/rooting, EVM interpretation with and without SSA
// log generation (the real-time counterpart of the paper's 4.5% overhead),
// and the redo phase on the paper's §3.2 scenario.
#include <benchmark/benchmark.h>

#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"
#include "src/support/keccak.h"
#include "src/support/u256.h"
#include "src/trie/mpt.h"
#include "src/workload/contracts.h"

namespace pevm {
namespace {

const Address kOwner = Address::FromId(0xAAA);
const Address kSpender = Address::FromId(0xD0D);
const Address kRecipient = Address::FromId(0xB0B);
const Address kToken = Address::FromId(0x70CE);

void BM_U256_Add(benchmark::State& state) {
  U256 a(123456789, 987654321, 555, 777);
  U256 b(1, 2, 3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a = a + b);
  }
}
BENCHMARK(BM_U256_Add);

void BM_U256_Mul(benchmark::State& state) {
  U256 a(123456789, 987654321, 555, 777);
  U256 b(1, 2, 3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_U256_Mul);

void BM_U256_Div(benchmark::State& state) {
  U256 a = U256::Exp(U256(7), U256(90));
  U256 b = U256::Exp(U256(3), U256(40));
  for (auto _ : state) {
    benchmark::DoNotOptimize(U256::Div(a, b));
  }
}
BENCHMARK(BM_U256_Div);

void BM_Keccak256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Keccak256(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(32)->Arg(64)->Arg(1024);

void BM_MptInsertAndRoot(benchmark::State& state) {
  for (auto _ : state) {
    MerklePatriciaTrie trie;
    for (uint64_t i = 0; i < static_cast<uint64_t>(state.range(0)); ++i) {
      std::array<uint8_t, 32> key = U256(i * 0x9e3779b9).ToBigEndian();
      trie.Put(BytesView(key.data(), key.size()), Bytes{1, 2, 3});
    }
    benchmark::DoNotOptimize(trie.RootHash());
  }
}
BENCHMARK(BM_MptInsertAndRoot)->Arg(64)->Arg(512);

struct Erc20Fixture {
  WorldState state;
  BlockContext block;
  Transaction tx;

  Erc20Fixture() {
    state.SetCode(kToken, BuildErc20Code());
    state.SetStorage(kToken, Erc20BalanceSlot(kOwner), U256::Exp(U256(10), U256(18)));
    state.SetBalance(kOwner, U256::Exp(U256(10), U256(18)));
    tx.from = kOwner;
    tx.to = kToken;
    tx.data = Erc20TransferCall(kRecipient, U256(5));
    tx.gas_limit = 150'000;
    tx.gas_price = U256(1);
  }
};

void BM_Erc20Transfer(benchmark::State& state) {
  Erc20Fixture fx;
  for (auto _ : state) {
    StateView view(fx.state);
    benchmark::DoNotOptimize(ApplyTransaction(view, fx.block, fx.tx));
  }
}
BENCHMARK(BM_Erc20Transfer);

void BM_Erc20TransferWithSsaLog(benchmark::State& state) {
  Erc20Fixture fx;
  for (auto _ : state) {
    StateView view(fx.state);
    SsaBuilder builder;
    benchmark::DoNotOptimize(ApplyTransaction(view, fx.block, fx.tx, &builder));
    benchmark::DoNotOptimize(builder.TakeLog());
  }
}
BENCHMARK(BM_Erc20TransferWithSsaLog);

void BM_RedoPaperScenario(benchmark::State& state) {
  // The §3.2 scenario: repair tx2's balances[A] conflict via the redo phase.
  WorldState genesis;
  genesis.SetCode(kToken, BuildErc20Code());
  genesis.SetStorage(kToken, Erc20BalanceSlot(kOwner), U256(1'000'000));
  genesis.SetStorage(kToken, Erc20AllowanceSlot(kOwner, kSpender), ~U256{});
  genesis.SetBalance(kSpender, U256::Exp(U256(10), U256(18)));
  BlockContext block;
  Transaction tx2;
  tx2.from = kSpender;
  tx2.to = kToken;
  tx2.data = Erc20TransferFromCall(kOwner, kRecipient, U256(20));
  tx2.gas_limit = 200'000;
  tx2.gas_price = U256(1);

  StateView view(genesis);
  SsaBuilder builder;
  ApplyTransaction(view, block, tx2, &builder);
  TxLog log = builder.TakeLog();
  StateKey conflict_key = StateKey::Storage(kToken, Erc20BalanceSlot(kOwner));
  WorldState committed = genesis;
  committed.Set(conflict_key, U256(999'000));

  for (auto _ : state) {
    TxLog copy = log;
    ConflictMap conflicts{{conflict_key, U256(999'000)}};
    benchmark::DoNotOptimize(
        RunRedo(copy, conflicts, [&](const StateKey& k) { return committed.Get(k); }));
  }
}
BENCHMARK(BM_RedoPaperScenario);

void BM_StateRoot(benchmark::State& state) {
  WorldState world;
  for (uint64_t i = 0; i < 200; ++i) {
    Address a = Address::FromId(i);
    world.SetBalance(a, U256(i + 1));
    world.SetStorage(a, U256(1), U256(i * 7 + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.StateRoot());
  }
}
BENCHMARK(BM_StateRoot);

}  // namespace
}  // namespace pevm

BENCHMARK_MAIN();
