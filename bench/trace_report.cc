// Conflict attribution report: *which state keys* cause the conflicts the
// aggregate BlockReport counters only count. Every executor that validates
// reads (ParallelEVM, OCC, Block-STM) records, per validation failure, the
// (address, storage-key) pairs whose stale reads triggered it; this bench
// aggregates the per-block histograms across a contended Zipfian stream and
// prints the top-K hot keys with their redo-vs-fallback outcome split — the
// observability answer to "what would I have to shard / schedule around to
// make this block parallel".
//
// A second sweep runs the Figure-11 single-hot-owner workload
// (MakeErc20ConflictBlock) to show attribution concentrating on exactly the
// keys the workload contends on: the shared owner's token balance.
//
// Usage: trace_report [--smoke] [--trace=<file>] [--metrics=<file>]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace pevm;

// Sums every block's attribution histogram and returns the merged, hot-first
// key list plus the executor's aggregate conflict counters.
struct ExecutorAttribution {
  std::string name;
  BlockReport totals;
};

ExecutorAttribution RunExecutor(Executor& executor, const WorldState& genesis,
                                const std::vector<Block>& blocks, uint64_t oracle_digest) {
  WorldState state = genesis;
  std::vector<BlockReport> reports;
  for (const Block& block : blocks) {
    reports.push_back(executor.Execute(block, state));
  }
  if (state.Digest() != oracle_digest) {
    std::fprintf(stderr, "FATAL: %s diverged from serial execution\n",
                 std::string(executor.name()).c_str());
    std::exit(1);
  }
  ExecutorAttribution result;
  result.name = std::string(executor.name());
  result.totals = AggregateBlockReports(reports);
  return result;
}

void PrintTopKeys(const ExecutorAttribution& run, size_t top_k) {
  std::printf("%s: %llu conflicts across %zu distinct keys\n", run.name.c_str(),
              static_cast<unsigned long long>(run.totals.conflicts),
              run.totals.conflict_keys.size());
  if (run.totals.conflict_keys.empty()) {
    std::printf("  (no attributed conflicts)\n\n");
    return;
  }
  std::printf("  %-10s %-8s %-10s %s\n", "conflicts", "redo", "fallback", "key");
  size_t shown = 0;
  for (const ConflictKeyStats& k : run.totals.conflict_keys) {
    if (shown++ >= top_k) {
      break;
    }
    std::printf("  %-10llu %-8llu %-10llu %s\n",
                static_cast<unsigned long long>(k.conflicts),
                static_cast<unsigned long long>(k.redo_resolved),
                static_cast<unsigned long long>(k.fallback), k.key.ToString().c_str());
  }
  if (run.totals.conflict_keys.size() > top_k) {
    std::printf("  ... %zu more keys\n", run.totals.conflict_keys.size() - top_k);
  }
  std::printf("\n");
}

void EmitKeys(JsonWriter& w, const ExecutorAttribution& run, size_t top_k) {
  w.BeginObject();
  w.Field("executor", run.name);
  w.Field("conflicts", run.totals.conflicts);
  w.Field("redo_success", run.totals.redo_success);
  w.Field("full_reexecutions", run.totals.full_reexecutions);
  w.Field("distinct_keys", run.totals.conflict_keys.size());
  w.BeginArray("top_keys");
  size_t shown = 0;
  for (const ConflictKeyStats& k : run.totals.conflict_keys) {
    if (shown++ >= top_k) {
      break;
    }
    w.BeginObject();
    w.Field("key", k.key.ToString());
    w.Field("conflicts", k.conflicts);
    w.Field("redo_resolved", k.redo_resolved);
    w.Field("fallback", k.fallback);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags;
  if (!ParseBenchFlags(argc, argv, flags)) {
    return 2;
  }
  const size_t top_k = 10;

  // --- Zipfian mainnet-like stream: hot pools / whale balances emerge. ---
  WorkloadConfig config;
  config.seed = 930'000;
  config.transactions_per_block = flags.smoke ? 100 : 250;
  config.users = flags.smoke ? 500 : 1'500;
  config.tokens = 6;
  config.pools = 3;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, flags.smoke ? 2 : 6);

  uint64_t oracle_digest = 0;
  {
    SerialExecutor serial{ExecOptions{}};
    WorldState state = genesis;
    for (const Block& block : blocks) {
      serial.Execute(block, state);
    }
    oracle_digest = state.Digest();
  }

  ExecOptions options;
  options.threads = 8;
  options.os_threads = 4;

  std::printf("Conflict attribution: top-%zu hot keys, %zu blocks x %d txs (Zipfian mix)\n\n",
              top_k, blocks.size(), config.transactions_per_block);
  std::vector<ExecutorAttribution> runs;
  {
    ParallelEvmExecutor pevm(options);
    runs.push_back(RunExecutor(pevm, genesis, blocks, oracle_digest));
  }
  {
    OccExecutor occ(options);
    runs.push_back(RunExecutor(occ, genesis, blocks, oracle_digest));
  }
  {
    BlockStmExecutor stm(options);
    runs.push_back(RunExecutor(stm, genesis, blocks, oracle_digest));
  }
  for (const ExecutorAttribution& run : runs) {
    PrintTopKeys(run, top_k);
  }
  std::printf(
      "(block-stm attributes only commit-sweep validation failures; its scheduler's\n"
      " speculative version-aborts are counted in `conflicts` but carry no keys)\n\n");

  // --- Figure-11 workload: conflict_ratio of the block drains one owner. ---
  // Attribution must concentrate on that owner's token balance; the share of
  // conflicts carried by the single hottest key is the quantified check.
  std::printf("Single-hot-owner sweep (parallelevm, %d-tx blocks):\n\n",
              config.transactions_per_block);
  std::printf("%-15s %-11s %-14s %-14s %s\n", "conflict_ratio", "conflicts", "distinct_keys",
              "top_key_share", "top_key");
  struct RatioRow {
    double ratio = 0.0;
    uint64_t conflicts = 0;
    size_t distinct_keys = 0;
    double top_share = 0.0;
    std::string top_key;
  };
  std::vector<RatioRow> ratio_rows;
  for (double ratio : {0.1, 0.5, 0.9}) {
    WorkloadGenerator ratio_gen(config);  // Fresh nonces aligned with genesis.
    WorldState state = ratio_gen.MakeGenesis();
    ParallelEvmExecutor pevm(options);
    std::vector<BlockReport> reports;
    const int n_blocks = flags.smoke ? 1 : 3;
    for (int b = 0; b < n_blocks; ++b) {
      Block block =
          ratio_gen.MakeErc20ConflictBlock(config.transactions_per_block, ratio);
      reports.push_back(pevm.Execute(block, state));
    }
    BlockReport totals = AggregateBlockReports(reports);
    RatioRow row;
    row.ratio = ratio;
    row.conflicts = totals.conflicts;
    row.distinct_keys = totals.conflict_keys.size();
    uint64_t attributed = 0;
    for (const ConflictKeyStats& k : totals.conflict_keys) {
      attributed += k.conflicts;
    }
    if (!totals.conflict_keys.empty() && attributed > 0) {
      row.top_share = static_cast<double>(totals.conflict_keys.front().conflicts) /
                      static_cast<double>(attributed);
      row.top_key = totals.conflict_keys.front().key.ToString();
    }
    ratio_rows.push_back(row);
    std::printf("%-15.1f %-11llu %-14zu %-14.3f %s\n", row.ratio,
                static_cast<unsigned long long>(row.conflicts), row.distinct_keys,
                row.top_share, row.top_key.c_str());
  }

  std::printf("\n");
  WriteBenchJson("BENCH_trace_report.json", [&](JsonWriter& w) {
    w.BeginObject();
    w.Field("bench", "trace_report");
    w.Field("smoke", flags.smoke);
    w.Field("blocks", blocks.size());
    w.Field("transactions_per_block", config.transactions_per_block);
    w.Field("top_k", top_k);
    w.BeginArray("executors");
    for (const ExecutorAttribution& run : runs) {
      EmitKeys(w, run, top_k);
    }
    w.EndArray();
    w.BeginArray("hot_owner_sweep");
    for (const RatioRow& r : ratio_rows) {
      w.BeginObject();
      w.Field("conflict_ratio", r.ratio, 2);
      w.Field("conflicts", r.conflicts);
      w.Field("distinct_keys", r.distinct_keys);
      w.Field("top_key_share", r.top_share);
      w.Field("top_key", r.top_key);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  });
  return WriteTelemetryArtifacts(flags) ? 0 : 1;
}
