// Code-cache bench (EXPERIMENTS.md §6.4 follow-up): on the Zipfian
// hot-contract workload, measures
//   (a) the shared cache's tier-0 hit rate after one warm-up block and how
//       far the one-time analysis cost amortizes,
//   (b) the SSA log-overhead lever — oplog entries per executed instruction
//       with superinstruction logging vs the per-op baseline (kOff), the
//       19.6%-per-instruction overhead the cache was built to attack,
//   (c) the wall-clock read-phase delta between the two, and
//   (d) bit-identity of the state root across every cache mode (hard
//       failure if violated — the §4.6 inertness claim).
// Emits BENCH_codecache.json for CI trending.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/codecache/code_cache.h"

int main(int argc, char** argv) {
  using namespace pevm;
  BenchFlags flags;
  if (!ParseBenchFlags(argc, argv, flags)) {
    return 1;
  }
  const int blocks_n = flags.smoke ? 3 : 8;
  const int txs = flags.smoke ? 150 : 250;

  WorkloadConfig config;
  config.seed = 140000;
  config.transactions_per_block = txs;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks;
  for (int b = 0; b < blocks_n; ++b) {
    blocks.push_back(gen.MakeHotContractBlock(txs));
  }

  ExecOptions base_options;
  base_options.threads = 16;

  struct ModeRun {
    uint64_t digest = 0;
    uint64_t oplog_entries = 0;
    uint64_t instructions = 0;
    uint64_t read_wall_ns = 0;
    uint64_t makespan_ns = 0;
  };
  auto run_mode = [&](CodeCacheMode mode) {
    ExecOptions options = base_options;
    options.code_cache.mode = mode;
    WorldState state = genesis;
    ParallelEvmExecutor executor(options);
    ModeRun out;
    for (const Block& block : blocks) {
      BlockReport report = executor.Execute(block, state);
      out.oplog_entries += report.oplog_entries;
      out.instructions += report.instructions;
      out.read_wall_ns += report.read_wall_ns;
      out.makespan_ns += report.makespan_ns;
    }
    out.digest = state.Digest();
    return out;
  };

  // --- (a) Hit rate: warm-up block, then steady state on the shared cache. --
  CodeCache& shared = SharedCodeCache(/*fuse=*/true);
  {
    ExecOptions options = base_options;  // kShared is the default.
    WorldState state = genesis;
    ParallelEvmExecutor executor(options);
    executor.Execute(blocks[0], state);
  }
  CodeCache::Stats warmed = shared.GetStats();
  ModeRun shared_run = run_mode(CodeCacheMode::kShared);
  CodeCache::Stats steady = shared.GetStats();
  uint64_t steady_hits = steady.hits - warmed.hits;
  uint64_t steady_misses = steady.misses - warmed.misses;
  double hit_rate = steady_hits + steady_misses == 0
                        ? 0.0
                        : static_cast<double>(steady_hits) /
                              static_cast<double>(steady_hits + steady_misses);

  // --- (b)+(c) Fused vs per-op log granularity and read wall. --------------
  ModeRun off_run = run_mode(CodeCacheMode::kOff);
  ModeRun per_block_run = run_mode(CodeCacheMode::kPerBlock);
  ModeRun uncached_run = run_mode(CodeCacheMode::kUncached);

  // --- (d) Inertness: every mode must land on the same post-state. ---------
  if (shared_run.digest != off_run.digest || shared_run.digest != per_block_run.digest ||
      shared_run.digest != uncached_run.digest) {
    std::fprintf(stderr, "FATAL: code-cache mode changed the post-state digest\n");
    return 1;
  }
  // Provider-backed modes must agree on the deterministic report fields too.
  if (shared_run.oplog_entries != per_block_run.oplog_entries ||
      shared_run.oplog_entries != uncached_run.oplog_entries ||
      shared_run.makespan_ns != per_block_run.makespan_ns) {
    std::fprintf(stderr, "FATAL: cache residency leaked into deterministic report fields\n");
    return 1;
  }

  double fused_epi = static_cast<double>(shared_run.oplog_entries) /
                     static_cast<double>(shared_run.instructions);
  double off_epi =
      static_cast<double>(off_run.oplog_entries) / static_cast<double>(off_run.instructions);
  double reduction = 1.0 - fused_epi / off_epi;
  telemetry::Histogram& analysis_ns = telemetry::GetHistogram("codecache.analysis_ns");

  std::printf("Code cache on the Zipfian hot-contract workload "
              "(%d blocks x %d txs, contract_zipf_s=%.2f)\n",
              blocks_n, txs, config.contract_zipf_s);
  std::printf("  tier-0 hit rate after warm-up: %.2f%% (%llu hits / %llu lookups, "
              "%llu distinct code hashes)\n",
              100.0 * hit_rate, static_cast<unsigned long long>(steady_hits),
              static_cast<unsigned long long>(steady_hits + steady_misses),
              static_cast<unsigned long long>(steady.entries));
  std::printf("  analysis amortization: %llu analyses, %.1f us total, "
              "%llu tier-1 promotions\n",
              static_cast<unsigned long long>(analysis_ns.count()),
              static_cast<double>(analysis_ns.sum()) / 1000.0,
              static_cast<unsigned long long>(steady.promotions));
  std::printf("  oplog entries/instruction: %.4f fused vs %.4f per-op "
              "-> %.1f%% fewer log entries\n",
              fused_epi, off_epi, 100.0 * reduction);
  std::printf("  read wall: %.2f ms fused vs %.2f ms per-op\n",
              static_cast<double>(shared_run.read_wall_ns) / 1e6,
              static_cast<double>(off_run.read_wall_ns) / 1e6);
  std::printf("  state digest identical across kShared/kPerBlock/kUncached/kOff\n");

  WriteBenchJson("BENCH_codecache.json", [&](JsonWriter& w) {
    w.BeginObject();
    w.Field("blocks", blocks_n);
    w.Field("transactions_per_block", txs);
    w.Field("contract_zipf_s", config.contract_zipf_s);
    w.Field("hit_rate", hit_rate);
    w.Field("steady_hits", steady_hits);
    w.Field("steady_misses", steady_misses);
    w.Field("distinct_code_hashes", steady.entries);
    w.Field("promotions", steady.promotions);
    w.Field("analyses", analysis_ns.count());
    w.Field("analysis_total_ns", analysis_ns.sum());
    w.Field("oplog_entries_fused", shared_run.oplog_entries);
    w.Field("oplog_entries_per_op", off_run.oplog_entries);
    w.Field("instructions", shared_run.instructions);
    w.Field("entries_per_instruction_fused", fused_epi);
    w.Field("entries_per_instruction_per_op", off_epi);
    w.Field("oplog_reduction", reduction);
    w.Field("read_wall_ns_fused", shared_run.read_wall_ns);
    w.Field("read_wall_ns_per_op", off_run.read_wall_ns);
    w.Field("roots_match", true);
    w.EndObject();
  });

  // Export --trace/--metrics before the gates: a failing run's telemetry is
  // exactly the artifact worth inspecting.
  if (!WriteTelemetryArtifacts(flags)) {
    return 1;
  }

  // Regression gates from the issue's acceptance criteria.
  if (hit_rate < 0.90) {
    std::fprintf(stderr, "FATAL: tier-0 hit rate %.2f%% below the 90%% floor\n",
                 100.0 * hit_rate);
    return 1;
  }
  if (reduction < 0.30) {
    std::fprintf(stderr, "FATAL: oplog reduction %.1f%% below the 30%% floor\n",
                 100.0 * reduction);
    return 1;
  }
  return 0;
}
