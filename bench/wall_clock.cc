// Real wall-clock read-phase scaling. The virtual-time makespan stays the
// paper-figure oracle (DESIGN.md §3.2); this bench reports what the hardware
// actually does now that the read phase runs on a real worker pool: per
// OS-thread count, the measured read-phase / commit-phase / total wall time
// and the read-phase speedup over the 1-thread pool. The virtual makespan
// column is printed alongside to show it does not move — results are
// bit-identical at every OS-thread count (the determinism test enforces it;
// this bench re-checks the state digest).
//
// Usage: wall_clock [--smoke] [--trace=<file>] [--metrics=<file>]
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace pevm;
  BenchFlags flags;
  if (!ParseBenchFlags(argc, argv, flags)) {
    return 2;
  }
  WorkloadConfig config;
  config.seed = 910000;
  config.transactions_per_block = flags.smoke ? 100 : 400;
  config.users = flags.smoke ? 600 : 2400;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, flags.smoke ? 2 : 6);

  std::printf("Wall-clock read phase: ParallelEVM on a real OS-thread pool\n");
  std::printf("(%d-tx blocks x %zu; virtual makespan must not move)\n\n",
              config.transactions_per_block, blocks.size());
  std::printf("%-11s %-14s %-14s %-14s %-14s %s\n", "os_threads", "read_wall_ms",
              "commit_wall_ms", "total_wall_ms", "read_speedup", "virtual_makespan_ms");

  uint64_t base_read_wall = 0;
  uint64_t base_digest = 0;
  for (int os_threads : {1, 2, 4, 8, 16}) {
    ExecOptions options;
    options.threads = 16;
    options.os_threads = os_threads;
    ParallelEvmExecutor pevm(options);
    WorldState state = genesis;
    uint64_t read_wall = 0;
    uint64_t commit_wall = 0;
    uint64_t total_wall = 0;
    uint64_t makespan = 0;
    for (const Block& block : blocks) {
      BlockReport report = pevm.Execute(block, state);
      read_wall += report.read_wall_ns;
      commit_wall += report.commit_wall_ns;
      total_wall += report.wall_ns;
      makespan += report.makespan_ns;
    }
    if (os_threads == 1) {
      base_read_wall = read_wall;
      base_digest = state.Digest();
    } else if (state.Digest() != base_digest) {
      std::fprintf(stderr, "FATAL: os_threads=%d changed the post-state digest\n", os_threads);
      return 1;
    }
    std::printf("%-11d %-14.2f %-14.2f %-14.2f %-14.2f %.2f\n", os_threads,
                read_wall / 1e6, commit_wall / 1e6, total_wall / 1e6,
                read_wall == 0 ? 0.0 : static_cast<double>(base_read_wall) / read_wall,
                makespan / 1e6);
  }
  std::printf("\n(read_speedup tracks the hardware: expect ~1x on a 1-core container,\n");
  std::printf(" near-linear scaling up to the physical core count elsewhere)\n");

  // --- Async storage prefetch on the Table-2-style latency workload. ---
  // The simulated store now charges LevelDB-like latency on the wall clock
  // (cold point read ~25us vs ~41us for a whole 32-key background batch), so
  // the prefetch pipeline's overlap is measured, not modeled. The virtual
  // makespan and the state digest must not move with depth; only wall time
  // and the deterministic hit/miss/wasted counters react.
  std::printf("\nAsync storage prefetch: ParallelEVM, simulated LevelDB latency\n");
  std::printf("(cold 25us point reads; batched background warm-ups; os_threads=4)\n\n");
  std::printf("%-8s %-14s %-16s %-10s %-10s %-10s %-10s %s\n", "depth", "read_wall_ms",
              "prefetch_wall_ms", "hits", "misses", "wasted", "hit_rate", "read_speedup");

  struct DepthResult {
    int depth = 0;
    uint64_t read_wall_ns = 0;
    uint64_t prefetch_wall_ns = 0;
    uint64_t hits = 0, misses = 0, wasted = 0;
    uint64_t makespan = 0;
  };
  std::vector<DepthResult> sweep;
  uint64_t depth0_read_wall = 0;
  uint64_t depth0_makespan = 0;
  for (int depth : {0, 4, 16, 64}) {
    ExecOptions options;
    options.threads = 16;
    options.os_threads = 4;
    options.prefetch_depth = depth;
    options.storage.cold_read_ns = 25'000;
    options.storage.warm_read_ns = 500;
    options.storage.batch_base_ns = 25'000;
    options.storage.batch_key_ns = 500;
    options.storage.prefetch_workers = 4;
    options.storage.batch_size = 32;
    ParallelEvmExecutor pevm(options);  // Fresh store: hints learn over the run.
    WorldState state = genesis;
    DepthResult r;
    r.depth = depth;
    for (const Block& block : blocks) {
      BlockReport report = pevm.Execute(block, state);
      r.read_wall_ns += report.read_wall_ns;
      r.prefetch_wall_ns += report.prefetch_wall_ns;
      r.hits += report.prefetch_hits;
      r.misses += report.prefetch_misses;
      r.wasted += report.prefetch_wasted;
      r.makespan += report.makespan_ns;
    }
    if (state.Digest() != base_digest) {
      std::fprintf(stderr, "FATAL: prefetch_depth=%d changed the post-state digest\n", depth);
      return 1;
    }
    if (depth == 0) {
      depth0_read_wall = r.read_wall_ns;
      depth0_makespan = r.makespan;
    } else if (r.makespan != depth0_makespan) {
      std::fprintf(stderr, "FATAL: prefetch_depth=%d moved the virtual makespan\n", depth);
      return 1;
    }
    double hit_rate = (r.hits + r.misses) == 0
                          ? 0.0
                          : static_cast<double>(r.hits) / static_cast<double>(r.hits + r.misses);
    std::printf("%-8d %-14.2f %-16.2f %-10llu %-10llu %-10llu %-10.3f %.2fx\n", depth,
                r.read_wall_ns / 1e6, r.prefetch_wall_ns / 1e6,
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.misses),
                static_cast<unsigned long long>(r.wasted), hit_rate,
                r.read_wall_ns == 0
                    ? 0.0
                    : static_cast<double>(depth0_read_wall) / static_cast<double>(r.read_wall_ns));
    sweep.push_back(r);
  }

  // Machine-readable trajectory point for the growth driver.
  std::printf("\n");
  WriteBenchJson("BENCH_prefetch.json", [&](JsonWriter& w) {
    w.BeginObject();
    w.Field("bench", "prefetch");
    w.Field("workload", "table2_latency");
    w.Field("transactions_per_block", config.transactions_per_block);
    w.Field("blocks", blocks.size());
    w.Field("cold_read_ns", 25000);
    w.Field("warm_read_ns", 500);
    w.BeginArray("results");
    for (const DepthResult& r : sweep) {
      double hit_rate = (r.hits + r.misses) == 0
                            ? 0.0
                            : static_cast<double>(r.hits) / static_cast<double>(r.hits + r.misses);
      w.BeginObject();
      w.Field("prefetch_depth", r.depth);
      w.Field("read_wall_ms", r.read_wall_ns / 1e6, 3);
      w.Field("prefetch_wall_ms", r.prefetch_wall_ns / 1e6, 3);
      w.Field("prefetch_hits", r.hits);
      w.Field("prefetch_misses", r.misses);
      w.Field("prefetch_wasted", r.wasted);
      w.Field("hit_rate", hit_rate);
      w.Field("read_speedup_vs_depth0", r.read_wall_ns == 0
                                            ? 0.0
                                            : static_cast<double>(depth0_read_wall) /
                                                  static_cast<double>(r.read_wall_ns),
              3);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  });
  return WriteTelemetryArtifacts(flags) ? 0 : 1;
}
