// Real wall-clock read-phase scaling. The virtual-time makespan stays the
// paper-figure oracle (DESIGN.md §3.2); this bench reports what the hardware
// actually does now that the read phase runs on a real worker pool: per
// OS-thread count, the measured read-phase / commit-phase / total wall time
// and the read-phase speedup over the 1-thread pool. The virtual makespan
// column is printed alongside to show it does not move — results are
// bit-identical at every OS-thread count (the determinism test enforces it;
// this bench re-checks the state digest).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 910000;
  config.transactions_per_block = 400;
  config.users = 2400;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, 6);

  std::printf("Wall-clock read phase: ParallelEVM on a real OS-thread pool\n");
  std::printf("(%d-tx blocks x %zu; virtual makespan must not move)\n\n",
              config.transactions_per_block, blocks.size());
  std::printf("%-11s %-14s %-14s %-14s %-14s %s\n", "os_threads", "read_wall_ms",
              "commit_wall_ms", "total_wall_ms", "read_speedup", "virtual_makespan_ms");

  uint64_t base_read_wall = 0;
  uint64_t base_digest = 0;
  for (int os_threads : {1, 2, 4, 8, 16}) {
    ExecOptions options;
    options.threads = 16;
    options.os_threads = os_threads;
    ParallelEvmExecutor pevm(options);
    WorldState state = genesis;
    uint64_t read_wall = 0;
    uint64_t commit_wall = 0;
    uint64_t total_wall = 0;
    uint64_t makespan = 0;
    for (const Block& block : blocks) {
      BlockReport report = pevm.Execute(block, state);
      read_wall += report.read_wall_ns;
      commit_wall += report.commit_wall_ns;
      total_wall += report.wall_ns;
      makespan += report.makespan_ns;
    }
    if (os_threads == 1) {
      base_read_wall = read_wall;
      base_digest = state.Digest();
    } else if (state.Digest() != base_digest) {
      std::fprintf(stderr, "FATAL: os_threads=%d changed the post-state digest\n", os_threads);
      return 1;
    }
    std::printf("%-11d %-14.2f %-14.2f %-14.2f %-14.2f %.2f\n", os_threads,
                read_wall / 1e6, commit_wall / 1e6, total_wall / 1e6,
                read_wall == 0 ? 0.0 : static_cast<double>(base_read_wall) / read_wall,
                makespan / 1e6);
  }
  std::printf("\n(read_speedup tracks the hardware: expect ~1x on a 1-core container,\n");
  std::printf(" near-linear scaling up to the physical core count elsewhere)\n");
  return 0;
}
