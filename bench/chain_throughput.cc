// Chain-runner throughput: blocks/s through the streaming three-stage
// pipeline (warm -> execute -> commit), with the incremental committer
// overlapped on its own thread versus run serially after each block — the
// paper's §6.2 commitment-bottleneck experiment, measured on the wall clock.
// The simulated storage front-end charges LevelDB-like latency (cold 25us
// point reads, batched background warm-ups), so execution genuinely idles on
// storage while the committer hashes: exactly the overlap an async-commitment
// node exploits.
//
// Determinism self-check: every configuration must produce the identical
// final state root, which must equal a from-scratch serial replay's
// WorldState::StateRoot(). Any mismatch exits non-zero.
//
// A third sweep measures the durability boundary (BENCH_kv.json): the same
// stream committed with no persistence, with the embedded KV store absorbing
// every block batch without fsync, and with one fdatasync per block — the
// write-amplification and commit-wall cost of crash safety.
//
// A fourth sweep measures the commit stage itself (BENCH_commit.json): the
// serial single-threaded committer versus the shard-parallel one, crossed
// with multi-block batched seals (CommitOptions::batch_blocks) and executor
// width. Every run's per-block roots are checked against the serial oracle —
// sharding and batching change commit wall clock and durability lag only.
//
// Usage: chain_throughput [--smoke] [--trace=<file>] [--metrics=<file>]
//                         [--commit-batch=<n>] [--ops-port=<n>]
//   --smoke: CI-sized stream, same JSON. --trace: Chrome trace_event JSON of
//   the whole run (warm/exec/commit stages, per-tx executor spans, prefetch
//   batches, KV fsyncs on their real threads). --metrics: registry snapshot.
//   --commit-batch=<n>: add batch depth n to the commit sweep's {1, 4}.
//   --ops-port=<n>: every ChainRunner in the sweeps serves /metrics,
//   /healthz, /debug/blocks and /debug/trace on 127.0.0.1:<n> while it runs
//   (runners are sequential, so the port is free between them).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "src/chain/chain_runner.h"

int main(int argc, char** argv) {
  using namespace pevm;
  BenchFlags flags;
  if (!ParseBenchFlags(argc, argv, flags)) {
    return 2;
  }
  const bool smoke = flags.smoke;

  WorkloadConfig config;
  config.seed = 920'000;
  config.transactions_per_block = smoke ? 60 : 200;
  config.users = smoke ? 600 : 2'000;
  const int n_blocks = smoke ? 4 : 12;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, n_blocks);

  // From-scratch oracle: serial replay + full StateRoot rebuild at stream end.
  WorldState oracle_state = genesis;
  {
    std::unique_ptr<Executor> oracle = MakeExecutor(ExecutorKind::kSerial, ExecOptions{});
    for (const Block& block : blocks) {
      oracle->Execute(block, oracle_state);
    }
  }
  const std::string oracle_root = HexEncode(oracle_state.StateRoot());

  std::printf("Chain throughput: %d blocks x %d txs, parallelevm executor\n", n_blocks,
              config.transactions_per_block);
  std::printf("(simulated storage: cold 200us, warm 500ns; commit = incremental MPT)\n\n");
  std::printf("%-11s %-9s %-11s %-9s %-10s %-10s %-11s %s\n", "os_threads", "overlap",
              "blocks/s", "wall_ms", "exec_busy", "commit_busy", "max_queues", "speedup");

  struct Row {
    int os_threads = 0;
    bool overlap = false;
    double blocks_per_sec = 0.0;
    double wall_ms = 0.0;
    double warm_busy = 0.0, exec_busy = 0.0, commit_busy = 0.0;
    size_t max_exec_queue = 0, max_commit_queue = 0;
  };
  std::vector<Row> rows;

  for (int os_threads : {1, 4, 16}) {
    double serial_bps = 0.0;
    for (bool overlap : {false, true}) {
      ChainOptions options;
      options.ops_server.port = flags.ops_port;
      options.executor = ExecutorKind::kParallelEvm;
      options.exec.threads = 16;
      options.exec.os_threads = os_threads;
      options.exec.prefetch_depth = 0;
      options.exec.storage.cold_read_ns = 200'000;
      options.exec.storage.warm_read_ns = 500;
      options.queue_depth = 3;
      options.overlap_commit = overlap;

      ChainRunner runner(options, genesis);
      for (const Block& block : blocks) {
        if (!runner.Submit(block)) {
          std::fprintf(stderr, "FATAL: Submit rejected mid-stream\n");
          return 1;
        }
      }
      ChainReport report = runner.Finish();
      if (report.blocks_committed != blocks.size()) {
        std::fprintf(stderr, "FATAL: committed %llu of %zu blocks\n",
                     static_cast<unsigned long long>(report.blocks_committed), blocks.size());
        return 1;
      }
      if (HexEncode(report.final_root) != oracle_root) {
        std::fprintf(stderr,
                     "FATAL: os_threads=%d overlap=%d final root diverged from serial replay\n",
                     os_threads, overlap);
        return 1;
      }

      Row row;
      row.os_threads = os_threads;
      row.overlap = overlap;
      row.blocks_per_sec = report.blocks_per_sec();
      row.wall_ms = report.wall_ns / 1e6;
      row.warm_busy = report.warm.busy_fraction();
      row.exec_busy = report.exec.busy_fraction();
      row.commit_busy = report.commit.busy_fraction();
      row.max_exec_queue = report.exec.max_queue_depth;
      row.max_commit_queue = report.commit.max_queue_depth;
      rows.push_back(row);
      if (!overlap) {
        serial_bps = row.blocks_per_sec;
      }
      char speedup[32] = "-";
      if (overlap && serial_bps > 0.0) {
        std::snprintf(speedup, sizeof(speedup), "%.2fx", row.blocks_per_sec / serial_bps);
      }
      std::printf("%-11d %-9s %-11.2f %-9.1f %-10.3f %-10.3f %zu/%-9zu %s\n", os_threads,
                  overlap ? "yes" : "no", row.blocks_per_sec, row.wall_ms, row.exec_busy,
                  row.commit_busy, row.max_exec_queue, row.max_commit_queue, speedup);
    }
  }
  std::printf("\n(overlap=yes commits block N-1 on a dedicated thread while block N\n");
  std::printf(" executes; overlap=no commits inline — the serial-commitment baseline)\n");

  // --- Stage-1 sweep: cross-block prefetch warm-up on/off. With depth > 0
  // the warm stage batch-loads block N+1's predicted access set (learned
  // hints + envelope keys) while block N executes, so execution sees warm
  // reads instead of 200us cold misses. Roots must again be identical.
  std::printf("\nCross-block prefetch (os_threads=4, overlapped commit):\n\n");
  std::printf("%-15s %-11s %-9s %-10s %-10s %s\n", "prefetch_depth", "blocks/s", "wall_ms",
              "warm_busy", "hits", "misses");
  struct WarmRow {
    int depth = 0;
    double blocks_per_sec = 0.0;
    double wall_ms = 0.0;
    double warm_busy = 0.0;
    uint64_t hits = 0, misses = 0;
  };
  std::vector<WarmRow> warm_rows;
  for (int depth : {0, 8}) {
    ChainOptions options;
    options.ops_server.port = flags.ops_port;
    options.executor = ExecutorKind::kParallelEvm;
    options.exec.threads = 16;
    options.exec.os_threads = 4;
    options.exec.prefetch_depth = depth;
    options.exec.storage.cold_read_ns = 200'000;
    options.exec.storage.warm_read_ns = 500;
    options.exec.storage.batch_base_ns = 200'000;
    options.exec.storage.batch_key_ns = 1'000;
    options.exec.storage.prefetch_workers = 2;
    options.queue_depth = 3;
    ChainRunner runner(options, genesis);
    for (const Block& block : blocks) {
      if (!runner.Submit(block)) {
        std::fprintf(stderr, "FATAL: Submit rejected mid-stream\n");
        return 1;
      }
    }
    ChainReport report = runner.Finish();
    if (HexEncode(report.final_root) != oracle_root) {
      std::fprintf(stderr, "FATAL: prefetch_depth=%d final root diverged\n", depth);
      return 1;
    }
    WarmRow row;
    row.depth = depth;
    row.blocks_per_sec = report.blocks_per_sec();
    row.wall_ms = report.wall_ns / 1e6;
    row.warm_busy = report.warm.busy_fraction();
    BlockReport totals = AggregateBlockReports(report.block_reports);
    row.hits = totals.prefetch_hits;
    row.misses = totals.prefetch_misses;
    warm_rows.push_back(row);
    std::printf("%-15d %-11.2f %-9.1f %-10.3f %-10llu %llu\n", row.depth, row.blocks_per_sec,
                row.wall_ms, row.warm_busy, static_cast<unsigned long long>(row.hits),
                static_cast<unsigned long long>(row.misses));
  }

  // --- Persistence sweep: what durability costs. Identical stream, identical
  // roots; the only variables are whether stage 3 feeds the KV store and
  // whether each block batch waits for fdatasync.
  std::printf("\nPersistence (os_threads=4, overlapped commit):\n\n");
  std::printf("%-12s %-7s %-11s %-9s %-12s %-10s %-9s %s\n", "store", "fsync", "blocks/s",
              "wall_ms", "commit_busy", "MB_logged", "fsyncs", "sync_ms");
  struct KvRow {
    const char* store = "none";
    bool fsync = false;
    double blocks_per_sec = 0.0;
    double wall_ms = 0.0;
    double commit_busy = 0.0;
    double apply_ms = 0.0, persist_ms = 0.0, sync_ms = 0.0;
    uint64_t bytes_appended = 0, fsyncs = 0, nodes = 0;
  };
  std::vector<KvRow> kv_rows;
  const std::filesystem::path kv_root =
      std::filesystem::temp_directory_path() / "pevm_bench_kv";
  std::filesystem::remove_all(kv_root);
  struct KvMode {
    const char* name;
    PersistMode persist;
    bool fsync;
  };
  const KvMode kv_modes[] = {
      {"none", PersistMode::kNone, false},
      {"kv", PersistMode::kKv, false},
      {"kv", PersistMode::kKv, true},
  };
  for (const KvMode& mode : kv_modes) {
    ChainOptions options;
    options.ops_server.port = flags.ops_port;
    options.executor = ExecutorKind::kParallelEvm;
    options.exec.threads = 16;
    options.exec.os_threads = 4;
    options.exec.storage.cold_read_ns = 200'000;
    options.exec.storage.warm_read_ns = 500;
    options.queue_depth = 3;
    options.persist = mode.persist;
    if (mode.persist == PersistMode::kKv) {
      const std::filesystem::path dir = kv_root / (mode.fsync ? "sync" : "nosync");
      options.kv_dir = dir.string();
      options.kv.fsync = mode.fsync;
    }
    ChainRunner runner(options, genesis);
    for (const Block& block : blocks) {
      if (!runner.Submit(block)) {
        std::fprintf(stderr, "FATAL: Submit rejected mid-stream\n");
        return 1;
      }
    }
    ChainReport report = runner.Finish();
    if (HexEncode(report.final_root) != oracle_root) {
      std::fprintf(stderr, "FATAL: persist=%s fsync=%d final root diverged\n", mode.name,
                   mode.fsync);
      return 1;
    }
    KvRow row;
    row.store = mode.name;
    row.fsync = mode.fsync;
    row.blocks_per_sec = report.blocks_per_sec();
    row.wall_ms = report.wall_ns / 1e6;
    row.commit_busy = report.commit.busy_fraction();
    row.bytes_appended = report.kv_bytes_appended;
    row.fsyncs = report.kv_fsyncs;
    row.sync_ms = report.kv_sync_ns / 1e6;
    for (const BlockDurability& d : report.durability) {
      row.apply_ms += d.apply_ns / 1e6;
      row.persist_ms += d.persist_ns / 1e6;
      row.nodes += d.nodes_written;
    }
    kv_rows.push_back(row);
    std::printf("%-12s %-7s %-11.2f %-9.1f %-12.3f %-10.2f %-9llu %.2f\n", row.store,
                row.fsync ? "yes" : "no", row.blocks_per_sec, row.wall_ms, row.commit_busy,
                row.bytes_appended / 1e6, static_cast<unsigned long long>(row.fsyncs),
                row.sync_ms);
  }
  std::filesystem::remove_all(kv_root);

  // --- Commit sweep: the shard-parallel committer versus the serial one,
  // crossed with multi-block batched seals. persist = kInMemory so the full
  // harvest + store write stream runs (bytes/nodes accounted) without disk
  // noise. committer=serial pins commit.os_threads = 1; committer=sharded
  // re-roots the 16 subtries on a pool of `os_threads`. Per-block roots stay
  // bit-identical at every point of the grid — checked against the oracle.
  std::vector<size_t> batch_depths = {1, 4};
  if (flags.commit_batch != 0 &&
      std::find(batch_depths.begin(), batch_depths.end(), flags.commit_batch) ==
          batch_depths.end()) {
    batch_depths.push_back(flags.commit_batch);
  }
  std::printf("\nCommit stage (overlapped, in-memory store):\n\n");
  std::printf("%-11s %-10s %-7s %-11s %-9s %-12s %-10s %-9s %s\n", "os_threads", "committer",
              "batch", "blocks/s", "wall_ms", "commit_busy", "apply_ms", "batches",
              "q2d_max_ms");
  struct CommitRow {
    int os_threads = 0;
    const char* committer = "serial";
    size_t batch = 1;
    double blocks_per_sec = 0.0;
    double wall_ms = 0.0;
    double commit_busy = 0.0;
    double commit_busy_ms = 0.0;
    double apply_ms = 0.0, persist_ms = 0.0;
    double q2d_mean_ms = 0.0, q2d_max_ms = 0.0;
    uint64_t batches = 0, bytes_appended = 0, nodes = 0;
  };
  std::vector<CommitRow> commit_rows;
  for (int os_threads : {1, 4, 16}) {
    double serial_busy_ms = 0.0;
    for (bool sharded : {false, true}) {
      for (size_t batch : batch_depths) {
        ChainOptions options;
        options.ops_server.port = flags.ops_port;
        options.executor = ExecutorKind::kParallelEvm;
        options.exec.threads = 16;
        options.exec.os_threads = os_threads;
        options.exec.storage.cold_read_ns = 200'000;
        options.exec.storage.warm_read_ns = 500;
        options.queue_depth = 3;
        options.persist = PersistMode::kInMemory;
        options.commit.os_threads = sharded ? os_threads : 1;
        options.commit.batch_blocks = batch;
        ChainRunner runner(options, genesis);
        for (const Block& block : blocks) {
          if (!runner.Submit(block)) {
            std::fprintf(stderr, "FATAL: Submit rejected mid-stream\n");
            return 1;
          }
        }
        ChainReport report = runner.Finish();
        if (HexEncode(report.final_root) != oracle_root) {
          std::fprintf(stderr,
                       "FATAL: committer=%s batch=%zu os_threads=%d final root diverged\n",
                       sharded ? "sharded" : "serial", batch, os_threads);
          return 1;
        }
        const size_t expect_batches =
            (blocks.size() + batch - 1) / batch;  // Drain seals the tail.
        if (report.commit_batches != expect_batches) {
          std::fprintf(stderr, "FATAL: batch=%zu sealed %llu batches, expected %zu\n", batch,
                       static_cast<unsigned long long>(report.commit_batches),
                       expect_batches);
          return 1;
        }
        CommitRow row;
        row.os_threads = os_threads;
        row.committer = sharded ? "sharded" : "serial";
        row.batch = batch;
        row.blocks_per_sec = report.blocks_per_sec();
        row.wall_ms = report.wall_ns / 1e6;
        row.commit_busy = report.commit.busy_fraction();
        row.commit_busy_ms = report.commit.busy_ns / 1e6;
        row.batches = report.commit_batches;
        row.bytes_appended = report.kv_bytes_appended;
        uint64_t q2d_sum = 0, q2d_max = 0;
        for (const BlockDurability& d : report.durability) {
          row.apply_ms += d.apply_ns / 1e6;
          row.persist_ms += d.persist_ns / 1e6;
          row.nodes += d.nodes_written;
          q2d_sum += d.queue_to_durable_ns;
          q2d_max = std::max(q2d_max, d.queue_to_durable_ns);
        }
        if (!report.durability.empty()) {
          row.q2d_mean_ms = static_cast<double>(q2d_sum) / report.durability.size() / 1e6;
        }
        row.q2d_max_ms = q2d_max / 1e6;
        if (!sharded && batch == 1) {
          serial_busy_ms = row.commit_busy_ms;
        }
        commit_rows.push_back(row);
        char speedup[32] = "-";
        if ((sharded || batch != 1) && serial_busy_ms > 0.0 && row.commit_busy_ms > 0.0) {
          std::snprintf(speedup, sizeof(speedup), "%.2fx", serial_busy_ms / row.commit_busy_ms);
        }
        std::printf("%-11d %-10s %-7zu %-11.2f %-9.1f %-12.3f %-10.2f %-9llu %-10.2f %s\n",
                    os_threads, row.committer, row.batch, row.blocks_per_sec, row.wall_ms,
                    row.commit_busy, row.apply_ms,
                    static_cast<unsigned long long>(row.batches), row.q2d_max_ms, speedup);
      }
    }
  }
  std::printf("\n(committer=sharded re-roots the 16 account subtries in parallel; batch>1\n");
  std::printf(" seals several blocks per NodeStore WriteBatch. Roots are per-block and\n");
  std::printf(" bit-identical everywhere; q2d = honest enqueue->durable latency.)\n\n");

  // --- Speculation sweep: cross-block speculative execution on/off. With
  // speculate=true a fourth stage runs block N+1's read phase against block
  // N's uncommitted write overlay while block N executes, paying the 200us
  // cold-storage waits ahead of time; the boundary validation then hands the
  // exec stage pre-validated records. Determinism contract: the final root is
  // bit-identical to the oracle at every point (checked fatally below) and
  // every deterministic report field matches spec-off — speculation is a
  // wall-clock-only lever, which is exactly what this sweep measures.
  std::printf("Cross-block speculation (overlapped commit, cold 200us):\n\n");
  std::printf("%-11s %-6s %-11s %-9s %-9s %-7s %-7s %-9s %-9s %s\n", "os_threads", "spec",
              "blocks/s", "wall_ms", "launched", "clean", "redo", "dropped", "stale", "speedup");
  struct SpecRow {
    int os_threads = 0;
    bool speculate = false;
    double blocks_per_sec = 0.0;
    double wall_ms = 0.0;
    double spec_busy = 0.0, exec_busy = 0.0;
    SpecStats stats;
  };
  std::vector<SpecRow> spec_rows;
  // Wall-clock numbers on a loaded host are noisy; each grid point runs
  // kSpecReps times and reports the best (every repetition root-checked).
  constexpr int kSpecReps = 3;
  for (int os_threads : {1, 4, 16}) {
    double base_bps = 0.0;
    for (bool speculate : {false, true}) {
      SpecRow row;
      for (int rep = 0; rep < kSpecReps; ++rep) {
        ChainOptions options;
        options.ops_server.port = flags.ops_port;
        options.executor = ExecutorKind::kParallelEvm;
        options.exec.threads = 16;
        options.exec.os_threads = os_threads;
        options.exec.storage.cold_read_ns = 200'000;
        options.exec.storage.warm_read_ns = 500;
        options.queue_depth = 3;
        options.overlap_commit = true;
        options.speculate = speculate;
        ChainRunner runner(options, genesis);
        for (const Block& block : blocks) {
          if (!runner.Submit(block)) {
            std::fprintf(stderr, "FATAL: Submit rejected mid-stream\n");
            return 1;
          }
        }
        ChainReport report = runner.Finish();
        if (HexEncode(report.final_root) != oracle_root) {
          std::fprintf(stderr,
                       "FATAL: speculate=%d os_threads=%d final root diverged from serial "
                       "replay\n",
                       speculate, os_threads);
          return 1;
        }
        if (rep > 0 && report.blocks_per_sec() <= row.blocks_per_sec) {
          continue;
        }
        row.os_threads = os_threads;
        row.speculate = speculate;
        row.blocks_per_sec = report.blocks_per_sec();
        row.wall_ms = report.wall_ns / 1e6;
        row.spec_busy = report.spec.busy_fraction();
        row.exec_busy = report.exec.busy_fraction();
        row.stats = report.speculation;
      }
      spec_rows.push_back(row);
      if (!speculate) {
        base_bps = row.blocks_per_sec;
      }
      char speedup[32] = "-";
      if (speculate && base_bps > 0.0) {
        std::snprintf(speedup, sizeof(speedup), "%.2fx", row.blocks_per_sec / base_bps);
      }
      std::printf("%-11d %-6s %-11.2f %-9.1f %-9llu %-7llu %-7llu %-9llu %-9llu %s\n",
                  os_threads, speculate ? "on" : "off", row.blocks_per_sec, row.wall_ms,
                  static_cast<unsigned long long>(row.stats.txs_launched),
                  static_cast<unsigned long long>(row.stats.seeds_clean),
                  static_cast<unsigned long long>(row.stats.seeds_redo_repaired),
                  static_cast<unsigned long long>(row.stats.seeds_dropped),
                  static_cast<unsigned long long>(row.stats.stale_reads), speedup);
    }
  }
  std::printf("\n(spec=on runs block N+1's read phase against block N's uncommitted write\n");
  std::printf(" overlay on a fourth stage; the boundary validates every speculative read\n");
  std::printf(" against committed state and repairs stale records by operation-level redo.\n");
  std::printf(" Roots and all deterministic report fields are bit-identical either way.)\n\n");

  WriteBenchJson("BENCH_commit.json", [&](JsonWriter& w) {
    w.BeginObject();
    w.Field("bench", "chain_throughput_commit");
    w.Field("executor", "parallelevm");
    w.Field("smoke", smoke);
    w.Field("blocks", n_blocks);
    w.Field("transactions_per_block", config.transactions_per_block);
    w.BeginArray("results");
    for (const CommitRow& r : commit_rows) {
      w.BeginObject();
      w.Field("os_threads", r.os_threads);
      w.Field("committer", r.committer);
      w.Field("batch_blocks", r.batch);
      w.Field("blocks_per_sec", r.blocks_per_sec, 3);
      w.Field("wall_ms", r.wall_ms, 3);
      w.Field("commit_busy_frac", r.commit_busy);
      w.Field("commit_busy_ms", r.commit_busy_ms, 3);
      w.Field("apply_ms", r.apply_ms, 3);
      w.Field("persist_ms", r.persist_ms, 3);
      w.Field("commit_batches", r.batches);
      w.Field("queue_to_durable_mean_ms", r.q2d_mean_ms, 3);
      w.Field("queue_to_durable_max_ms", r.q2d_max_ms, 3);
      w.Field("bytes_appended", r.bytes_appended);
      w.Field("nodes_written", r.nodes);
      w.EndObject();
    }
    w.EndArray();
    // Commit-stage busy-time ratio serial/sharded at batch 1, keyed by
    // os_threads — the acceptance number for the shard-parallel re-root.
    w.BeginObject("commit_busy_speedup");
    for (int os_threads : {1, 4, 16}) {
      double serial_ms = 0.0, sharded_ms = 0.0;
      for (const CommitRow& r : commit_rows) {
        if (r.os_threads == os_threads && r.batch == 1) {
          (std::string_view(r.committer) == "serial" ? serial_ms : sharded_ms) =
              r.commit_busy_ms;
        }
      }
      char key[16];
      std::snprintf(key, sizeof(key), "%d", os_threads);
      w.Field(key, sharded_ms > 0.0 ? serial_ms / sharded_ms : 0.0, 3);
    }
    w.EndObject();
    w.Field("final_root", oracle_root);
    w.EndObject();
  });

  std::printf("\n");
  WriteBenchJson("BENCH_kv.json", [&](JsonWriter& w) {
    w.BeginObject();
    w.Field("bench", "chain_throughput_persistence");
    w.Field("executor", "parallelevm");
    w.Field("smoke", smoke);
    w.Field("blocks", n_blocks);
    w.Field("transactions_per_block", config.transactions_per_block);
    w.BeginArray("results");
    for (const KvRow& r : kv_rows) {
      w.BeginObject();
      w.Field("store", r.store);
      w.Field("fsync", r.fsync);
      w.Field("blocks_per_sec", r.blocks_per_sec, 3);
      w.Field("wall_ms", r.wall_ms, 3);
      w.Field("commit_busy_frac", r.commit_busy);
      w.Field("bytes_appended", r.bytes_appended);
      w.Field("fsyncs", r.fsyncs);
      w.Field("nodes_written", r.nodes);
      w.Field("apply_ms", r.apply_ms, 3);
      w.Field("persist_ms", r.persist_ms, 3);
      w.Field("sync_ms", r.sync_ms, 3);
      w.EndObject();
    }
    w.EndArray();
    w.Field("final_root", oracle_root);
    w.EndObject();
  });

  WriteBenchJson("BENCH_chain.json", [&](JsonWriter& w) {
    w.BeginObject();
    w.Field("bench", "chain_throughput");
    w.Field("executor", "parallelevm");
    w.Field("smoke", smoke);
    w.Field("blocks", n_blocks);
    w.Field("transactions_per_block", config.transactions_per_block);
    w.Field("cold_read_ns", 200000);
    w.BeginArray("results");
    for (const Row& r : rows) {
      w.BeginObject();
      w.Field("os_threads", r.os_threads);
      w.Field("overlap_commit", r.overlap);
      w.Field("blocks_per_sec", r.blocks_per_sec, 3);
      w.Field("wall_ms", r.wall_ms, 3);
      w.Field("warm_busy_frac", r.warm_busy);
      w.Field("exec_busy_frac", r.exec_busy);
      w.Field("commit_busy_frac", r.commit_busy);
      w.Field("max_exec_queue", r.max_exec_queue);
      w.Field("max_commit_queue", r.max_commit_queue);
      w.EndObject();
    }
    w.EndArray();
    w.BeginObject("overlap_speedup");
    for (size_t i = 0; i + 1 < rows.size(); i += 2) {
      char key[16];
      std::snprintf(key, sizeof(key), "%d", rows[i].os_threads);
      double serial = rows[i].blocks_per_sec;
      w.Field(key, serial > 0.0 ? rows[i + 1].blocks_per_sec / serial : 0.0, 3);
    }
    w.EndObject();
    w.BeginArray("prefetch_sweep");
    for (const WarmRow& r : warm_rows) {
      w.BeginObject();
      w.Field("prefetch_depth", r.depth);
      w.Field("blocks_per_sec", r.blocks_per_sec, 3);
      w.Field("wall_ms", r.wall_ms, 3);
      w.Field("warm_busy_frac", r.warm_busy);
      w.Field("prefetch_hits", r.hits);
      w.Field("prefetch_misses", r.misses);
      w.EndObject();
    }
    w.EndArray();
    w.Field("final_root", oracle_root);
    w.EndObject();
  });

  WriteBenchJson("BENCH_spec.json", [&](JsonWriter& w) {
    w.BeginObject();
    w.Field("bench", "chain_throughput_speculation");
    w.Field("executor", "parallelevm");
    w.Field("smoke", smoke);
    w.Field("blocks", n_blocks);
    w.Field("transactions_per_block", config.transactions_per_block);
    w.Field("cold_read_ns", 200000);
    w.BeginArray("results");
    for (const SpecRow& r : spec_rows) {
      w.BeginObject();
      w.Field("os_threads", r.os_threads);
      w.Field("speculate", r.speculate);
      w.Field("blocks_per_sec", r.blocks_per_sec, 3);
      w.Field("wall_ms", r.wall_ms, 3);
      w.Field("spec_busy_frac", r.spec_busy);
      w.Field("exec_busy_frac", r.exec_busy);
      w.Field("blocks_speculated", r.stats.blocks_speculated);
      w.Field("txs_launched", r.stats.txs_launched);
      w.Field("txs_held", r.stats.txs_held);
      w.Field("seeds_clean", r.stats.seeds_clean);
      w.Field("seeds_redo_repaired", r.stats.seeds_redo_repaired);
      w.Field("seeds_dropped", r.stats.seeds_dropped);
      w.Field("stale_reads", r.stats.stale_reads);
      w.Field("boundary_validate_ms", r.stats.boundary_validate_wall_ns / 1e6, 3);
      w.EndObject();
    }
    w.EndArray();
    // blocks/s ratio spec-on / spec-off, keyed by os_threads — the
    // acceptance number for cross-block speculation.
    w.BeginObject("spec_speedup");
    for (int os_threads : {1, 4, 16}) {
      double off_bps = 0.0, on_bps = 0.0;
      for (const SpecRow& r : spec_rows) {
        if (r.os_threads == os_threads) {
          (r.speculate ? on_bps : off_bps) = r.blocks_per_sec;
        }
      }
      char key[16];
      std::snprintf(key, sizeof(key), "%d", os_threads);
      w.Field(key, off_bps > 0.0 ? on_bps / off_bps : 0.0, 3);
    }
    w.EndObject();
    w.Field("final_root", oracle_root);
    w.EndObject();
  });

  return WriteTelemetryArtifacts(flags) ? 0 : 1;
}
