// Reproduces Figure 10: speedup as a function of the number of worker
// threads. Paper shape: ParallelEVM scales best; Block-STM and OCC saturate
// early under real-workload contention; 2PL stays flat near 1x.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 140000;
  config.transactions_per_block = 200;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, 4);

  std::printf("Figure 10: impact of the number of threads (speedup vs serial)\n\n");
  std::printf("%-8s %-8s %-8s %-10s %s\n", "threads", "2pl", "occ", "block-stm", "parallelevm");
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    ExecOptions options;
    options.threads = threads;
    std::vector<AlgoResult> results = CompareAlgorithms(genesis, blocks, options);
    std::printf("%-8d %-8.2f %-8.2f %-10.2f %.2f\n", threads, results[1].speedup,
                results[2].speedup, results[3].speedup, results[4].speedup);
  }
  std::printf("\n(paper at 16 threads: 2PL 1.26, OCC 2.49, Block-STM 2.82, ParallelEVM 4.28)\n");
  return 0;
}
