// Ablations for the design choices DESIGN.md §6 calls out:
//   (a) constant folding in the SSA log — the log-size lever (§6.4);
//   (b) the redo phase itself — ParallelEVM with redo disabled degenerates
//       to OCC-plus-logging-overhead, quantifying what operation-level
//       conflict resolution buys;
//   (c) a redo effort budget — abort repairs that would re-execute more than
//       K entries (a proposed engineering bound; shows the tail is short).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 140000;
  config.transactions_per_block = 200;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, 4);

  // --- (a) Constant folding ablation: log sizes with folding on and off. ---
  {
    uint64_t folded = 0;
    uint64_t unfolded = 0;
    uint64_t instructions = 0;
    WorldState state = genesis;
    for (const Block& block : blocks) {
      for (const Transaction& tx : block.transactions) {
        {
          StateView view(state);
          SsaBuilder builder;
          Receipt r = ApplyTransaction(view, block.context, tx, &builder);
          folded += builder.TakeLog().size();
          instructions += r.stats.instructions;
        }
        {
          StateView view(state);
          SsaBuilder::Options opts;
          opts.fold_constants = false;
          SsaBuilder builder(opts);
          ApplyTransaction(view, block.context, tx, &builder);
          unfolded += builder.TakeLog().size();
          state.Apply(view.write_set());
        }
      }
    }
    std::printf("Ablation (a): constant folding in the SSA operation log\n");
    std::printf("  with folding:    %8llu entries (%.1f%% of %llu instructions)\n",
                static_cast<unsigned long long>(folded),
                100.0 * static_cast<double>(folded) / static_cast<double>(instructions),
                static_cast<unsigned long long>(instructions));
    std::printf("  without folding: %8llu entries (%.1f%%) -> folding removes %.0f%% of "
                "the log\n\n",
                static_cast<unsigned long long>(unfolded),
                100.0 * static_cast<double>(unfolded) / static_cast<double>(instructions),
                100.0 * (1.0 - static_cast<double>(folded) / static_cast<double>(unfolded)));
  }

  // --- (b) Redo ablation: ParallelEVM vs OCC (ParallelEVM minus redo). ---
  {
    ExecOptions options;
    options.threads = 16;
    std::vector<AlgoResult> results = CompareAlgorithms(genesis, blocks, options);
    double occ = results[2].speedup;
    double pevm = results[4].speedup;
    std::printf("Ablation (b): the redo phase itself\n");
    std::printf("  OCC (= transaction-level abort & re-execute): %.2fx\n", occ);
    std::printf("  ParallelEVM (operation-level redo):           %.2fx\n", pevm);
    std::printf("  -> the redo phase contributes a %.2fx factor on this workload\n\n",
                pevm / occ);
  }

  // --- (c) Redo effort budget: how large do repairs actually get? ---
  {
    WorldState state = genesis;
    std::vector<size_t> repair_sizes;
    for (const Block& block : blocks) {
      std::vector<std::tuple<ReadSet, WriteSet, TxLog, bool>> specs;
      for (const Transaction& tx : block.transactions) {
        StateView view(state);
        SsaBuilder builder;
        Receipt r = ApplyTransaction(view, block.context, tx, &builder);
        if (!r.valid) {
          builder.MarkNotRedoable();
        }
        specs.emplace_back(view.read_set(), view.write_set(), builder.TakeLog(), r.valid);
      }
      for (size_t i = 0; i < specs.size(); ++i) {
        auto& [reads, writes, log, valid] = specs[i];
        ConflictMap conflicts;
        for (const auto& [key, observed] : reads) {
          U256 current = state.Get(key);
          if (current != observed) {
            conflicts.emplace(key, current);
          }
        }
        if (conflicts.empty()) {
          if (valid) {
            state.Apply(writes);
          }
          continue;
        }
        RedoResult redo =
            RunRedo(log, conflicts, [&](const StateKey& k) { return state.Get(k); });
        if (redo.success) {
          repair_sizes.push_back(redo.reexecuted);
          state.Apply(redo.write_set);
        } else {
          StateView view(state);
          Receipt r = ApplyTransaction(view, block.context, block.transactions[i]);
          if (r.valid) {
            state.Apply(view.write_set());
          }
        }
      }
    }
    std::sort(repair_sizes.begin(), repair_sizes.end());
    auto pct = [&](double p) {
      return repair_sizes.empty()
                 ? size_t{0}
                 : repair_sizes[static_cast<size_t>(p * (repair_sizes.size() - 1))];
    };
    std::printf("Ablation (c): redo effort distribution over %zu repairs\n", repair_sizes.size());
    std::printf("  p50=%zu entries, p90=%zu, p99=%zu, max=%zu\n", pct(0.5), pct(0.9), pct(0.99),
                repair_sizes.empty() ? 0 : repair_sizes.back());
    for (size_t budget : {8, 16, 32, 64}) {
      size_t covered = 0;
      for (size_t s : repair_sizes) {
        covered += s <= budget ? 1 : 0;
      }
      std::printf("  a budget of %3zu entries would cover %.1f%% of repairs\n", budget,
                  repair_sizes.empty() ? 0.0
                                       : 100.0 * static_cast<double>(covered) /
                                             static_cast<double>(repair_sizes.size()));
    }
  }
  return 0;
}
