// Reproduces Figure 11: impact of the conflicting-transaction ratio on
// ERC-20 blocks (§3.2 workload: transferFrom draining a shared owner).
// Paper shape: all optimistic algorithms match at 0% contention; as the
// ratio grows, OCC and Block-STM fall toward 1x (whole-transaction
// re-execution) while ParallelEVM degrades only mildly (operation-level
// redo).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 11;
  config.users = 2000;
  config.tokens = 4;
  config.pools = 2;

  ExecOptions options;
  options.threads = 16;

  std::printf("Figure 11: impact of the conflicting transaction ratio\n");
  std::printf("(blocks of 200 ERC-20 transferFrom transactions; speedup vs serial)\n\n");
  std::printf("%-8s %-8s %-8s %-10s %s\n", "ratio", "2pl", "occ", "block-stm", "parallelevm");
  for (double ratio : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    WorkloadGenerator gen(config);  // Fresh nonces per ratio.
    WorldState genesis = gen.MakeGenesis();
    std::vector<Block> blocks;
    blocks.push_back(gen.MakeErc20ConflictBlock(200, ratio));
    std::vector<AlgoResult> results = CompareAlgorithms(genesis, blocks, options);
    std::printf("%3.0f%%     %-8.2f %-8.2f %-10.2f %.2f\n", ratio * 100, results[1].speedup,
                results[2].speedup, results[3].speedup, results[4].speedup);
    if (std::getenv("PEVM_BENCH_DEBUG") != nullptr) {
      std::printf("  [debug] bstm: conflicts=%d full_reexec=%d | pevm: conflicts=%d redo_ok=%d\n",
                  results[3].report.conflicts, results[3].report.full_reexecutions,
                  results[4].report.conflicts, results[4].report.redo_success);
    }
  }
  return 0;
}
