// Reproduces Figure 3: the hot-spot distributions that motivate
// operation-level concurrency control (§3.1). The paper measured Ethereum
// between 2022-01-01 and 2022-07-01:
//   * 0.1% of ~10M contracts receive 76% of all invocations,
//   * 0.1% of ~200M storage slots receive 62% of all accesses,
//   * the top-10 contracts take ~25% of invocations.
// We sample the same populations from the Zipf laws the workload generator
// uses (contracts s=1.1, slots s=1.0) and report the resulting shares, plus
// the per-block concentration of the generated workload itself.
#include <cstdio>
#include <random>
#include <unordered_map>

#include "bench/bench_util.h"
#include "src/support/zipf.h"

namespace {

struct Shares {
  double top_permille = 0;  // Share of the hottest 0.1%.
  double top10 = 0;         // Share of the 10 hottest items.
};

Shares SampleShares(uint64_t population, double s, int samples, std::mt19937_64& rng) {
  pevm::ZipfDistribution zipf(population, s);
  uint64_t permille_cut = population / 1000;
  int in_permille = 0;
  int in_top10 = 0;
  for (int i = 0; i < samples; ++i) {
    uint64_t rank = zipf(rng);
    if (rank <= permille_cut) {
      ++in_permille;
    }
    if (rank <= 10) {
      ++in_top10;
    }
  }
  return {100.0 * in_permille / samples, 100.0 * in_top10 / samples};
}

}  // namespace

int main() {
  using namespace pevm;
  std::mt19937_64 rng(2022);

  std::printf("Figure 3: hot-spot distributions (mainnet scale, sampled)\n\n");
  Shares contracts = SampleShares(10'000'000, 1.1, 2'000'000, rng);
  std::printf("(a) contracts: top 0.1%% of 10M contracts -> %.1f%% of invocations (paper: 76%%)\n",
              contracts.top_permille);
  std::printf("               top 10 contracts          -> %.1f%% of invocations (paper: ~25%%)\n",
              contracts.top10);
  Shares slots = SampleShares(200'000'000, 1.0, 4'000'000, rng);
  std::printf("(b) slots:     top 0.1%% of 200M slots    -> %.1f%% of accesses   (paper: 62%%)\n\n",
              slots.top_permille);

  // Per-block concentration of the generated workload (what the executors
  // actually face).
  WorkloadConfig config;
  config.seed = 7;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::unordered_map<StateKey, int, StateKeyHash> access_counts;
  uint64_t total_accesses = 0;
  for (int b = 0; b < 5; ++b) {
    Block block = gen.MakeBlock();
    WorldState state = genesis;
    for (const Transaction& tx : block.transactions) {
      StateView view(state);
      ApplyTransaction(view, block.context, tx);
      for (const auto& [key, value] : view.read_set()) {
        ++access_counts[key];
        ++total_accesses;
      }
      state.Apply(view.write_set());
    }
  }
  std::vector<int> counts;
  counts.reserve(access_counts.size());
  for (const auto& [key, c] : access_counts) {
    counts.push_back(c);
  }
  std::sort(counts.rbegin(), counts.rend());
  int top10_accesses = 0;
  for (size_t i = 0; i < 10 && i < counts.size(); ++i) {
    top10_accesses += counts[i];
  }
  std::printf("generated blocks: %zu distinct keys, %llu reads; hottest 10 keys take %.1f%%\n",
              counts.size(), static_cast<unsigned long long>(total_accesses),
              100.0 * top10_accesses / static_cast<double>(total_accesses));
  return 0;
}
