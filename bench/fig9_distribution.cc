// Reproduces Figure 9: the distribution of ParallelEVM's per-block speedup.
// Paper: most blocks accelerate 2-7x; a small tail (~0.88%) falls below 1x
// (blocks dominated by time-consuming transactions that fail the redo
// phase). Block-to-block diversity comes from varying the transaction mix,
// contention and failing-transaction rate per block, mirroring how mainnet
// blocks differ.
#include <cstdio>
#include <random>

#include "bench/bench_util.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 900;
  config.transactions_per_block = 160;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();

  ExecOptions options;
  options.threads = 16;
  SerialExecutor serial(options);
  ParallelEvmExecutor pevm(options);

  const int kBlocks = 120;
  std::mt19937_64 mix_rng(31337);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  std::vector<double> speedups;
  WorldState s_serial = genesis;
  WorldState s_pevm = genesis;
  std::mt19937_64 bot_rng(777);
  uint64_t bot_nonce = 0;
  for (int b = 0; b < kBlocks; ++b) {
    // Vary the block's character: DEX-heavy, transfer-heavy, quiet,
    // failure-laden, and occasional single-bot blocks (one sender spamming a
    // same-nonce chain, which no concurrency control can parallelize) all
    // occur on mainnet.
    double amm = 0.05 + 0.45 * uniform(mix_rng);
    double erc20 = 0.20 + 0.35 * uniform(mix_rng);
    double erc20_from = 0.05 + 0.15 * uniform(mix_rng);
    double crowdfund = 0.10 * uniform(mix_rng);
    double failing = uniform(mix_rng) < 0.1 ? 0.15 * uniform(mix_rng) : 0.01;
    gen.SetMix(erc20, erc20_from, amm, crowdfund, failing);
    Block block = gen.MakeBlock();
    double bot_roll = uniform(mix_rng);
    if (bot_roll < 0.15) {
      // Bot block (inscription/spam era): one sender fills the block with a
      // consecutive-nonce chain. Speculation never sees the right nonce, so
      // every transaction after the first falls back to serial commit-path
      // re-execution — the kind of block that drags the distribution down.
      // The bot is the coldest user in the Zipf tail; its nonce is tracked
      // locally across bot blocks.
      Address bot = gen.UserAddress(gen.config().users - 1);
      Block bot_block;
      bot_block.context = block.context;
      // Full bot blocks (rare) land below 1x; partial ones (a bot chain
      // sharing the block with normal traffic) land in the 1-3x band.
      bool full_bot = bot_roll < 0.008;
      size_t chain = full_bot ? 100 + bot_rng() % 60 : 40 + bot_rng() % 40;
      for (size_t i = 0; i < chain; ++i) {
        Transaction tx;
        tx.from = bot;
        tx.to = bot;
        tx.value = U256(1);
        tx.gas_limit = 50'000;
        tx.gas_price = U256(1'000'000'000);
        tx.nonce = bot_nonce++;
        bot_block.transactions.push_back(tx);
      }
      if (!full_bot) {
        size_t keep = block.transactions.size() / 2;
        bot_block.transactions.insert(bot_block.transactions.end(),
                                      block.transactions.begin(),
                                      block.transactions.begin() + static_cast<long>(keep));
      }
      block = std::move(bot_block);
    }
    uint64_t t_serial = serial.Execute(block, s_serial).makespan_ns;
    uint64_t t_pevm = pevm.Execute(block, s_pevm).makespan_ns;
    if (s_serial.Digest() != s_pevm.Digest()) {
      std::fprintf(stderr, "FATAL: divergence at block %d\n", b);
      return 1;
    }
    speedups.push_back(static_cast<double>(t_serial) / static_cast<double>(t_pevm));
  }

  // Histogram like the paper's figure.
  std::printf("Figure 9: ParallelEVM speedup distribution over %d blocks\n\n", kBlocks);
  const double edges[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 1e9};
  const char* labels[] = {"<1x ", "1-2x", "2-3x", "3-4x", "4-5x", "5-6x", "6-7x", "7-8x", ">8x "};
  double sum = 0;
  double min = 1e18;
  double max = 0;
  for (size_t bin = 0; bin + 1 < sizeof(edges) / sizeof(edges[0]); ++bin) {
    int count = 0;
    for (double s : speedups) {
      if (s >= edges[bin] && s < edges[bin + 1]) {
        ++count;
      }
    }
    double pct = 100.0 * count / static_cast<double>(speedups.size());
    std::printf("%s %5.1f%%  |", labels[bin], pct);
    for (int i = 0; i < static_cast<int>(pct); ++i) {
      std::printf("#");
    }
    std::printf("\n");
  }
  for (double s : speedups) {
    sum += s;
    min = std::min(min, s);
    max = std::max(max, s);
  }
  std::printf("\nmean %.2fx (paper mean: 4.28x), min %.2fx, max %.2fx, below-1x %.2f%% "
              "(paper: 0.88%%)\n",
              sum / static_cast<double>(speedups.size()), min, max,
              100.0 * static_cast<double>(std::count_if(speedups.begin(), speedups.end(),
                                                        [](double s) { return s < 1.0; })) /
                  static_cast<double>(speedups.size()));
  return 0;
}
