// Reproduces the §6.3 pre-execution experiment (Forerunner-style): SSA
// operation logs are generated speculatively during transaction
// dissemination, so the read phase leaves the critical path and transactions
// enter validation directly, with the redo phase reconciling any stale
// pre-execution reads. Paper: 8.81x average speedup.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 140000;
  config.transactions_per_block = 200;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, 10);

  ExecOptions options;
  options.threads = 16;

  uint64_t serial_total = 0;
  uint64_t digest = 0;
  {
    SerialExecutor serial(options);
    WorldState state = genesis;
    for (const Block& b : blocks) {
      serial_total += serial.Execute(b, state).makespan_ns;
    }
    digest = state.Digest();
  }

  std::printf("Pre-execution optimization (paper section 6.3)\n\n");
  std::printf("%-24s %-10s %s\n", "configuration", "speedup", "paper");
  struct Row {
    const char* name;
    bool preexec;
    const char* paper;
  };
  Row rows[] = {
      {"parallelevm", false, "4.28x"},
      {"parallelevm+preexec", true, "8.81x"},
  };
  for (const Row& row : rows) {
    ParallelEvmExecutor exec(options, row.preexec);
    WorldState state = genesis;
    uint64_t total = 0;
    for (const Block& b : blocks) {
      total += exec.Execute(b, state).makespan_ns;
    }
    if (state.Digest() != digest) {
      std::fprintf(stderr, "FATAL: %s diverged\n", row.name);
      return 1;
    }
    std::printf("%-24s %5.2fx     %s\n", row.name,
                static_cast<double>(serial_total) / static_cast<double>(total), row.paper);
  }
  return 0;
}
