// Reproduces Table 2: speedups with state prefetching (warm-cache two-run
// methodology, §6.3). All speedups are against the *cold* serial run.
// Paper: Prefetch 2.89x | 2PL+ 2.23x | OCC+ 3.25x | Block-STM+ 5.52x |
//        ParallelEVM+ 7.11x.
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace pevm;
  WorkloadConfig config;
  config.seed = 140000;
  config.transactions_per_block = 200;
  WorkloadGenerator gen(config);
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks = MakeBlocks(gen, 10);

  ExecOptions cold;
  cold.threads = 16;
  ExecOptions warm = cold;
  warm.prefetch = true;

  // Cold serial baseline.
  uint64_t serial_cold = 0;
  uint64_t digest = 0;
  {
    SerialExecutor serial(cold);
    WorldState state = genesis;
    for (const Block& b : blocks) {
      serial_cold += serial.Execute(b, state).makespan_ns;
    }
    digest = state.Digest();
  }

  std::vector<std::unique_ptr<Executor>> algos;
  algos.push_back(std::make_unique<SerialExecutor>(warm));  // "Prefetch" row.
  algos.push_back(std::make_unique<TwoPhaseLockingExecutor>(warm));
  algos.push_back(std::make_unique<OccExecutor>(warm));
  algos.push_back(std::make_unique<BlockStmExecutor>(warm));
  algos.push_back(std::make_unique<ParallelEvmExecutor>(warm));

  std::printf("Table 2: speedups with state prefetching (vs cold serial)\n\n");
  std::printf("%-16s %-10s %s\n", "algorithm", "speedup", "paper");
  const char* names[] = {"prefetch", "2pl+", "occ+", "block-stm+", "parallelevm+"};
  const char* paper[] = {"2.89x", "2.23x", "3.25x", "5.52x", "7.11x"};
  for (size_t i = 0; i < algos.size(); ++i) {
    WorldState state = genesis;
    uint64_t total = 0;
    for (const Block& b : blocks) {
      total += algos[i]->Execute(b, state).makespan_ns;
    }
    if (state.Digest() != digest) {
      std::fprintf(stderr, "FATAL: %s diverged\n", names[i]);
      return 1;
    }
    std::printf("%-16s %5.2fx     %s\n", names[i],
                static_cast<double>(serial_cold) / static_cast<double>(total), paper[i]);
  }
  return 0;
}
