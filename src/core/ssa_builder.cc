#include "src/core/ssa_builder.h"

#include <algorithm>
#include <cassert>

namespace pevm {
namespace {

constexpr int64_t kExpByteGas = 50;

}  // namespace

SsaBuilder::SsaBuilder(const Options& options) : options_(options) {
  // Base frame for the transaction envelope (nonce/fee events fire before the
  // outermost OnFrameEnter).
  frames_.emplace_back();
}

TxLog SsaBuilder::TakeLog() { return std::move(log_); }

Lsn SsaBuilder::Append(OpLogEntry entry) {
  Lsn lsn = static_cast<Lsn>(log_.entries.size());
  entry.lsn = lsn;
  log_.dug.emplace_back();
  auto wire = [&](Lsn def) {
    assert(!IsPending(def) && "pending sentinel escaped into the log");
    if (def != kNullLsn) {
      log_.dug[static_cast<size_t>(def)].push_back(lsn);
    }
  };
  for (Lsn def : entry.def_stack) {
    wire(def);
  }
  wire(entry.def_storage);
  wire(entry.prior_def);
  for (const MemDep& dep : entry.def_memory) {
    wire(dep.lsn);
  }
  log_.entries.push_back(std::move(entry));
  return lsn;
}

Lsn SsaBuilder::PopDef() {
  ShadowFrame& f = frame();
  if (f.stack.empty()) {
    // Shadow/actual stack divergence would be a builder bug; the interpreter
    // has already validated stack depth.
    assert(false && "shadow stack underflow");
    return kNullLsn;
  }
  Lsn lsn = f.stack.back();
  f.stack.pop_back();
  return lsn;
}

// --- Deferred-expression machinery (superinstruction logging, §4.6). ---

Lsn SsaBuilder::NewPending(std::shared_ptr<const SuperExpr> expr, std::vector<U256> values,
                           std::vector<Lsn> defs, const U256& result) {
  pendings_.push_back(
      {std::move(expr), std::move(values), std::move(defs), result, kNullLsn});
  return PendingLsn(pendings_.size() - 1);
}

Lsn SsaBuilder::Strict(Lsn d) {
  if (!IsPending(d)) {
    return d;
  }
  PendingExpr& p = pendings_[PendingIndex(d)];
  if (p.materialized == kNullLsn) {
    OpLogEntry e;
    e.op = Opcode::kSuperOp;
    e.operands = p.input_values;
    e.def_stack = p.input_defs;
    e.super = p.expr;
    e.result = p.result;
    p.materialized = Append(std::move(e));
  }
  return p.materialized;
}

void SsaBuilder::WireValue(OpLogEntry& e, size_t def_index, Lsn d) {
  if (IsPending(d)) {
    PendingExpr& p = pendings_[PendingIndex(d)];
    if (p.materialized == kNullLsn) {
      // First escape, and the consumer can absorb it: one fat entry instead
      // of a kSuperOp entry plus a thin reference.
      e.super = p.expr;
      e.operands.insert(e.operands.end(), p.input_values.begin(), p.input_values.end());
      e.def_stack.insert(e.def_stack.end(), p.input_defs.begin(), p.input_defs.end());
      return;
    }
  }
  e.def_stack[def_index] = Strict(d);
}

bool SsaBuilder::DeferPureOp(Opcode op, std::span<const U256> operands,
                             const std::vector<Lsn>& defs, const U256& result) {
  // Caps keep embedded programs small enough for EvalSuperExpr's fixed-size
  // redo stack to stay cheap and for pathological DUP-heavy dataflow not to
  // duplicate subtrees without bound.
  constexpr size_t kMaxSteps = 48;
  auto expr = std::make_shared<SuperExpr>();
  std::vector<U256> values;
  std::vector<Lsn> in_defs;
  auto add_input = [&](const U256& v, Lsn d) -> int {
    if (d != kNullLsn) {
      for (size_t i = 0; i < in_defs.size(); ++i) {
        if (in_defs[i] == d) {
          return static_cast<int>(i);
        }
      }
    }
    if (values.size() >= kMaxSuperInputs) {
      return -1;
    }
    values.push_back(v);
    in_defs.push_back(d);
    return static_cast<int>(values.size() - 1);
  };
  auto push_input_step = [&](int idx) {
    SuperStep s;
    s.kind = SuperStep::Kind::kInput;
    s.input = static_cast<uint8_t>(idx);
    expr->steps.push_back(std::move(s));
  };
  // Operands are emitted deepest-first so EvalSuperExpr pops them back in
  // EvalPure's top-first order (see eval.cc).
  for (size_t i = operands.size(); i-- > 0;) {
    Lsn d = defs[i];
    if (d == kNullLsn) {
      SuperStep s;
      s.kind = SuperStep::Kind::kConst;
      s.imm = operands[i];
      expr->steps.push_back(std::move(s));
      continue;
    }
    if (IsPending(d) && pendings_[PendingIndex(d)].materialized == kNullLsn) {
      // Compose: inline the operand's deferred expression, remapping its
      // local inputs into this expression's input list.
      const PendingExpr& p = pendings_[PendingIndex(d)];
      if (expr->steps.size() + p.expr->steps.size() > kMaxSteps) {
        return false;
      }
      for (const SuperStep& s : p.expr->steps) {
        if (s.kind == SuperStep::Kind::kInput) {
          int idx = add_input(p.input_values[s.input], p.input_defs[s.input]);
          if (idx < 0) {
            return false;
          }
          push_input_step(idx);
        } else {
          expr->steps.push_back(s);
        }
      }
      continue;
    }
    int idx = add_input(operands[i], Strict(d));
    if (idx < 0) {
      return false;
    }
    push_input_step(idx);
  }
  if (expr->steps.size() >= kMaxSteps) {
    return false;
  }
  SuperStep op_step;
  op_step.kind = SuperStep::Kind::kOp;
  op_step.op = op;
  op_step.arity = static_cast<uint8_t>(operands.size());
  expr->steps.push_back(std::move(op_step));
  expr->input_depths.resize(values.size());  // Local indices; Eval never reads these.
  PushDef(NewPending(std::move(expr), std::move(values), std::move(in_defs), result));
  return true;
}

void SsaBuilder::GuardEq(const U256& value, Lsn def) {
  if (def == kNullLsn) {
    return;
  }
  OpLogEntry e;
  e.op = Opcode::kAssertEq;
  e.operands = {value};
  e.def_stack = {kNullLsn};
  WireValue(e, 0, def);
  Append(std::move(e));
}

void SsaBuilder::GuardGe(const U256& lhs, Lsn lhs_def, const U256& rhs, Lsn rhs_def) {
  rhs_def = Strict(rhs_def);
  if (lhs_def == kNullLsn && rhs_def == kNullLsn) {
    return;
  }
  OpLogEntry e;
  e.op = Opcode::kAssertGe;
  e.operands = {lhs, rhs};
  e.def_stack = {kNullLsn, rhs_def};
  WireValue(e, 0, lhs_def);
  Append(std::move(e));
}

Lsn SsaBuilder::ReadStateKey(const StateKey& key, const U256& observed) {
  auto wit = log_.latest_writes.find(key);
  if (wit != log_.latest_writes.end()) {
    return wit->second;  // Type II: reads an in-transaction write.
  }
  auto rit = log_.direct_reads.find(key);
  if (rit != log_.direct_reads.end()) {
    return rit->second.front();  // Reuse the existing committed-read source.
  }
  OpLogEntry e;
  e.op = Opcode::kCommittedRead;
  e.has_key = true;
  e.key = key;
  e.result = observed;
  Lsn lsn = Append(std::move(e));
  log_.direct_reads[key].push_back(lsn);
  return lsn;
}

// --- Shadow-byte helpers. ---

std::vector<SsaBuilder::ByteDef> SsaBuilder::Slice(const std::vector<ByteDef>& cells,
                                                   uint64_t off, uint64_t len) {
  std::vector<ByteDef> out(len);
  for (uint64_t i = 0; i < len; ++i) {
    uint64_t idx = off + i;
    if (idx >= off && idx < cells.size()) {  // idx >= off guards wrap-around.
      out[i] = cells[idx];
    }
  }
  return out;
}

bool SsaBuilder::AllConstant(const std::vector<ByteDef>& cells) {
  return std::all_of(cells.begin(), cells.end(),
                     [](const ByteDef& c) { return c.lsn == kNullLsn; });
}

std::vector<MemDep> SsaBuilder::CollectDeps(const std::vector<ByteDef>& cells) {
  std::vector<MemDep> deps;
  size_t i = 0;
  while (i < cells.size()) {
    if (cells[i].lsn == kNullLsn) {
      ++i;
      continue;
    }
    MemDep dep;
    dep.start = static_cast<uint32_t>(i);
    dep.lsn = cells[i].lsn;
    dep.offset = cells[i].offset;
    size_t j = i + 1;
    while (j < cells.size() && cells[j].lsn == dep.lsn &&
           cells[j].offset == dep.offset + (j - i)) {
      ++j;
    }
    dep.len = static_cast<uint32_t>(j - i);
    deps.push_back(dep);
    i = j;
  }
  return deps;
}

void SsaBuilder::WriteShadowMemory(uint64_t dst, const std::vector<ByteDef>& cells) {
  std::vector<ByteDef>& mem = frame().memory;
  if (mem.size() < dst + cells.size()) {
    mem.resize(dst + cells.size());
  }
  std::copy(cells.begin(), cells.end(), mem.begin() + static_cast<long>(dst));
}

void SsaBuilder::WriteShadowMemoryConstant(uint64_t dst, uint64_t len) {
  std::vector<ByteDef>& mem = frame().memory;
  if (mem.size() < dst + len) {
    mem.resize(dst + len);
  }
  std::fill(mem.begin() + static_cast<long>(dst), mem.begin() + static_cast<long>(dst + len),
            ByteDef{});
}

// --- Frame lifecycle. ---

void SsaBuilder::OnFrameEnter(const Message&) {
  ShadowFrame f;
  if (!pending_calls_.empty()) {
    f.calldata = std::move(pending_calls_.back().input_provenance);
    f.value_def = pending_calls_.back().value_def;
    pending_calls_.back().input_provenance.clear();
  }
  frames_.push_back(std::move(f));
}

void SsaBuilder::OnFrameExit(EvmStatus status, uint64_t out_off, BytesView output) {
  std::vector<ByteDef> provenance = Slice(frame().memory, out_off, output.size());
  if (frames_.size() == 2 && status == EvmStatus::kSuccess && !output.empty()) {
    // Outermost frame: this output becomes the receipt's. Record it with its
    // provenance so a redo can rebuild a storage-dependent output from the
    // patched entries (TxLog::return_bytes docs).
    log_.return_bytes.assign(output.begin(), output.end());
    log_.return_deps = CollectDeps(provenance);
    log_.has_return = true;
  }
  frames_.pop_back();
  if (frames_.empty()) {
    frames_.emplace_back();  // Defensive; the base frame should remain.
  }
  frame().returndata = std::move(provenance);
  if (status != EvmStatus::kSuccess) {
    // A reverted or halted frame leaves latest_writes/def chains that no
    // longer reflect the committed effects; fall back to full re-execution.
    log_.redoable = false;
  }
}

// --- Stack shape. ---

void SsaBuilder::OnPush() { PushDef(kNullLsn); }

void SsaBuilder::OnCallValue() { PushDef(frame().value_def); }

void SsaBuilder::OnPop() { PopDef(); }

void SsaBuilder::OnDup(int n) {
  ShadowFrame& f = frame();
  PushDef(f.stack[f.stack.size() - static_cast<size_t>(n)]);
}

void SsaBuilder::OnSwap(int n) {
  ShadowFrame& f = frame();
  std::swap(f.stack[f.stack.size() - 1], f.stack[f.stack.size() - 1 - static_cast<size_t>(n)]);
}

// --- Data-flow ops. ---

void SsaBuilder::OnPureOp(Opcode op, std::span<const U256> operands, const U256& result) {
  std::vector<Lsn> defs(operands.size());
  for (size_t i = 0; i < operands.size(); ++i) {
    defs[i] = PopDef();
  }
  bool all_const = std::all_of(defs.begin(), defs.end(),
                               [](Lsn d) { return d == kNullLsn; });
  if (all_const && options_.fold_constants) {
    PushDef(kNullLsn);  // Constant folding: no log entry (§6.4).
    return;
  }
  // Superinstruction logging: defer the result as an expression tree so the
  // consuming entry absorbs it. EXP stays eager — its dynamic gas needs its
  // own constraint entry.
  if (options_.superinstruction_log && options_.fold_constants && op != Opcode::kExp &&
      DeferPureOp(op, operands, defs, result)) {
    return;
  }
  for (Lsn& d : defs) {
    d = Strict(d);
  }
  OpLogEntry e;
  e.op = op;
  e.operands.assign(operands.begin(), operands.end());
  e.def_stack = std::move(defs);
  e.result = result;
  if (op == Opcode::kExp && e.def_stack[1] != kNullLsn) {
    // Gas-flow constraint: EXP's dynamic cost depends on the exponent width.
    e.dyn_gas = kExpByteGas * operands[1].ByteLength();
  }
  PushDef(Append(std::move(e)));
}

void SsaBuilder::OnSuperOp(const SuperSegment& seg, std::span<const U256> inputs,
                           std::span<const U256> outputs) {
  // defs[j] is the defining op of the value at segment-entry depth j (0 = top).
  std::vector<Lsn> defs(seg.pop_depth);
  for (uint32_t j = 0; j < seg.pop_depth; ++j) {
    defs[j] = PopDef();
  }
  // One definition per distinct non-passthrough output expression — DUP'd
  // outputs share it, mirroring OnDup's def sharing on the per-op path. In
  // superinstruction mode the definition is deferred (a pending expression
  // the consuming entry absorbs); otherwise it is an eager kSuperOp entry.
  std::unordered_map<const SuperExpr*, Lsn> expr_defs;
  for (size_t i = 0; i < seg.outputs.size(); ++i) {
    const std::shared_ptr<const SuperExpr>& expr_ptr = seg.outputs[i];
    const SuperExpr& expr = *expr_ptr;
    if (expr.IsPassthrough()) {
      PushDef(defs[expr.input_depths[0]]);
      continue;
    }
    auto it = expr_defs.find(&expr);
    if (it != expr_defs.end()) {
      PushDef(it->second);
      continue;
    }
    std::vector<Lsn> in_defs(expr.input_depths.size());
    std::vector<U256> in_vals(expr.input_depths.size());
    bool all_const = true;
    for (size_t k = 0; k < expr.input_depths.size(); ++k) {
      in_defs[k] = Strict(defs[expr.input_depths[k]]);
      in_vals[k] = inputs[expr.input_depths[k]];
      all_const &= in_defs[k] == kNullLsn;
    }
    Lsn lsn = kNullLsn;
    if (all_const && options_.fold_constants) {
      // Constant folding: no definition needed.
    } else if (options_.superinstruction_log && options_.fold_constants) {
      lsn = NewPending(expr_ptr, std::move(in_vals), std::move(in_defs), outputs[i]);
    } else {
      OpLogEntry e;
      e.op = Opcode::kSuperOp;
      e.operands = std::move(in_vals);
      e.def_stack = std::move(in_defs);
      e.super = expr_ptr;
      e.result = outputs[i];
      lsn = Append(std::move(e));
    }
    expr_defs.emplace(&expr, lsn);
    PushDef(lsn);
  }
}

void SsaBuilder::OnOpaqueOp(Opcode, std::span<const U256> operands, int pushes) {
  for (size_t i = 0; i < operands.size(); ++i) {
    GuardEq(operands[i], PopDef());
  }
  for (int i = 0; i < pushes; ++i) {
    PushDef(kNullLsn);
  }
}

void SsaBuilder::OnCalldataLoad(const U256& offset, const U256& result) {
  GuardEq(offset, PopDef());
  std::vector<ByteDef> cells = Slice(frame().calldata, offset.AsUint64Saturated(), 32);
  if (AllConstant(cells)) {
    PushDef(kNullLsn);
    return;
  }
  OpLogEntry e;
  e.op = Opcode::kCalldataload;
  std::array<uint8_t, 32> be = result.ToBigEndian();
  e.input_bytes.assign(be.begin(), be.end());
  e.def_memory = CollectDeps(cells);
  e.result = result;
  PushDef(Append(std::move(e)));
}

void SsaBuilder::OnSload(const Address& address, const U256& slot, const U256& value) {
  GuardEq(slot, PopDef());
  PushDef(ReadStateKey(StateKey::Storage(address, slot), value));
}

void SsaBuilder::OnSstore(const Address& address, const U256& slot, const U256& value,
                          int64_t dynamic_gas) {
  Lsn slot_def = PopDef();
  Lsn value_def = PopDef();
  GuardEq(slot, slot_def);
  StateKey key = StateKey::Storage(address, slot);
  OpLogEntry e;
  e.op = Opcode::kSstore;
  e.operands = {slot, value};
  e.def_stack = {kNullLsn, kNullLsn};
  WireValue(e, 1, value_def);
  e.has_key = true;
  e.key = key;
  e.result = value;
  e.dyn_gas = dynamic_gas;
  auto wit = log_.latest_writes.find(key);
  e.prior_def = wit == log_.latest_writes.end() ? kNullLsn : wit->second;
  Lsn lsn = Append(std::move(e));
  if (log_.entries[static_cast<size_t>(lsn)].prior_def == kNullLsn) {
    log_.committed_prior_sstores[key].push_back(lsn);
  }
  log_.latest_writes[key] = lsn;
}

void SsaBuilder::OnBalanceRead(Opcode, const Address& address, const U256& value,
                               bool has_operand) {
  if (has_operand) {
    Lsn def = PopDef();
    GuardEq(U256::FromAddress(address), def);
  }
  PushDef(ReadStateKey(StateKey::Balance(address), value));
}

void SsaBuilder::OnMload(const U256& offset, BytesView word) {
  GuardEq(offset, PopDef());
  std::vector<ByteDef> cells = Slice(frame().memory, offset.AsUint64Saturated(), word.size());
  if (AllConstant(cells)) {
    PushDef(kNullLsn);
    return;
  }
  OpLogEntry e;
  e.op = Opcode::kMload;
  e.input_bytes.assign(word.begin(), word.end());
  e.def_memory = CollectDeps(cells);
  e.result = U256::FromBigEndian(word);
  PushDef(Append(std::move(e)));
}

void SsaBuilder::OnMstore(Opcode op, const U256& offset, const U256& value) {
  Lsn offset_def = PopDef();
  Lsn value_def = PopDef();
  GuardEq(offset, offset_def);
  uint64_t width = op == Opcode::kMstore8 ? 1 : 32;
  uint64_t dst = offset.AsUint64Saturated();
  if (value_def == kNullLsn) {
    WriteShadowMemoryConstant(dst, width);
    return;
  }
  OpLogEntry e;
  e.op = op;
  e.operands = {offset, value};
  e.def_stack = {kNullLsn, kNullLsn};
  WireValue(e, 1, value_def);
  e.result = value;
  e.result_width = static_cast<uint8_t>(width);
  Lsn lsn = Append(std::move(e));
  std::vector<ByteDef> cells(width);
  for (uint64_t i = 0; i < width; ++i) {
    cells[i] = {lsn, static_cast<uint32_t>(i)};
  }
  WriteShadowMemory(dst, cells);
}

void SsaBuilder::OnMemCopy(CopySource source, std::span<const U256> operands, uint64_t dst,
                           uint64_t src, uint64_t len) {
  for (size_t i = 0; i < operands.size(); ++i) {
    GuardEq(operands[i], PopDef());
  }
  switch (source) {
    case CopySource::kCode:
      WriteShadowMemoryConstant(dst, len);
      return;
    case CopySource::kCalldata:
      WriteShadowMemory(dst, Slice(frame().calldata, src, len));
      return;
    case CopySource::kReturndata:
      WriteShadowMemory(dst, Slice(frame().returndata, src, len));
      return;
  }
}

void SsaBuilder::OnSha3(std::span<const U256> operands, BytesView data, const U256& result) {
  Lsn off_def = PopDef();
  Lsn len_def = PopDef();
  GuardEq(operands[0], off_def);
  GuardEq(operands[1], len_def);
  std::vector<ByteDef> cells = Slice(frame().memory, operands[0].AsUint64Saturated(),
                                     data.size());
  if (AllConstant(cells)) {
    PushDef(kNullLsn);
    return;
  }
  OpLogEntry e;
  e.op = Opcode::kSha3;
  e.input_bytes.assign(data.begin(), data.end());
  e.def_memory = CollectDeps(cells);
  e.result = result;
  PushDef(Append(std::move(e)));
}

// --- Control flow. ---

void SsaBuilder::OnJump(const U256& dest) { GuardEq(dest, PopDef()); }

void SsaBuilder::OnJumpi(const U256& dest, const U256& condition) {
  Lsn dest_def = PopDef();
  Lsn cond_def = PopDef();
  GuardEq(dest, dest_def);
  GuardEq(condition, cond_def);
}

// --- Message calls. ---

void SsaBuilder::OnCall(Opcode op, std::span<const U256> operands, const Message&) {
  bool has_value = op == Opcode::kCall;
  std::vector<Lsn> defs(operands.size());
  for (size_t i = 0; i < operands.size(); ++i) {
    defs[i] = PopDef();
    if (has_value && i == 2) {
      // The amount's def flows into debit/credit entries and the callee's
      // CALLVALUE provenance, so a deferred expression must materialize.
      defs[i] = Strict(defs[i]);
      // The transfer amount flows onward (debit/credit entries, callee
      // CALLVALUE); only its zero-ness is pinned, because it decides the
      // value-transfer gas surcharge and the callee stipend (§5.2.4
      // gas-flow constraints).
      if (defs[i] != kNullLsn) {
        if (operands[i].IsZero()) {
          GuardEq(U256{}, defs[i]);
        } else {
          GuardGe(operands[i], defs[i], U256(1), kNullLsn);
        }
      }
      continue;
    }
    // Control-flow / address / gas operands must be stable.
    GuardEq(operands[i], defs[i]);
  }
  PendingCall pending;
  pending.value_def = kNullLsn;
  if (has_value) {
    pending.value_def = defs[2];
  } else if (op == Opcode::kDelegatecall) {
    pending.value_def = frame().value_def;  // DELEGATECALL inherits msg.value.
  }
  uint64_t in_off = operands[has_value ? 3 : 2].AsUint64Saturated();
  uint64_t in_len = operands[has_value ? 4 : 3].AsUint64Saturated();
  pending.input_provenance = Slice(frame().memory, in_off, in_len);
  pending_calls_.push_back(std::move(pending));
}

void SsaBuilder::OnCallSkipped(EvmStatus) {
  frame().returndata.clear();
  // The skip condition (depth / balance probe) is not representable as a
  // guard; conservatively disable operation-level repair.
  log_.redoable = false;
}

void SsaBuilder::OnCallDone(uint64_t ret_dst, uint64_t ret_len, bool) {
  if (!pending_calls_.empty()) {
    pending_calls_.pop_back();
  }
  if (ret_len > 0) {
    WriteShadowMemory(ret_dst, Slice(frame().returndata, 0, ret_len));
  }
  PushDef(kNullLsn);  // Success flag: constant given control-flow guards.
}

void SsaBuilder::OnValueTransfer(const Address& from, const U256& from_balance_before,
                                 const Address& to, const U256& to_balance_before,
                                 const U256& amount) {
  Lsn amount_def = pending_calls_.empty() ? kNullLsn : pending_calls_.back().value_def;
  Lsn from_def = ReadStateKey(StateKey::Balance(from), from_balance_before);
  OpLogEntry debit;
  debit.op = Opcode::kDebit;
  debit.operands = {from_balance_before, amount};
  debit.def_stack = {from_def, amount_def};
  if (options_.superinstruction_log) {
    // Merged precondition: the redo re-checks balance >= amount on this very
    // entry instead of a separate kAssertGe.
    debit.guarded = true;
  } else {
    GuardGe(from_balance_before, from_def, amount, amount_def);
  }
  debit.has_key = true;
  debit.key = StateKey::Balance(from);
  debit.result = from_balance_before - amount;
  RecordWrite(debit.key, Append(std::move(debit)));

  Lsn to_def = ReadStateKey(StateKey::Balance(to), to_balance_before);
  OpLogEntry credit;
  credit.op = Opcode::kCredit;
  credit.operands = {to_balance_before, amount};
  credit.def_stack = {to_def, amount_def};
  credit.has_key = true;
  credit.key = StateKey::Balance(to);
  credit.result = to_balance_before + amount;
  RecordWrite(credit.key, Append(std::move(credit)));
}

// --- Transaction envelope. ---

void SsaBuilder::OnTxNonceCheck(const Address& sender, uint64_t observed, uint64_t expected) {
  StateKey key = StateKey::Nonce(sender);
  Lsn read_def = ReadStateKey(key, U256(observed));
  if (observed != expected) {
    GuardEq(U256(expected), read_def);
    log_.redoable = false;
    return;
  }
  OpLogEntry bump;
  bump.op = Opcode::kNonceBump;
  bump.operands = {U256(observed)};
  bump.def_stack = {read_def};
  if (options_.superinstruction_log) {
    // Merged precondition: the redo re-checks that the resolved nonce still
    // equals the observed (== expected) one before bumping.
    bump.guarded = true;
  } else {
    GuardEq(U256(expected), read_def);
  }
  bump.has_key = true;
  bump.key = key;
  bump.result = U256(observed + 1);
  RecordWrite(key, Append(std::move(bump)));
}

void SsaBuilder::OnTxDebit(const Address& addr, const U256& balance_before, const U256& amount,
                           const U256& minimum) {
  StateKey key = StateKey::Balance(addr);
  Lsn def = ReadStateKey(key, balance_before);
  if (balance_before < minimum) {
    GuardGe(balance_before, def, minimum, kNullLsn);
    log_.redoable = false;
    return;
  }
  OpLogEntry debit;
  debit.op = Opcode::kDebit;
  debit.operands = {balance_before, amount};
  debit.def_stack = {def, kNullLsn};
  if (options_.superinstruction_log) {
    // Merged precondition: operands[2] is the minimum the redo re-checks.
    debit.guarded = true;
    debit.operands.push_back(minimum);
    debit.def_stack.push_back(kNullLsn);
  } else {
    GuardGe(balance_before, def, minimum, kNullLsn);
  }
  debit.has_key = true;
  debit.key = key;
  debit.result = balance_before - amount;
  RecordWrite(key, Append(std::move(debit)));
}

void SsaBuilder::OnTxCredit(const Address& addr, const U256& balance_before,
                            const U256& amount) {
  StateKey key = StateKey::Balance(addr);
  Lsn def = ReadStateKey(key, balance_before);
  OpLogEntry credit;
  credit.op = Opcode::kCredit;
  credit.operands = {balance_before, amount};
  credit.def_stack = {def, kNullLsn};
  credit.has_key = true;
  credit.key = key;
  credit.result = balance_before + amount;
  RecordWrite(key, Append(std::move(credit)));
}

}  // namespace pevm
