#include "src/core/oplog_printer.h"

#include <sstream>

namespace pevm {
namespace {

std::string Short(const U256& v) {
  std::string hex = v.ToHexString();
  if (hex.size() > 14) {
    return hex.substr(0, 8) + ".." + hex.substr(hex.size() - 4);
  }
  return hex;
}

}  // namespace

std::string FormatOpLogEntry(const TxLog& log, const OpLogEntry& entry) {
  (void)log;
  std::ostringstream out;
  out << "L" << entry.lsn << ": " << OpcodeName(entry.op);
  if (entry.has_key) {
    out << " [" << entry.key.ToString() << "]";
  }
  out << " (";
  for (size_t i = 0; i < entry.operands.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << Short(entry.operands[i]);
    if (i < entry.def_stack.size() && entry.def_stack[i] != kNullLsn) {
      out << "<-L" << entry.def_stack[i];
    }
  }
  out << ")";
  if (entry.def_storage != kNullLsn) {
    out << " def.storage=L" << entry.def_storage;
  }
  for (const MemDep& dep : entry.def_memory) {
    out << " def.mem[" << dep.start << ":" << dep.start + dep.len << ")=L" << dep.lsn << "+"
        << dep.offset;
  }
  if (entry.op != Opcode::kAssertEq && entry.op != Opcode::kAssertGe) {
    out << " -> " << Short(entry.result);
  }
  if (entry.dyn_gas >= 0) {
    out << " {gas=" << entry.dyn_gas << "}";
  }
  if (entry.super != nullptr) {
    out << " {expr: " << entry.super->steps.size() << " steps}";
  }
  return out.str();
}

std::string FormatOpLog(const TxLog& log) {
  std::ostringstream out;
  for (const OpLogEntry& entry : log.entries) {
    out << FormatOpLogEntry(log, entry);
    const std::vector<Lsn>& uses = log.dug[static_cast<size_t>(entry.lsn)];
    if (!uses.empty()) {
      out << "   uses:";
      for (Lsn use : uses) {
        out << " L" << use;
      }
    }
    out << "\n";
  }
  if (!log.redoable) {
    out << "(transaction is not redoable)\n";
  }
  return out.str();
}

}  // namespace pevm
