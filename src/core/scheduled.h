// The paper's §7 proposed extension (its stated future work): the block
// proposer runs ParallelEVM, records how each transaction resolved — clean,
// repaired by redo (and on which keys), or fallback re-execution — and ships
// that *operation-level schedule* in the block. Validators then execute the
// block following the schedule: clean transactions commit without read-set
// validation, redo transactions patch exactly the listed keys, and fallback
// transactions go straight to serial re-execution. A lying or stale schedule
// is caught the same way any bad block is: the resulting state root differs
// (tests exercise this via the paranoid mode).
#ifndef SRC_CORE_SCHEDULED_H_
#define SRC_CORE_SCHEDULED_H_

#include <vector>

#include "src/exec/executor.h"
#include "src/state/state_key.h"

namespace pevm {

struct TxSchedule {
  enum class Plan : uint8_t {
    kClean,     // Committed straight from speculation.
    kRedo,      // Conflicted; repaired at operation level.
    kFallback,  // Redo not possible; re-execute serially.
  };
  Plan plan = Plan::kClean;
  // For kRedo: the stale keys whose committed values must be patched.
  std::vector<StateKey> conflict_keys;
};

struct BlockSchedule {
  std::vector<TxSchedule> transactions;
};

struct ProposalResult {
  BlockReport report;
  BlockSchedule schedule;
};

// Proposer side: executes the block with ParallelEVM semantics (committing
// into `state`) and emits the schedule a validator needs.
ProposalResult ProposeBlock(const Block& block, WorldState& state, const ExecOptions& options);

// Validator side: executes the block following `schedule`. When `paranoid`
// is set, every scheduled decision is re-verified against the actual
// validation outcome and deviations are repaired (and counted in
// BlockReport::conflicts); production validators instead rely on the block's
// state root to reject bad schedules.
BlockReport ExecuteWithSchedule(const Block& block, const BlockSchedule& schedule,
                                WorldState& state, const ExecOptions& options,
                                bool paranoid = false);

}  // namespace pevm

#endif  // SRC_CORE_SCHEDULED_H_
