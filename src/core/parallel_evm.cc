#include "src/core/parallel_evm.h"

#include <vector>

#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"

namespace pevm {
namespace {

struct Speculation {
  Receipt receipt;
  ReadSet reads;
  WriteSet writes;
  TxLog log;
};

}  // namespace

BlockReport ParallelEvmExecutor::Execute(const Block& block, WorldState& state) {
  CostModel cost(options_.cost);
  StateCache cache(options_.prefetch);
  BlockReport report;
  size_t n = block.transactions.size();

  // --- Read phase: speculative execution against the block-start state,
  // recording read/write sets and generating SSA operation logs. ---
  std::vector<Speculation> specs(n);
  std::vector<uint64_t> durations(n);
  for (size_t i = 0; i < n; ++i) {
    const Transaction& tx = block.transactions[i];
    StateView view(state);
    SsaBuilder builder;
    Speculation& spec = specs[i];
    spec.receipt = ApplyTransaction(view, block.context, tx, &builder);
    if (!spec.receipt.valid) {
      builder.MarkNotRedoable();
    }
    spec.log = builder.TakeLog();
    spec.reads = view.read_set();
    spec.writes = view.take_write_set();
    uint64_t total_reads = TotalReadOps(spec.receipt.stats);
    uint64_t cold = std::min(cache.Touch(spec.reads), total_reads);
    durations[i] =
        cost.ExecutionCost(spec.receipt.stats, cold, total_reads - cold, /*with_ssa=*/true);
    report.oplog_entries += spec.log.size();
    report.instructions += spec.receipt.stats.instructions;
  }
  ScheduleResult schedule = pre_execution_
                                ? ScheduleResult{std::vector<uint64_t>(n, 0), 0}
                                : ListSchedule(durations, options_.threads,
                                               options_.cost.dispatch_ns);

  // --- Commit loop: validate -> redo -> write, in block order. ---
  uint64_t t = 0;
  U256 fees;
  auto committed = [&state](const StateKey& key) { return state.Get(key); };
  for (size_t i = 0; i < n; ++i) {
    Speculation& spec = specs[i];
    t = std::max(t, schedule.finish[i]);
    t += cost.ValidationCost(spec.reads.size());

    ConflictMap conflicts;
    for (const auto& [key, observed] : spec.reads) {
      U256 current = state.Get(key);
      if (current != observed) {
        conflicts.emplace(key, current);
      }
    }

    if (conflicts.empty()) {
      if (spec.receipt.valid) {
        t += cost.CommitCost(spec.writes.size());
        state.Apply(spec.writes);
        fees = fees + spec.receipt.fee;
      }
      report.receipts.push_back(std::move(spec.receipt));
      continue;
    }

    ++report.conflicts;
    RedoResult redo = RunRedo(spec.log, conflicts, committed);
    if (redo.success) {
      ++report.redo_success;
      report.redo_entries_reexecuted += redo.reexecuted;
      uint64_t redo_ns = cost.RedoCost(redo.dfs_visited, redo.reexecuted, conflicts.size());
      report.redo_ns += redo_ns;
      t += redo_ns + cost.CommitCost(redo.write_set.size());
      state.Apply(redo.write_set);
      fees = fees + spec.receipt.fee;
      report.receipts.push_back(std::move(spec.receipt));
      continue;
    }

    // Write-phase fallback: abort and re-execute serially against the
    // committed state (cannot conflict again). The failed redo attempt's
    // DFS and partial re-execution still cost time on the commit path.
    if (spec.log.redoable) {
      ++report.redo_fail;
      uint64_t wasted = cost.RedoCost(redo.dfs_visited, redo.reexecuted, conflicts.size());
      report.redo_ns += wasted;
      t += wasted;
    }
    ++report.full_reexecutions;
    StateView view(state);
    Receipt receipt = ApplyTransaction(view, block.context, block.transactions[i]);
    uint64_t total_reads = TotalReadOps(receipt.stats);
    uint64_t cold = std::min(cache.Touch(view.read_set()), total_reads);
    t += cost.ExecutionCost(receipt.stats, cold, total_reads - cold, /*with_ssa=*/false);
    report.instructions += receipt.stats.instructions;
    if (receipt.valid) {
      t += cost.CommitCost(view.write_set().size());
      state.Apply(view.write_set());
      fees = fees + receipt.fee;
    }
    report.receipts.push_back(std::move(receipt));
  }

  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options_.cost.per_block_ns;
  return report;
}

}  // namespace pevm
