#include "src/core/parallel_evm.h"

#include <algorithm>
#include <vector>

#include "src/core/redo.h"
#include "src/codecache/code_cache.h"
#include "src/exec/pipeline.h"
#include "src/telemetry/trace.h"

namespace pevm {

BlockReport ParallelEvmExecutor::Execute(const Block& block, WorldState& state,
                                         BoundarySeeds* seeds) {
  WallTimer block_timer;
  CostModel cost(options_.cost);
  StateCache cache(options_.prefetch);
  SimStore* store = EnsureSimStore(options_, sim_store_);
  BlockReport report;
  size_t n = block.transactions.size();

  // --- Read phase: speculative execution against the block-start state on
  // real OS threads, recording read/write sets and SSA operation logs.
  // Boundary-validated cross-block seeds (if any) are adopted in place of
  // fresh speculation — bit-identical records, minus the latency. ---
  ReadPhase read = RunReadPhase(block, state, SpecMode::kWithLog, cache, cost, options_, store,
                                report, seeds);
  ScheduleResult schedule = pre_execution_
                                ? ScheduleResult{std::vector<uint64_t>(n, 0), 0}
                                : ListSchedule(read.durations, options_.threads,
                                               options_.cost.dispatch_ns);

  // --- Commit loop: validate -> redo -> write, in block order. ---
  WallTimer commit_timer;
  PEVM_TRACE_SPAN_ARG("exec.commit_loop", "txs", n);
  uint64_t t = 0;
  U256 fees;
  ConflictAttribution attribution;
  auto committed = [&state](const StateKey& key) { return state.Get(key); };
  for (size_t i = 0; i < n; ++i) {
    Speculation& spec = read.specs[i];
    t = std::max(t, schedule.finish[i]);
    t += cost.ValidationCost(spec.reads.size());

    ConflictMap conflicts = FindConflicts(spec.reads, state);
    if (conflicts.empty()) {
      t += CommitSpeculation(spec, state, cost, fees, report);
      continue;
    }

    ++report.conflicts;
    PEVM_TRACE_INSTANT_ARG("exec.conflict", "tx", i);
    RedoResult redo = RunRedo(spec.log, conflicts, committed);
    if (redo.success) {
      RecordConflicts(conflicts, ConflictOutcome::kRedoResolved, attribution);
      PEVM_TRACE_SPAN_ARG("exec.redo_commit", "tx", i);
      t += CommitRedo(spec, std::move(redo), conflicts.size(), state, cost, fees, report);
      continue;
    }

    // Write-phase fallback: abort and re-execute serially against the
    // committed state (cannot conflict again). The failed redo attempt's
    // DFS and partial re-execution still cost time on the commit path.
    RecordConflicts(conflicts, ConflictOutcome::kFallback, attribution);
    if (spec.log.redoable) {
      ++report.redo_fail;
      t += ChargeFailedRedo(redo, conflicts.size(), cost, report);
    }
    ++report.full_reexecutions;
    t += FullReexecute(block, i, state, cache, cost, store, fees, report,
                       StaticCodeProvider(options_.code_cache));
  }
  report.conflict_keys = attribution.Sorted();

  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options_.cost.per_block_ns;
  report.commit_wall_ns = commit_timer.ElapsedNs();
  report.wall_ns = block_timer.ElapsedNs();
  return report;
}

}  // namespace pevm
