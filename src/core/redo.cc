#include "src/core/redo.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "src/evm/eval.h"

namespace pevm {
namespace {

constexpr int64_t kExpByteGas = 50;
constexpr int64_t kSstoreSetGas = 20000;
constexpr int64_t kSstoreResetGas = 5000;

U256 Resolve(const TxLog& log, Lsn def, const U256& fallback) {
  return def == kNullLsn ? fallback : log.entries[static_cast<size_t>(def)].result;
}

// Re-evaluates an entry's embedded expression (superinstruction logging) over
// the inputs trailing the op's fixed operand prefix.
U256 EvalEmbedded(const TxLog& log, const OpLogEntry& entry, size_t fixed) {
  std::vector<U256> inputs(entry.operands.size() - fixed);
  for (size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = Resolve(log, entry.def_stack[fixed + i], entry.operands[fixed + i]);
  }
  return EvalSuperExpr(*entry.super, inputs);
}

// Patches `entry.input_bytes` from its memory dependencies' (possibly
// updated) results.
void PatchInputBytes(TxLog& log, OpLogEntry& entry) {
  for (const MemDep& dep : entry.def_memory) {
    Bytes src = log.entries[static_cast<size_t>(dep.lsn)].ResultBytes();
    for (uint32_t i = 0; i < dep.len; ++i) {
      size_t dst_idx = dep.start + i;
      size_t src_idx = dep.offset + i;
      if (dst_idx < entry.input_bytes.size() && src_idx < src.size()) {
        entry.input_bytes[dst_idx] = src[src_idx];
      }
    }
  }
}

// Re-executes one entry in place. Returns false on a constraint violation.
bool Reexecute(TxLog& log, OpLogEntry& entry,
               const std::function<U256(const StateKey&)>& committed) {
  switch (entry.op) {
    case Opcode::kAssertEq: {
      U256 v = entry.super ? EvalEmbedded(log, entry, 1)
                           : Resolve(log, entry.def_stack[0], entry.operands[0]);
      return v == entry.operands[0];
    }
    case Opcode::kAssertGe: {
      U256 lhs = entry.super ? EvalEmbedded(log, entry, 2)
                             : Resolve(log, entry.def_stack[0], entry.operands[0]);
      U256 rhs = Resolve(log, entry.def_stack[1], entry.operands[1]);
      return lhs >= rhs;
    }
    case Opcode::kCommittedRead:
      return true;  // Sources are patched by the caller, never re-executed.
    case Opcode::kSload:
      // Type-II read: forwards the defining write's (updated) value.
      entry.result = Resolve(log, entry.def_storage, entry.result);
      return true;
    case Opcode::kSstore: {
      entry.result = entry.super ? EvalEmbedded(log, entry, 2)
                                 : Resolve(log, entry.def_stack[1], entry.operands[1]);
      // Gas-flow constraint: the dynamic cost must be unchanged (§5.2.4).
      U256 prior = entry.prior_def == kNullLsn
                       ? committed(entry.key)
                       : log.entries[static_cast<size_t>(entry.prior_def)].result;
      int64_t gas =
          (prior.IsZero() && !entry.result.IsZero()) ? kSstoreSetGas : kSstoreResetGas;
      return gas == entry.dyn_gas;
    }
    case Opcode::kMstore:
    case Opcode::kMstore8:
      entry.result = entry.super ? EvalEmbedded(log, entry, 2)
                                 : Resolve(log, entry.def_stack[1], entry.operands[1]);
      return true;
    case Opcode::kMload:
    case Opcode::kCalldataload:
      PatchInputBytes(log, entry);
      entry.result = U256::FromBigEndian(entry.input_bytes);
      return true;
    case Opcode::kSha3:
      PatchInputBytes(log, entry);
      entry.result = Keccak256Word(entry.input_bytes);
      return true;
    case Opcode::kDebit: {
      U256 balance = Resolve(log, entry.def_stack[0], entry.operands[0]);
      U256 amount = Resolve(log, entry.def_stack[1], entry.operands[1]);
      if (entry.guarded) {
        // Merged kAssertGe: the balance must still cover the minimum
        // (operands[2] for the envelope's upfront check, else the amount).
        const U256& minimum = entry.operands.size() > 2 ? entry.operands[2] : amount;
        if (balance < minimum) {
          return false;
        }
      }
      entry.result = balance - amount;
      return true;
    }
    case Opcode::kCredit: {
      U256 balance = Resolve(log, entry.def_stack[0], entry.operands[0]);
      U256 amount = Resolve(log, entry.def_stack[1], entry.operands[1]);
      entry.result = balance + amount;
      return true;
    }
    case Opcode::kNonceBump: {
      U256 observed = Resolve(log, entry.def_stack[0], entry.operands[0]);
      if (entry.guarded && observed != entry.operands[0]) {
        return false;  // Merged kAssertEq: the nonce moved under us.
      }
      entry.result = observed + U256(1);
      return true;
    }
    case Opcode::kSuperOp: {
      // Fused-segment output: re-evaluate the postfix expression program over
      // the (possibly updated) referenced inputs. No gas constraint — fused
      // segments contain only constant-gas ops by construction.
      std::vector<U256> inputs(entry.operands.size());
      for (size_t i = 0; i < inputs.size(); ++i) {
        inputs[i] = Resolve(log, entry.def_stack[i], entry.operands[i]);
      }
      entry.result = EvalSuperExpr(*entry.super, inputs);
      return true;
    }
    default: {
      if (!IsPureOp(entry.op)) {
        return false;  // Unknown entry kind: give up safely.
      }
      std::vector<U256> inputs(entry.operands.size());
      for (size_t i = 0; i < inputs.size(); ++i) {
        inputs[i] = Resolve(log, entry.def_stack[i], entry.operands[i]);
      }
      entry.result = EvalPure(entry.op, inputs);
      if (entry.op == Opcode::kExp && entry.dyn_gas >= 0) {
        // Gas-flow constraint: EXP's cost tracks the exponent width.
        if (kExpByteGas * inputs[1].ByteLength() != entry.dyn_gas) {
          return false;
        }
      }
      return true;
    }
  }
}

}  // namespace

Bytes PatchedReturnOutput(const TxLog& log) {
  Bytes out = log.return_bytes;
  for (const MemDep& dep : log.return_deps) {
    Bytes src = log.entries[static_cast<size_t>(dep.lsn)].ResultBytes();
    for (uint32_t i = 0; i < dep.len; ++i) {
      size_t dst_idx = dep.start + i;
      size_t src_idx = dep.offset + i;
      if (dst_idx < out.size() && src_idx < src.size()) {
        out[dst_idx] = src[src_idx];
      }
    }
  }
  return out;
}

WriteSet WriteSetFromLog(const TxLog& log) {
  WriteSet writes;
  writes.reserve(log.latest_writes.size());
  for (const auto& [key, lsn] : log.latest_writes) {
    writes[key] = log.entries[static_cast<size_t>(lsn)].result;
  }
  return writes;
}

RedoResult RunRedo(TxLog& log, const ConflictMap& conflicts,
                   const std::function<U256(const StateKey&)>& committed) {
  RedoResult result;
  if (!log.redoable) {
    return result;
  }

  // Lines 2-5: find the type-I reads of conflicting keys and patch their
  // results with the freshly committed values. A conflicting key with no
  // source entry cannot be repaired.
  std::vector<Lsn> sources;
  for (const auto& [key, value] : conflicts) {
    auto it = log.direct_reads.find(key);
    if (it == log.direct_reads.end()) {
      // The stale read fed no log entry. This is only safe when the key is
      // covered by an SSTORE gas recheck below (a pure gas-probe read);
      // otherwise give up.
      if (!log.committed_prior_sstores.contains(key)) {
        return result;
      }
      continue;
    }
    for (Lsn lsn : it->second) {
      log.entries[static_cast<size_t>(lsn)].result = value;
      sources.push_back(lsn);
    }
  }

  // Gas-flow recheck for first-writes whose dynamic cost sampled a committed
  // value that has now changed.
  for (const auto& [key, value] : conflicts) {
    auto it = log.committed_prior_sstores.find(key);
    if (it == log.committed_prior_sstores.end()) {
      continue;
    }
    for (Lsn lsn : it->second) {
      const OpLogEntry& store = log.entries[static_cast<size_t>(lsn)];
      int64_t gas =
          (value.IsZero() && !store.result.IsZero()) ? kSstoreSetGas : kSstoreResetGas;
      if (gas != store.dyn_gas) {
        return result;  // The transaction's total gas would change: abort.
      }
    }
  }

  // Line 6: DFS over the definition-use graph.
  std::vector<bool> visited(log.entries.size(), false);
  std::vector<Lsn> stack = sources;
  std::vector<Lsn> order;
  for (Lsn s : sources) {
    visited[static_cast<size_t>(s)] = true;
  }
  while (!stack.empty()) {
    Lsn cur = stack.back();
    stack.pop_back();
    order.push_back(cur);
    for (Lsn use : log.dug[static_cast<size_t>(cur)]) {
      if (!visited[static_cast<size_t>(use)]) {
        visited[static_cast<size_t>(use)] = true;
        stack.push_back(use);
      }
    }
  }
  result.dfs_visited = order.size();

  // Lines 7-16: re-execute the conflicting operations (excluding the patched
  // sources) in log order so defs precede uses.
  std::sort(order.begin(), order.end());
  std::vector<bool> is_source(log.entries.size(), false);
  for (Lsn s : sources) {
    is_source[static_cast<size_t>(s)] = true;
  }
  for (Lsn lsn : order) {
    if (is_source[static_cast<size_t>(lsn)]) {
      continue;
    }
    OpLogEntry& entry = log.entries[static_cast<size_t>(lsn)];
    if (!Reexecute(log, entry, committed)) {
      return result;  // Guard violated (line 11).
    }
    ++result.reexecuted;
  }

  result.success = true;
  result.write_set = WriteSetFromLog(log);
  return result;
}

}  // namespace pevm
