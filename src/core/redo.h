// The redo phase (paper §5.3, Algorithm 1): given the conflicting storage
// keys and their freshly committed values, patch the type-I read sources,
// DFS the definition-use graph to find every dependent operation, re-execute
// them in LSN order via the pure evaluator, and verify every constraint
// guard. On success the transaction's write set is rebuilt from the log's
// latest_writes table; on any guard failure the caller falls back to full
// re-execution (the paper's abort-and-restart write phase).
#ifndef SRC_CORE_REDO_H_
#define SRC_CORE_REDO_H_

#include <functional>
#include <unordered_map>

#include "src/core/oplog.h"
#include "src/state/world_state.h"

namespace pevm {

// key -> freshly committed value for every stale read-set entry.
using ConflictMap = std::unordered_map<StateKey, U256, StateKeyHash>;

struct RedoResult {
  bool success = false;
  size_t dfs_visited = 0;  // DUG nodes reached from the conflict sources.
  size_t reexecuted = 0;   // Entries actually re-executed (excl. sources).
  // Valid only when success: the repaired write set.
  WriteSet write_set;
};

// `committed` resolves the current committed value of a key (used for SSTORE
// dynamic-gas recomputation); typically bound to the post-predecessor world
// state.
RedoResult RunRedo(TxLog& log, const ConflictMap& conflicts,
                   const std::function<U256(const StateKey&)>& committed);

// Rebuilds a write set from the log's latest_writes table (also used to
// cross-check the builder against StateView in tests).
WriteSet WriteSetFromLog(const TxLog& log);

// Rebuilds the receipt's output bytes from the log's return-output provenance
// (TxLog::return_bytes/return_deps): constant bytes stay as captured,
// dependent runs are re-sliced from their defining entries' current results.
// Call after a successful RunRedo; the result then matches what a fresh
// execution against the patched read values would have returned. Returns the
// captured bytes unchanged when the log has no return provenance.
Bytes PatchedReturnOutput(const TxLog& log);

}  // namespace pevm

#endif  // SRC_CORE_REDO_H_
