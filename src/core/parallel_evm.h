// The ParallelEVM block executor (paper §5.1): read phase (speculative
// parallel execution with SSA operation-log generation), validation phase
// (in-order read-set checks against committed state), redo phase
// (operation-level conflict repair), write phase (commit, or full
// re-execution when the redo aborts).
#ifndef SRC_CORE_PARALLEL_EVM_H_
#define SRC_CORE_PARALLEL_EVM_H_

#include "src/exec/executor.h"

namespace pevm {

class ParallelEvmExecutor final : public Executor {
 public:
  // `pre_execution` models the Forerunner-style optimization (§6.3): SSA logs
  // are generated during the transaction-dissemination window, so the read
  // phase is off the critical path and transactions enter validation
  // directly.
  explicit ParallelEvmExecutor(const ExecOptions& options, bool pre_execution = false)
      : options_(options), pre_execution_(pre_execution) {}

  std::string_view name() const override {
    return pre_execution_ ? "parallelevm+preexec" : "parallelevm";
  }
  BlockReport Execute(const Block& block, WorldState& state) override {
    return Execute(block, state, nullptr);
  }
  BlockReport Execute(const Block& block, WorldState& state, BoundarySeeds* seeds) override;
  // Consumes full SSA-logged records: the chain's speculation stage must run
  // kWithLog so seeded transactions keep their redo capability in-block.
  SpecMode seed_mode() const override { return SpecMode::kWithLog; }
  SimStore* chain_store() override { return EnsureSimStore(options_, sim_store_); }

 private:
  ExecOptions options_;
  bool pre_execution_;
  // Simulated-storage front-end (wall-clock latency + async prefetch); lives
  // across blocks so the access-hint table learns. Null unless enabled.
  std::unique_ptr<SimStore> sim_store_;
};

}  // namespace pevm

#endif  // SRC_CORE_PARALLEL_EVM_H_
