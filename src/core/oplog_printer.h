// Human-readable rendering of SSA operation logs (the paper's Figure 5).
#ifndef SRC_CORE_OPLOG_PRINTER_H_
#define SRC_CORE_OPLOG_PRINTER_H_

#include <string>

#include "src/core/oplog.h"

namespace pevm {

// One line per entry: LSN, opcode, operands with their definitions, result.
std::string FormatOpLogEntry(const TxLog& log, const OpLogEntry& entry);

// The whole log plus the definition-use edges.
std::string FormatOpLog(const TxLog& log);

}  // namespace pevm

#endif  // SRC_CORE_OPLOG_PRINTER_H_
