// The SSA operation log (paper §5.2): a dynamically generated
// static-single-assignment representation of a transaction's state-relevant
// operations. Every entry's inputs are (i) immediate constants captured at
// read-phase time, (ii) results of earlier entries (def_stack / def_storage /
// def_memory back-references), or (iii) committed storage reads — so entries
// can be re-executed in isolation during the redo phase without any EVM
// runtime context.
#ifndef SRC_CORE_OPLOG_H_
#define SRC_CORE_OPLOG_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/codecache/program.h"
#include "src/evm/opcode.h"
#include "src/state/state_key.h"
#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

// Log sequence number; kNullLsn marks a constant (no defining operation).
using Lsn = int32_t;
inline constexpr Lsn kNullLsn = -1;

// One <start, len, lsn, offset> memory-dependency tuple (paper Fig. 8c): the
// input bytes [start, start+len) come from bytes [offset, offset+len) of the
// lsn-th entry's result.
struct MemDep {
  uint32_t start = 0;
  uint32_t len = 0;
  Lsn lsn = kNullLsn;
  uint32_t offset = 0;
};

struct OpLogEntry {
  Lsn lsn = kNullLsn;
  Opcode op = Opcode::kInvalid;

  // Operand values observed during the read phase. Layout by op:
  //   pure ops:        stack operands (top first)
  //   kSload:          [slot]
  //   kSstore:         [slot, value]
  //   kMstore/8:       [offset, value]
  //   kDebit/kCredit:  [balance_before, amount]
  //   kNonceBump:      [nonce_before]
  //   kAssertEq:       [expected]
  //   kAssertGe:       [lhs, rhs]  (checks lhs >= rhs)
  //   kSuperOp:        the expression's referenced inputs, in `super`'s local
  //                    input order (operands[i] feeds `kInput i` steps)
  // Superinstruction-granularity extensions (DESIGN.md §4.6):
  //   when `super` is set on kSstore/kMstore/kMstore8/kAssertEq/kAssertGe,
  //   the entry's value (stored word / guarded side) is the embedded
  //   expression evaluated over the inputs that FOLLOW the op's fixed operand
  //   prefix above — e.g. kSstore: [slot, value, in0, in1, ...];
  //   when `guarded` is set on kDebit, operands may carry a third value, the
  //   minimum balance the redo must re-check ([balance_before, amount, min];
  //   min defaults to amount).
  std::vector<U256> operands;
  // Defining operations of the stack operands (parallel to `operands`).
  std::vector<Lsn> def_stack;
  // For type-II SLOAD/balance reads: the defining in-transaction write.
  // kNullLsn marks a type-I committed read (§5.2.2).
  Lsn def_storage = kNullLsn;
  // Byte-level provenance of `input_bytes` (SHA3 / MLOAD / CALLDATALOAD).
  std::vector<MemDep> def_memory;
  // Captured input bytes for memory-consuming ops; patched during redo.
  Bytes input_bytes;

  // The operation's result; updated in place during redo.
  U256 result;
  // For memory-writing ops: how many bytes of `result` land in memory
  // (32 for MSTORE, 1 for MSTORE8); 0 otherwise.
  uint8_t result_width = 0;

  // State key for storage-ish ops (SLOAD/SSTORE/kCommittedRead/kDebit/...).
  bool has_key = false;
  StateKey key;

  // Gas-flow constraint data (§5.2.4): the dynamic gas charged at read-phase
  // time, re-derived and compared during redo. -1 = no gas constraint.
  int64_t dyn_gas = -1;
  // For SSTORE gas recomputation: the in-transaction write this store
  // overwrote (kNullLsn -> it overwrote the committed value).
  Lsn prior_def = kNullLsn;

  // For kSuperOp: the fused-segment output expression this entry re-executes
  // (result = EvalSuperExpr(*super, operands)). Shared with the CodeAnalysis
  // that produced it — and kept alive here even after a per-block code cache
  // drops that analysis. Also set on consuming entries (kSstore, kMstore/8,
  // kAssertEq/Ge) that absorbed a deferred expression; see `operands` above.
  std::shared_ptr<const SuperExpr> super;

  // Superinstruction-merged precondition (kNonceBump: the resolved nonce must
  // still equal operands[0]; kDebit: the resolved balance must cover the
  // minimum). The redo re-checks it before recomputing the write, replacing
  // the separate kAssertEq/kAssertGe entry the per-op log emits.
  bool guarded = false;

  // Bytes this entry contributes to memory/returndata, for MemDep patching.
  Bytes ResultBytes() const {
    if (result_width == 1) {
      return Bytes{static_cast<uint8_t>(result.limb(0) & 0xff)};
    }
    std::array<uint8_t, 32> be = result.ToBigEndian();
    return Bytes(be.begin(), be.end());
  }
};

// A transaction's complete SSA operation log plus the side tables the redo
// phase needs.
struct TxLog {
  std::vector<OpLogEntry> entries;
  // Definition-use graph (§5.2.5): dug[d] lists the entries using d's result.
  std::vector<std::vector<Lsn>> dug;
  // Type-I reads per state key (§5.2.2): the redo phase's conflict sources.
  std::unordered_map<StateKey, std::vector<Lsn>, StateKeyHash> direct_reads;
  // Last write entry per state key; the post-redo write set is rebuilt from
  // these entries' results.
  std::unordered_map<StateKey, Lsn, StateKeyHash> latest_writes;
  // All SSTOREs per key whose dynamic gas depends on the *committed* prior
  // value (prior_def == kNullLsn); rechecked when that key conflicts.
  std::unordered_map<StateKey, std::vector<Lsn>, StateKeyHash> committed_prior_sstores;
  // False when the transaction cannot be repaired at operation level (any
  // frame reverted/halted, a call was skipped, or the envelope was invalid);
  // such transactions fall back to full re-execution.
  bool redoable = true;

  // Return-output provenance (outermost frame only): the receipt's output
  // bytes as captured at read-phase time plus their byte-level provenance,
  // mirroring OpLogEntry::{input_bytes, def_memory}. A successful redo leaves
  // the defining entries' results updated in place, so
  // PatchedReturnOutput (redo.h) can rebuild a storage-dependent output
  // (balanceOf, AMM amount_out) without re-entering the EVM. A side table,
  // not a log entry: it adds nothing to size()/dug, so every oplog-derived
  // counter and the virtual makespan are unchanged.
  Bytes return_bytes;
  std::vector<MemDep> return_deps;
  bool has_return = false;

  size_t size() const { return entries.size(); }
  const OpLogEntry& operator[](size_t i) const { return entries[i]; }
  OpLogEntry& operator[](size_t i) { return entries[i]; }
};

}  // namespace pevm

#endif  // SRC_CORE_OPLOG_H_
