// Dynamic SSA operation-log generation (paper §5.2): an evm::Tracer that
// mirrors the interpreter with a shadow stack per frame, a byte-granular
// shadow memory per frame (Fig. 8), shadow calldata/returndata provenance
// across message calls, the latest_writes / direct_reads storage-flow tables
// (§5.2.2), and constraint-guard generation for control flow, runtime-context
// addresses and dynamic gas (§5.2.4). Constant folding is built in: an
// operation whose inputs are all transaction constants produces no log entry
// (§6.4 — this is what shrinks the log to ~5% of executed instructions).
#ifndef SRC_CORE_SSA_BUILDER_H_
#define SRC_CORE_SSA_BUILDER_H_

#include <optional>
#include <vector>

#include "src/core/oplog.h"
#include "src/evm/tracer.h"

namespace pevm {

class SsaBuilder final : public Tracer {
 public:
  struct Options {
    // Constant folding (§6.4): operations whose inputs are all transaction
    // constants produce no log entry. Disabling it is the ablation that
    // shows why the log stays at a few percent of the instruction stream.
    bool fold_constants = true;
    // Superinstruction-granularity logging (DESIGN.md §4.6): pure results
    // are deferred as expression trees and folded into the entry that
    // finally consumes them — an SSTORE's stored value, a control-flow /
    // operand guard, an MSTORE — and the envelope's nonce/balance checks
    // merge into their write entries (`OpLogEntry::guarded`). A value that
    // escapes any other way (memory provenance, a call operand, a segment
    // input) materializes as a kSuperOp entry exactly once. Set when a
    // fusing CodeProvider backs the read phase; off keeps the legacy
    // one-entry-per-op granularity (the kOff / fuse=false ablation
    // baseline). Only effective with fold_constants on.
    bool superinstruction_log = false;
  };

  SsaBuilder() : SsaBuilder(Options{}) {}
  explicit SsaBuilder(const Options& options);

  // Hands over the finished log. The builder is in an unspecified state
  // afterwards; construct a fresh one per transaction.
  TxLog TakeLog();

  // Marks the transaction un-redoable (invalid envelope, executor policy).
  void MarkNotRedoable() { log_.redoable = false; }

  // --- Tracer interface. ---
  void OnFrameEnter(const Message& msg) override;
  void OnFrameExit(EvmStatus status, uint64_t out_off, BytesView output) override;
  void OnPush() override;
  void OnCallValue() override;
  void OnPop() override;
  void OnDup(int n) override;
  void OnSwap(int n) override;
  void OnPureOp(Opcode op, std::span<const U256> operands, const U256& result) override;
  bool WantsSuperOps() const override { return true; }
  void OnSuperOp(const SuperSegment& seg, std::span<const U256> inputs,
                 std::span<const U256> outputs) override;
  void OnOpaqueOp(Opcode op, std::span<const U256> operands, int pushes) override;
  void OnCalldataLoad(const U256& offset, const U256& result) override;
  void OnSload(const Address& address, const U256& slot, const U256& value) override;
  void OnSstore(const Address& address, const U256& slot, const U256& value,
                int64_t dynamic_gas) override;
  void OnBalanceRead(Opcode op, const Address& address, const U256& value,
                     bool has_operand) override;
  void OnMload(const U256& offset, BytesView word) override;
  void OnMstore(Opcode op, const U256& offset, const U256& value) override;
  void OnMemCopy(CopySource source, std::span<const U256> operands, uint64_t dst, uint64_t src,
                 uint64_t len) override;
  void OnSha3(std::span<const U256> operands, BytesView data, const U256& result) override;
  void OnJump(const U256& dest) override;
  void OnJumpi(const U256& dest, const U256& condition) override;
  void OnCall(Opcode op, std::span<const U256> operands, const Message& callee_msg) override;
  void OnCallSkipped(EvmStatus reason) override;
  void OnCallDone(uint64_t ret_dst, uint64_t ret_len, bool success) override;
  void OnValueTransfer(const Address& from, const U256& from_balance_before, const Address& to,
                       const U256& to_balance_before, const U256& amount) override;
  void OnTxNonceCheck(const Address& sender, uint64_t observed, uint64_t expected) override;
  void OnTxDebit(const Address& addr, const U256& balance_before, const U256& amount,
                 const U256& minimum) override;
  void OnTxCredit(const Address& addr, const U256& balance_before, const U256& amount) override;

 private:
  // One shadow-memory / shadow-calldata / shadow-returndata cell: which log
  // entry (and which byte of its result) defined this byte; kNullLsn for
  // transaction constants.
  struct ByteDef {
    Lsn lsn = kNullLsn;
    uint32_t offset = 0;
  };

  struct ShadowFrame {
    std::vector<Lsn> stack;
    std::vector<ByteDef> memory;
    std::vector<ByteDef> calldata;
    std::vector<ByteDef> returndata;
    // Definition of this frame's msg.value (CALLVALUE provenance); kNullLsn
    // when the value is a transaction constant.
    Lsn value_def = kNullLsn;
  };

  // A CALL in flight: operand-derived geometry plus the amount operand's def.
  struct PendingCall {
    Lsn value_def = kNullLsn;
    std::vector<ByteDef> input_provenance;
  };

  // A deferred pure computation (superinstruction logging): the expression
  // tree of a value that has not escaped into the log yet. A consuming entry
  // embeds it (OpLogEntry::super); any other escape materializes it as a
  // kSuperOp entry once.
  struct PendingExpr {
    std::shared_ptr<const SuperExpr> expr;
    std::vector<U256> input_values;
    std::vector<Lsn> input_defs;  // Real defs only, never pending sentinels.
    U256 result;
    Lsn materialized = kNullLsn;
  };

  // Pending sentinels live below kNullLsn so they flow through the shadow
  // stack (DUP/SWAP/POP copy them like ordinary defs).
  static bool IsPending(Lsn d) { return d < kNullLsn; }
  static size_t PendingIndex(Lsn d) { return static_cast<size_t>(-2 - d); }
  static Lsn PendingLsn(size_t index) {
    return static_cast<Lsn>(-2 - static_cast<Lsn>(index));
  }

  ShadowFrame& frame() { return frames_.back(); }

  // Appends an entry, wiring DUG edges from every non-null def.
  Lsn Append(OpLogEntry entry);

  Lsn PopDef();
  void PushDef(Lsn lsn) { frame().stack.push_back(lsn); }

  Lsn NewPending(std::shared_ptr<const SuperExpr> expr, std::vector<U256> values,
                 std::vector<Lsn> defs, const U256& result);
  // Returns a real def for `d`, materializing a deferred expression into its
  // own kSuperOp entry on first escape.
  Lsn Strict(Lsn d);
  // Wires a value operand into `e`: when `d` defers an expression that never
  // materialized, the expression is embedded (inputs appended to
  // operands/def_stack, e.super set); otherwise def_stack[def_index] gets the
  // strict def.
  void WireValue(OpLogEntry& e, size_t def_index, Lsn d);
  // Defers `op` over its operands as a composed pending expression (inlining
  // unmaterialized operand expressions). Returns false when the composition
  // would exceed the expression caps; the caller then logs eagerly.
  bool DeferPureOp(Opcode op, std::span<const U256> operands, const std::vector<Lsn>& defs,
                   const U256& result);

  // Emits ASSERT_EQ guarding `value` against its defining op (no-op when the
  // operand is a constant).
  void GuardEq(const U256& value, Lsn def);
  // Emits ASSERT_GE(lhs >= rhs) unless both sides are constants.
  void GuardGe(const U256& lhs, Lsn lhs_def, const U256& rhs, Lsn rhs_def);

  // Returns the defining LSN for the current value of `key`, creating a
  // kCommittedRead source entry (and a direct_reads record) when the key has
  // not been written in this transaction.
  Lsn ReadStateKey(const StateKey& key, const U256& observed);

  // Records a balance/nonce write entry as the key's latest write.
  void RecordWrite(const StateKey& key, Lsn lsn) { log_.latest_writes[key] = lsn; }

  // Reads `len` provenance cells starting at `off` from `cells` (null-padded
  // past the end).
  static std::vector<ByteDef> Slice(const std::vector<ByteDef>& cells, uint64_t off,
                                    uint64_t len);
  // True if every cell is a constant.
  static bool AllConstant(const std::vector<ByteDef>& cells);
  // Coalesces cells into MemDep runs.
  static std::vector<MemDep> CollectDeps(const std::vector<ByteDef>& cells);

  // Writes provenance cells into the current frame's shadow memory.
  void WriteShadowMemory(uint64_t dst, const std::vector<ByteDef>& cells);
  void WriteShadowMemoryConstant(uint64_t dst, uint64_t len);

  Options options_;
  TxLog log_;
  std::vector<ShadowFrame> frames_;
  std::vector<PendingCall> pending_calls_;
  std::vector<PendingExpr> pendings_;
};

}  // namespace pevm

#endif  // SRC_CORE_SSA_BUILDER_H_
