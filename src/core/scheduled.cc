#include "src/core/scheduled.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/redo.h"
#include "src/codecache/code_cache.h"
#include "src/exec/pipeline.h"

namespace pevm {
namespace {

TxSchedule::Plan PlanFor(const BlockSchedule& schedule, size_t i) {
  // A missing/short schedule degrades to serial re-execution.
  return i < schedule.transactions.size() ? schedule.transactions[i].plan
                                          : TxSchedule::Plan::kFallback;
}

}  // namespace

ProposalResult ProposeBlock(const Block& block, WorldState& state, const ExecOptions& options) {
  WallTimer block_timer;
  CostModel cost(options.cost);
  StateCache cache(options.prefetch);
  // Free functions have no instance to persist hints on; the store (and its
  // hint table) is per call, which still exercises the full prefetch
  // machinery within the block.
  std::unique_ptr<SimStore> local_store;
  SimStore* store = EnsureSimStore(options, local_store);
  ProposalResult result;
  BlockReport& report = result.report;
  size_t n = block.transactions.size();
  result.schedule.transactions.resize(n);

  ReadPhase read =
      RunReadPhase(block, state, SpecMode::kWithLog, cache, cost, options, store, report);
  ScheduleResult sched = ListSchedule(read.durations, options.threads, options.cost.dispatch_ns);

  WallTimer commit_timer;
  uint64_t t = 0;
  U256 fees;
  ConflictAttribution attribution;
  auto committed = [&state](const StateKey& key) { return state.Get(key); };
  for (size_t i = 0; i < n; ++i) {
    Speculation& spec = read.specs[i];
    TxSchedule& plan = result.schedule.transactions[i];
    t = std::max(t, sched.finish[i]);
    t += cost.ValidationCost(spec.reads.size());

    ConflictMap conflicts = FindConflicts(spec.reads, state);
    if (conflicts.empty()) {
      plan.plan = TxSchedule::Plan::kClean;
      t += CommitSpeculation(spec, state, cost, fees, report);
      continue;
    }
    ++report.conflicts;
    RedoResult redo = RunRedo(spec.log, conflicts, committed);
    if (redo.success) {
      plan.plan = TxSchedule::Plan::kRedo;
      plan.conflict_keys.reserve(conflicts.size());
      for (const auto& [key, value] : conflicts) {
        plan.conflict_keys.push_back(key);
      }
      RecordConflicts(conflicts, ConflictOutcome::kRedoResolved, attribution);
      t += CommitRedo(spec, std::move(redo), conflicts.size(), state, cost, fees, report);
      continue;
    }
    plan.plan = TxSchedule::Plan::kFallback;
    RecordConflicts(conflicts, ConflictOutcome::kFallback, attribution);
    if (spec.log.redoable) {
      ++report.redo_fail;
      // The proposer pays for the failed redo attempt exactly like the plain
      // executor, so proposer and plain-executor makespans agree.
      t += ChargeFailedRedo(redo, conflicts.size(), cost, report);
    }
    ++report.full_reexecutions;
    t += FullReexecute(block, i, state, cache, cost, store, fees, report,
                       StaticCodeProvider(options.code_cache));
  }
  report.conflict_keys = attribution.Sorted();
  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options.cost.per_block_ns;
  report.commit_wall_ns = commit_timer.ElapsedNs();
  report.wall_ns = block_timer.ElapsedNs();
  return result;
}

BlockReport ExecuteWithSchedule(const Block& block, const BlockSchedule& schedule,
                                WorldState& state, const ExecOptions& options, bool paranoid) {
  WallTimer block_timer;
  CostModel cost(options.cost);
  StateCache cache(options.prefetch);
  std::unique_ptr<SimStore> local_store;
  SimStore* store = EnsureSimStore(options, local_store);
  BlockReport report;
  size_t n = block.transactions.size();

  // Read phase: SSA logs are generated only for transactions the schedule
  // marks kRedo (a validator-side saving the plain executor cannot make);
  // kFallback transactions skip speculation entirely unless paranoid mode
  // wants their read sets for verification.
  std::vector<SpecMode> modes(n, SpecMode::kPlain);
  for (size_t i = 0; i < n; ++i) {
    switch (PlanFor(schedule, i)) {
      case TxSchedule::Plan::kClean:
        break;
      case TxSchedule::Plan::kRedo:
        modes[i] = SpecMode::kWithLog;
        break;
      case TxSchedule::Plan::kFallback:
        if (!paranoid) {
          modes[i] = SpecMode::kSkip;
        }
        break;
    }
  }
  ReadPhase read = RunReadPhase(block, state, modes, cache, cost, options, store, report);
  ScheduleResult sched = ListSchedule(read.durations, options.threads, options.cost.dispatch_ns);

  WallTimer commit_timer;
  uint64_t t = 0;
  U256 fees;
  ConflictAttribution attribution;
  auto committed = [&state](const StateKey& key) { return state.Get(key); };
  for (size_t i = 0; i < n; ++i) {
    TxSchedule::Plan plan = PlanFor(schedule, i);
    Speculation& spec = read.specs[i];
    t = std::max(t, sched.finish[i]);

    if (paranoid && plan != TxSchedule::Plan::kFallback) {
      // Verify the schedule's claim instead of trusting it.
      bool claim_clean = plan == TxSchedule::Plan::kClean;
      ConflictMap conflicts = FindConflicts(spec.reads, state);
      if (claim_clean != conflicts.empty()) {
        ++report.conflicts;  // Schedule deviation: repair serially.
        // A deviation with stale reads attributes them; a claim of conflicts
        // that never materialized has no keys to blame.
        RecordConflicts(conflicts, ConflictOutcome::kFallback, attribution);
        ++report.full_reexecutions;
        t += FullReexecute(block, i, state, cache, cost, store, fees, report,
                       StaticCodeProvider(options.code_cache));
        continue;
      }
    }

    switch (plan) {
      case TxSchedule::Plan::kClean: {
        t += CommitSpeculation(spec, state, cost, fees, report);
        break;
      }
      case TxSchedule::Plan::kRedo: {
        // Patch exactly the scheduled keys — no read-set scan needed.
        ConflictMap conflicts;
        for (const StateKey& key : schedule.transactions[i].conflict_keys) {
          conflicts.emplace(key, state.Get(key));
        }
        RedoResult redo = RunRedo(spec.log, conflicts, committed);
        if (!redo.success) {
          // Deterministic proposers never hit this; repair serially anyway.
          ++report.full_reexecutions;
          t += FullReexecute(block, i, state, cache, cost, store, fees, report,
                       StaticCodeProvider(options.code_cache));
          break;
        }
        t += CommitRedo(spec, std::move(redo), conflicts.size(), state, cost, fees, report);
        break;
      }
      case TxSchedule::Plan::kFallback: {
        ++report.full_reexecutions;
        t += FullReexecute(block, i, state, cache, cost, store, fees, report,
                       StaticCodeProvider(options.code_cache));
        break;
      }
    }
  }
  // Scheduled redos execute without re-validating (the schedule is trusted),
  // so only paranoid-mode deviations contribute attribution here.
  report.conflict_keys = attribution.Sorted();
  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options.cost.per_block_ns;
  report.commit_wall_ns = commit_timer.ElapsedNs();
  report.wall_ns = block_timer.ElapsedNs();
  return report;
}

}  // namespace pevm
