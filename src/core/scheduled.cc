#include "src/core/scheduled.h"

#include <vector>

#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"

namespace pevm {
namespace {

struct Speculation {
  Receipt receipt;
  ReadSet reads;
  WriteSet writes;
  TxLog log;
};

Speculation Speculate(const WorldState& state, const BlockContext& context,
                      const Transaction& tx, bool with_log) {
  Speculation spec;
  StateView view(state);
  if (with_log) {
    SsaBuilder builder;
    spec.receipt = ApplyTransaction(view, context, tx, &builder);
    if (!spec.receipt.valid) {
      builder.MarkNotRedoable();
    }
    spec.log = builder.TakeLog();
  } else {
    spec.receipt = ApplyTransaction(view, context, tx);
  }
  spec.reads = view.read_set();
  spec.writes = view.take_write_set();
  return spec;
}

// Serial commit-path re-execution shared by both sides.
uint64_t FullReexecute(const Block& block, size_t i, WorldState& state, StateCache& cache,
                       const CostModel& cost, U256& fees, BlockReport& report) {
  StateView view(state);
  Receipt receipt = ApplyTransaction(view, block.context, block.transactions[i]);
  uint64_t total_reads = TotalReadOps(receipt.stats);
  uint64_t cold = std::min(cache.Touch(view.read_set()), total_reads);
  uint64_t t = cost.ExecutionCost(receipt.stats, cold, total_reads - cold, /*with_ssa=*/false);
  report.instructions += receipt.stats.instructions;
  if (receipt.valid) {
    t += cost.CommitCost(view.write_set().size());
    state.Apply(view.write_set());
    fees = fees + receipt.fee;
  }
  report.receipts.push_back(std::move(receipt));
  return t;
}

}  // namespace

ProposalResult ProposeBlock(const Block& block, WorldState& state, const ExecOptions& options) {
  CostModel cost(options.cost);
  StateCache cache(options.prefetch);
  ProposalResult result;
  BlockReport& report = result.report;
  size_t n = block.transactions.size();
  result.schedule.transactions.resize(n);

  std::vector<Speculation> specs(n);
  std::vector<uint64_t> durations(n);
  for (size_t i = 0; i < n; ++i) {
    specs[i] = Speculate(state, block.context, block.transactions[i], /*with_log=*/true);
    uint64_t total_reads = TotalReadOps(specs[i].receipt.stats);
    uint64_t cold = std::min(cache.Touch(specs[i].reads), total_reads);
    durations[i] =
        cost.ExecutionCost(specs[i].receipt.stats, cold, total_reads - cold, /*with_ssa=*/true);
    report.oplog_entries += specs[i].log.size();
    report.instructions += specs[i].receipt.stats.instructions;
  }
  ScheduleResult sched = ListSchedule(durations, options.threads, options.cost.dispatch_ns);

  uint64_t t = 0;
  U256 fees;
  auto committed = [&state](const StateKey& key) { return state.Get(key); };
  for (size_t i = 0; i < n; ++i) {
    Speculation& spec = specs[i];
    TxSchedule& plan = result.schedule.transactions[i];
    t = std::max(t, sched.finish[i]);
    t += cost.ValidationCost(spec.reads.size());

    ConflictMap conflicts;
    for (const auto& [key, observed] : spec.reads) {
      U256 current = state.Get(key);
      if (current != observed) {
        conflicts.emplace(key, current);
      }
    }
    if (conflicts.empty()) {
      plan.plan = TxSchedule::Plan::kClean;
      if (spec.receipt.valid) {
        t += cost.CommitCost(spec.writes.size());
        state.Apply(spec.writes);
        fees = fees + spec.receipt.fee;
      }
      report.receipts.push_back(std::move(spec.receipt));
      continue;
    }
    ++report.conflicts;
    RedoResult redo = RunRedo(spec.log, conflicts, committed);
    if (redo.success) {
      plan.plan = TxSchedule::Plan::kRedo;
      plan.conflict_keys.reserve(conflicts.size());
      for (const auto& [key, value] : conflicts) {
        plan.conflict_keys.push_back(key);
      }
      ++report.redo_success;
      report.redo_entries_reexecuted += redo.reexecuted;
      uint64_t redo_ns = cost.RedoCost(redo.dfs_visited, redo.reexecuted, conflicts.size());
      report.redo_ns += redo_ns;
      t += redo_ns + cost.CommitCost(redo.write_set.size());
      state.Apply(redo.write_set);
      fees = fees + spec.receipt.fee;
      report.receipts.push_back(std::move(spec.receipt));
      continue;
    }
    plan.plan = TxSchedule::Plan::kFallback;
    if (spec.log.redoable) {
      ++report.redo_fail;
    }
    ++report.full_reexecutions;
    t += FullReexecute(block, i, state, cache, cost, fees, report);
  }
  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options.cost.per_block_ns;
  return result;
}

BlockReport ExecuteWithSchedule(const Block& block, const BlockSchedule& schedule,
                                WorldState& state, const ExecOptions& options, bool paranoid) {
  CostModel cost(options.cost);
  StateCache cache(options.prefetch);
  BlockReport report;
  size_t n = block.transactions.size();

  // Read phase: SSA logs are generated only for transactions the schedule
  // marks kRedo (a validator-side saving the plain executor cannot make);
  // kFallback transactions skip speculation entirely.
  std::vector<Speculation> specs(n);
  std::vector<uint64_t> durations(n, 0);
  for (size_t i = 0; i < n; ++i) {
    TxSchedule::Plan plan = i < schedule.transactions.size()
                                ? schedule.transactions[i].plan
                                : TxSchedule::Plan::kFallback;
    if (plan == TxSchedule::Plan::kFallback && !paranoid) {
      continue;
    }
    bool with_log = plan == TxSchedule::Plan::kRedo;
    specs[i] = Speculate(state, block.context, block.transactions[i], with_log);
    uint64_t total_reads = TotalReadOps(specs[i].receipt.stats);
    uint64_t cold = std::min(cache.Touch(specs[i].reads), total_reads);
    durations[i] =
        cost.ExecutionCost(specs[i].receipt.stats, cold, total_reads - cold, with_log);
    report.oplog_entries += specs[i].log.size();
    report.instructions += specs[i].receipt.stats.instructions;
  }
  ScheduleResult sched = ListSchedule(durations, options.threads, options.cost.dispatch_ns);

  uint64_t t = 0;
  U256 fees;
  auto committed = [&state](const StateKey& key) { return state.Get(key); };
  for (size_t i = 0; i < n; ++i) {
    TxSchedule::Plan plan = i < schedule.transactions.size()
                                ? schedule.transactions[i].plan
                                : TxSchedule::Plan::kFallback;
    Speculation& spec = specs[i];
    t = std::max(t, sched.finish[i]);

    if (paranoid && plan != TxSchedule::Plan::kFallback) {
      // Verify the schedule's claim instead of trusting it.
      ConflictMap conflicts;
      for (const auto& [key, observed] : spec.reads) {
        U256 current = state.Get(key);
        if (current != observed) {
          conflicts.emplace(key, current);
        }
      }
      bool claim_clean = plan == TxSchedule::Plan::kClean;
      if (claim_clean != conflicts.empty()) {
        ++report.conflicts;  // Schedule deviation: repair serially.
        t += FullReexecute(block, i, state, cache, cost, fees, report);
        continue;
      }
    }

    switch (plan) {
      case TxSchedule::Plan::kClean: {
        if (spec.receipt.valid) {
          t += cost.CommitCost(spec.writes.size());
          state.Apply(spec.writes);
          fees = fees + spec.receipt.fee;
        }
        report.receipts.push_back(std::move(spec.receipt));
        break;
      }
      case TxSchedule::Plan::kRedo: {
        // Patch exactly the scheduled keys — no read-set scan needed.
        ConflictMap conflicts;
        for (const StateKey& key : schedule.transactions[i].conflict_keys) {
          conflicts.emplace(key, state.Get(key));
        }
        RedoResult redo = RunRedo(spec.log, conflicts, committed);
        if (!redo.success) {
          // Deterministic proposers never hit this; repair serially anyway.
          ++report.full_reexecutions;
          t += FullReexecute(block, i, state, cache, cost, fees, report);
          break;
        }
        ++report.redo_success;
        report.redo_entries_reexecuted += redo.reexecuted;
        uint64_t redo_ns = cost.RedoCost(redo.dfs_visited, redo.reexecuted, conflicts.size());
        report.redo_ns += redo_ns;
        t += redo_ns + cost.CommitCost(redo.write_set.size());
        state.Apply(redo.write_set);
        fees = fees + spec.receipt.fee;
        report.receipts.push_back(std::move(spec.receipt));
        break;
      }
      case TxSchedule::Plan::kFallback: {
        ++report.full_reexecutions;
        t += FullReexecute(block, i, state, cache, cost, fees, report);
        break;
      }
    }
  }
  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options.cost.per_block_ns;
  return report;
}

}  // namespace pevm
