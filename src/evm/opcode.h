// EVM opcode definitions and static traits (stack arity, constant gas).
// Covers the Shanghai-era opcode set minus CREATE*/SELFDESTRUCT/precompiles,
// which no workload in this reproduction uses (see DESIGN.md §3.4).
#ifndef SRC_EVM_OPCODE_H_
#define SRC_EVM_OPCODE_H_

#include <cstdint>
#include <string_view>

namespace pevm {

enum class Opcode : uint8_t {
  kStop = 0x00,
  kAdd = 0x01,
  kMul = 0x02,
  kSub = 0x03,
  kDiv = 0x04,
  kSdiv = 0x05,
  kMod = 0x06,
  kSmod = 0x07,
  kAddmod = 0x08,
  kMulmod = 0x09,
  kExp = 0x0a,
  kSignextend = 0x0b,

  kLt = 0x10,
  kGt = 0x11,
  kSlt = 0x12,
  kSgt = 0x13,
  kEq = 0x14,
  kIszero = 0x15,
  kAnd = 0x16,
  kOr = 0x17,
  kXor = 0x18,
  kNot = 0x19,
  kByte = 0x1a,
  kShl = 0x1b,
  kShr = 0x1c,
  kSar = 0x1d,

  kSha3 = 0x20,

  kAddress = 0x30,
  kBalance = 0x31,
  kOrigin = 0x32,
  kCaller = 0x33,
  kCallvalue = 0x34,
  kCalldataload = 0x35,
  kCalldatasize = 0x36,
  kCalldatacopy = 0x37,
  kCodesize = 0x38,
  kCodecopy = 0x39,
  kGasprice = 0x3a,
  kExtcodesize = 0x3b,
  kExtcodecopy = 0x3c,
  kReturndatasize = 0x3d,
  kReturndatacopy = 0x3e,
  kExtcodehash = 0x3f,

  kBlockhash = 0x40,
  kCoinbase = 0x41,
  kTimestamp = 0x42,
  kNumber = 0x43,
  kPrevrandao = 0x44,
  kGaslimit = 0x45,
  kChainid = 0x46,
  kSelfbalance = 0x47,
  kBasefee = 0x48,

  kPop = 0x50,
  kMload = 0x51,
  kMstore = 0x52,
  kMstore8 = 0x53,
  kSload = 0x54,
  kSstore = 0x55,
  kJump = 0x56,
  kJumpi = 0x57,
  kPc = 0x58,
  kMsize = 0x59,
  kGas = 0x5a,
  kJumpdest = 0x5b,

  kPush0 = 0x5f,
  kPush1 = 0x60,
  // ... kPush2..kPush31 ...
  kPush32 = 0x7f,
  kDup1 = 0x80,
  kDup2 = 0x81,
  kDup3 = 0x82,
  kDup4 = 0x83,
  kDup5 = 0x84,
  kDup6 = 0x85,
  kDup7 = 0x86,
  kDup8 = 0x87,
  kDup16 = 0x8f,
  kSwap1 = 0x90,
  kSwap2 = 0x91,
  kSwap3 = 0x92,
  kSwap4 = 0x93,
  kSwap16 = 0x9f,
  kLog0 = 0xa0,
  kLog1 = 0xa1,
  kLog2 = 0xa2,
  kLog3 = 0xa3,
  kLog4 = 0xa4,

  kCall = 0xf1,
  kReturn = 0xf3,
  kDelegatecall = 0xf4,
  kStaticcall = 0xfa,
  kRevert = 0xfd,
  kInvalid = 0xfe,

  // --- Pseudo-opcodes that only appear in SSA operation logs, never in
  // bytecode. They model the transaction envelope and constraint guards
  // (paper §5.2.4) in the same operation vocabulary as real instructions.
  kCommittedRead = 0xe0,  // Committed-state read (SLOAD type I / BALANCE / nonce).
  kDebit = 0xe1,          // balance -= amount
  kCredit = 0xe2,         // balance += amount
  kNonceBump = 0xe3,      // nonce += 1
  kSuperOp = 0xe4,        // Fused superinstruction output (postfix expr program).
  kAssertEq = 0xe8,       // Constraint guard: value must equal def's result.
  kAssertGe = 0xe9,       // Constraint guard: def's result must be >= bound.
};

constexpr bool IsPush(Opcode op) {
  return static_cast<uint8_t>(op) >= 0x5f && static_cast<uint8_t>(op) <= 0x7f;
}
constexpr bool IsDup(Opcode op) {
  return static_cast<uint8_t>(op) >= 0x80 && static_cast<uint8_t>(op) <= 0x8f;
}
constexpr bool IsSwap(Opcode op) {
  return static_cast<uint8_t>(op) >= 0x90 && static_cast<uint8_t>(op) <= 0x9f;
}
constexpr bool IsLog(Opcode op) {
  return static_cast<uint8_t>(op) >= 0xa0 && static_cast<uint8_t>(op) <= 0xa4;
}

// Number of immediate bytes following a PUSH opcode (0 for PUSH0).
constexpr int PushSize(Opcode op) { return static_cast<int>(static_cast<uint8_t>(op)) - 0x5f; }
// DUPn / SWAPn index (1-based).
constexpr int DupIndex(Opcode op) { return static_cast<int>(static_cast<uint8_t>(op)) - 0x7f; }
constexpr int SwapIndex(Opcode op) { return static_cast<int>(static_cast<uint8_t>(op)) - 0x8f; }
constexpr int LogTopics(Opcode op) { return static_cast<int>(static_cast<uint8_t>(op)) - 0xa0; }

// True for opcodes whose result is a pure function of their stack operands
// (the class EvalPure handles; also the class the SSA log can re-execute
// without any runtime context).
constexpr bool IsPureOp(Opcode op) {
  uint8_t v = static_cast<uint8_t>(op);
  return (v >= 0x01 && v <= 0x0b) || (v >= 0x10 && v <= 0x1d);
}

struct OpcodeTraits {
  std::string_view name;
  int8_t stack_pops = 0;    // Operands consumed.
  int8_t stack_pushes = 0;  // Results produced.
  int32_t const_gas = 0;    // Constant gas component.
  bool defined = false;
};

// Static trait lookup; undefined opcodes report defined == false.
const OpcodeTraits& TraitsOf(Opcode op);

std::string_view OpcodeName(Opcode op);

}  // namespace pevm

#endif  // SRC_EVM_OPCODE_H_
