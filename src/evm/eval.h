// Pure evaluation of data-flow opcodes: result = f(operands), no runtime
// context. Shared by the interpreter's dispatch loop and the redo phase's
// operation re-execution (paper §5.3 line 14) so both necessarily agree.
#ifndef SRC_EVM_EVAL_H_
#define SRC_EVM_EVAL_H_

#include <span>

#include "src/codecache/program.h"
#include "src/evm/opcode.h"
#include "src/support/u256.h"

namespace pevm {

// Evaluates a pure opcode (IsPureOp(op) must hold). Operand order matches
// stack order: operands[0] is the top of the stack.
U256 EvalPure(Opcode op, std::span<const U256> operands);

// Evaluates one fused-segment output expression over the segment's referenced
// entry-stack inputs (inputs[i] is the value for local input index i, i.e.
// entry depth expr.input_depths[i]). Shared by the interpreter's fused path
// and the redo phase's kSuperOp re-execution so both necessarily agree.
U256 EvalSuperExpr(const SuperExpr& expr, std::span<const U256> inputs);

}  // namespace pevm

#endif  // SRC_EVM_EVAL_H_
