// Pure evaluation of data-flow opcodes: result = f(operands), no runtime
// context. Shared by the interpreter's dispatch loop and the redo phase's
// operation re-execution (paper §5.3 line 14) so both necessarily agree.
#ifndef SRC_EVM_EVAL_H_
#define SRC_EVM_EVAL_H_

#include <span>

#include "src/evm/opcode.h"
#include "src/support/u256.h"

namespace pevm {

// Evaluates a pure opcode (IsPureOp(op) must hold). Operand order matches
// stack order: operands[0] is the top of the stack.
U256 EvalPure(Opcode op, std::span<const U256> operands);

}  // namespace pevm

#endif  // SRC_EVM_EVAL_H_
