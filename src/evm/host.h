// The interpreter's window onto world state. StateViewHost adapts the
// per-transaction overlay; Block-STM supplies a multi-version host whose
// reads may request a dependency abort.
#ifndef SRC_EVM_HOST_H_
#define SRC_EVM_HOST_H_

#include "src/state/state_view.h"
#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

class Host {
 public:
  virtual ~Host() = default;

  virtual U256 GetStorage(const Address& a, const U256& slot) = 0;
  virtual void SetStorage(const Address& a, const U256& slot, const U256& v) = 0;
  virtual U256 GetBalance(const Address& a) = 0;
  virtual void SetBalance(const Address& a, const U256& v) = 0;
  virtual uint64_t GetNonce(const Address& a) = 0;
  virtual void SetNonce(const Address& a, uint64_t n) = 0;
  virtual const Bytes* GetCode(const Address& a) = 0;
  // Precomputed code hash, or nullptr when the host doesn't track one (the
  // code cache then hashes the bytes itself — a perf hint, never semantics).
  virtual const Hash256* GetCodeHash(const Address& a) {
    (void)a;
    return nullptr;
  }

  // Overlay snapshots for inner-call revert.
  virtual size_t Snapshot() = 0;
  virtual void RevertToSnapshot(size_t snapshot) = 0;

  // Polled by the interpreter after every state read; true aborts the
  // execution with EvmStatus::kDependencyAbort (Block-STM ESTIMATE reads).
  virtual bool ShouldAbortExecution() const { return false; }
};

class StateViewHost final : public Host {
 public:
  explicit StateViewHost(StateView& view) : view_(&view) {}

  U256 GetStorage(const Address& a, const U256& slot) override {
    return view_->GetStorage(a, slot);
  }
  void SetStorage(const Address& a, const U256& slot, const U256& v) override {
    view_->SetStorage(a, slot, v);
  }
  U256 GetBalance(const Address& a) override { return view_->GetBalance(a); }
  void SetBalance(const Address& a, const U256& v) override { view_->SetBalance(a, v); }
  uint64_t GetNonce(const Address& a) override { return view_->GetNonce(a); }
  void SetNonce(const Address& a, uint64_t n) override { view_->SetNonce(a, n); }
  const Bytes* GetCode(const Address& a) override { return view_->GetCode(a); }
  const Hash256* GetCodeHash(const Address& a) override { return view_->GetCodeHash(a); }
  size_t Snapshot() override { return view_->Snapshot(); }
  void RevertToSnapshot(size_t snapshot) override { view_->RevertToSnapshot(snapshot); }
  bool ShouldAbortExecution() const override { return view_->base_aborted(); }

 private:
  StateView* view_;
};

}  // namespace pevm

#endif  // SRC_EVM_HOST_H_
