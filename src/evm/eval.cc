#include "src/evm/eval.h"

#include <cassert>
#include <iterator>
#include <vector>

namespace pevm {

U256 EvalPure(Opcode op, std::span<const U256> operands) {
  const U256& a = operands[0];
  switch (op) {
    case Opcode::kAdd:
      return a + operands[1];
    case Opcode::kMul:
      return a * operands[1];
    case Opcode::kSub:
      return a - operands[1];
    case Opcode::kDiv:
      return U256::Div(a, operands[1]);
    case Opcode::kSdiv:
      return U256::SDiv(a, operands[1]);
    case Opcode::kMod:
      return U256::Mod(a, operands[1]);
    case Opcode::kSmod:
      return U256::SMod(a, operands[1]);
    case Opcode::kAddmod:
      return U256::AddMod(a, operands[1], operands[2]);
    case Opcode::kMulmod:
      return U256::MulMod(a, operands[1], operands[2]);
    case Opcode::kExp:
      return U256::Exp(a, operands[1]);
    case Opcode::kSignextend:
      return U256::SignExtend(a, operands[1]);
    case Opcode::kLt:
      return U256(a < operands[1] ? 1 : 0);
    case Opcode::kGt:
      return U256(a > operands[1] ? 1 : 0);
    case Opcode::kSlt:
      return U256(U256::SLt(a, operands[1]) ? 1 : 0);
    case Opcode::kSgt:
      return U256(U256::SLt(operands[1], a) ? 1 : 0);
    case Opcode::kEq:
      return U256(a == operands[1] ? 1 : 0);
    case Opcode::kIszero:
      return U256(a.IsZero() ? 1 : 0);
    case Opcode::kAnd:
      return a & operands[1];
    case Opcode::kOr:
      return a | operands[1];
    case Opcode::kXor:
      return a ^ operands[1];
    case Opcode::kNot:
      return ~a;
    case Opcode::kByte:
      return U256::Byte(a, operands[1]);
    case Opcode::kShl:
      return U256::Shl(a, operands[1]);
    case Opcode::kShr:
      return U256::Shr(a, operands[1]);
    case Opcode::kSar:
      return U256::Sar(a, operands[1]);
    default:
      assert(false && "EvalPure called with a non-pure opcode");
      return U256{};
  }
}

U256 EvalSuperExpr(const SuperExpr& expr, std::span<const U256> inputs) {
  // Postfix programs are short (capped at analysis time); a small local stack
  // avoids heap churn on the redo path.
  U256 stack[8];
  std::vector<U256> overflow;
  size_t height = 0;
  auto push = [&](const U256& v) {
    if (height < std::size(stack)) {
      stack[height] = v;
    } else {
      if (height - std::size(stack) < overflow.size()) {
        overflow[height - std::size(stack)] = v;
      } else {
        overflow.push_back(v);
      }
    }
    ++height;
  };
  auto at = [&](size_t i) -> const U256& {
    return i < std::size(stack) ? stack[i] : overflow[i - std::size(stack)];
  };
  for (const SuperStep& step : expr.steps) {
    switch (step.kind) {
      case SuperStep::Kind::kConst:
        push(step.imm);
        break;
      case SuperStep::Kind::kInput:
        assert(step.input < inputs.size());
        push(inputs[step.input]);
        break;
      case SuperStep::Kind::kOp: {
        assert(height >= step.arity);
        // Operands were emitted deepest-first, so the top of the eval stack
        // is the top stack operand — exactly EvalPure's order.
        U256 operands[3];
        for (size_t i = 0; i < step.arity; ++i) {
          operands[i] = at(height - 1 - i);
        }
        height -= step.arity;
        push(EvalPure(step.op, std::span<const U256>(operands, step.arity)));
        break;
      }
    }
  }
  assert(height == 1);
  return at(0);
}

}  // namespace pevm
