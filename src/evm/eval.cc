#include "src/evm/eval.h"

#include <cassert>

namespace pevm {

U256 EvalPure(Opcode op, std::span<const U256> operands) {
  const U256& a = operands[0];
  switch (op) {
    case Opcode::kAdd:
      return a + operands[1];
    case Opcode::kMul:
      return a * operands[1];
    case Opcode::kSub:
      return a - operands[1];
    case Opcode::kDiv:
      return U256::Div(a, operands[1]);
    case Opcode::kSdiv:
      return U256::SDiv(a, operands[1]);
    case Opcode::kMod:
      return U256::Mod(a, operands[1]);
    case Opcode::kSmod:
      return U256::SMod(a, operands[1]);
    case Opcode::kAddmod:
      return U256::AddMod(a, operands[1], operands[2]);
    case Opcode::kMulmod:
      return U256::MulMod(a, operands[1], operands[2]);
    case Opcode::kExp:
      return U256::Exp(a, operands[1]);
    case Opcode::kSignextend:
      return U256::SignExtend(a, operands[1]);
    case Opcode::kLt:
      return U256(a < operands[1] ? 1 : 0);
    case Opcode::kGt:
      return U256(a > operands[1] ? 1 : 0);
    case Opcode::kSlt:
      return U256(U256::SLt(a, operands[1]) ? 1 : 0);
    case Opcode::kSgt:
      return U256(U256::SLt(operands[1], a) ? 1 : 0);
    case Opcode::kEq:
      return U256(a == operands[1] ? 1 : 0);
    case Opcode::kIszero:
      return U256(a.IsZero() ? 1 : 0);
    case Opcode::kAnd:
      return a & operands[1];
    case Opcode::kOr:
      return a | operands[1];
    case Opcode::kXor:
      return a ^ operands[1];
    case Opcode::kNot:
      return ~a;
    case Opcode::kByte:
      return U256::Byte(a, operands[1]);
    case Opcode::kShl:
      return U256::Shl(a, operands[1]);
    case Opcode::kShr:
      return U256::Shr(a, operands[1]);
    case Opcode::kSar:
      return U256::Sar(a, operands[1]);
    default:
      assert(false && "EvalPure called with a non-pure opcode");
      return U256{};
  }
}

}  // namespace pevm
