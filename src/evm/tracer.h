// Execution-trace hooks. The interpreter narrates every stack effect,
// storage/memory access, control-flow decision and frame transition through
// this interface; core::SsaBuilder implements it to construct the SSA
// operation log (paper §5.2) without the interpreter knowing anything about
// SSA. All operand spans list the popped values top-of-stack first.
//
// The transaction envelope (nonce bump, fee debit, value transfer, refund) is
// narrated by exec::ApplyTransaction through the OnTx* events so ether and
// nonce accesses participate in operation-level conflict resolution exactly
// like SLOAD/SSTORE.
#ifndef SRC_EVM_TRACER_H_
#define SRC_EVM_TRACER_H_

#include <span>

#include "src/codecache/program.h"
#include "src/evm/evm_types.h"
#include "src/evm/opcode.h"
#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

// Source of a bulk memory write.
enum class CopySource : uint8_t { kCalldata, kCode, kReturndata };

class Tracer {
 public:
  virtual ~Tracer() = default;

  // --- Frame lifecycle. Fired for the outermost frame as well. ---
  virtual void OnFrameEnter(const Message& msg) { (void)msg; }
  // `out_off`/`output` describe the RETURN/REVERT payload within the exiting
  // frame's memory (empty for STOP / exceptional halts).
  virtual void OnFrameExit(EvmStatus status, uint64_t out_off, BytesView output) {
    (void)status;
    (void)out_off;
    (void)output;
  }

  // --- Pure stack shape (shadow-stack mirroring). ---
  virtual void OnPush() {}      // A tx-constant was pushed (PUSH*, env reads).
  // CALLVALUE pushed msg.value — distinct from OnPush because an inner
  // frame's value may be derived from caller data (the CALL value operand).
  virtual void OnCallValue() { OnPush(); }
  virtual void OnPop() {}       // POP.
  virtual void OnDup(int n) { (void)n; }
  virtual void OnSwap(int n) { (void)n; }

  // A data-flow op: popped `operands`, pushed `result` (IsPureOp(op) holds).
  virtual void OnPureOp(Opcode op, std::span<const U256> operands, const U256& result) {
    (void)op;
    (void)operands;
    (void)result;
  }

  // --- Fused superinstructions. A tracer that returns true here receives one
  // OnSuperOp per fused segment instead of the per-op event sequence the
  // segment's instructions would have fired (OnPush/OnPop/OnDup/OnSwap/
  // OnPureOp). Tracers that return false — the default — always see per-op
  // events: the interpreter only takes the fused path when the attached
  // tracer opts in, so existing tracers keep their exact event streams. ---
  virtual bool WantsSuperOps() const { return false; }
  // One fused segment executed: popped `inputs` (inputs[j] is the value that
  // sat at entry-stack depth j; seg.pop_depth of them), pushed `outputs`
  // (bottom-first, matching seg.outputs).
  virtual void OnSuperOp(const SuperSegment& seg, std::span<const U256> inputs,
                         std::span<const U256> outputs) {
    (void)seg;
    (void)inputs;
    (void)outputs;
  }

  // An op whose result is constant for this transaction given unchanged
  // operands: EXTCODESIZE, BLOCKHASH, LOG*, … Popped `operands`, pushed
  // `pushes` constants.
  virtual void OnOpaqueOp(Opcode op, std::span<const U256> operands, int pushes) {
    (void)op;
    (void)operands;
    (void)pushes;
  }

  // CALLDATALOAD: reads calldata[offset, offset+32). Distinct from OnOpaqueOp
  // because calldata carries byte provenance in inner frames.
  virtual void OnCalldataLoad(const U256& offset, const U256& result) {
    (void)offset;
    (void)result;
  }

  // --- Storage. `address` is the storage context (DELEGATECALL-aware). ---
  virtual void OnSload(const Address& address, const U256& slot, const U256& value) {
    (void)address;
    (void)slot;
    (void)value;
  }
  virtual void OnSstore(const Address& address, const U256& slot, const U256& value,
                        int64_t dynamic_gas) {
    (void)address;
    (void)slot;
    (void)value;
    (void)dynamic_gas;
  }

  // --- Balance-observing reads (BALANCE pops an address operand;
  // SELFBALANCE pops none and passes has_operand = false). ---
  virtual void OnBalanceRead(Opcode op, const Address& address, const U256& value,
                             bool has_operand) {
    (void)op;
    (void)address;
    (void)value;
    (void)has_operand;
  }

  // --- Memory. ---
  virtual void OnMload(const U256& offset, BytesView word) {
    (void)offset;
    (void)word;
  }
  virtual void OnMstore(Opcode op, const U256& offset, const U256& value) {
    (void)op;
    (void)offset;
    (void)value;
  }
  // Bulk copy into memory (CALLDATACOPY / CODECOPY / RETURNDATACOPY /
  // EXTCODECOPY — the latter maps to kCode with 4 popped operands).
  virtual void OnMemCopy(CopySource source, std::span<const U256> operands, uint64_t dst,
                         uint64_t src, uint64_t len) {
    (void)source;
    (void)operands;
    (void)dst;
    (void)src;
    (void)len;
  }
  virtual void OnSha3(std::span<const U256> operands, BytesView data, const U256& result) {
    (void)operands;
    (void)data;
    (void)result;
  }

  // --- Control flow (constraint-guard sources, §5.2.4). ---
  virtual void OnJump(const U256& dest) { (void)dest; }
  virtual void OnJumpi(const U256& dest, const U256& condition) {
    (void)dest;
    (void)condition;
  }

  // --- Message calls. `operands` are the raw popped CALL operands (7 for
  // CALL, 6 for DELEGATECALL/STATICCALL). A matching OnFrameEnter/OnFrameExit
  // pair follows unless the call was skipped (depth/balance), in which case
  // OnCallSkipped fires instead. OnCallDone always fires last, after the
  // interpreter wrote returndata[0, ret_len) to caller memory at ret_dst and
  // pushed the success flag. ---
  virtual void OnCall(Opcode op, std::span<const U256> operands, const Message& callee_msg) {
    (void)op;
    (void)operands;
    (void)callee_msg;
  }
  virtual void OnCallSkipped(EvmStatus reason) { (void)reason; }
  virtual void OnCallDone(uint64_t ret_dst, uint64_t ret_len, bool success) {
    (void)ret_dst;
    (void)ret_len;
    (void)success;
  }

  // Value transfer executed as part of a CALL (fires between OnCall and the
  // callee's OnFrameEnter). The amount always equals CALL operand #2.
  virtual void OnValueTransfer(const Address& from, const U256& from_balance_before,
                               const Address& to, const U256& to_balance_before,
                               const U256& amount) {
    (void)from;
    (void)from_balance_before;
    (void)to;
    (void)to_balance_before;
    (void)amount;
  }

  // --- Transaction envelope (fired by exec::ApplyTransaction). Amounts are
  // transaction constants; the balance/nonce values read participate in
  // def-use chains. `minimum` on the debit is the AssertGe bound (upfront
  // balance check). ---
  virtual void OnTxNonceCheck(const Address& sender, uint64_t observed, uint64_t expected) {
    (void)sender;
    (void)observed;
    (void)expected;
  }
  virtual void OnTxDebit(const Address& addr, const U256& balance_before, const U256& amount,
                         const U256& minimum) {
    (void)addr;
    (void)balance_before;
    (void)amount;
    (void)minimum;
  }
  virtual void OnTxCredit(const Address& addr, const U256& balance_before, const U256& amount) {
    (void)addr;
    (void)balance_before;
    (void)amount;
  }
};

}  // namespace pevm

#endif  // SRC_EVM_TRACER_H_
