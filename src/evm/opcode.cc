#include "src/evm/opcode.h"

#include <array>

namespace pevm {
namespace {

// Gas constants (Istanbul-era schedule, flat costs — no EIP-2929 access
// lists; see DESIGN.md). Dynamic components live in the interpreter.
constexpr int32_t kGasZero = 0;
constexpr int32_t kGasBase = 2;
constexpr int32_t kGasVeryLow = 3;
constexpr int32_t kGasLow = 5;
constexpr int32_t kGasMid = 8;
constexpr int32_t kGasHigh = 10;
constexpr int32_t kGasBalance = 700;
constexpr int32_t kGasExt = 700;
constexpr int32_t kGasSload = 800;
constexpr int32_t kGasJumpdest = 1;
constexpr int32_t kGasSha3 = 30;
constexpr int32_t kGasBlockhash = 20;
constexpr int32_t kGasLog = 375;
constexpr int32_t kGasCallBase = 700;

struct Table {
  std::array<OpcodeTraits, 256> entries{};

  constexpr void Def(Opcode op, std::string_view name, int pops, int pushes, int32_t gas) {
    entries[static_cast<uint8_t>(op)] = {name, static_cast<int8_t>(pops),
                                         static_cast<int8_t>(pushes), gas, true};
  }
};

Table BuildTable() {
  Table t;
  t.Def(Opcode::kStop, "STOP", 0, 0, kGasZero);
  t.Def(Opcode::kAdd, "ADD", 2, 1, kGasVeryLow);
  t.Def(Opcode::kMul, "MUL", 2, 1, kGasLow);
  t.Def(Opcode::kSub, "SUB", 2, 1, kGasVeryLow);
  t.Def(Opcode::kDiv, "DIV", 2, 1, kGasLow);
  t.Def(Opcode::kSdiv, "SDIV", 2, 1, kGasLow);
  t.Def(Opcode::kMod, "MOD", 2, 1, kGasLow);
  t.Def(Opcode::kSmod, "SMOD", 2, 1, kGasLow);
  t.Def(Opcode::kAddmod, "ADDMOD", 3, 1, kGasMid);
  t.Def(Opcode::kMulmod, "MULMOD", 3, 1, kGasMid);
  t.Def(Opcode::kExp, "EXP", 2, 1, kGasHigh);  // + 50 per exponent byte.
  t.Def(Opcode::kSignextend, "SIGNEXTEND", 2, 1, kGasLow);
  t.Def(Opcode::kLt, "LT", 2, 1, kGasVeryLow);
  t.Def(Opcode::kGt, "GT", 2, 1, kGasVeryLow);
  t.Def(Opcode::kSlt, "SLT", 2, 1, kGasVeryLow);
  t.Def(Opcode::kSgt, "SGT", 2, 1, kGasVeryLow);
  t.Def(Opcode::kEq, "EQ", 2, 1, kGasVeryLow);
  t.Def(Opcode::kIszero, "ISZERO", 1, 1, kGasVeryLow);
  t.Def(Opcode::kAnd, "AND", 2, 1, kGasVeryLow);
  t.Def(Opcode::kOr, "OR", 2, 1, kGasVeryLow);
  t.Def(Opcode::kXor, "XOR", 2, 1, kGasVeryLow);
  t.Def(Opcode::kNot, "NOT", 1, 1, kGasVeryLow);
  t.Def(Opcode::kByte, "BYTE", 2, 1, kGasVeryLow);
  t.Def(Opcode::kShl, "SHL", 2, 1, kGasVeryLow);
  t.Def(Opcode::kShr, "SHR", 2, 1, kGasVeryLow);
  t.Def(Opcode::kSar, "SAR", 2, 1, kGasVeryLow);
  t.Def(Opcode::kSha3, "SHA3", 2, 1, kGasSha3);  // + 6 per word + memory.
  t.Def(Opcode::kAddress, "ADDRESS", 0, 1, kGasBase);
  t.Def(Opcode::kBalance, "BALANCE", 1, 1, kGasBalance);
  t.Def(Opcode::kOrigin, "ORIGIN", 0, 1, kGasBase);
  t.Def(Opcode::kCaller, "CALLER", 0, 1, kGasBase);
  t.Def(Opcode::kCallvalue, "CALLVALUE", 0, 1, kGasBase);
  t.Def(Opcode::kCalldataload, "CALLDATALOAD", 1, 1, kGasVeryLow);
  t.Def(Opcode::kCalldatasize, "CALLDATASIZE", 0, 1, kGasBase);
  t.Def(Opcode::kCalldatacopy, "CALLDATACOPY", 3, 0, kGasVeryLow);  // + copy + memory.
  t.Def(Opcode::kCodesize, "CODESIZE", 0, 1, kGasBase);
  t.Def(Opcode::kCodecopy, "CODECOPY", 3, 0, kGasVeryLow);  // + copy + memory.
  t.Def(Opcode::kGasprice, "GASPRICE", 0, 1, kGasBase);
  t.Def(Opcode::kExtcodesize, "EXTCODESIZE", 1, 1, kGasExt);
  t.Def(Opcode::kExtcodecopy, "EXTCODECOPY", 4, 0, kGasExt);
  t.Def(Opcode::kReturndatasize, "RETURNDATASIZE", 0, 1, kGasBase);
  t.Def(Opcode::kReturndatacopy, "RETURNDATACOPY", 3, 0, kGasVeryLow);
  t.Def(Opcode::kExtcodehash, "EXTCODEHASH", 1, 1, kGasExt);
  t.Def(Opcode::kBlockhash, "BLOCKHASH", 1, 1, kGasBlockhash);
  t.Def(Opcode::kCoinbase, "COINBASE", 0, 1, kGasBase);
  t.Def(Opcode::kTimestamp, "TIMESTAMP", 0, 1, kGasBase);
  t.Def(Opcode::kNumber, "NUMBER", 0, 1, kGasBase);
  t.Def(Opcode::kPrevrandao, "PREVRANDAO", 0, 1, kGasBase);
  t.Def(Opcode::kGaslimit, "GASLIMIT", 0, 1, kGasBase);
  t.Def(Opcode::kChainid, "CHAINID", 0, 1, kGasBase);
  t.Def(Opcode::kSelfbalance, "SELFBALANCE", 0, 1, kGasLow);
  t.Def(Opcode::kBasefee, "BASEFEE", 0, 1, kGasBase);
  t.Def(Opcode::kPop, "POP", 1, 0, kGasBase);
  t.Def(Opcode::kMload, "MLOAD", 1, 1, kGasVeryLow);
  t.Def(Opcode::kMstore, "MSTORE", 2, 0, kGasVeryLow);
  t.Def(Opcode::kMstore8, "MSTORE8", 2, 0, kGasVeryLow);
  t.Def(Opcode::kSload, "SLOAD", 1, 1, kGasSload);
  t.Def(Opcode::kSstore, "SSTORE", 2, 0, 0);  // Fully dynamic.
  t.Def(Opcode::kJump, "JUMP", 1, 0, kGasMid);
  t.Def(Opcode::kJumpi, "JUMPI", 2, 0, kGasHigh);
  t.Def(Opcode::kPc, "PC", 0, 1, kGasBase);
  t.Def(Opcode::kMsize, "MSIZE", 0, 1, kGasBase);
  t.Def(Opcode::kGas, "GAS", 0, 1, kGasBase);
  t.Def(Opcode::kJumpdest, "JUMPDEST", 0, 0, kGasJumpdest);
  for (int i = 0x5f; i <= 0x7f; ++i) {
    t.Def(static_cast<Opcode>(i), "PUSH", 0, 1, kGasVeryLow);
  }
  t.entries[0x5f].name = "PUSH0";
  for (int i = 0x80; i <= 0x8f; ++i) {
    int n = i - 0x7f;
    t.Def(static_cast<Opcode>(i), "DUP", static_cast<int8_t>(n), static_cast<int8_t>(n + 1),
          kGasVeryLow);
  }
  for (int i = 0x90; i <= 0x9f; ++i) {
    int n = i - 0x8f;
    t.Def(static_cast<Opcode>(i), "SWAP", static_cast<int8_t>(n + 1), static_cast<int8_t>(n + 1),
          kGasVeryLow);
  }
  for (int i = 0xa0; i <= 0xa4; ++i) {
    t.Def(static_cast<Opcode>(i), "LOG", static_cast<int8_t>(2 + (i - 0xa0)), 0,
          kGasLog);  // + 375/topic + 8/byte + memory.
  }
  t.Def(Opcode::kCall, "CALL", 7, 1, kGasCallBase);
  t.Def(Opcode::kReturn, "RETURN", 2, 0, kGasZero);
  t.Def(Opcode::kDelegatecall, "DELEGATECALL", 6, 1, kGasCallBase);
  t.Def(Opcode::kStaticcall, "STATICCALL", 6, 1, kGasCallBase);
  t.Def(Opcode::kRevert, "REVERT", 2, 0, kGasZero);
  t.Def(Opcode::kInvalid, "INVALID", 0, 0, kGasZero);
  // Pseudo-ops (log-only).
  t.Def(Opcode::kCommittedRead, "COMMITTED_READ", 0, 1, 0);
  t.Def(Opcode::kDebit, "DEBIT", 2, 1, 0);
  t.Def(Opcode::kCredit, "CREDIT", 2, 1, 0);
  t.Def(Opcode::kNonceBump, "NONCE_BUMP", 1, 1, 0);
  t.Def(Opcode::kSuperOp, "SUPER_OP", 0, 1, 0);
  t.Def(Opcode::kAssertEq, "ASSERT_EQ", 1, 0, 0);
  t.Def(Opcode::kAssertGe, "ASSERT_GE", 2, 0, 0);
  return t;
}

const Table& GetTable() {
  static const Table table = BuildTable();
  return table;
}

}  // namespace

const OpcodeTraits& TraitsOf(Opcode op) { return GetTable().entries[static_cast<uint8_t>(op)]; }

std::string_view OpcodeName(Opcode op) {
  const OpcodeTraits& t = TraitsOf(op);
  return t.defined ? t.name : "UNDEFINED";
}

}  // namespace pevm
