#include "src/evm/interpreter.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>

#include "src/evm/eval.h"
#include "src/support/keccak.h"

namespace pevm {
namespace {

// Memory is capped well below anything gas could pay for; keeps the quadratic
// cost arithmetic trivially overflow-free.
constexpr uint64_t kMemoryLimit = uint64_t{1} << 25;  // 32 MiB.

constexpr int64_t kCallValueGas = 9000;
constexpr int64_t kCallStipend = 2300;
constexpr int64_t kExpByteGas = 50;
constexpr int64_t kCopyWordGas = 3;
constexpr int64_t kSha3WordGas = 6;
constexpr int64_t kLogTopicGas = 375;
constexpr int64_t kLogDataGas = 8;
constexpr int64_t kSstoreSetGas = 20000;
constexpr int64_t kSstoreResetGas = 5000;

int64_t MemoryCost(uint64_t words) {
  return static_cast<int64_t>(3 * words + words * words / 512);
}

uint64_t WordCount(uint64_t bytes) { return (bytes + 31) / 32; }

}  // namespace

const char* EvmStatusName(EvmStatus s) {
  switch (s) {
    case EvmStatus::kSuccess:
      return "success";
    case EvmStatus::kRevert:
      return "revert";
    case EvmStatus::kOutOfGas:
      return "out of gas";
    case EvmStatus::kInvalidInstruction:
      return "invalid instruction";
    case EvmStatus::kStackUnderflow:
      return "stack underflow";
    case EvmStatus::kStackOverflow:
      return "stack overflow";
    case EvmStatus::kBadJumpDestination:
      return "bad jump destination";
    case EvmStatus::kStaticModeViolation:
      return "static mode violation";
    case EvmStatus::kCallDepthExceeded:
      return "call depth exceeded";
    case EvmStatus::kInsufficientBalance:
      return "insufficient balance";
    case EvmStatus::kDependencyAbort:
      return "dependency abort";
  }
  return "?";
}

struct Interpreter::Frame {
  const Message* msg = nullptr;
  const Bytes* code = nullptr;
  // Cached per-code-hash analysis (null when the interpreter has no
  // provider). Held by shared_ptr so a per-block cache can drop its entries
  // while this frame still runs.
  std::shared_ptr<const CodeAnalysis> analysis;
  const DecodedProgram* program = nullptr;  // Tier-1 dispatch table, may be null.
  // Lazy JUMPDEST bitmap for the no-provider path, built on first jump.
  std::vector<bool> local_jumpdests;
  bool local_jumpdests_built = false;
  std::vector<U256> stack;
  Bytes memory;
  Bytes returndata;
  size_t pc = 0;
  int64_t gas = 0;
  EvmStatus halt = EvmStatus::kSuccess;  // Meaningful once `halted`.
  bool halted = false;

  void Fail(EvmStatus status) {
    halt = status;
    halted = true;
  }

  bool Charge(int64_t amount) {
    gas -= amount;
    if (gas < 0) {
      gas = 0;
      Fail(EvmStatus::kOutOfGas);
      return false;
    }
    return true;
  }

  U256 Pop() {
    U256 v = stack.back();
    stack.pop_back();
    return v;
  }

  void Push(const U256& v) { stack.push_back(v); }

  // Expands memory to cover [offset, offset+len), charging the quadratic
  // expansion cost. No-op when len == 0.
  bool Expand(const U256& offset, const U256& len) {
    if (len.IsZero()) {
      return true;
    }
    if (!offset.FitsUint64() || !len.FitsUint64()) {
      Fail(EvmStatus::kOutOfGas);
      return false;
    }
    uint64_t off = offset.AsUint64();
    uint64_t n = len.AsUint64();
    if (off > kMemoryLimit || n > kMemoryLimit || off + n > kMemoryLimit) {
      Fail(EvmStatus::kOutOfGas);
      return false;
    }
    uint64_t new_size = WordCount(off + n) * 32;
    if (new_size <= memory.size()) {
      return true;
    }
    int64_t cost = MemoryCost(new_size / 32) - MemoryCost(memory.size() / 32);
    if (!Charge(cost)) {
      return false;
    }
    memory.resize(new_size, 0);
    return true;
  }

  BytesView MemView(uint64_t off, uint64_t len) const {
    return BytesView(memory.data() + off, len);
  }
};

const std::vector<bool>& Interpreter::Jumpdests(Frame& f) {
  if (f.analysis != nullptr) {
    return f.analysis->jumpdests;
  }
  if (!f.local_jumpdests_built) {
    const Bytes& code = *f.code;
    f.local_jumpdests.assign(code.size(), false);
    for (size_t i = 0; i < code.size(); ++i) {
      Opcode op = static_cast<Opcode>(code[i]);
      if (op == Opcode::kJumpdest) {
        f.local_jumpdests[i] = true;
      } else if (IsPush(op)) {
        i += static_cast<size_t>(PushSize(op));
      }
    }
    f.local_jumpdests_built = true;
  }
  return f.local_jumpdests;
}

void Interpreter::RunSegment(Frame& f, const SuperSegment& seg) {
  f.gas -= seg.total_gas;  // Precheck guaranteed gas >= total_gas.
  stats_.instructions += seg.op_count;

  // inputs[j] is the value at entry-stack depth j (0 = top).
  U256 inputs[kMaxSuperInputs];
  size_t size = f.stack.size();
  for (uint32_t j = 0; j < seg.pop_depth; ++j) {
    inputs[j] = f.stack[size - 1 - j];
  }
  f.stack.resize(size - seg.pop_depth);

  U256 outputs[kMaxSuperOutputs];
  U256 locals[kMaxSuperInputs];
  for (size_t i = 0; i < seg.outputs.size(); ++i) {
    const SuperExpr& expr = *seg.outputs[i];
    if (expr.IsPassthrough()) {
      outputs[i] = inputs[expr.input_depths[0]];
    } else {
      for (size_t k = 0; k < expr.input_depths.size(); ++k) {
        locals[k] = inputs[expr.input_depths[k]];
      }
      outputs[i] = EvalSuperExpr(expr, std::span<const U256>(locals, expr.input_depths.size()));
    }
    f.stack.push_back(outputs[i]);
  }
  if (tracer_ != nullptr) {
    tracer_->OnSuperOp(seg, std::span<const U256>(inputs, seg.pop_depth),
                       std::span<const U256>(outputs, seg.outputs.size()));
  }
  f.pc = seg.end_pc;
}

EvmResult Interpreter::Execute(const Message& msg) {
  const Bytes* code = host_->GetCode(msg.code_address);
  if (code == nullptr || code->empty()) {
    return {EvmStatus::kSuccess, msg.gas, {}};
  }
  return RunFrame(msg, *code);
}

EvmResult Interpreter::RunFrame(const Message& msg, const Bytes& code) {
  Frame f;
  f.msg = &msg;
  f.code = &code;
  f.gas = msg.gas;
  f.stack.reserve(64);
  if (provider_ != nullptr) {
    f.analysis = provider_->Analyze(code, host_->GetCodeHash(msg.code_address));
    f.program = f.analysis->program.load(std::memory_order_acquire);
  }
  if (tracer_ != nullptr) {
    tracer_->OnFrameEnter(msg);
  }

  U256 output_off;
  Bytes output;
  EvmStatus status = EvmStatus::kSuccess;

  while (true) {
    if (f.halted) {
      status = f.halt;
      break;
    }
    if (f.pc >= code.size()) {
      status = EvmStatus::kSuccess;  // Implicit STOP.
      break;
    }

    // Fused fast path: a superinstruction segment starts here and the static
    // precheck proves the per-op path could not fail mid-run — execute the
    // whole run as one fat op. On precheck failure we fall through to per-op
    // dispatch, which halts at exactly the op (and with exactly the status)
    // the unfused interpreter would have. The precheck depends only on
    // deterministic execution state, never on cache residency.
    if (f.analysis != nullptr && fuse_ok_) {
      int32_t seg_idx = f.analysis->segment_at[f.pc];
      if (seg_idx >= 0) {
        const SuperSegment& seg = f.analysis->segments[static_cast<size_t>(seg_idx)];
        if (f.stack.size() >= seg.min_height &&
            static_cast<int64_t>(f.stack.size()) + seg.max_growth <=
                static_cast<int64_t>(kMaxStack) &&
            f.gas >= seg.total_gas) {
          RunSegment(f, seg);
          continue;
        }
      }
    }

    Opcode op = static_cast<Opcode>(code[f.pc]);
    const OpcodeTraits& traits = TraitsOf(op);
    if (!traits.defined || op == Opcode::kInvalid) {
      status = EvmStatus::kInvalidInstruction;
      f.gas = 0;
      break;
    }
    if (f.stack.size() < static_cast<size_t>(traits.stack_pops)) {
      status = EvmStatus::kStackUnderflow;
      f.gas = 0;
      break;
    }
    if (f.stack.size() - static_cast<size_t>(traits.stack_pops) +
            static_cast<size_t>(traits.stack_pushes) > kMaxStack) {
      status = EvmStatus::kStackOverflow;
      f.gas = 0;
      break;
    }
    if (!f.Charge(traits.const_gas)) {
      status = EvmStatus::kOutOfGas;
      break;
    }
    ++stats_.instructions;
    size_t next_pc = f.pc + 1;

    // --- Generic classes first. ---
    if (IsPush(op)) {
      if (f.program != nullptr) {
        // Tier-1: immediate pre-decoded at promotion time.
        const DecodedInsn& insn = f.program->at[f.pc];
        f.Push(insn.immediate);
        next_pc = insn.next_pc;
      } else {
        int n = PushSize(op);
        Bytes imm(static_cast<size_t>(n), 0);
        for (int i = 0; i < n; ++i) {
          size_t idx = f.pc + 1 + static_cast<size_t>(i);
          imm[static_cast<size_t>(i)] = idx < code.size() ? code[idx] : 0;
        }
        f.Push(U256::FromBigEndian(imm));
        next_pc = f.pc + 1 + static_cast<size_t>(n);
      }
      if (tracer_ != nullptr) {
        tracer_->OnPush();
      }
      f.pc = next_pc;
      continue;
    }
    if (IsDup(op)) {
      int n = DupIndex(op);
      f.Push(f.stack[f.stack.size() - static_cast<size_t>(n)]);
      if (tracer_ != nullptr) {
        tracer_->OnDup(n);
      }
      f.pc = next_pc;
      continue;
    }
    if (IsSwap(op)) {
      int n = SwapIndex(op);
      std::swap(f.stack[f.stack.size() - 1], f.stack[f.stack.size() - 1 - static_cast<size_t>(n)]);
      if (tracer_ != nullptr) {
        tracer_->OnSwap(n);
      }
      f.pc = next_pc;
      continue;
    }
    if (IsPureOp(op)) {
      std::array<U256, 3> ops;
      int pops = traits.stack_pops;
      for (int i = 0; i < pops; ++i) {
        ops[static_cast<size_t>(i)] = f.Pop();
      }
      if (op == Opcode::kExp) {
        if (!f.Charge(kExpByteGas * ops[1].ByteLength())) {
          continue;
        }
      }
      U256 result = EvalPure(op, std::span<const U256>(ops.data(), static_cast<size_t>(pops)));
      f.Push(result);
      if (tracer_ != nullptr) {
        tracer_->OnPureOp(op, std::span<const U256>(ops.data(), static_cast<size_t>(pops)),
                          result);
      }
      f.pc = next_pc;
      continue;
    }
    if (IsLog(op)) {
      if (msg.is_static) {
        status = EvmStatus::kStaticModeViolation;
        f.gas = 0;
        break;
      }
      int topics = LogTopics(op);
      std::array<U256, 6> ops;
      for (int i = 0; i < 2 + topics; ++i) {
        ops[static_cast<size_t>(i)] = f.Pop();
      }
      const U256& len = ops[1];
      if (!len.FitsUint64() ||
          !f.Charge(kLogTopicGas * topics +
                    kLogDataGas * static_cast<int64_t>(len.AsUint64Saturated())) ||
          !f.Expand(ops[0], len)) {
        continue;
      }
      // Event payloads do not affect the world state; nothing else to do.
      if (tracer_ != nullptr) {
        tracer_->OnOpaqueOp(op, std::span<const U256>(ops.data(), static_cast<size_t>(2 + topics)),
                            0);
      }
      f.pc = next_pc;
      continue;
    }

    switch (op) {
      case Opcode::kStop:
        status = EvmStatus::kSuccess;
        break;
      case Opcode::kReturn:
      case Opcode::kRevert: {
        U256 off = f.Pop();
        U256 len = f.Pop();
        if (!f.Expand(off, len)) {
          continue;
        }
        if (!len.IsZero()) {
          output.assign(f.memory.begin() + static_cast<long>(off.AsUint64()),
                        f.memory.begin() + static_cast<long>(off.AsUint64() + len.AsUint64()));
          output_off = off;
        }
        status = op == Opcode::kReturn ? EvmStatus::kSuccess : EvmStatus::kRevert;
        break;
      }

      case Opcode::kAddress:
        f.Push(U256::FromAddress(msg.storage_address));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kOrigin:
        f.Push(U256::FromAddress(tx_->origin));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kCaller:
        f.Push(U256::FromAddress(msg.caller));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kCallvalue:
        f.Push(msg.value);
        if (tracer_ != nullptr) {
          tracer_->OnCallValue();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kGasprice:
        f.Push(tx_->gas_price);
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kCalldatasize:
        f.Push(U256(msg.data.size()));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kCodesize:
        f.Push(U256(code.size()));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kReturndatasize:
        f.Push(U256(f.returndata.size()));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kCoinbase:
        f.Push(U256::FromAddress(block_->coinbase));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kTimestamp:
        f.Push(block_->timestamp);
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kNumber:
        f.Push(block_->number);
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kPrevrandao:
        f.Push(block_->prevrandao);
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kGaslimit:
        f.Push(block_->gas_limit);
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kChainid:
        f.Push(block_->chain_id);
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kBasefee:
        f.Push(block_->base_fee);
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kPc:
        f.Push(U256(f.pc));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kMsize:
        f.Push(U256(f.memory.size()));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kGas:
        f.Push(U256(static_cast<uint64_t>(f.gas)));
        if (tracer_ != nullptr) {
          tracer_->OnPush();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kPop:
        f.Pop();
        if (tracer_ != nullptr) {
          tracer_->OnPop();
        }
        f.pc = next_pc;
        continue;
      case Opcode::kJumpdest:
        f.pc = next_pc;
        continue;

      case Opcode::kCalldataload: {
        U256 off = f.Pop();
        Bytes word(32, 0);
        if (off.FitsUint64() && off.AsUint64() < msg.data.size()) {
          uint64_t o = off.AsUint64();
          size_t n = std::min<size_t>(32, msg.data.size() - o);
          std::memcpy(word.data(), msg.data.data() + o, n);
        }
        U256 result = U256::FromBigEndian(word);
        f.Push(result);
        if (tracer_ != nullptr) {
          tracer_->OnCalldataLoad(off, result);
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kBalance: {
        U256 a = f.Pop();
        Address addr = a.ToAddress();
        U256 bal = host_->GetBalance(addr);
        ++stats_.sloads;
        if (host_->ShouldAbortExecution()) {
          status = EvmStatus::kDependencyAbort;
          break;
        }
        f.Push(bal);
        if (tracer_ != nullptr) {
          tracer_->OnBalanceRead(op, addr, bal, /*has_operand=*/true);
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kSelfbalance: {
        U256 bal = host_->GetBalance(msg.storage_address);
        ++stats_.sloads;
        if (host_->ShouldAbortExecution()) {
          status = EvmStatus::kDependencyAbort;
          break;
        }
        f.Push(bal);
        if (tracer_ != nullptr) {
          tracer_->OnBalanceRead(op, msg.storage_address, bal, /*has_operand=*/false);
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kExtcodesize: {
        U256 a = f.Pop();
        const Bytes* c = host_->GetCode(a.ToAddress());
        f.Push(U256(c == nullptr ? 0 : c->size()));
        if (tracer_ != nullptr) {
          std::array<U256, 1> ops = {a};
          tracer_->OnOpaqueOp(op, ops, 1);
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kExtcodehash: {
        U256 a = f.Pop();
        const Bytes* c = host_->GetCode(a.ToAddress());
        f.Push(c == nullptr ? U256{} : Keccak256Word(*c));
        if (tracer_ != nullptr) {
          std::array<U256, 1> ops = {a};
          tracer_->OnOpaqueOp(op, ops, 1);
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kBlockhash: {
        U256 n = f.Pop();
        // Synthetic but deterministic block hashes.
        std::array<uint8_t, 32> be = n.ToBigEndian();
        f.Push(Keccak256Word(BytesView(be.data(), be.size())));
        if (tracer_ != nullptr) {
          std::array<U256, 1> ops = {n};
          tracer_->OnOpaqueOp(op, ops, 1);
        }
        f.pc = next_pc;
        continue;
      }

      case Opcode::kMload: {
        U256 off = f.Pop();
        if (!f.Expand(off, U256(32))) {
          continue;
        }
        uint64_t o = off.AsUint64();
        U256 result = U256::FromBigEndian(f.MemView(o, 32));
        f.Push(result);
        if (tracer_ != nullptr) {
          tracer_->OnMload(off, f.MemView(o, 32));
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kMstore: {
        U256 off = f.Pop();
        U256 value = f.Pop();
        if (!f.Expand(off, U256(32))) {
          continue;
        }
        std::array<uint8_t, 32> be = value.ToBigEndian();
        std::memcpy(f.memory.data() + off.AsUint64(), be.data(), 32);
        if (tracer_ != nullptr) {
          tracer_->OnMstore(op, off, value);
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kMstore8: {
        U256 off = f.Pop();
        U256 value = f.Pop();
        if (!f.Expand(off, U256(1))) {
          continue;
        }
        f.memory[off.AsUint64()] = static_cast<uint8_t>(value.limb(0) & 0xff);
        if (tracer_ != nullptr) {
          tracer_->OnMstore(op, off, value);
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kCalldatacopy:
      case Opcode::kCodecopy:
      case Opcode::kReturndatacopy: {
        std::array<U256, 3> ops = {f.Pop(), f.Pop(), f.Pop()};  // dst, src, len.
        const U256& len = ops[2];
        if (!len.FitsUint64() ||
            !f.Charge(kCopyWordGas * static_cast<int64_t>(WordCount(len.AsUint64Saturated())))) {
          if (!f.halted) {
            f.Fail(EvmStatus::kOutOfGas);
          }
          continue;
        }
        if (!f.Expand(ops[0], len)) {
          continue;
        }
        uint64_t n = len.AsUint64();
        BytesView src_buf;
        CopySource source = CopySource::kCalldata;
        if (op == Opcode::kCalldatacopy) {
          src_buf = msg.data;
        } else if (op == Opcode::kCodecopy) {
          src_buf = code;
          source = CopySource::kCode;
        } else {
          src_buf = f.returndata;
          source = CopySource::kReturndata;
          // EIP-211: reading past the end of returndata is an exceptional halt.
          if (!ops[1].FitsUint64() || ops[1].AsUint64() + n > src_buf.size()) {
            f.Fail(EvmStatus::kOutOfGas);
            continue;
          }
        }
        uint64_t src = ops[1].AsUint64Saturated();
        if (n > 0) {
          uint64_t dst = ops[0].AsUint64();
          for (uint64_t i = 0; i < n; ++i) {
            f.memory[dst + i] = (src + i < src_buf.size()) ? src_buf[src + i] : 0;
          }
          if (tracer_ != nullptr) {
            tracer_->OnMemCopy(source, ops, dst, src, n);
          }
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kExtcodecopy: {
        std::array<U256, 4> ops = {f.Pop(), f.Pop(), f.Pop(), f.Pop()};  // addr, dst, src, len.
        const U256& len = ops[3];
        if (!len.FitsUint64() ||
            !f.Charge(kCopyWordGas * static_cast<int64_t>(WordCount(len.AsUint64Saturated())))) {
          if (!f.halted) {
            f.Fail(EvmStatus::kOutOfGas);
          }
          continue;
        }
        if (!f.Expand(ops[1], len)) {
          continue;
        }
        uint64_t n = len.AsUint64();
        if (n > 0) {
          const Bytes* ext = host_->GetCode(ops[0].ToAddress());
          uint64_t dst = ops[1].AsUint64();
          uint64_t src = ops[2].AsUint64Saturated();
          for (uint64_t i = 0; i < n; ++i) {
            f.memory[dst + i] = (ext != nullptr && src + i < ext->size()) ? (*ext)[src + i] : 0;
          }
          if (tracer_ != nullptr) {
            tracer_->OnMemCopy(CopySource::kCode, ops, dst, src, n);
          }
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kSha3: {
        std::array<U256, 2> ops = {f.Pop(), f.Pop()};  // off, len.
        const U256& len = ops[1];
        if (!len.FitsUint64() ||
            !f.Charge(kSha3WordGas * static_cast<int64_t>(WordCount(len.AsUint64Saturated())))) {
          if (!f.halted) {
            f.Fail(EvmStatus::kOutOfGas);
          }
          continue;
        }
        if (!f.Expand(ops[0], len)) {
          continue;
        }
        BytesView data =
            len.IsZero() ? BytesView{} : f.MemView(ops[0].AsUint64(), len.AsUint64());
        U256 result = Keccak256Word(data);
        stats_.sha3_words += WordCount(data.size());
        f.Push(result);
        if (tracer_ != nullptr) {
          tracer_->OnSha3(ops, data, result);
        }
        f.pc = next_pc;
        continue;
      }

      case Opcode::kSload: {
        U256 slot = f.Pop();
        U256 value = host_->GetStorage(msg.storage_address, slot);
        ++stats_.sloads;
        if (host_->ShouldAbortExecution()) {
          status = EvmStatus::kDependencyAbort;
          break;
        }
        f.Push(value);
        if (tracer_ != nullptr) {
          tracer_->OnSload(msg.storage_address, slot, value);
        }
        f.pc = next_pc;
        continue;
      }
      case Opcode::kSstore: {
        if (msg.is_static) {
          status = EvmStatus::kStaticModeViolation;
          f.gas = 0;
          break;
        }
        U256 slot = f.Pop();
        U256 value = f.Pop();
        U256 current = host_->GetStorage(msg.storage_address, slot);
        if (host_->ShouldAbortExecution()) {
          status = EvmStatus::kDependencyAbort;
          break;
        }
        int64_t dyn = (current.IsZero() && !value.IsZero()) ? kSstoreSetGas : kSstoreResetGas;
        if (!f.Charge(dyn)) {
          continue;
        }
        host_->SetStorage(msg.storage_address, slot, value);
        ++stats_.sstores;
        stats_.sstore_gas += static_cast<uint64_t>(dyn);
        if (tracer_ != nullptr) {
          tracer_->OnSstore(msg.storage_address, slot, value, dyn);
        }
        f.pc = next_pc;
        continue;
      }

      case Opcode::kJump: {
        U256 dest = f.Pop();
        if (tracer_ != nullptr) {
          tracer_->OnJump(dest);
        }
        const std::vector<bool>& map = Jumpdests(f);
        if (!dest.FitsUint64() || dest.AsUint64() >= map.size() || !map[dest.AsUint64()]) {
          status = EvmStatus::kBadJumpDestination;
          f.gas = 0;
          break;
        }
        f.pc = dest.AsUint64();
        continue;
      }
      case Opcode::kJumpi: {
        U256 dest = f.Pop();
        U256 cond = f.Pop();
        if (tracer_ != nullptr) {
          tracer_->OnJumpi(dest, cond);
        }
        if (cond.IsZero()) {
          f.pc = next_pc;
          continue;
        }
        const std::vector<bool>& map = Jumpdests(f);
        if (!dest.FitsUint64() || dest.AsUint64() >= map.size() || !map[dest.AsUint64()]) {
          status = EvmStatus::kBadJumpDestination;
          f.gas = 0;
          break;
        }
        f.pc = dest.AsUint64();
        continue;
      }

      case Opcode::kCall:
      case Opcode::kDelegatecall:
      case Opcode::kStaticcall: {
        EvmStatus call_status = DoCall(f, op) ? EvmStatus::kSuccess : f.halt;
        if (call_status != EvmStatus::kSuccess) {
          status = call_status;
          break;
        }
        f.pc = next_pc;
        continue;
      }

      default:
        status = EvmStatus::kInvalidInstruction;
        f.gas = 0;
        break;
    }
    break;  // Any path that did not `continue` halts the frame.
  }

  if (f.halted && status == EvmStatus::kSuccess) {
    status = f.halt;
  }
  if (IsExceptionalHalt(status)) {
    f.gas = 0;
    output.clear();
    output_off = U256{};
  }
  if (tracer_ != nullptr) {
    tracer_->OnFrameExit(status, output_off.AsUint64Saturated(), output);
  }
  return {status, f.gas, std::move(output)};
}

bool Interpreter::DoCall(Frame& f, Opcode op) {
  ++stats_.calls;
  const Message& msg = *f.msg;
  bool has_value = op == Opcode::kCall;
  std::array<U256, 7> ops;
  size_t n_ops = has_value ? 7 : 6;
  for (size_t i = 0; i < n_ops; ++i) {
    ops[i] = f.Pop();
  }
  const U256& req_gas = ops[0];
  Address to = ops[1].ToAddress();
  U256 value = has_value ? ops[2] : U256{};
  const U256& in_off = ops[has_value ? 3 : 2];
  const U256& in_len = ops[has_value ? 4 : 3];
  const U256& out_off = ops[has_value ? 5 : 4];
  const U256& out_len = ops[has_value ? 6 : 5];

  if (msg.is_static && !value.IsZero()) {
    f.Fail(EvmStatus::kStaticModeViolation);
    f.gas = 0;
    return false;
  }
  if (!value.IsZero() && !f.Charge(kCallValueGas)) {
    return false;
  }
  if (!f.Expand(in_off, in_len) || !f.Expand(out_off, out_len)) {
    return false;
  }

  // EIP-150: forward at most 63/64 of the remaining gas. Requested amounts
  // beyond int64 range (adversarial PUSHes) clamp to the cap.
  int64_t cap = f.gas - f.gas / 64;
  bool req_small = req_gas.FitsUint64() &&
                   req_gas.AsUint64() <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) &&
                   static_cast<int64_t>(req_gas.AsUint64()) < cap;
  int64_t fwd = req_small ? static_cast<int64_t>(req_gas.AsUint64()) : cap;
  if (!f.Charge(fwd)) {
    return false;
  }
  if (!value.IsZero()) {
    fwd += kCallStipend;
  }

  // Build the callee message.
  Message child;
  child.call_kind = op;
  child.code_address = to;
  child.caller = msg.storage_address;
  child.value = value;
  child.is_static = msg.is_static || op == Opcode::kStaticcall;
  child.depth = msg.depth + 1;
  child.gas = fwd;
  if (op == Opcode::kDelegatecall) {
    child.storage_address = msg.storage_address;
    child.caller = msg.caller;
    child.value = msg.value;
  } else {
    child.storage_address = to;
  }
  if (!in_len.IsZero()) {
    uint64_t o = in_off.AsUint64();
    uint64_t n = in_len.AsUint64();
    child.data.assign(f.memory.begin() + static_cast<long>(o),
                      f.memory.begin() + static_cast<long>(o + n));
  }

  if (tracer_ != nullptr) {
    tracer_->OnCall(op, std::span<const U256>(ops.data(), n_ops), child);
  }

  bool success = false;
  f.returndata.clear();
  if (msg.depth + 1 > kMaxCallDepth) {
    f.gas += fwd;  // Not consumed.
    if (tracer_ != nullptr) {
      tracer_->OnCallSkipped(EvmStatus::kCallDepthExceeded);
    }
  } else if (!value.IsZero() && host_->GetBalance(msg.storage_address) < value) {
    f.gas += fwd;
    if (tracer_ != nullptr) {
      tracer_->OnCallSkipped(EvmStatus::kInsufficientBalance);
    }
  } else {
    size_t snapshot = host_->Snapshot();
    if (!value.IsZero()) {
      U256 from_before = host_->GetBalance(msg.storage_address);
      host_->SetBalance(msg.storage_address, from_before - value);
      // Credit reads after the debit so a self-call with value nets to zero
      // (SubBalance/AddBalance order), matching the SSA log's dataflow.
      U256 to_before = host_->GetBalance(to);
      host_->SetBalance(to, to_before + value);
      if (tracer_ != nullptr) {
        tracer_->OnValueTransfer(msg.storage_address, from_before, to, to_before, value);
      }
    }
    const Bytes* code = host_->GetCode(child.code_address);
    EvmResult r;
    if (code == nullptr || code->empty()) {
      r = {EvmStatus::kSuccess, child.gas, {}};
    } else {
      r = RunFrame(child, *code);
    }
    if (r.status == EvmStatus::kDependencyAbort) {
      f.Fail(EvmStatus::kDependencyAbort);
      return false;
    }
    success = r.status == EvmStatus::kSuccess;
    if (!success) {
      host_->RevertToSnapshot(snapshot);
    }
    f.returndata = std::move(r.output);
    f.gas += r.gas_left;
  }

  // Copy the returndata prefix into the caller's output area.
  uint64_t written = 0;
  if (!out_len.IsZero()) {
    uint64_t dst = out_off.AsUint64();
    written = std::min<uint64_t>(out_len.AsUint64(), f.returndata.size());
    if (written > 0) {
      std::memcpy(f.memory.data() + dst, f.returndata.data(), written);
    }
  }
  f.Push(U256(success ? 1 : 0));
  if (tracer_ != nullptr) {
    tracer_->OnCallDone(out_off.AsUint64Saturated(), written, success);
  }
  return true;
}

}  // namespace pevm
