// A from-scratch EVM bytecode interpreter (yellow-paper semantics for the
// opcode subset in src/evm/opcode.h): 1024-entry word stack, byte-addressable
// expanding memory, gas metering with dynamic costs, nested message calls
// with revert semantics, and a Tracer narration channel rich enough to build
// SSA operation logs.
#ifndef SRC_EVM_INTERPRETER_H_
#define SRC_EVM_INTERPRETER_H_

#include <vector>

#include "src/codecache/program.h"
#include "src/evm/evm_types.h"
#include "src/evm/host.h"
#include "src/evm/tracer.h"

namespace pevm {

inline constexpr int kMaxCallDepth = 1024;
inline constexpr size_t kMaxStack = 1024;

class Interpreter {
 public:
  // `tracer` and `provider` may be null. All references must outlive the
  // interpreter. With a provider, frames run against the cached per-code-hash
  // analysis: JUMPDEST lookups hit the shared bitmap, straight-line fusible
  // runs execute as superinstructions (when the tracer opts in via
  // WantsSuperOps — or there is no tracer), and tier-1-promoted code uses the
  // pre-decoded dispatch table. Without a provider every frame lazily builds
  // its own JUMPDEST map and dispatch is per-op — identical results either
  // way.
  Interpreter(Host& host, const BlockContext& block, const TxContext& tx,
              Tracer* tracer = nullptr, CodeProvider* provider = nullptr)
      : host_(&host),
        block_(&block),
        tx_(&tx),
        tracer_(tracer),
        provider_(provider),
        fuse_ok_(tracer == nullptr || tracer->WantsSuperOps()) {}

  // Executes a message call against the host. Exceptional halts consume all
  // frame gas; kRevert returns remaining gas and the revert payload.
  EvmResult Execute(const Message& msg);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats{}; }

 private:
  struct Frame;

  EvmResult RunFrame(const Message& msg, const Bytes& code);
  // Handles CALL/DELEGATECALL/STATICCALL inside `frame`; returns false on an
  // exceptional halt of the *caller* frame (bad operands / OOG).
  bool DoCall(Frame& frame, Opcode op);

  // Executes one fused segment whose static precheck passed: charges
  // total_gas, pops pop_depth entries, pushes the output expressions' values,
  // fires one OnSuperOp.
  void RunSegment(Frame& frame, const SuperSegment& seg);

  const std::vector<bool>& Jumpdests(Frame& frame);

  Host* host_;
  const BlockContext* block_;
  const TxContext* tx_;
  Tracer* tracer_;
  CodeProvider* provider_;
  // The attached tracer understands fused-segment events (no tracer counts).
  bool fuse_ok_;
  ExecStats stats_;
};

}  // namespace pevm

#endif  // SRC_EVM_INTERPRETER_H_
