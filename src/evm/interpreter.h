// A from-scratch EVM bytecode interpreter (yellow-paper semantics for the
// opcode subset in src/evm/opcode.h): 1024-entry word stack, byte-addressable
// expanding memory, gas metering with dynamic costs, nested message calls
// with revert semantics, and a Tracer narration channel rich enough to build
// SSA operation logs.
#ifndef SRC_EVM_INTERPRETER_H_
#define SRC_EVM_INTERPRETER_H_

#include <unordered_map>
#include <vector>

#include "src/evm/evm_types.h"
#include "src/evm/host.h"
#include "src/evm/tracer.h"

namespace pevm {

inline constexpr int kMaxCallDepth = 1024;
inline constexpr size_t kMaxStack = 1024;

class Interpreter {
 public:
  // `tracer` may be null. All references must outlive the interpreter.
  Interpreter(Host& host, const BlockContext& block, const TxContext& tx,
              Tracer* tracer = nullptr)
      : host_(&host), block_(&block), tx_(&tx), tracer_(tracer) {}

  // Executes a message call against the host. Exceptional halts consume all
  // frame gas; kRevert returns remaining gas and the revert payload.
  EvmResult Execute(const Message& msg);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats{}; }

 private:
  struct Frame;

  EvmResult RunFrame(const Message& msg, const Bytes& code);
  // Handles CALL/DELEGATECALL/STATICCALL inside `frame`; returns false on an
  // exceptional halt of the *caller* frame (bad operands / OOG).
  bool DoCall(Frame& frame, Opcode op);

  const std::vector<bool>& JumpdestMap(const Bytes& code);

  Host* host_;
  const BlockContext* block_;
  const TxContext* tx_;
  Tracer* tracer_;
  ExecStats stats_;
  // JUMPDEST bitmaps keyed by code identity (code storage is stable for the
  // lifetime of a block execution).
  std::unordered_map<const uint8_t*, std::vector<bool>> jumpdest_cache_;
};

}  // namespace pevm

#endif  // SRC_EVM_INTERPRETER_H_
