// Common EVM execution types: statuses, call messages, block/tx contexts.
#ifndef SRC_EVM_EVM_TYPES_H_
#define SRC_EVM_EVM_TYPES_H_

#include <cstdint>

#include "src/evm/opcode.h"
#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

enum class EvmStatus : uint8_t {
  kSuccess = 0,
  kRevert,              // Explicit REVERT: state rolled back, remaining gas returned.
  kOutOfGas,            // Exceptional halts: all frame gas consumed.
  kInvalidInstruction,
  kStackUnderflow,
  kStackOverflow,
  kBadJumpDestination,
  kStaticModeViolation,
  kCallDepthExceeded,
  kInsufficientBalance,  // Value transfer lacked funds (call returns 0).
  kDependencyAbort,      // Host asked to stop (Block-STM read of an ESTIMATE).
};

constexpr bool IsExceptionalHalt(EvmStatus s) {
  return s != EvmStatus::kSuccess && s != EvmStatus::kRevert &&
         s != EvmStatus::kDependencyAbort;
}

const char* EvmStatusName(EvmStatus s);

struct EvmResult {
  EvmStatus status = EvmStatus::kSuccess;
  int64_t gas_left = 0;
  Bytes output;  // RETURN or REVERT payload.
};

struct BlockContext {
  U256 number;
  U256 timestamp;
  U256 gas_limit{30'000'000};
  U256 base_fee;
  U256 prevrandao;
  U256 chain_id{1};
  Address coinbase;
};

struct TxContext {
  Address origin;
  U256 gas_price;
};

// One message-call frame's parameters.
struct Message {
  Opcode call_kind = Opcode::kCall;  // kCall / kDelegatecall / kStaticcall.
  Address code_address;              // Whose code runs.
  Address storage_address;           // Whose storage/balance context applies.
  Address caller;
  U256 value;        // Apparent value (CALLVALUE); transfers only for kCall.
  Bytes data;        // Calldata.
  int64_t gas = 0;   // Gas available to this frame.
  bool is_static = false;
  int depth = 0;
};

// Counters the cost model consumes to convert an execution into virtual time
// (see sim::CostModel). Gas alone is a poor proxy because storage dominates
// real execution time, so storage operations are broken out.
struct ExecStats {
  uint64_t instructions = 0;  // EVM instructions executed (all frames).
  uint64_t gas_used = 0;      // Filled by ApplyTransaction.
  uint64_t sloads = 0;        // SLOAD + BALANCE-style committed reads.
  uint64_t sstores = 0;
  uint64_t sstore_gas = 0;    // Total dynamic gas charged by SSTOREs.
  uint64_t sha3_words = 0;
  uint64_t calls = 0;

  ExecStats& operator+=(const ExecStats& o) {
    instructions += o.instructions;
    gas_used += o.gas_used;
    sloads += o.sloads;
    sstores += o.sstores;
    sstore_gas += o.sstore_gas;
    sha3_words += o.sha3_words;
    calls += o.calls;
    return *this;
  }

  friend bool operator==(const ExecStats&, const ExecStats&) = default;
};

}  // namespace pevm

#endif  // SRC_EVM_EVM_TYPES_H_
