#include "src/kv/crc32.h"

#include <array>

namespace pevm {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Reflected Castagnoli.

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(BytesView data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (uint8_t b : data) {
    crc = kTable[(crc ^ b) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace pevm
