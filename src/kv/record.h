// On-disk record framing for the embedded KV store's append-only segment
// files, plus the WriteBatch the commit protocol is built on.
//
// Segment file layout:
//
//   [8-byte header: magic "PKVS" + u32 segment id (LE)]
//   record*
//
// Record layout (everything little-endian):
//
//   [u32 masked crc32c(payload)] [u32 payload length] [payload]
//
// Payload layout by record type (first payload byte):
//
//   kPut:    [u8 type][u32 key length][key bytes][value bytes]
//   kDelete: [u8 type][u32 key length][key bytes]
//   kCommit: [u8 type][u64 sequence]
//
// Commit protocol: a WriteBatch is appended as its kPut/kDelete records
// followed by one kCommit marker carrying the store's monotonically
// increasing batch sequence. Recovery (kv_store.cc) buffers records and
// applies them to the index only when it reaches a valid kCommit — a torn or
// CRC-corrupt record, or a batch with no marker, means everything after the
// last good marker is dropped and the file is truncated there. The marker is
// therefore the atomicity boundary: a batch is either fully visible after
// reopen or not at all.
#ifndef SRC_KV_RECORD_H_
#define SRC_KV_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/bytes.h"

namespace pevm {

inline constexpr uint32_t kSegmentMagic = 0x53564b50u;  // "PKVS" little-endian.
inline constexpr size_t kSegmentHeaderSize = 8;
inline constexpr size_t kRecordHeaderSize = 8;  // crc + length.

enum class RecordType : uint8_t {
  kPut = 1,
  kDelete = 2,
  kCommit = 3,
};

// One decoded record. Key/value are views into the caller's scan buffer.
struct Record {
  RecordType type = RecordType::kPut;
  std::string_view key;
  BytesView value;
  uint64_t sequence = 0;  // kCommit only.
};

// Little-endian integer helpers shared by the framing and the keyspace
// encodings layered on top of the store.
void AppendU32(Bytes& out, uint32_t v);
void AppendU64(Bytes& out, uint64_t v);
uint32_t ReadU32(const uint8_t* p);
uint64_t ReadU64(const uint8_t* p);

// Appends one framed record to `out`.
void AppendPutRecord(Bytes& out, std::string_view key, BytesView value);
void AppendDeleteRecord(Bytes& out, std::string_view key);
void AppendCommitRecord(Bytes& out, uint64_t sequence);

// Result of decoding one record at an offset in a segment buffer.
enum class DecodeStatus {
  kOk,
  kEndOfBuffer,  // Clean end: offset == buffer size.
  kTorn,         // Partial header/payload: the tail was cut mid-record.
  kCorrupt,      // CRC mismatch or malformed payload.
};

// Decodes the record at `buffer[offset...]`; on kOk advances *offset past it
// and fills *record (views point into `buffer`).
DecodeStatus DecodeRecord(BytesView buffer, size_t* offset, Record* record);

// An ordered set of mutations committed atomically (one commit marker, at
// most one fsync). Later operations on the same key win, matching apply
// order.
class WriteBatch {
 public:
  void Put(std::string_view key, BytesView value) {
    ops_.push_back({std::string(key), Bytes(value.begin(), value.end()), false});
  }
  void Delete(std::string_view key) { ops_.push_back({std::string(key), {}, true}); }
  void Clear() { ops_.clear(); }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

  struct Op {
    std::string key;
    Bytes value;
    bool is_delete = false;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

}  // namespace pevm

#endif  // SRC_KV_RECORD_H_
