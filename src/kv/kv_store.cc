#include "src/kv/kv_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace pevm {
namespace {

namespace fs = std::filesystem;

[[noreturn]] void FatalIo(const char* what, const std::string& path) {
  std::fprintf(stderr, "kv: fatal I/O error: %s (%s): %s\n", what, path.c_str(),
               std::strerror(errno));
  std::abort();
}

std::string SegmentPathFor(const std::string& dir, uint32_t id) {
  char name[32];
  std::snprintf(name, sizeof(name), "%06u.seg", id);
  return dir + "/" + name;
}

// Durability of directory entries: a freshly created (or unlinked) segment
// file must survive a crash, not just its contents.
void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

KvStore::Segment::~Segment() {
  if (fd >= 0) {
    ::close(fd);
  }
}

KvStore::KvStore(std::string dir, const KvOptions& options)
    : dir_(std::move(dir)), options_(options), cache_shards_(kCacheShards) {}

std::unique_ptr<KvStore> KvStore::Open(const std::string& dir, const KvOptions& options,
                                       std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create directory " + dir + ": " + ec.message();
    }
    return nullptr;
  }
  std::unique_ptr<KvStore> store(new KvStore(dir, options));
  std::string local_error;
  if (!store->Recover(&local_error)) {
    if (error != nullptr) {
      *error = local_error;
    }
    return nullptr;
  }
  if (store->options_.background_compaction) {
    store->compaction_thread_ = std::thread(&KvStore::CompactionLoop, store.get());
  }
  return store;
}

KvStore::~KvStore() {
  if (compaction_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(compact_mu_);
      stop_compaction_ = true;
    }
    compact_cv_.notify_all();
    compaction_thread_.join();
  }
}

std::shared_ptr<KvStore::Segment> KvStore::CreateSegment(uint32_t id) {
  auto segment = std::make_shared<Segment>();
  segment->id = id;
  segment->path = SegmentPathFor(dir_, id);
  segment->fd = ::open(segment->path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (segment->fd < 0) {
    FatalIo("open segment", segment->path);
  }
  Bytes header;
  AppendU32(header, kSegmentMagic);
  AppendU32(header, id);
  if (::pwrite(segment->fd, header.data(), header.size(), 0) !=
      static_cast<ssize_t>(header.size())) {
    FatalIo("write segment header", segment->path);
  }
  segment->size = kSegmentHeaderSize;
  if (options_.fsync) {
    SyncDir(dir_);
  }
  return segment;
}

bool KvStore::ReplaySegment(const std::shared_ptr<Segment>& segment, Bytes&& content,
                            bool* stop_after, std::string* error) {
  struct PendingOp {
    bool is_delete = false;
    std::string key;
    ValueLoc loc;
    uint32_t record_bytes = 0;
  };
  std::vector<PendingOp> pending;
  size_t offset = kSegmentHeaderSize;
  size_t committed_end = kSegmentHeaderSize;
  bool truncate_here = false;

  while (true) {
    size_t record_at = offset;
    Record record;
    DecodeStatus status = DecodeRecord(content, &offset, &record);
    if (status == DecodeStatus::kEndOfBuffer) {
      // Clean end — but uncommitted trailing records (no marker) still roll
      // back, exactly as a torn tail would.
      truncate_here = !pending.empty();
      break;
    }
    if (status != DecodeStatus::kOk) {
      truncate_here = true;
      break;
    }
    switch (record.type) {
      case RecordType::kPut: {
        PendingOp op;
        op.key.assign(record.key);
        op.loc.segment_id = segment->id;
        op.loc.value_size = static_cast<uint32_t>(record.value.size());
        op.loc.value_offset =
            static_cast<uint64_t>(record.value.data() - content.data());
        op.loc.record_bytes = static_cast<uint32_t>(offset - record_at);
        op.record_bytes = op.loc.record_bytes;
        pending.push_back(std::move(op));
        break;
      }
      case RecordType::kDelete: {
        PendingOp op;
        op.is_delete = true;
        op.key.assign(record.key);
        op.record_bytes = static_cast<uint32_t>(offset - record_at);
        pending.push_back(std::move(op));
        break;
      }
      case RecordType::kCommit: {
        for (const PendingOp& op : pending) {
          if (op.is_delete) {
            IndexDelete(op.key, op.record_bytes);
          } else {
            IndexPut(op.key, op.loc);
          }
        }
        pending.clear();
        next_sequence_ = std::max(next_sequence_, record.sequence + 1);
        ++recovered_batches_;
        committed_end = offset;
        break;
      }
    }
  }

  if (truncate_here) {
    truncated_bytes_ += content.size() - committed_end;
    if (::ftruncate(segment->fd, static_cast<off_t>(committed_end)) != 0) {
      if (error != nullptr) {
        *error = "cannot truncate " + segment->path + ": " + std::strerror(errno);
      }
      return false;
    }
    // Any batch in a later segment committed after the one we just lost;
    // applying it over a hole would break prefix consistency.
    *stop_after = true;
  }
  segment->size = committed_end;
  return true;
}

bool KvStore::Recover(std::string* error) {
  std::vector<std::pair<uint32_t, std::string>> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string name = entry.path().filename().string();
    if (name.size() != 10 || name.substr(6) != ".seg") {
      continue;
    }
    files.emplace_back(static_cast<uint32_t>(std::strtoul(name.c_str(), nullptr, 10)),
                       entry.path().string());
  }
  std::sort(files.begin(), files.end());

  bool stop_after = false;
  for (size_t i = 0; i < files.size(); ++i) {
    const auto& [id, path] = files[i];
    const bool is_last = i + 1 == files.size();
    if (stop_after) {
      // Data after a torn/corrupt segment tail: a later committed batch must
      // not survive an earlier lost one.
      ::unlink(path.c_str());
      ++dropped_segments_;
      continue;
    }
    int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) {
      if (error != nullptr) {
        *error = "cannot open " + path + ": " + std::strerror(errno);
      }
      return false;
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      if (error != nullptr) {
        *error = "cannot stat " + path;
      }
      return false;
    }
    Bytes content(static_cast<size_t>(st.st_size));
    if (!content.empty() &&
        ::pread(fd, content.data(), content.size(), 0) != static_cast<ssize_t>(content.size())) {
      ::close(fd);
      if (error != nullptr) {
        *error = "cannot read " + path;
      }
      return false;
    }
    bool bad_header =
        content.size() < kSegmentHeaderSize || ReadU32(content.data()) != kSegmentMagic ||
        ReadU32(content.data() + 4) != id;
    if (bad_header) {
      ::close(fd);
      if (is_last) {
        // A crash can tear the newest segment's header (created, never
        // synced). It can hold no committed data, so drop it.
        ::unlink(path.c_str());
        ++dropped_segments_;
        continue;
      }
      if (error != nullptr) {
        *error = "corrupt segment header in " + path;
      }
      return false;
    }
    auto segment = std::make_shared<Segment>();
    segment->id = id;
    segment->path = path;
    segment->fd = fd;
    if (!ReplaySegment(segment, std::move(content), &stop_after, error)) {
      return false;
    }
    segments_[id] = segment;
  }

  if (segments_.empty()) {
    active_ = CreateSegment(1);
    segments_[active_->id] = active_;
  } else {
    active_ = segments_.rbegin()->second;
    for (auto& [id, segment] : segments_) {
      segment->sealed = segment != active_;
    }
  }
  return true;
}

void KvStore::AppendLocked(BytesView blob) {
  if (::pwrite(active_->fd, blob.data(), blob.size(), static_cast<off_t>(active_->size)) !=
      static_cast<ssize_t>(blob.size())) {
    FatalIo("append", active_->path);
  }
  active_->size += blob.size();
  appended_total_ += blob.size();
  bytes_appended_.fetch_add(blob.size(), std::memory_order_relaxed);
}

void KvStore::MaybeRotateLocked() {
  if (active_->size < options_.segment_bytes) {
    return;
  }
  if (options_.fsync) {
    if (::fdatasync(active_->fd) != 0) {
      FatalIo("fdatasync on seal", active_->path);
    }
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> sync_lock(sync_mu_);
    durable_total_ = std::max(durable_total_, appended_total_);
  }
  std::shared_ptr<Segment> next = CreateSegment(active_->id + 1);
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    active_->sealed = true;
    segments_[next->id] = next;
  }
  active_ = next;
}

void KvStore::IndexPut(const std::string& key, const ValueLoc& loc) {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto [it, inserted] = index_.try_emplace(key, loc);
  if (!inserted) {
    auto seg = segments_.find(it->second.segment_id);
    if (seg != segments_.end()) {
      seg->second->dead_bytes += it->second.record_bytes;
    }
    it->second = loc;
  }
}

void KvStore::IndexDelete(const std::string& key, uint32_t tombstone_bytes) {
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    auto seg = segments_.find(it->second.segment_id);
    if (seg != segments_.end()) {
      seg->second->dead_bytes += it->second.record_bytes;
    }
    index_.erase(it);
  }
  // The tombstone itself is garbage the moment it is applied: replay only
  // needs it while an older segment may hold the key, and compaction is
  // oldest-first.
  if (active_ != nullptr) {
    active_->dead_bytes += tombstone_bytes;
  }
}

KvStore::CacheShard& KvStore::ShardFor(std::string_view key) {
  return cache_shards_[std::hash<std::string_view>{}(key) % kCacheShards];
}

void KvStore::CacheInsert(std::string_view key, BytesView value) {
  if (options_.cache_bytes == 0) {
    return;
  }
  const size_t budget = options_.cache_bytes / kCacheShards;
  CacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    shard.bytes -= it->second->second.size();
    it->second->second.assign(value.begin(), value.end());
    shard.bytes += value.size();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.emplace_front(std::string(key), Bytes(value.begin(), value.end()));
    shard.entries.emplace(std::string_view(shard.lru.front().first), shard.lru.begin());
    shard.bytes += key.size() + value.size();
  }
  while (shard.bytes > budget && !shard.lru.empty()) {
    auto& back = shard.lru.back();
    shard.bytes -= back.first.size() + back.second.size();
    shard.entries.erase(std::string_view(back.first));
    shard.lru.pop_back();
  }
}

void KvStore::CacheErase(std::string_view key) {
  if (options_.cache_bytes == 0) {
    return;
  }
  CacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    shard.bytes -= it->second->first.size() + it->second->second.size();
    shard.lru.erase(it->second);
    shard.entries.erase(it);
  }
}

bool KvStore::CacheGet(std::string_view key, Bytes* value) {
  if (options_.cache_bytes == 0) {
    return false;
  }
  CacheShard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    return false;
  }
  *value = it->second->second;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return true;
}

uint64_t KvStore::SyncUpTo(uint64_t target_total, bool* did_sync) {
  std::shared_ptr<Segment> segment;
  {
    // The fd to sync is whatever segment is active *now*; bytes this commit
    // appended to a since-rotated segment were synced during rotation.
    std::lock_guard<std::mutex> lock(index_mu_);
    segment = active_;
  }
  uint64_t start = NowNs();
  {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (durable_total_ >= target_total) {
      *did_sync = false;  // A concurrent committer's fsync already covered us.
      return NowNs() - start;
    }
    {
      PEVM_TRACE_SPAN("kv.fsync");
      if (::fdatasync(segment->fd) != 0) {
        FatalIo("fdatasync", segment->path);
      }
    }
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    durable_total_ = std::max(durable_total_, target_total);
  }
  *did_sync = true;
  uint64_t elapsed = NowNs() - start;
  static auto& fsync_hist = telemetry::GetHistogram("kv.fsync_ns");
  fsync_hist.Observe(elapsed);
  return elapsed;
}

KvCommitResult KvStore::Commit(const WriteBatch& batch) {
  KvCommitResult result;
  if (batch.empty()) {
    return result;
  }
  struct PendingIndexOp {
    const WriteBatch::Op* op;
    ValueLoc loc;
    uint32_t record_bytes = 0;
  };
  uint64_t my_total = 0;
  {
    PEVM_TRACE_SPAN_ARG("kv.append", "ops", batch.ops().size());
    std::lock_guard<std::mutex> lock(writer_mu_);
    MaybeRotateLocked();
    Bytes blob;
    std::vector<PendingIndexOp> pending;
    pending.reserve(batch.ops().size());
    for (const WriteBatch::Op& op : batch.ops()) {
      size_t record_at = blob.size();
      PendingIndexOp p;
      p.op = &op;
      if (op.is_delete) {
        AppendDeleteRecord(blob, op.key);
      } else {
        AppendPutRecord(blob, op.key, BytesView(op.value.data(), op.value.size()));
        p.loc.value_size = static_cast<uint32_t>(op.value.size());
        // Value bytes sit at the end of the framed record.
        p.loc.value_offset = blob.size() - op.value.size();  // Blob-relative for now.
      }
      p.record_bytes = static_cast<uint32_t>(blob.size() - record_at);
      p.loc.record_bytes = p.record_bytes;
      pending.push_back(p);
    }
    AppendCommitRecord(blob, next_sequence_++);
    const uint64_t base = active_->size;
    AppendLocked(blob);
    for (PendingIndexOp& p : pending) {
      if (p.op->is_delete) {
        IndexDelete(p.op->key, p.record_bytes);
        CacheErase(p.op->key);
      } else {
        p.loc.segment_id = active_->id;
        p.loc.value_offset += base;
        IndexPut(p.op->key, p.loc);
        CacheInsert(p.op->key, BytesView(p.op->value.data(), p.op->value.size()));
      }
    }
    result.bytes_appended = blob.size();
    my_total = appended_total_;
  }
  static auto& batch_hist = telemetry::GetHistogram("kv.batch_bytes");
  batch_hist.Observe(result.bytes_appended);
  commits_.fetch_add(1, std::memory_order_relaxed);
  if (options_.fsync) {
    result.sync_ns = SyncUpTo(my_total, &result.fsynced);
  }
  compact_cv_.notify_one();
  return result;
}

bool KvStore::Contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_.find(std::string(key)) != index_.end();
}

std::optional<Bytes> KvStore::Get(std::string_view key) {
  reads_.fetch_add(1, std::memory_order_relaxed);
  Bytes cached;
  if (CacheGet(key, &cached)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return cached;
  }
  ValueLoc loc;
  std::shared_ptr<Segment> segment;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    auto it = index_.find(std::string(key));
    if (it == index_.end()) {
      return std::nullopt;
    }
    loc = it->second;
    segment = segments_.at(loc.segment_id);
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  Bytes value(loc.value_size);
  if (loc.value_size > 0 &&
      ::pread(segment->fd, value.data(), value.size(), static_cast<off_t>(loc.value_offset)) !=
          static_cast<ssize_t>(value.size())) {
    FatalIo("pread", segment->path);
  }
  CacheInsert(key, BytesView(value.data(), value.size()));
  return value;
}

void KvStore::ScanPrefix(std::string_view prefix,
                         const std::function<void(std::string_view, BytesView)>& fn) {
  struct Hit {
    std::string key;
    ValueLoc loc;
    std::shared_ptr<Segment> segment;
  };
  std::vector<Hit> hits;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    for (const auto& [key, loc] : index_) {
      if (key.size() >= prefix.size() && std::string_view(key).substr(0, prefix.size()) == prefix) {
        hits.push_back({key, loc, segments_.at(loc.segment_id)});
      }
    }
  }
  Bytes value;
  for (const Hit& hit : hits) {
    value.resize(hit.loc.value_size);
    if (hit.loc.value_size > 0 &&
        ::pread(hit.segment->fd, value.data(), value.size(),
                static_cast<off_t>(hit.loc.value_offset)) != static_cast<ssize_t>(value.size())) {
      FatalIo("pread", hit.segment->path);
    }
    fn(hit.key, BytesView(value.data(), value.size()));
  }
}

bool KvStore::CompactOldest(bool force) {
  std::shared_ptr<Segment> victim;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    for (const auto& [id, segment] : segments_) {
      if (segment->sealed) {
        victim = segment;
        break;
      }
    }
    if (victim == nullptr) {
      return false;
    }
    double ratio = victim->size <= kSegmentHeaderSize
                       ? 1.0
                       : static_cast<double>(victim->dead_bytes) /
                             static_cast<double>(victim->size - kSegmentHeaderSize);
    if (!force && ratio < options_.compact_garbage_ratio) {
      return false;
    }
  }

  // From here on a victim is selected: the span covers the actual compaction
  // pass, not the no-op garbage-ratio polls.
  PEVM_TRACE_SPAN("kv.compact");
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    for (const auto& [key, loc] : index_) {
      if (loc.segment_id == victim->id) {
        keys.push_back(key);
      }
    }
  }

  const size_t chunk_size = std::max<size_t>(options_.compaction_chunk, 1);
  uint64_t my_total = 0;
  for (size_t begin = 0; begin < keys.size(); begin += chunk_size) {
    const size_t end = std::min(begin + chunk_size, keys.size());
    std::lock_guard<std::mutex> lock(writer_mu_);
    MaybeRotateLocked();
    // Re-validate under the writer lock: anything overwritten since the key
    // list was gathered is garbage in the victim already.
    struct Live {
      const std::string* key;
      ValueLoc loc;
    };
    std::vector<Live> live;
    {
      std::lock_guard<std::mutex> index_lock(index_mu_);
      for (size_t i = begin; i < end; ++i) {
        auto it = index_.find(keys[i]);
        if (it != index_.end() && it->second.segment_id == victim->id) {
          live.push_back({&keys[i], it->second});
        }
      }
    }
    if (live.empty()) {
      continue;
    }
    Bytes blob;
    std::vector<ValueLoc> new_locs(live.size());
    Bytes value;
    for (size_t i = 0; i < live.size(); ++i) {
      value.resize(live[i].loc.value_size);
      if (live[i].loc.value_size > 0 &&
          ::pread(victim->fd, value.data(), value.size(),
                  static_cast<off_t>(live[i].loc.value_offset)) !=
              static_cast<ssize_t>(value.size())) {
        FatalIo("compaction pread", victim->path);
      }
      size_t record_at = blob.size();
      AppendPutRecord(blob, *live[i].key, BytesView(value.data(), value.size()));
      new_locs[i].value_size = live[i].loc.value_size;
      new_locs[i].value_offset = blob.size() - value.size();
      new_locs[i].record_bytes = static_cast<uint32_t>(blob.size() - record_at);
    }
    AppendCommitRecord(blob, next_sequence_++);
    const uint64_t base = active_->size;
    AppendLocked(blob);
    for (size_t i = 0; i < live.size(); ++i) {
      new_locs[i].segment_id = active_->id;
      new_locs[i].value_offset += base;
      IndexPut(*live[i].key, new_locs[i]);
    }
    my_total = appended_total_;
  }

  // The rewrites must be durable before the victim disappears, or a crash in
  // between would lose its live records.
  if (options_.fsync && my_total != 0) {
    bool did_sync = false;
    SyncUpTo(my_total, &did_sync);
  }
  uint64_t reclaimed;
  {
    std::lock_guard<std::mutex> writer_lock(writer_mu_);
    std::lock_guard<std::mutex> lock(index_mu_);
    reclaimed = victim->size;
    segments_.erase(victim->id);
  }
  ::unlink(victim->path.c_str());
  if (options_.fsync) {
    SyncDir(dir_);
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  compacted_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  PEVM_TRACE_INSTANT_ARG("kv.compacted", "reclaimed_bytes", reclaimed);
  return true;
}

void KvStore::SyncNow() {
  uint64_t my_total;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    my_total = appended_total_;
  }
  bool did_sync = false;
  SyncUpTo(my_total, &did_sync);
}

void KvStore::CompactionLoop() {
  PEVM_TRACE_THREAD_NAME("kv-compact");
  std::unique_lock<std::mutex> lock(compact_mu_);
  while (!stop_compaction_) {
    compact_cv_.wait_for(lock, std::chrono::milliseconds(options_.compaction_interval_ms));
    if (stop_compaction_) {
      break;
    }
    lock.unlock();
    while (CompactOldest(/*force=*/false)) {
    }
    lock.lock();
  }
}

size_t KvStore::key_count() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_.size();
}

KvStats KvStore::stats() const {
  KvStats s;
  s.commits = commits_.load(std::memory_order_relaxed);
  s.bytes_appended = bytes_appended_.load(std::memory_order_relaxed);
  s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  s.compacted_bytes_reclaimed = compacted_reclaimed_.load(std::memory_order_relaxed);
  s.recovered_batches = recovered_batches_;
  s.truncated_bytes = truncated_bytes_;
  s.dropped_segments = dropped_segments_;
  std::lock_guard<std::mutex> lock(index_mu_);
  s.live_keys = index_.size();
  s.segments = segments_.size();
  return s;
}

std::vector<std::string> KvStore::SegmentPaths() const {
  std::vector<std::string> paths;
  std::lock_guard<std::mutex> lock(index_mu_);
  for (const auto& [id, segment] : segments_) {
    paths.push_back(segment->path);
  }
  return paths;
}

}  // namespace pevm
