#include "src/kv/record.h"

#include "src/kv/crc32.h"

namespace pevm {

void AppendU32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

namespace {

// Frames `payload` (already built at out.end() - payload_len) by patching the
// 8-byte header reserved before it.
void FinishFrame(Bytes& out, size_t header_at) {
  size_t payload_len = out.size() - header_at - kRecordHeaderSize;
  const uint8_t* payload = out.data() + header_at + kRecordHeaderSize;
  uint32_t crc = MaskCrc(Crc32c(BytesView(payload, payload_len)));
  for (int i = 0; i < 4; ++i) {
    out[header_at + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
    out[header_at + 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(static_cast<uint32_t>(payload_len) >> (8 * i));
  }
}

size_t ReserveHeader(Bytes& out) {
  size_t at = out.size();
  out.resize(at + kRecordHeaderSize);
  return at;
}

}  // namespace

void AppendPutRecord(Bytes& out, std::string_view key, BytesView value) {
  size_t header_at = ReserveHeader(out);
  out.push_back(static_cast<uint8_t>(RecordType::kPut));
  AppendU32(out, static_cast<uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), value.begin(), value.end());
  FinishFrame(out, header_at);
}

void AppendDeleteRecord(Bytes& out, std::string_view key) {
  size_t header_at = ReserveHeader(out);
  out.push_back(static_cast<uint8_t>(RecordType::kDelete));
  AppendU32(out, static_cast<uint32_t>(key.size()));
  out.insert(out.end(), key.begin(), key.end());
  FinishFrame(out, header_at);
}

void AppendCommitRecord(Bytes& out, uint64_t sequence) {
  size_t header_at = ReserveHeader(out);
  out.push_back(static_cast<uint8_t>(RecordType::kCommit));
  AppendU64(out, sequence);
  FinishFrame(out, header_at);
}

DecodeStatus DecodeRecord(BytesView buffer, size_t* offset, Record* record) {
  size_t at = *offset;
  if (at == buffer.size()) {
    return DecodeStatus::kEndOfBuffer;
  }
  if (buffer.size() - at < kRecordHeaderSize) {
    return DecodeStatus::kTorn;
  }
  uint32_t stored_crc = ReadU32(buffer.data() + at);
  uint32_t payload_len = ReadU32(buffer.data() + at + 4);
  if (buffer.size() - at - kRecordHeaderSize < payload_len) {
    return DecodeStatus::kTorn;
  }
  const uint8_t* payload = buffer.data() + at + kRecordHeaderSize;
  if (payload_len == 0 ||
      MaskCrc(Crc32c(BytesView(payload, payload_len))) != stored_crc) {
    return DecodeStatus::kCorrupt;
  }
  uint8_t type = payload[0];
  switch (static_cast<RecordType>(type)) {
    case RecordType::kPut: {
      if (payload_len < 5) {
        return DecodeStatus::kCorrupt;
      }
      uint32_t klen = ReadU32(payload + 1);
      if (payload_len < 5 + static_cast<size_t>(klen)) {
        return DecodeStatus::kCorrupt;
      }
      record->type = RecordType::kPut;
      record->key = std::string_view(reinterpret_cast<const char*>(payload + 5), klen);
      record->value = BytesView(payload + 5 + klen, payload_len - 5 - klen);
      break;
    }
    case RecordType::kDelete: {
      if (payload_len < 5) {
        return DecodeStatus::kCorrupt;
      }
      uint32_t klen = ReadU32(payload + 1);
      if (payload_len != 5 + static_cast<size_t>(klen)) {
        return DecodeStatus::kCorrupt;
      }
      record->type = RecordType::kDelete;
      record->key = std::string_view(reinterpret_cast<const char*>(payload + 5), klen);
      record->value = {};
      break;
    }
    case RecordType::kCommit: {
      if (payload_len != 9) {
        return DecodeStatus::kCorrupt;
      }
      record->type = RecordType::kCommit;
      record->sequence = ReadU64(payload + 1);
      record->key = {};
      record->value = {};
      break;
    }
    default:
      return DecodeStatus::kCorrupt;
  }
  *offset = at + kRecordHeaderSize + payload_len;
  return DecodeStatus::kOk;
}

}  // namespace pevm
