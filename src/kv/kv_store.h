// KvStore: a durable embedded key-value store in the bitcask/WAL family,
// built for the chain runner's committer stage (src/chain) and the simulated
// storage front-end's real-I/O backing (src/state/sim_store.h).
//
// Shape:
//   - Append-only segment files ("000001.seg", ...) of CRC-framed records
//     (src/kv/record.h). The newest segment is the active write head; older
//     segments are sealed and immutable.
//   - An in-memory hash index (key -> segment/offset/length) rebuilt by
//     scanning the segments on Open, so Get is one pread (or a cache hit).
//   - A write-ahead commit protocol: a WriteBatch is appended as its records
//     plus one commit marker, then made durable with a single fdatasync —
//     group commit: concurrent committers whose records were covered by
//     another thread's fsync skip their own. A batch is atomic: recovery
//     applies records only up to the last valid commit marker and truncates
//     the file at the first torn or CRC-corrupt record, so a crash mid-batch
//     (or mid-fsync) rolls the whole batch back.
//   - Background compaction: when a sealed segment's dead-byte ratio passes
//     the threshold, its live records are re-appended at the log head (under
//     the writer lock, so log order stays the correctness order) and the file
//     is unlinked. Only the oldest sealed segment is ever compacted, which
//     keeps tombstone semantics trivially correct: a tombstone can only
//     shadow records in *earlier* segments, and the oldest segment has none.
//   - A sharded LRU read cache (byte-budgeted) in front of the preads,
//     kept write-through coherent by Commit.
//
// Thread safety: all public methods are thread-safe. Writers (Commit,
// compaction, rotation) serialize on writer_mu_ and update the index while
// holding it, so append order in the log always equals index update order —
// the invariant recovery's in-order replay depends on. Readers take only the
// index mutex (then pread immutable bytes via a shared_ptr'd fd, so
// compaction can unlink a segment out from under them safely).
#ifndef SRC_KV_KV_STORE_H_
#define SRC_KV_KV_STORE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/kv/record.h"
#include "src/support/bytes.h"

namespace pevm {

struct KvOptions {
  // Durability: fdatasync the active segment after every commit marker (and
  // after compaction rewrites, before the victim is unlinked). Off = the OS
  // page cache decides; the commit protocol and recovery stay identical, only
  // the crash window widens.
  bool fsync = true;
  // Active segment seals and rotates once it holds at least this many bytes.
  size_t segment_bytes = 4u << 20;
  // Total byte budget of the sharded read cache (0 disables it).
  size_t cache_bytes = 8u << 20;
  // Background compaction thread: scans for garbage-heavy sealed segments.
  bool background_compaction = true;
  // A sealed segment is compacted once dead bytes / file bytes passes this.
  double compact_garbage_ratio = 0.5;
  // How long the compaction thread sleeps between scans.
  uint64_t compaction_interval_ms = 100;
  // Live records re-appended per writer-lock hold during compaction (bounds
  // the commit stall a compaction chunk can cause).
  size_t compaction_chunk = 256;
};

// Point-in-time counters (informational; monotonic except live_* / segments).
struct KvStats {
  uint64_t commits = 0;
  uint64_t bytes_appended = 0;   // Framed record bytes, commits + compaction.
  uint64_t fsyncs = 0;
  uint64_t reads = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t compactions = 0;
  uint64_t compacted_bytes_reclaimed = 0;  // Victim file bytes unlinked.
  uint64_t recovered_batches = 0;  // Commit markers replayed at Open.
  uint64_t truncated_bytes = 0;    // Torn/uncommitted tail bytes dropped at Open.
  uint64_t dropped_segments = 0;   // Segments after a corrupt one, dropped at Open.
  size_t live_keys = 0;
  size_t segments = 0;
};

// What one Commit call did (feeds the chain runner's per-block durability
// accounting).
struct KvCommitResult {
  uint64_t bytes_appended = 0;
  bool fsynced = false;      // False when another committer's fsync covered us.
  uint64_t sync_ns = 0;      // Wall time spent waiting on fdatasync.
};

class KvStore {
 public:
  // Opens (creating the directory if needed) and recovers the store: scans
  // every segment in id order, applies committed batches to the index,
  // truncates the first torn/corrupt record and drops any later segments.
  // Returns nullptr (and sets *error) on unrecoverable problems: unreadable
  // directory, or a corrupt segment *header* anywhere but the tail.
  static std::unique_ptr<KvStore> Open(const std::string& dir, const KvOptions& options = {},
                                       std::string* error = nullptr);

  ~KvStore();
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Atomically applies `batch` (later ops on a key win) and appends it to the
  // log under one commit marker; one fdatasync when options.fsync (shared
  // with concurrent committers — group commit).
  KvCommitResult Commit(const WriteBatch& batch);

  // Latest committed value, or nullopt. One cache probe, at most one pread.
  std::optional<Bytes> Get(std::string_view key);

  // Whether the key is live. Index probe only — no pread, no cache traffic —
  // so callers with content-addressed keys (the chain's trie-node archive)
  // can cheaply skip re-appending records that are already in the log.
  bool Contains(std::string_view key) const;

  // Calls fn(key, value) for every live key with the given prefix. The
  // key set is snapshotted under the index lock; values are read without it,
  // so concurrent writers make the result a weakly consistent snapshot.
  // Intended for single-threaded recovery scans (src/chain/node_store.cc).
  void ScanPrefix(std::string_view prefix,
                  const std::function<void(std::string_view, BytesView)>& fn);

  // Compacts the oldest sealed segment now (ignoring the garbage threshold
  // when force); returns whether a segment was rewritten. Also the body the
  // background thread runs with force=false.
  bool CompactOldest(bool force);

  // fdatasyncs the active segment (tests; Commit already syncs when enabled).
  void SyncNow();

  size_t key_count() const;
  KvStats stats() const;
  const KvOptions& options() const { return options_; }
  const std::string& dir() const { return dir_; }

  // Absolute paths of the current segment files, oldest first (crash-injection
  // tests truncate/corrupt the last one between sessions).
  std::vector<std::string> SegmentPaths() const;

 private:
  struct Segment {
    uint32_t id = 0;
    std::string path;
    int fd = -1;
    uint64_t size = 0;        // Committed bytes (header included).
    uint64_t dead_bytes = 0;  // Framed bytes superseded by newer writes.
    bool sealed = false;
    ~Segment();
  };

  struct ValueLoc {
    uint32_t segment_id = 0;
    uint32_t value_size = 0;
    uint64_t value_offset = 0;  // Of the value bytes within the file.
    uint32_t record_bytes = 0;  // Full framed record size (dead-byte math).
  };

  struct CacheShard {
    mutable std::mutex mu;
    std::list<std::pair<std::string, Bytes>> lru;  // Front = most recent.
    std::unordered_map<std::string_view, std::list<std::pair<std::string, Bytes>>::iterator>
        entries;
    size_t bytes = 0;
  };

  KvStore(std::string dir, const KvOptions& options);

  bool Recover(std::string* error);
  bool ReplaySegment(const std::shared_ptr<Segment>& segment, Bytes&& content,
                     bool* stop_after, std::string* error);
  std::shared_ptr<Segment> CreateSegment(uint32_t id);
  // Appends `blob` to the active segment and bumps counters. writer_mu_ held.
  void AppendLocked(BytesView blob);
  // Seals the active segment and opens the next when the size cap is hit.
  void MaybeRotateLocked();
  // Applies one op's new location (or erasure) to the index and dead-byte
  // accounting. writer_mu_ held; takes index_mu_ internally.
  void IndexPut(const std::string& key, const ValueLoc& loc);
  void IndexDelete(const std::string& key, uint32_t tombstone_bytes);

  void CacheInsert(std::string_view key, BytesView value);
  void CacheErase(std::string_view key);
  bool CacheGet(std::string_view key, Bytes* value);
  CacheShard& ShardFor(std::string_view key);

  void CompactionLoop();
  // One fdatasync of the active fd covering at least up to `target_total`
  // appended bytes; skipped if another thread already synced past it.
  uint64_t SyncUpTo(uint64_t target_total, bool* did_sync);

  const std::string dir_;
  const KvOptions options_;

  // Serializes every log append + the index update that publishes it.
  std::mutex writer_mu_;
  // Guards index_ and segments_. Nested inside writer_mu_ by writers; taken
  // alone by readers.
  mutable std::mutex index_mu_;
  std::unordered_map<std::string, ValueLoc> index_;
  std::map<uint32_t, std::shared_ptr<Segment>> segments_;  // Ordered by id.
  std::shared_ptr<Segment> active_;
  uint64_t next_sequence_ = 1;

  // Group-commit bookkeeping: total bytes ever appended vs. made durable.
  uint64_t appended_total_ = 0;  // Under writer_mu_.
  std::mutex sync_mu_;
  uint64_t durable_total_ = 0;  // Under sync_mu_.

  static constexpr size_t kCacheShards = 8;
  std::vector<CacheShard> cache_shards_;

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> compacted_reclaimed_{0};
  uint64_t recovered_batches_ = 0;
  uint64_t truncated_bytes_ = 0;
  uint64_t dropped_segments_ = 0;

  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool stop_compaction_ = false;
  std::thread compaction_thread_;  // Started at the end of Open.
};

}  // namespace pevm

#endif  // SRC_KV_KV_STORE_H_
