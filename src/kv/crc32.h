// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum framing every KV log record (src/kv/record.h). Chosen over plain
// CRC-32 for its better burst-error detection and because it is the checksum
// real storage engines (LevelDB, RocksDB) frame their WAL records with, so
// recovery semantics here mirror theirs. Software slice-by-one table
// implementation — fast enough for the commit path (the fsync dominates).
#ifndef SRC_KV_CRC32_H_
#define SRC_KV_CRC32_H_

#include <cstdint>

#include "src/support/bytes.h"

namespace pevm {

// One-shot CRC-32C over `data`. Streaming use: pass the previous return value
// as `seed` (the function handles the pre/post inversion internally, so
// chaining Crc32c(b, Crc32c(a)) == Crc32c(a ++ b)).
uint32_t Crc32c(BytesView data, uint32_t seed = 0);

// LevelDB-style masked CRC: stored checksums are masked so that computing a
// CRC over a buffer that itself embeds CRCs does not degenerate. Records on
// disk store the masked value.
inline uint32_t MaskCrc(uint32_t crc) { return ((crc >> 15) | (crc << 17)) + 0xa282ead8u; }
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace pevm

#endif  // SRC_KV_CRC32_H_
