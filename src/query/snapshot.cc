#include "src/query/snapshot.h"

#include <algorithm>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace pevm {

U256 SnapshotHandle::Get(const StateKey& key) const {
  return registry_->ReadAt(key, block_);
}

const Bytes* SnapshotHandle::GetCode(const Address& a) const {
  // Code is immutable after genesis (SetCode asserts no diff is active), so
  // every snapshot sees the base's code — no versioning, no lock.
  return registry_->base_.GetCode(a);
}

const Hash256* SnapshotHandle::GetCodeHash(const Address& a) const {
  return registry_->base_.GetCodeHash(a);
}

void SnapshotHandle::release() {
  if (registry_ != nullptr) {
    registry_->Release(block_);
    registry_ = nullptr;
  }
}

SnapshotRegistry::SnapshotRegistry(const WorldState& base, const Hash256& base_root,
                                   uint64_t base_block, size_t retain)
    : base_(base), latest_block_(base_block), pruned_floor_(base_block) {
  retain_ = retain < 1 ? 1 : retain;
  entries_.emplace(base_block, SnapEntry{base_root, 0, false});
  stats_.published = 1;
}

void SnapshotRegistry::Publish(uint64_t block_index, const Hash256& root,
                               const StateDiff& diff) {
  PEVM_TRACE_SPAN_ARG("query.publish_snapshot", "block", block_index);
  // Collapse the ordered journal to last-writer-wins — the value a serial
  // replay stopped after this block would observe. Partition by shard so each
  // shard's write lock is taken once.
  std::unordered_map<StateKey, U256, StateKeyHash> last[kShards];
  for (const auto& [key, value] : diff) {
    last[StateKeyHash{}(key) % kShards][key] = value;
  }
  uint64_t appended = 0;
  for (size_t s = 0; s < kShards; ++s) {
    if (last[s].empty()) {
      continue;
    }
    std::unique_lock<std::shared_mutex> lock(shards_[s].mu);
    for (const auto& [key, value] : last[s]) {
      shards_[s].chains[key].emplace_back(block_index, value);
      ++appended;
    }
  }

  uint64_t floor;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    stats_.versions_appended += appended;
    entries_.emplace(block_index, SnapEntry{root, 0, false});
    latest_block_ = block_index;
    ++stats_.published;
    // Retire everything older than the retention window. Entries still
    // pinned stay in the table (they hold the floor down) but stop being
    // acquirable; unpinned ones leave immediately.
    const uint64_t oldest_retained =
        block_index >= retain_ - 1 ? block_index - (retain_ - 1) : 0;
    for (auto it = entries_.begin(); it != entries_.end() && it->first < oldest_retained;) {
      if (!it->second.retired) {
        it->second.retired = true;
        ++stats_.retired;
        if (it->second.refs > 0) {
          ++stats_.evictions_deferred;
        }
      }
      if (it->second.refs == 0) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    floor = FloorLocked();
  }
  PruneTo(floor);
}

SnapshotHandle SnapshotRegistry::AcquireLatest() {
  std::lock_guard<std::mutex> lock(table_mu_);
  auto it = entries_.find(latest_block_);
  ++it->second.refs;
  ++live_pins_;
  ++stats_.acquires;
  return SnapshotHandle(this, it->first, it->second.root);
}

SnapshotHandle SnapshotRegistry::AcquireAt(const Hash256& root) {
  std::lock_guard<std::mutex> lock(table_mu_);
  // The table holds ≤ retain acquirable entries; a linear scan is cheaper
  // than maintaining a root index.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (!it->second.retired && it->second.root == root) {
      ++it->second.refs;
      ++live_pins_;
      ++stats_.acquires;
      return SnapshotHandle(this, it->first, it->second.root);
    }
  }
  ++stats_.acquire_misses;
  return SnapshotHandle();
}

U256 SnapshotRegistry::ReadAt(const StateKey& key, uint64_t block) const {
  const Shard& shard = ShardFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.chains.find(key);
    if (it != shard.chains.end()) {
      // Newest-first scan: chains are block-ascending and short (≤ retain
      // entries plus whatever a deferred prune is still holding).
      const auto& chain = it->second;
      for (auto v = chain.rbegin(); v != chain.rend(); ++v) {
        if (v->first <= block) {
          return v->second;
        }
      }
    }
    auto folded = shard.folded.find(key);
    if (folded != shard.folded.end()) {
      // Folded versions are ≤ floor ≤ every live handle's block.
      return folded->second;
    }
  }
  return base_.Get(key);
}

void SnapshotRegistry::Release(uint64_t block) {
  uint64_t floor;
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    auto it = entries_.find(block);
    --it->second.refs;
    --live_pins_;
    if (it->second.retired && it->second.refs == 0) {
      entries_.erase(it);
    }
    floor = FloorLocked();
  }
  // Releasing the oldest pin may advance the floor: reclaim what just became
  // unreachable instead of waiting for the next Publish.
  PruneTo(floor);
}

uint64_t SnapshotRegistry::FloorLocked() const {
  return entries_.empty() ? latest_block_ : entries_.begin()->first;
}

void SnapshotRegistry::PruneTo(uint64_t floor) {
  {
    std::lock_guard<std::mutex> lock(table_mu_);
    if (floor <= pruned_floor_) {
      return;
    }
    pruned_floor_ = floor;
  }
  uint64_t folded = 0;
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    for (auto it = shard.chains.begin(); it != shard.chains.end();) {
      auto& chain = it->second;
      size_t keep = 0;  // First index with block > floor.
      while (keep < chain.size() && chain[keep].first <= floor) {
        ++keep;
      }
      if (keep > 0) {
        // The newest pruned version becomes the folded value: any handle at
        // block ≥ floor that misses the chain resolves to exactly it.
        shard.folded[it->first] = chain[keep - 1].second;
        chain.erase(chain.begin(), chain.begin() + static_cast<ptrdiff_t>(keep));
        folded += keep;
      }
      if (chain.empty()) {
        it = shard.chains.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (folded > 0) {
    std::lock_guard<std::mutex> lock(table_mu_);
    stats_.versions_folded += folded;
  }
}

SnapshotStats SnapshotRegistry::stats() const {
  std::lock_guard<std::mutex> lock(table_mu_);
  return stats_;
}

uint64_t SnapshotRegistry::latest_block() const {
  std::lock_guard<std::mutex> lock(table_mu_);
  return latest_block_;
}

size_t SnapshotRegistry::live_pins() const {
  std::lock_guard<std::mutex> lock(table_mu_);
  return live_pins_;
}

size_t SnapshotRegistry::retained() const {
  std::lock_guard<std::mutex> lock(table_mu_);
  size_t n = 0;
  for (const auto& [block, entry] : entries_) {
    if (!entry.retired) {
      ++n;
    }
  }
  return n;
}

size_t SnapshotRegistry::version_keys() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    n += shard.chains.size();
  }
  return n;
}

}  // namespace pevm
