// Root-pinned read snapshots for the concurrent query tier (DESIGN.md §4.7).
//
// The chain pipeline's write path (warm → spec → exec → commit) owns the live
// WorldState and the incremental trie; nothing in it is safe to read from
// another thread while blocks flow. The SnapshotRegistry gives read-only
// traffic a stable view anyway: stage 3 publishes every committed (block,
// root, diff) triple into a multi-version map, and a query pins one committed
// root with a refcounted handle, then reads *as of* that root while the
// pipeline keeps committing ahead of it.
//
// Versioning model (MVCC over an immutable base):
//  - `base_` is a frozen copy of the seed state (genesis or the recovered
//    durable state), never mutated after construction — reads need no lock.
//  - Each published block appends at most one version per touched key:
//    (block_index, last value the block's ordered diff wrote). Chains are
//    sharded 16 ways under shared_mutexes: the single publisher (the commit
//    stage) takes the write side, serving threads the read side.
//  - A read at snapshot S resolves key k to the newest version ≤ S, then the
//    folded compaction value, then the base. Code is genesis-immutable
//    (WorldState::SetCode asserts no diff is active), so code reads always go
//    straight to the base, lock-free.
//
// Retention: the registry keeps the last `retain` roots acquirable. Older
// snapshots are retired — but *eviction of the data they can reach is
// deferred while any live handle still pins them* (the refcount). Pruning
// folds every version ≤ floor (floor = oldest pinned-or-retained snapshot)
// into the per-key folded value; any live handle sits at a block ≥ floor, so
// the fold is invisible to it by construction. A long-running query therefore
// never observes a torn or reclaimed value: its handle holds the floor down
// until it releases.
//
// Correctness contract (mirrors PR 5/7 inertness): a read at snapshot S is
// bit-identical to reading a WorldState produced by serially replaying the
// chain and stopping after S's block, because versions are exactly the
// committed per-block diffs (last-writer-wins within a block, which is what
// the journal's final value is) and the fold only ever replaces "newest
// version ≤ floor" with itself. The registry is read-only from the pipeline's
// perspective: publishing copies values out of the diff, so running any
// number of query threads cannot perturb roots, receipts, or any
// deterministic BlockReport field.
#ifndef SRC_QUERY_SNAPSHOT_H_
#define SRC_QUERY_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/state/state_view.h"
#include "src/state/world_state.h"

namespace pevm {

// Registry observability (ChainReport::query_snapshots when the runner owns
// the registry). Counters are registry-lifetime; read via stats().
struct SnapshotStats {
  uint64_t published = 0;           // Snapshots published, seed included.
  uint64_t retired = 0;             // Snapshots that left the retention window.
  uint64_t evictions_deferred = 0;  // Retirements that found a live pin.
  uint64_t versions_appended = 0;   // Version-chain entries created.
  uint64_t versions_folded = 0;     // Entries compacted into folded values.
  uint64_t acquires = 0;            // Successful handle acquisitions.
  uint64_t acquire_misses = 0;      // AcquireAt of an unknown/retired root.
};

class SnapshotRegistry;

// A refcounted pin on one committed root. Move-only; releasing (destruction
// or release()) may advance the prune floor. All reads are as-of the pinned
// block and are safe from any thread while the handle lives. The registry
// must outlive every handle.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  ~SnapshotHandle() { release(); }
  SnapshotHandle(SnapshotHandle&& other) noexcept { *this = std::move(other); }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      release();
      registry_ = other.registry_;
      block_ = other.block_;
      root_ = other.root_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  bool valid() const { return registry_ != nullptr; }
  // Number of blocks committed into this snapshot (chain-lifetime: a resumed
  // runner keeps counting where the durable manifest left off).
  uint64_t block_index() const { return block_; }
  const Hash256& root() const { return root_; }

  // Reads as of the pinned root (zero for absent accounts/slots, per EVM
  // semantics; code is nullptr when the account has none).
  U256 Get(const StateKey& key) const;
  U256 GetBalance(const Address& a) const { return Get(StateKey::Balance(a)); }
  uint64_t GetNonce(const Address& a) const { return Get(StateKey::Nonce(a)).AsUint64(); }
  U256 GetStorage(const Address& a, const U256& slot) const {
    return Get(StateKey::Storage(a, slot));
  }
  const Bytes* GetCode(const Address& a) const;
  const Hash256* GetCodeHash(const Address& a) const;

  void release();

 private:
  friend class SnapshotRegistry;
  SnapshotHandle(SnapshotRegistry* registry, uint64_t block, const Hash256& root)
      : registry_(registry), block_(block), root_(root) {}

  SnapshotRegistry* registry_ = nullptr;
  uint64_t block_ = 0;
  Hash256 root_{};
};

// BaseReader adapter: lets the interpreter (and SpeculateTransaction) run a
// full eth_call-style execution against the pinned root. The StateView built
// on top buffers any writes the call attempts, and the query tier discards
// the view — the snapshot itself is immutable, so "all writes rejected" holds
// structurally, not by runtime policing.
class SnapshotReader final : public BaseReader {
 public:
  explicit SnapshotReader(const SnapshotHandle& handle) : handle_(&handle) {}
  U256 Read(const StateKey& key) const override { return handle_->Get(key); }
  const Bytes* ReadCode(const Address& a) const override { return handle_->GetCode(a); }
  const Hash256* ReadCodeHash(const Address& a) const override {
    return handle_->GetCodeHash(a);
  }

 private:
  const SnapshotHandle* handle_;
};

class SnapshotRegistry {
 public:
  // `base` is copied (the one O(state) cost in the registry's lifetime) and
  // becomes the immutable version floor; `base_root`/`base_block` name it as
  // the seed snapshot, acquirable immediately. `retain` ≥ 1 is the number of
  // most-recent roots kept acquirable.
  SnapshotRegistry(const WorldState& base, const Hash256& base_root, uint64_t base_block,
                   size_t retain);

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  // Publishes the snapshot reached by committing `block_index`'s diff (the
  // ordered journal stage 3 just applied; values are copied out). Single
  // publisher: only the commit stage calls this, in block order. Retires
  // snapshots that fall out of the retention window and prunes versions no
  // live handle can reach.
  void Publish(uint64_t block_index, const Hash256& root, const StateDiff& diff);

  // Pins the newest published snapshot. Always succeeds (the seed snapshot
  // exists from construction and the newest snapshot is never retired).
  SnapshotHandle AcquireLatest();

  // Pins the retained snapshot with this root; an invalid handle if the root
  // is unknown or already retired (query tier surfaces kUnknownRoot).
  SnapshotHandle AcquireAt(const Hash256& root);

  SnapshotStats stats() const;
  uint64_t latest_block() const;
  size_t live_pins() const;      // Handles currently outstanding.
  size_t retained() const;       // Acquirable snapshots (≤ retain).
  size_t version_keys() const;   // Keys with a live version chain (test introspection).

 private:
  friend class SnapshotHandle;

  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::shared_mutex mu;
    // Per-key version chain, block-ascending (one entry per published block).
    std::unordered_map<StateKey, std::vector<std::pair<uint64_t, U256>>, StateKeyHash> chains;
    // Compaction: the newest pruned version of each key (block ≤ floor, so
    // visible to every live handle that misses the chain).
    std::unordered_map<StateKey, U256, StateKeyHash> folded;
  };

  struct SnapEntry {
    Hash256 root;
    uint64_t refs = 0;
    bool retired = false;
  };

  Shard& ShardFor(const StateKey& key) { return shards_[StateKeyHash{}(key) % kShards]; }
  const Shard& ShardFor(const StateKey& key) const {
    return shards_[StateKeyHash{}(key) % kShards];
  }

  U256 ReadAt(const StateKey& key, uint64_t block) const;
  void Release(uint64_t block);
  // Oldest block any entry (pinned or retained) still names; callers hold
  // table_mu_.
  uint64_t FloorLocked() const;
  // Folds every version ≤ floor into the shards' folded maps. Called outside
  // table_mu_ (shard locks only); cheap no-op when the floor didn't move.
  void PruneTo(uint64_t floor);

  const WorldState base_;  // Immutable after construction; lock-free reads.
  size_t retain_ = 1;

  mutable std::mutex table_mu_;
  std::map<uint64_t, SnapEntry> entries_;  // block → entry, oldest first.
  uint64_t latest_block_ = 0;
  uint64_t live_pins_ = 0;
  uint64_t pruned_floor_ = 0;
  SnapshotStats stats_;

  Shard shards_[kShards];
};

}  // namespace pevm

#endif  // SRC_QUERY_SNAPSHOT_H_
