#include "src/query/query_engine.h"

#include <chrono>
#include <string>
#include <utility>

#include "src/codecache/code_cache.h"
#include "src/evm/host.h"
#include "src/evm/interpreter.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace pevm {

namespace {

uint64_t MonotonicNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kGetBalance:
      return "getBalance";
    case QueryKind::kGetNonce:
      return "getTransactionCount";
    case QueryKind::kGetStorageAt:
      return "getStorageAt";
    case QueryKind::kGetCode:
      return "getCode";
    case QueryKind::kCall:
      return "call";
  }
  return "?";
}

QueryResponse EvalQuery(const QueryRequest& request, const BaseReader& reader,
                        uint64_t block_index, const Hash256& root, CodeProvider* provider) {
  QueryResponse response;
  response.block_index = block_index;
  response.root = root;
  switch (request.kind) {
    case QueryKind::kGetBalance:
      response.value = reader.Read(StateKey::Balance(request.account));
      break;
    case QueryKind::kGetNonce:
      response.value = reader.Read(StateKey::Nonce(request.account));
      break;
    case QueryKind::kGetStorageAt:
      response.value = reader.Read(StateKey::Storage(request.account, request.slot));
      break;
    case QueryKind::kGetCode:
      if (const Bytes* code = reader.ReadCode(request.account)) {
        response.bytes = *code;
      }
      break;
    case QueryKind::kCall: {
      // Read-only eth_call: the interpreter runs the real bytecode through a
      // StateView whose write buffer is discarded with the view. No envelope
      // (nonce check / fee debit / value transfer) — eth_call is not a
      // transaction — so failing-nonce callers still get their read.
      StateView view(reader);
      StateViewHost host(view);
      BlockContext context = QueryBlockContext(block_index);
      TxContext tx_context{request.caller, U256(0)};
      Interpreter interp(host, context, tx_context, nullptr, provider);
      Message msg;
      msg.call_kind = Opcode::kCall;
      msg.code_address = request.account;
      msg.storage_address = request.account;
      msg.caller = request.caller;
      msg.data = request.calldata;
      msg.gas = request.gas_limit;
      EvmResult result = interp.Execute(msg);
      response.call_status = result.status;
      response.bytes = std::move(result.output);
      response.gas_used = request.gas_limit - result.gas_left;
      response.writes_discarded = view.write_set().size();
      break;
    }
  }
  return response;
}

QueryEngine::QueryEngine(SnapshotRegistry& registry, const QueryEngineOptions& options)
    : registry_(&registry), options_(options) {
  provider_ = StaticCodeProvider(options_.code_cache);
  if (options_.threads < 1) {
    options_.threads = 1;
  }
  queue_ = std::make_unique<BoundedQueue<Job>>(options_.queue_capacity);
  threads_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    threads_.emplace_back(&QueryEngine::ServeLoop, this, i);
  }
}

QueryEngine::~QueryEngine() { Stop(); }

std::future<QueryResponse> QueryEngine::Submit(QueryRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<QueryResponse> future = job.promise.get_future();
  if (stopped_.load(std::memory_order_acquire) || !queue_->Push(std::move(job))) {
    // The job (and its promise) were dropped or never enqueued; resolve the
    // future we already took out.
    std::promise<QueryResponse> rejected;
    future = rejected.get_future();
    QueryResponse response;
    response.status = QueryStatus::kRejected;
    rejected.set_value(std::move(response));
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  return future;
}

QueryStats QueryEngine::Stop() {
  if (!final_stats_.has_value()) {
    stopped_.store(true, std::memory_order_release);
    queue_->Close();  // Queued requests drain; serving threads then exit.
    for (std::thread& t : threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
    final_stats_ = stats();
  }
  // Serving totals are frozen at the join, but rejections keep accruing
  // (Submit after Stop resolves kRejected); report them honestly.
  final_stats_->rejected = rejected_.load(std::memory_order_relaxed);
  return *final_stats_;
}

QueryStats QueryEngine::stats() const {
  QueryStats out;
  out.served = served_.load(std::memory_order_relaxed);
  out.unknown_root = unknown_root_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  for (int k = 0; k < kQueryKinds; ++k) {
    out.by_kind[k] = by_kind_[k].load(std::memory_order_relaxed);
  }
  out.calls_reverted = calls_reverted_.load(std::memory_order_relaxed);
  out.total_serve_ns = total_serve_ns_.load(std::memory_order_relaxed);
  return out;
}

void QueryEngine::ServeLoop(int worker) {
  PEVM_TRACE_THREAD_NAME(("query-serve-" + std::to_string(worker)).c_str());
  static auto& serve_hist = telemetry::GetHistogram("query.serve_ns");
  static auto& call_hist = telemetry::GetHistogram("query.call_ns");
  static auto& served_counter = telemetry::GetCounter("query.served");
  static auto& miss_counter = telemetry::GetCounter("query.unknown_root");
  while (std::optional<Job> job = queue_->Pop()) {
    const uint64_t start = MonotonicNs();
    QueryResponse response;
    {
      PEVM_TRACE_SPAN_ARG("query.serve", "kind",
                          static_cast<uint64_t>(job->request.kind));
      SnapshotHandle snapshot = job->request.at_root.has_value()
                                    ? registry_->AcquireAt(*job->request.at_root)
                                    : registry_->AcquireLatest();
      if (!snapshot.valid()) {
        response.status = QueryStatus::kUnknownRoot;
      } else {
        SnapshotReader reader(snapshot);
        response = EvalQuery(job->request, reader, snapshot.block_index(), snapshot.root(),
                             provider_);
      }
    }
    const uint64_t elapsed = MonotonicNs() - start;
    response.wall_ns = elapsed;
    if (response.status == QueryStatus::kOk) {
      served_.fetch_add(1, std::memory_order_relaxed);
      by_kind_[static_cast<size_t>(job->request.kind)].fetch_add(1, std::memory_order_relaxed);
      if (job->request.kind == QueryKind::kCall) {
        call_hist.Observe(elapsed);
        if (response.call_status != EvmStatus::kSuccess) {
          calls_reverted_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      served_counter.Add();
    } else {
      unknown_root_.fetch_add(1, std::memory_order_relaxed);
      miss_counter.Add();
    }
    total_serve_ns_.fetch_add(elapsed, std::memory_order_relaxed);
    serve_hist.Observe(elapsed);
    job->promise.set_value(std::move(response));
  }
}

}  // namespace pevm
