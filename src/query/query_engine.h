// The concurrent read-only query tier (DESIGN.md §4.7): a pool of serving
// threads consuming a bounded queue of eth-API-shaped read requests
// (getBalance / getTransactionCount / getStorageAt / getCode / eth_call),
// each answered against a root pinned in the SnapshotRegistry while the chain
// pipeline keeps executing and committing ahead of it.
//
// eth_call runs the real interpreter over a StateView stacked on the pinned
// snapshot, sharing the process-wide CodeCache with the executors (the cache
// is a pure function of the bytecode, so query-tier hits/promotions cannot
// perturb execution). Writes the call attempts land in the discarded view and
// logs are never taken — the snapshot is immutable, so the tier is read-only
// structurally, not by runtime policing.
//
// Correctness contract: every response is bit-identical to evaluating the
// same request against a WorldState produced by serially replaying the chain
// and stopping at the response's pinned root (EvalQuery is that shared
// evaluation function — the test oracle calls it with a WorldStateReader).
// Inertness: the tier only ever reads the registry, so running it at any
// thread count leaves every root and deterministic BlockReport field
// bit-identical to not running it (wall clock only).
#ifndef SRC_QUERY_QUERY_ENGINE_H_
#define SRC_QUERY_QUERY_ENGINE_H_

#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/chain/bounded_queue.h"
#include "src/codecache/program.h"
#include "src/exec/types.h"
#include "src/query/snapshot.h"

namespace pevm {

enum class QueryKind : uint8_t {
  kGetBalance = 0,
  kGetNonce,      // eth_getTransactionCount.
  kGetStorageAt,
  kGetCode,
  kCall,          // Read-only eth_call (value transfer out of scope).
};

inline constexpr int kQueryKinds = 5;

const char* QueryKindName(QueryKind kind);

struct QueryRequest {
  QueryKind kind = QueryKind::kGetBalance;
  Address account;  // Target account; the callee contract for kCall/kGetStorageAt.
  U256 slot;        // kGetStorageAt only.
  // kCall only:
  Address caller;
  Bytes calldata;
  int64_t gas_limit = 1'000'000;
  // Pin an explicit root (must be retained); nullopt serves at the newest
  // committed root.
  std::optional<Hash256> at_root;
};

// A request plus its intended submission instant relative to load start —
// what the workload generator emits and bench submitter threads replay
// (offset 0 = submit immediately; bursty schedules cluster offsets).
struct TimedQuery {
  QueryRequest request;
  uint64_t offset_ns = 0;
};

enum class QueryStatus : uint8_t {
  kOk = 0,
  kUnknownRoot,  // at_root names no retained snapshot (evicted or never seen).
  kRejected,     // Submitted after Stop().
};

struct QueryResponse {
  QueryStatus status = QueryStatus::kOk;
  // Where the query was served: the pinned snapshot. block_index counts
  // committed blocks (chain-lifetime), root is its state root.
  uint64_t block_index = 0;
  Hash256 root{};
  // kGetBalance/kGetNonce/kGetStorageAt result.
  U256 value;
  // kGetCode (the contract's code) / kCall (RETURN or REVERT payload).
  Bytes bytes;
  // kCall only.
  EvmStatus call_status = EvmStatus::kSuccess;
  int64_t gas_used = 0;
  uint64_t writes_discarded = 0;  // Writes the call buffered; all dropped.
  // Wall clock from dequeue to response (serving latency, queue wait
  // excluded). The only field allowed to vary run-to-run.
  uint64_t wall_ns = 0;

  bool ok() const { return status == QueryStatus::kOk; }
};

// Deterministic block context a query executes under, derived from the
// pinned snapshot's block index. Shared by the serving threads and the
// serial-replay oracle so eth_call results compare bit-identically.
inline BlockContext QueryBlockContext(uint64_t block_index) {
  BlockContext context;
  context.number = U256(block_index);
  context.timestamp = U256(1'600'000'000 + 12 * block_index);
  return context;
}

// Evaluates `request` against any committed-state reader presenting the state
// as of (block_index, root). Pure: no queue, no snapshot management — the
// serving threads call it with a SnapshotReader, the test oracle with a
// WorldStateReader over a serial replay. `provider` is the code cache (null =
// uncached dispatch; results identical either way).
QueryResponse EvalQuery(const QueryRequest& request, const BaseReader& reader,
                        uint64_t block_index, const Hash256& root,
                        CodeProvider* provider = nullptr);

struct QueryEngineOptions {
  int threads = 2;              // Serving threads.
  size_t queue_capacity = 256;  // Submit backpressure bound.
  // Code cache for eth_call dispatch. Default kShared: reuse the process-wide
  // cache the executors warm (and warm it for them — residency is shared,
  // results are not affected).
  CodeCacheConfig code_cache;
};

// Serving totals (wall-clock class: which thread served what depends on
// timing; the *responses* are deterministic per pinned root, these counters
// are not part of any determinism contract).
struct QueryStats {
  uint64_t served = 0;                  // Responses with status kOk.
  uint64_t unknown_root = 0;
  uint64_t rejected = 0;
  uint64_t by_kind[kQueryKinds] = {};   // kOk responses per QueryKind.
  uint64_t calls_reverted = 0;          // kCall responses that did not succeed.
  uint64_t total_serve_ns = 0;          // Sum of QueryResponse::wall_ns.
};

class QueryEngine {
 public:
  // The registry (and whatever owns it — typically a ChainRunner) must
  // outlive this engine; call Stop() (or destroy the engine) before the
  // registry dies.
  explicit QueryEngine(SnapshotRegistry& registry, const QueryEngineOptions& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // Enqueues one request; blocks while the queue is saturated (backpressure).
  // The future always resolves: kOk/kUnknownRoot from a serving thread, or
  // kRejected immediately once the engine is stopped.
  std::future<QueryResponse> Submit(QueryRequest request);

  // Closes the queue, drains every queued request, joins the pool and
  // returns the totals. Idempotent.
  QueryStats Stop();

  // Live snapshot of the totals (threads may still be serving).
  QueryStats stats() const;

  // Request-queue observability for the ops plane's /healthz: current depth
  // and the high-water mark since construction. Safe from any thread.
  size_t queue_depth() const { return queue_->depth(); }
  size_t queue_high_water() const { return queue_->max_depth(); }

 private:
  struct Job {
    QueryRequest request;
    std::promise<QueryResponse> promise;
  };

  void ServeLoop(int worker);

  SnapshotRegistry* registry_;
  QueryEngineOptions options_;
  CodeProvider* provider_ = nullptr;
  std::unique_ptr<BoundedQueue<Job>> queue_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopped_{false};

  // Written by serving threads (relaxed; totals read after Stop or as a
  // racy-but-consistent live snapshot).
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> unknown_root_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> by_kind_[kQueryKinds] = {};
  std::atomic<uint64_t> calls_reverted_{0};
  std::atomic<uint64_t> total_serve_ns_{0};
  std::optional<QueryStats> final_stats_;
};

}  // namespace pevm

#endif  // SRC_QUERY_QUERY_ENGINE_H_
