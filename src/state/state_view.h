// Per-transaction overlay over a committed WorldState. All speculative
// execution goes through a StateView: writes are buffered locally, and the
// first read of every key from the base state is recorded in the read set —
// exactly the bookkeeping OCC-style validation needs (§5.1 read phase).
//
// The overlay supports snapshots so inner message calls can revert their
// effects without touching the rest of the transaction.
#ifndef SRC_STATE_STATE_VIEW_H_
#define SRC_STATE_STATE_VIEW_H_

#include <optional>
#include <vector>

#include "src/state/world_state.h"

namespace pevm {

// Resolves reads that fall through a StateView's write buffer. The default
// implementation reads a committed WorldState; Block-STM plugs in a
// multi-version reader whose lookups may hit an unresolved dependency
// (ShouldAbort then turns true and the interpreter stops).
class BaseReader {
 public:
  virtual ~BaseReader() = default;
  virtual U256 Read(const StateKey& key) const = 0;
  virtual const Bytes* ReadCode(const Address& a) const = 0;
  // Precomputed code hash when the backing store tracks one; nullptr is
  // always safe (the code cache hashes the bytes itself).
  virtual const Hash256* ReadCodeHash(const Address& a) const {
    (void)a;
    return nullptr;
  }
  virtual bool ShouldAbort() const { return false; }
};

class WorldStateReader final : public BaseReader {
 public:
  explicit WorldStateReader(const WorldState& state) : state_(&state) {}
  U256 Read(const StateKey& key) const override { return state_->Get(key); }
  const Bytes* ReadCode(const Address& a) const override { return state_->GetCode(a); }
  const Hash256* ReadCodeHash(const Address& a) const override { return state_->GetCodeHash(a); }

 private:
  const WorldState* state_;
};

class StateView {
 public:
  explicit StateView(const WorldState& base)
      : owned_reader_(std::in_place, base), base_(&*owned_reader_) {}
  explicit StateView(const BaseReader& base) : base_(&base) {}

  // Uniform key-value access. Reads consult the local write buffer first and
  // fall back to the base state, recording the observed value in the read
  // set the first time a key is read from base.
  U256 Get(const StateKey& key);
  void Set(const StateKey& key, const U256& value);

  // Typed helpers.
  U256 GetBalance(const Address& a) { return Get(StateKey::Balance(a)); }
  void SetBalance(const Address& a, const U256& v) { Set(StateKey::Balance(a), v); }
  uint64_t GetNonce(const Address& a) { return Get(StateKey::Nonce(a)).AsUint64(); }
  void SetNonce(const Address& a, uint64_t n) { Set(StateKey::Nonce(a), U256(n)); }
  U256 GetStorage(const Address& a, const U256& slot) { return Get(StateKey::Storage(a, slot)); }
  void SetStorage(const Address& a, const U256& slot, const U256& v) {
    Set(StateKey::Storage(a, slot), v);
  }
  // Code is immutable in this system (no CREATE in the workloads), so code
  // reads bypass the read set.
  const Bytes* GetCode(const Address& a) const { return base_->ReadCode(a); }
  const Hash256* GetCodeHash(const Address& a) const { return base_->ReadCodeHash(a); }

  // True once a base read hit an unresolved dependency (Block-STM ESTIMATE).
  bool base_aborted() const { return base_->ShouldAbort(); }

  // The committed value of `key` at read time, without any overlay write —
  // i.e. what validation will compare against. Records the read.
  U256 GetCommitted(const StateKey& key);

  // True if `key` has been written by this transaction (the paper's
  // latest_writes membership test, used to classify SLOADs as type I/II).
  bool HasWritten(const StateKey& key) const { return writes_.contains(key); }

  // --- Snapshots (inner-call revert support). ---
  size_t Snapshot() const { return journal_.size(); }
  void RevertToSnapshot(size_t snapshot);

  const ReadSet& read_set() const { return reads_; }
  const WriteSet& write_set() const { return writes_; }
  WriteSet take_write_set() { return std::move(writes_); }

  // Keys in first-base-read order (the 2PL baseline's lock-acquisition
  // trace).
  const std::vector<StateKey>& read_order() const { return read_order_; }

  // Number of distinct keys read from the base state (cold-read candidates
  // for the storage-latency model).
  size_t base_reads() const { return reads_.size(); }

 private:
  struct JournalEntry {
    StateKey key;
    std::optional<U256> prior;  // Previous buffered value; nullopt = not buffered.
  };

  std::optional<WorldStateReader> owned_reader_;
  const BaseReader* base_;
  ReadSet reads_;
  WriteSet writes_;
  std::vector<StateKey> read_order_;
  std::vector<JournalEntry> journal_;
};

}  // namespace pevm

#endif  // SRC_STATE_STATE_VIEW_H_
