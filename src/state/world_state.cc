#include "src/state/world_state.h"

#include <cassert>
#include <vector>

#include "src/support/rlp.h"
#include "src/trie/mpt.h"

namespace pevm {

U256 WorldState::GetBalance(const Address& a) const {
  auto it = accounts_.find(a);
  return it == accounts_.end() ? U256{} : it->second.balance;
}

uint64_t WorldState::GetNonce(const Address& a) const {
  auto it = accounts_.find(a);
  return it == accounts_.end() ? 0 : it->second.nonce;
}

U256 WorldState::GetStorage(const Address& a, const U256& slot) const {
  auto it = accounts_.find(a);
  if (it == accounts_.end()) {
    return U256{};
  }
  auto sit = it->second.storage.find(slot);
  return sit == it->second.storage.end() ? U256{} : sit->second;
}

const Bytes* WorldState::GetCode(const Address& a) const {
  auto it = accounts_.find(a);
  if (it == accounts_.end() || it->second.code.empty()) {
    return nullptr;
  }
  return &it->second.code;
}

void WorldState::SetBalance(const Address& a, const U256& v) {
  if (diff_) {
    diff_->emplace_back(StateKey::Balance(a), v);
  }
  if (observer_) {
    observer_->OnStateWrite(StateKey::Balance(a), v);
  }
  accounts_[a].balance = v;
}

void WorldState::SetNonce(const Address& a, uint64_t n) {
  if (diff_) {
    diff_->emplace_back(StateKey::Nonce(a), U256(n));
  }
  if (observer_) {
    observer_->OnStateWrite(StateKey::Nonce(a), U256(n));
  }
  accounts_[a].nonce = n;
}

void WorldState::SetStorage(const Address& a, const U256& slot, const U256& v) {
  if (diff_) {
    diff_->emplace_back(StateKey::Storage(a, slot), v);
  }
  if (observer_) {
    observer_->OnStateWrite(StateKey::Storage(a, slot), v);
  }
  if (v.IsZero()) {
    auto it = accounts_.find(a);
    if (it != accounts_.end()) {
      it->second.storage.erase(slot);
    }
    return;
  }
  accounts_[a].storage[slot] = v;
}

void WorldState::SetCode(const Address& a, Bytes code) {
  assert(!diff_ && "code writes are not journalable (deployment is genesis-only)");
  Account& account = accounts_[a];
  account.code = std::move(code);
  if (account.code.empty()) {
    code_hashes_.erase(a);
  } else {
    code_hashes_[a] = Keccak256(account.code);
  }
}

const Hash256* WorldState::GetCodeHash(const Address& a) const {
  auto it = code_hashes_.find(a);
  return it == code_hashes_.end() ? nullptr : &it->second;
}

void WorldState::BeginDiff() { diff_.emplace(); }

StateDiff WorldState::TakeDiff() {
  StateDiff out = diff_ ? std::move(*diff_) : StateDiff{};
  diff_.reset();
  return out;
}

U256 WorldState::Get(const StateKey& key) const {
  switch (key.kind) {
    case StateKeyKind::kBalance:
      return GetBalance(key.address);
    case StateKeyKind::kNonce:
      return U256(GetNonce(key.address));
    case StateKeyKind::kStorage:
      return GetStorage(key.address, key.slot);
  }
  return U256{};
}

void WorldState::Set(const StateKey& key, const U256& value) {
  switch (key.kind) {
    case StateKeyKind::kBalance:
      SetBalance(key.address, value);
      return;
    case StateKeyKind::kNonce:
      SetNonce(key.address, value.AsUint64());
      return;
    case StateKeyKind::kStorage:
      SetStorage(key.address, key.slot, value);
      return;
  }
}

void WorldState::Apply(const WriteSet& writes) {
  for (const auto& [key, value] : writes) {
    Set(key, value);
  }
}

Bytes RlpAccountBody(uint64_t nonce, const U256& balance, const Hash256& storage_root,
                     const Hash256& code_hash) {
  std::vector<Bytes> body;
  body.push_back(RlpEncodeUint(U256(nonce)));
  body.push_back(RlpEncodeUint(balance));
  body.push_back(RlpEncodeBytes(BytesView(storage_root.data(), storage_root.size())));
  body.push_back(RlpEncodeBytes(BytesView(code_hash.data(), code_hash.size())));
  return RlpEncodeList(body);
}

Hash256 WorldState::StateRoot() const {
  MerklePatriciaTrie state_trie;
  for (const auto& [addr, account] : accounts_) {
    // Per-account storage trie.
    MerklePatriciaTrie storage_trie;
    for (const auto& [slot, value] : account.storage) {
      if (value.IsZero()) {
        continue;
      }
      std::array<uint8_t, 32> slot_be = slot.ToBigEndian();
      Hash256 slot_key = Keccak256(BytesView(slot_be.data(), slot_be.size()));
      storage_trie.Put(BytesView(slot_key.data(), slot_key.size()), RlpEncodeUint(value));
    }
    Hash256 storage_root = storage_trie.RootHash();
    Hash256 code_hash = Keccak256(account.code);
    Hash256 addr_key = Keccak256(addr.view());
    state_trie.Put(BytesView(addr_key.data(), addr_key.size()),
                   RlpAccountBody(account.nonce, account.balance, storage_root, code_hash));
  }
  return state_trie.RootHash();
}

uint64_t WorldState::Digest() const {
  uint64_t acc = 0;
  for (const auto& [addr, account] : accounts_) {
    uint64_t h = Fnv1a(addr.view());
    h = Fnv1a(BytesView(account.balance.ToBigEndian().data(), 32), h);
    h ^= account.nonce * 0x9e3779b97f4a7c15ULL;
    h = Fnv1a(account.code, h);
    uint64_t storage_acc = 0;
    for (const auto& [slot, value] : account.storage) {
      if (value.IsZero()) {
        continue;
      }
      uint64_t sh = Fnv1a(BytesView(slot.ToBigEndian().data(), 32));
      sh = Fnv1a(BytesView(value.ToBigEndian().data(), 32), sh);
      storage_acc += sh;  // Order-independent combine.
    }
    acc += h + storage_acc * 0x100000001b3ULL;
  }
  return acc;
}

}  // namespace pevm
