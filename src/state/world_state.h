// The committed Ethereum world state: address -> {balance, nonce, code,
// storage}. Executors mutate it only through Apply(write_set) at commit
// time; speculative execution goes through StateView overlays.
#ifndef SRC_STATE_WORLD_STATE_H_
#define SRC_STATE_WORLD_STATE_H_

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/state/state_key.h"
#include "src/support/bytes.h"
#include "src/support/keccak.h"
#include "src/support/u256.h"

namespace pevm {

struct Account {
  U256 balance;
  uint64_t nonce = 0;
  Bytes code;
  std::unordered_map<U256, U256> storage;

  friend bool operator==(const Account&, const Account&) = default;
};

// A write set maps state keys to their new values. Storage writes of zero are
// kept (they clear the slot on Apply).
using WriteSet = std::unordered_map<StateKey, U256, StateKeyHash>;

// A read set maps state keys to the committed value observed when the key was
// first read from the base state during speculative execution.
using ReadSet = std::unordered_map<StateKey, U256, StateKeyHash>;

// One block's committed mutations in application order (zero storage values
// clear slots). Order is preserved — not collapsed into a map — because
// account-existence semantics depend on it: a non-zero storage write
// materializes an account, a zero one does not, so an incremental committer
// replaying the diff must see the same write sequence WorldState saw. See
// BeginDiff/TakeDiff below.
using StateDiff = std::vector<std::pair<StateKey, U256>>;

// Live mutation tap: every balance/nonce/storage write is mirrored to the
// observer as it lands (same values the diff journal records). The chain
// runner's cross-block speculation overlay subscribes so a concurrent
// speculation stage can see the in-flight block's writes before they commit.
// Observer methods must be internally synchronized — they run on whatever
// thread mutates the state.
class StateWriteObserver {
 public:
  virtual ~StateWriteObserver() = default;
  virtual void OnStateWrite(const StateKey& key, const U256& value) = 0;
};

class WorldState {
 public:
  // Reads return zero for absent accounts/slots, per EVM semantics.
  U256 GetBalance(const Address& a) const;
  uint64_t GetNonce(const Address& a) const;
  U256 GetStorage(const Address& a, const U256& slot) const;
  const Bytes* GetCode(const Address& a) const;  // nullptr if no code.
  // Keccak of the account's code, precomputed by SetCode; nullptr if no code.
  // Lets the code cache key lookups without rehashing hot bytecode.
  const Hash256* GetCodeHash(const Address& a) const;

  void SetBalance(const Address& a, const U256& v);
  void SetNonce(const Address& a, uint64_t n);
  void SetStorage(const Address& a, const U256& slot, const U256& v);
  void SetCode(const Address& a, Bytes code);

  // Uniform access used by validation/commit.
  U256 Get(const StateKey& key) const;
  void Set(const StateKey& key, const U256& value);

  // Applies a whole write set (a transaction commit).
  void Apply(const WriteSet& writes);

  // Diff journal (the chain runner's commitment input): between BeginDiff and
  // TakeDiff every balance/nonce/storage mutation — including zero storage
  // writes that clear slots, and the block-end coinbase credit — is appended
  // to an ordered journal. TakeDiff stops recording and hands the journal
  // over. Code writes are not journalable (contract deployment is
  // genesis-only; SetCode asserts no diff is active).
  void BeginDiff();
  StateDiff TakeDiff();

  // Attaches (or, with nullptr, detaches) the live write tap above. At most
  // one observer; not copied by the implicit copy constructor's member copy
  // (the pointer is, so detach before copying if that is not wanted — the
  // chain runner snapshots its frozen speculation base *before* attaching).
  void SetWriteObserver(StateWriteObserver* observer) { observer_ = observer; }

  // Full Merkle Patricia state root (secure trie: keyed by keccak(address) /
  // keccak(slot), account bodies RLP-encoded as [nonce, balance, storageRoot,
  // codeHash]). This is the §6.2 correctness oracle; O(state size), so tests
  // use it at block boundaries rather than per transaction.
  Hash256 StateRoot() const;

  // Cheap order-independent digest over the full state; used by benches to
  // assert executor equivalence without paying for a trie build.
  uint64_t Digest() const;

  size_t account_count() const { return accounts_.size(); }

  // Read-only iteration over every account (incremental committers seed their
  // long-lived tries from this; StateRoot above is the from-scratch oracle).
  const std::unordered_map<Address, Account>& accounts() const { return accounts_; }

  // Exact structural equality. Two equal states have equal roots and digests;
  // differential tests prefer this because it is O(state) map compares with
  // no hashing (StateRoot rebuilds the whole trie, ~1000x slower). The diff
  // journal is bookkeeping, not state, and is excluded.
  friend bool operator==(const WorldState& a, const WorldState& b) {
    return a.accounts_ == b.accounts_;
  }

 private:
  std::unordered_map<Address, Account> accounts_;
  // Derived data (keyed off the immutable code), kept out of Account so
  // structural equality stays a pure state compare.
  std::unordered_map<Address, Hash256> code_hashes_;
  std::optional<StateDiff> diff_;  // Engaged while a diff is being recorded.
  StateWriteObserver* observer_ = nullptr;
};

// RLP account body [nonce, balance, storageRoot, codeHash] — the leaf payload
// of the secure state trie. Shared by the from-scratch StateRoot below and
// the chain runner's incremental committer so the two can never drift.
Bytes RlpAccountBody(uint64_t nonce, const U256& balance, const Hash256& storage_root,
                     const Hash256& code_hash);

}  // namespace pevm

#endif  // SRC_STATE_WORLD_STATE_H_
