// The KV keyspace shared by the chain runner's durable committer
// (src/chain/node_store.h) and the simulated storage front-end's real-I/O
// backing (src/state/sim_store.h). Both layers must agree on these encodings:
// the committer writes the flat-state mirror as it commits blocks, and the
// SimStore cold-read path reads the *same* keys, so "cold read" means a real
// pread against the same file a real node would hit.
//
// Keyspaces (first byte tags the record family):
//   'n' + 32-byte node hash              -> RLP node encoding (trie archive)
//   'e' + 20-byte address                -> 32B balance (BE) ++ 8B nonce (BE)
//   's' + 20-byte address + 32-byte slot -> 32-byte value (BE); absent = zero
//   'c' + 20-byte address                -> contract code (genesis-only)
//   'g'                                  -> genesis state root
//   'b'                                  -> 8B (BE) count of committed blocks
//   'r' + 8-byte block index (BE)        -> state root after that block
#ifndef SRC_STATE_KV_KEYS_H_
#define SRC_STATE_KV_KEYS_H_

#include <string>
#include <string_view>

#include "src/state/state_key.h"
#include "src/support/bytes.h"
#include "src/support/keccak.h"
#include "src/support/u256.h"

namespace pevm {
namespace kvkeys {

inline constexpr char kNodePrefix = 'n';
inline constexpr char kAccountPrefix = 'e';
inline constexpr char kStoragePrefix = 's';
inline constexpr char kCodePrefix = 'c';
inline constexpr std::string_view kGenesisRoot = "g";
inline constexpr std::string_view kCommittedBlocks = "b";
inline constexpr char kRootPrefix = 'r';

inline std::string NodeKey(const Hash256& hash) {
  std::string key(1, kNodePrefix);
  key.append(reinterpret_cast<const char*>(hash.data()), hash.size());
  return key;
}

inline std::string AccountKey(const Address& address) {
  std::string key(1, kAccountPrefix);
  key.append(reinterpret_cast<const char*>(address.bytes().data()), Address::kSize);
  return key;
}

inline std::string StorageKey(const Address& address, const U256& slot) {
  std::string key(1, kStoragePrefix);
  key.append(reinterpret_cast<const char*>(address.bytes().data()), Address::kSize);
  std::array<uint8_t, 32> be = slot.ToBigEndian();
  key.append(reinterpret_cast<const char*>(be.data()), be.size());
  return key;
}

inline std::string CodeKey(const Address& address) {
  std::string key(1, kCodePrefix);
  key.append(reinterpret_cast<const char*>(address.bytes().data()), Address::kSize);
  return key;
}

inline std::string RootKey(uint64_t block_index) {
  std::string key(1, kRootPrefix);
  for (int i = 7; i >= 0; --i) {
    key.push_back(static_cast<char>(static_cast<uint8_t>(block_index >> (8 * i))));
  }
  return key;
}

// The flat-state key an executing transaction's committed read maps to:
// balance and nonce both live in the account record, storage in its slot
// record. This is what the SimStore backing Gets on a cold miss.
inline std::string FlatStateKey(const StateKey& key) {
  switch (key.kind) {
    case StateKeyKind::kBalance:
    case StateKeyKind::kNonce:
      return AccountKey(key.address);
    case StateKeyKind::kStorage:
      return StorageKey(key.address, key.slot);
  }
  return AccountKey(key.address);
}

inline Bytes EncodeU64Be(uint64_t v) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * (7 - i)));
  }
  return out;
}

inline uint64_t DecodeU64Be(BytesView bytes) {
  uint64_t v = 0;
  for (uint8_t b : bytes) {
    v = (v << 8) | b;
  }
  return v;
}

// Account record: 32-byte big-endian balance followed by 8-byte nonce.
inline Bytes EncodeAccountRecord(const U256& balance, uint64_t nonce) {
  std::array<uint8_t, 32> be = balance.ToBigEndian();
  Bytes out(be.begin(), be.end());
  Bytes n = EncodeU64Be(nonce);
  out.insert(out.end(), n.begin(), n.end());
  return out;
}

}  // namespace kvkeys
}  // namespace pevm

#endif  // SRC_STATE_KV_KEYS_H_
