// The simulated storage front-end and its asynchronous prefetch pipeline.
//
// PR 1 made the read phase genuinely parallel; the remaining wall-clock
// bottleneck (paper Table 2, §6.3 "State Prefetching") is the LevelDB-like
// latency of every cold committed-state read. SimStore models that latency on
// the *wall clock only*: a thread-safe resident-key set decides whether a
// read pays the cold or the warm delay, and a background PrefetchEngine —
// running on its own src/exec ThreadPool — warms predicted access sets ahead
// of speculation with batched reads (one amortised batch latency instead of a
// cold miss per key).
//
// Determinism contract (DESIGN.md §3.2): nothing in this file may influence
// execution results or the virtual-time oracle. SimStore never stores values
// — warming marks residency and pays simulated latency, and SimStoreReader
// always returns the value the committed WorldState holds, so state roots,
// receipts and the virtual makespan are bit-identical with prefetching on or
// off, at every thread count. Only the wall-clock BlockReport fields (and the
// separately computed, deterministic prefetch hit/miss/wasted counters — see
// AccountPrefetch in src/exec/pipeline.h) react to this machinery.
#ifndef SRC_STATE_SIM_STORE_H_
#define SRC_STATE_SIM_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/state/state_view.h"
#include "src/state/world_state.h"

namespace pevm {

class KvStore;  // src/kv/kv_store.h; held by pointer only.

struct SimStoreConfig {
  // Wall-clock latency of a point read that misses the resident set (a
  // LevelDB-backed MPT node walk) and of one that hits it. Both default to 0:
  // the store then only tracks residency, so tests stay fast.
  uint64_t cold_read_ns = 0;
  uint64_t warm_read_ns = 0;
  // Wall-clock latency of one background batched read: base seek plus a
  // per-key increment. Batching is why prefetching wins — a batch of 32 keys
  // costs batch_base_ns + 32 * batch_key_ns instead of 32 * cold_read_ns.
  uint64_t batch_base_ns = 0;
  uint64_t batch_key_ns = 0;
  // Prefetch-engine shape: worker-pool width for issuing batches, keys per
  // batch, and the cap on remembered storage keys per (contract, selector)
  // hint bucket.
  int prefetch_workers = 2;
  size_t batch_size = 32;
  size_t max_hint_keys = 96;
  // Global cap on (contract, selector) hint buckets, LRU-evicted by observed
  // use: a long stream rotating through hot contracts sheds the cold ones
  // instead of growing without bound. 0 = unbounded. Recency is bumped only
  // by RecordObserved — the deterministic block-order pass — never by the
  // concurrent PredictSet, so eviction order (and therefore every prefetch
  // counter) is independent of OS thread timing.
  size_t max_hint_entries = 4096;
  // Real-I/O backing (the chain runner's embedded KV store): when set, cold
  // reads and warm-up batches issue real KvStore::Get calls against the
  // committed flat-state records instead of injecting the simulated cold /
  // batch latencies, so a "cold read" pays an actual pread (plus page-cache /
  // KV-cache effects) against the same file the committer writes. Values
  // still come from the committed WorldState and residency bookkeeping is
  // unchanged: like every latency knob this moves the wall clock only, and
  // simulated-latency mode (backing == nullptr) remains the deterministic
  // oracle. Not owned; must outlive the store.
  KvStore* backing = nullptr;
};

// The statically predictable part of one transaction's access set: the
// envelope accounts plus the calldata selector that keys the access-hint
// table. Built from a Block by BuildPrefetchRequests (src/exec/pipeline.h);
// kept free of exec-layer types so the state layer stays below exec.
struct PrefetchRequest {
  Address from;
  Address to;
  uint32_t selector = 0;  // First four calldata bytes, big-endian.
  bool has_selector = false;
};

class SimStore {
 public:
  explicit SimStore(const SimStoreConfig& config = {});

  const SimStoreConfig& config() const { return config_; }

  // Clears the resident set (per-block cold cache, matching the per-Execute
  // virtual StateCache) but keeps the access-hint table: hints learned in
  // block N predict block N+1's storage keys.
  void BeginBlock();

  // Foreground read of `key` by an executing thread: pays the cold or warm
  // latency depending on residency, then marks the key resident. Returns
  // whether the key was already resident. Thread-safe.
  bool Touch(const StateKey& key);

  // Background warm-up of a batch of keys: marks them resident after paying
  // one amortised batch latency. Never reads values, so it may run
  // concurrently with foreground execution *and* with commits. Thread-safe.
  void WarmBatch(std::span<const StateKey> keys);

  // Latency-free residency probe (test introspection only).
  bool IsResident(const StateKey& key) const;

  // The predicted access set for one transaction: envelope keys (sender
  // balance + nonce, recipient balance) plus the hint bucket recorded for
  // (to, selector) by prior rounds. Pure function of the request and the
  // hint table. Thread-safe.
  std::vector<StateKey> PredictSet(const PrefetchRequest& request) const;

  // Feeds the hint table: storage keys observed in `reads` are remembered
  // under (to, selector), capped at max_hint_keys per bucket. Called from the
  // deterministic block-order accounting pass only — never concurrently with
  // PredictSet from a live engine.
  void RecordObserved(const PrefetchRequest& request, const ReadSet& reads);

  // Wall-side statistics (informational; not part of any determinism
  // contract).
  uint64_t cold_touches() const { return cold_touches_.load(std::memory_order_relaxed); }
  uint64_t warm_touches() const { return warm_touches_.load(std::memory_order_relaxed); }
  uint64_t warmed_keys() const { return warmed_keys_.load(std::memory_order_relaxed); }
  uint64_t warm_batches() const { return warm_batches_.load(std::memory_order_relaxed); }
  uint64_t backing_reads() const { return backing_reads_.load(std::memory_order_relaxed); }

  // Live (contract, selector) hint buckets (test introspection; bounded by
  // max_hint_entries when that is non-zero).
  size_t hint_entries() const {
    std::lock_guard<std::mutex> lock(hints_mu_);
    return hints_.size();
  }

  // Whether (to, selector) currently has a hint bucket (test introspection).
  bool HasHintBucket(const Address& to, uint32_t selector) const {
    std::lock_guard<std::mutex> lock(hints_mu_);
    return hints_.contains(HintKey{to, selector});
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<StateKey, StateKeyHash> resident;
  };
  struct HintKey {
    Address to;
    uint32_t selector = 0;
    friend bool operator==(const HintKey&, const HintKey&) = default;
  };
  struct HintKeyHash {
    size_t operator()(const HintKey& k) const {
      return Fnv1a(k.to.view()) * 0x9e3779b97f4a7c15ULL + k.selector;
    }
  };

  // One hint bucket plus its position in the observed-recency list (most
  // recent at the front; eviction pops the back).
  struct HintBucket {
    std::vector<StateKey> keys;
    std::list<HintKey>::iterator lru_it;
  };

  Shard& ShardFor(const StateKey& key) const;
  void BackingRead(const StateKey& key);

  SimStoreConfig config_;
  static constexpr size_t kShards = 16;
  mutable std::array<Shard, kShards> shards_;

  mutable std::mutex hints_mu_;
  std::unordered_map<HintKey, HintBucket, HintKeyHash> hints_;
  std::list<HintKey> hint_lru_;

  std::atomic<uint64_t> cold_touches_{0};
  std::atomic<uint64_t> warm_touches_{0};
  std::atomic<uint64_t> warmed_keys_{0};
  std::atomic<uint64_t> warm_batches_{0};
  std::atomic<uint64_t> backing_reads_{0};
};

// Base-state reader that routes every committed read through the simulated
// storage front-end: residency decides the injected wall latency, the value
// always comes from the committed WorldState (code reads are latency-free —
// hot contract code is assumed memory-resident, as in the cost model).
class SimStoreReader final : public BaseReader {
 public:
  SimStoreReader(SimStore& store, const WorldState& state) : store_(&store), state_(&state) {}

  U256 Read(const StateKey& key) const override {
    store_->Touch(key);
    return state_->Get(key);
  }
  const Bytes* ReadCode(const Address& a) const override { return state_->GetCode(a); }

 private:
  SimStore* store_;
  const WorldState* state_;
};

// The asynchronous prefetch pipeline: a driver thread walks the block's
// prefetch requests in transaction order, staying at most `depth`
// transactions ahead of execution (NotifyStarted feeds the execution
// frontier), predicts each transaction's access set against the hint table,
// and issues the keys as batched warm-ups across an owned ThreadPool — so the
// warm-up for transaction i+depth overlaps the execution of transaction i.
//
// Lifecycle: construction starts the driver; Finish() (or the destructor)
// aborts any not-yet-issued warm-ups and joins. Drain() instead waits for the
// driver to issue everything — only safe when pacing can finish without
// further NotifyStarted calls (depth >= number of requests, or the frontier
// already advanced past them).
class PrefetchEngine {
 public:
  PrefetchEngine(SimStore& store, std::vector<PrefetchRequest> requests, int depth);
  ~PrefetchEngine() { Finish(); }

  PrefetchEngine(const PrefetchEngine&) = delete;
  PrefetchEngine& operator=(const PrefetchEngine&) = delete;

  // Marks transaction `i` as started by execution; the driver may then warm
  // up through transaction i + depth. Thread-safe, monotonic.
  void NotifyStarted(size_t i);

  // Aborts remaining warm-ups and joins the driver. Idempotent.
  void Finish();

  // Joins the driver without aborting (see class comment for when this is
  // safe). Idempotent.
  void Drain();

  // Valid after Finish()/Drain().
  uint64_t warm_wall_ns() const { return warm_wall_ns_; }
  uint64_t keys_issued() const { return keys_issued_; }
  uint64_t batches_issued() const { return batches_issued_; }

 private:
  void DriverLoop();

  SimStore& store_;
  std::vector<PrefetchRequest> requests_;
  size_t depth_;
  ThreadPool pool_;
  std::atomic<size_t> progress_{0};
  std::atomic<bool> stop_{false};
  uint64_t warm_wall_ns_ = 0;  // Written by the driver, read after join.
  uint64_t keys_issued_ = 0;
  uint64_t batches_issued_ = 0;
  std::thread driver_;  // Last member: starts after everything else is ready.
};

}  // namespace pevm

#endif  // SRC_STATE_SIM_STORE_H_
