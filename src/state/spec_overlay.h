// Cross-block speculation overlay: a sharded, last-writer-wins view of the
// in-flight block's uncommitted writes, stacked over a frozen copy of the
// committed state. The chain runner attaches the overlay to its live
// WorldState as a StateWriteObserver, so every write the exec thread performs
// (speculative-buffer commits, redo repairs, fallback re-executions, the
// coinbase credit) is visible to the concurrent speculation stage the moment
// it lands.
//
// The overlay is grow-only across the run: entries are never cleared when a
// block commits, because a committed write and its overlay entry hold the
// same value — the overlay degenerates to a cache of the committed state for
// untouched keys, which is exactly the fall-through base anyway. This erases
// the whole overlay-lifecycle problem (no epoch tagging, no clear barrier).
//
// Reads through the overlay are *predictions*, not truth: the boundary
// validation (src/exec/boundary.h) re-checks every speculative read against
// the final committed state, so a torn view (some of block N's writes, not
// yet all) can only cost performance, never correctness.
#ifndef SRC_STATE_SPEC_OVERLAY_H_
#define SRC_STATE_SPEC_OVERLAY_H_

#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/state/sim_store.h"
#include "src/state/state_view.h"
#include "src/state/world_state.h"

namespace pevm {

// The shared write tap. Thread-safe: the exec thread publishes through
// OnStateWrite while any number of speculation workers call Lookup.
class SpecOverlay final : public StateWriteObserver {
 public:
  void OnStateWrite(const StateKey& key, const U256& value) override {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.values[key] = value;
  }

  std::optional<U256> Lookup(const StateKey& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.values.find(key);
    if (it == shard.values.end()) {
      return std::nullopt;
    }
    return it->second;
  }

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<StateKey, U256, StateKeyHash> values;
  };

  Shard& ShardFor(const StateKey& key) { return shards_[StateKeyHash{}(key) % kShards]; }
  const Shard& ShardFor(const StateKey& key) const {
    return shards_[StateKeyHash{}(key) % kShards];
  }

  Shard shards_[kShards];
};

// BaseReader the speculation stage hands to SpeculateTransaction: overlay
// first (free — the value is already in memory on the exec thread's side),
// then the frozen committed base, paying the simulated storage latency and
// warming residency exactly like an in-block read would (the warm-up the
// speculative read performs is real work the successor block then skips).
class SpecOverlayReader final : public BaseReader {
 public:
  // `base` is the frozen pre-run committed state (copied before the overlay
  // was attached); `store` may be null when the storage model is off.
  SpecOverlayReader(const SpecOverlay& overlay, const WorldState& base, SimStore* store)
      : overlay_(&overlay), base_(&base), store_(store) {}

  U256 Read(const StateKey& key) const override {
    if (std::optional<U256> hit = overlay_->Lookup(key)) {
      return *hit;
    }
    if (store_) {
      store_->Touch(key);
    }
    return base_->Get(key);
  }

  const Bytes* ReadCode(const Address& a) const override { return base_->GetCode(a); }

  // Code hashes let the speculation stage hit the shared code cache instead
  // of re-hashing the bytecode per call. Perf-only: a null hash makes the
  // provider keccak the code itself, with identical results.
  const Hash256* ReadCodeHash(const Address& a) const override { return base_->GetCodeHash(a); }

 private:
  const SpecOverlay* overlay_;
  const WorldState* base_;
  SimStore* store_;
};

}  // namespace pevm

#endif  // SRC_STATE_SPEC_OVERLAY_H_
