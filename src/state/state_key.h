// A uniform key space for every piece of mutable world state the concurrency
// control algorithms track: storage slots, balances and nonces. Treating the
// transaction envelope (ether debits/credits, nonce bumps) as ordinary
// key-value accesses lets the validation and redo machinery handle them with
// the same machinery as SLOAD/SSTORE conflicts.
#ifndef SRC_STATE_STATE_KEY_H_
#define SRC_STATE_STATE_KEY_H_

#include <functional>
#include <string>

#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

enum class StateKeyKind : uint8_t {
  kBalance = 0,
  kNonce = 1,
  kStorage = 2,
};

struct StateKey {
  Address address;
  StateKeyKind kind = StateKeyKind::kBalance;
  U256 slot;  // Only meaningful for kStorage.

  static StateKey Balance(const Address& a) { return {a, StateKeyKind::kBalance, U256{}}; }
  static StateKey Nonce(const Address& a) { return {a, StateKeyKind::kNonce, U256{}}; }
  static StateKey Storage(const Address& a, const U256& slot) {
    return {a, StateKeyKind::kStorage, slot};
  }

  friend bool operator==(const StateKey&, const StateKey&) = default;

  std::string ToString() const {
    switch (kind) {
      case StateKeyKind::kBalance:
        return "balance(" + address.ToHex() + ")";
      case StateKeyKind::kNonce:
        return "nonce(" + address.ToHex() + ")";
      case StateKeyKind::kStorage:
        return "storage(" + address.ToHex() + ", " + slot.ToHexString() + ")";
    }
    return "?";
  }
};

struct StateKeyHash {
  size_t operator()(const StateKey& k) const {
    size_t h = Fnv1a(k.address.view());
    h ^= static_cast<size_t>(k.kind) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= k.slot.HashValue() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
};

}  // namespace pevm

template <>
struct std::hash<pevm::StateKey> {
  size_t operator()(const pevm::StateKey& k) const { return pevm::StateKeyHash{}(k); }
};

#endif  // SRC_STATE_STATE_KEY_H_
