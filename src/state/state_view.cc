#include "src/state/state_view.h"

namespace pevm {

U256 StateView::Get(const StateKey& key) {
  auto wit = writes_.find(key);
  if (wit != writes_.end()) {
    return wit->second;
  }
  return GetCommitted(key);
}

U256 StateView::GetCommitted(const StateKey& key) {
  auto rit = reads_.find(key);
  if (rit != reads_.end()) {
    return rit->second;
  }
  U256 v = base_->Read(key);
  reads_.emplace(key, v);
  read_order_.push_back(key);
  return v;
}

void StateView::Set(const StateKey& key, const U256& value) {
  auto it = writes_.find(key);
  if (it != writes_.end()) {
    journal_.push_back({key, it->second});
    it->second = value;
  } else {
    journal_.push_back({key, std::nullopt});
    writes_.emplace(key, value);
  }
}

void StateView::RevertToSnapshot(size_t snapshot) {
  while (journal_.size() > snapshot) {
    JournalEntry& e = journal_.back();
    if (e.prior.has_value()) {
      writes_[e.key] = *e.prior;
    } else {
      writes_.erase(e.key);
    }
    journal_.pop_back();
  }
}

}  // namespace pevm
