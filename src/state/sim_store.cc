#include "src/state/sim_store.h"

#include <algorithm>
#include <chrono>

#include "src/kv/kv_store.h"
#include "src/state/kv_keys.h"
#include "src/telemetry/trace.h"

namespace pevm {
namespace {

// Injects `ns` of wall-clock latency. Short delays spin on the steady clock
// (sleep granularity would distort them); long ones sleep so concurrent
// prefetch workers overlap honestly even on a single hardware thread.
void InjectLatency(uint64_t ns) {
  if (ns == 0) {
    return;
  }
  if (ns >= 20'000) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

}  // namespace

SimStore::SimStore(const SimStoreConfig& config) : config_(config) {}

SimStore::Shard& SimStore::ShardFor(const StateKey& key) const {
  return shards_[StateKeyHash{}(key) % kShards];
}

void SimStore::BeginBlock() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.resident.clear();
  }
}

// One real backing read: the committed flat-state record a cold miss would
// fetch from disk on a real node. The value is discarded — SimStoreReader
// still serves from the committed WorldState — so this is purely a wall-clock
// cost, like the injected latencies it replaces (absent keys cost a real
// index miss, which is also honest).
void SimStore::BackingRead(const StateKey& key) {
  config_.backing->Get(kvkeys::FlatStateKey(key));
  backing_reads_.fetch_add(1, std::memory_order_relaxed);
}

bool SimStore::Touch(const StateKey& key) {
  bool was_resident;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    was_resident = !shard.resident.insert(key).second;
  }
  if (was_resident) {
    warm_touches_.fetch_add(1, std::memory_order_relaxed);
    InjectLatency(config_.warm_read_ns);
  } else {
    PEVM_TRACE_SPAN("sim.cold_read");
    cold_touches_.fetch_add(1, std::memory_order_relaxed);
    if (config_.backing != nullptr) {
      BackingRead(key);
    } else {
      InjectLatency(config_.cold_read_ns);
    }
  }
  return was_resident;
}

void SimStore::WarmBatch(std::span<const StateKey> keys) {
  if (keys.empty()) {
    return;
  }
  PEVM_TRACE_SPAN_ARG("sim.warm_batch", "keys", keys.size());
  if (config_.backing != nullptr) {
    for (const StateKey& key : keys) {
      BackingRead(key);
    }
  } else {
    InjectLatency(config_.batch_base_ns + config_.batch_key_ns * keys.size());
  }
  for (const StateKey& key : keys) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.resident.insert(key);
  }
  warmed_keys_.fetch_add(keys.size(), std::memory_order_relaxed);
  warm_batches_.fetch_add(1, std::memory_order_relaxed);
}

bool SimStore::IsResident(const StateKey& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.resident.contains(key);
}

std::vector<StateKey> SimStore::PredictSet(const PrefetchRequest& request) const {
  std::vector<StateKey> keys;
  keys.reserve(3);
  keys.push_back(StateKey::Balance(request.from));
  keys.push_back(StateKey::Nonce(request.from));
  keys.push_back(StateKey::Balance(request.to));
  if (request.has_selector) {
    std::lock_guard<std::mutex> lock(hints_mu_);
    auto it = hints_.find(HintKey{request.to, request.selector});
    if (it != hints_.end()) {
      // Deliberately no LRU bump: PredictSet runs on concurrent prefetch
      // drivers, so letting it touch recency would make eviction order — and
      // through it the deterministic prefetch counters — timing-dependent.
      keys.insert(keys.end(), it->second.keys.begin(), it->second.keys.end());
    }
  }
  return keys;
}

void SimStore::RecordObserved(const PrefetchRequest& request, const ReadSet& reads) {
  if (!request.has_selector) {
    return;
  }
  std::lock_guard<std::mutex> lock(hints_mu_);
  HintKey hint_key{request.to, request.selector};
  auto [it, inserted] = hints_.try_emplace(hint_key);
  if (inserted) {
    hint_lru_.push_front(hint_key);
    it->second.lru_it = hint_lru_.begin();
    if (config_.max_hint_entries > 0 && hints_.size() > config_.max_hint_entries) {
      // Evict the bucket observed longest ago. Rotating hot contracts thus
      // sheds cold hints; a still-hot bucket was re-observed recently and
      // survives.
      hints_.erase(hint_lru_.back());
      hint_lru_.pop_back();
    }
  } else {
    hint_lru_.splice(hint_lru_.begin(), hint_lru_, it->second.lru_it);
  }
  std::vector<StateKey>& bucket = it->second.keys;
  for (const auto& [key, value] : reads) {
    if (key.kind != StateKeyKind::kStorage) {
      continue;  // Envelope keys are statically predicted; hints learn slots.
    }
    if (bucket.size() >= config_.max_hint_keys) {
      break;
    }
    if (std::find(bucket.begin(), bucket.end(), key) == bucket.end()) {
      bucket.push_back(key);
    }
  }
}

PrefetchEngine::PrefetchEngine(SimStore& store, std::vector<PrefetchRequest> requests,
                               int depth)
    : store_(store),
      requests_(std::move(requests)),
      depth_(static_cast<size_t>(std::max(depth, 1))),
      pool_(std::max(store.config().prefetch_workers, 1)),
      driver_([this] { DriverLoop(); }) {}

void PrefetchEngine::NotifyStarted(size_t i) {
  size_t target = i + 1;
  size_t current = progress_.load(std::memory_order_relaxed);
  while (current < target &&
         !progress_.compare_exchange_weak(current, target, std::memory_order_release,
                                          std::memory_order_relaxed)) {
  }
}

void PrefetchEngine::Finish() {
  stop_.store(true, std::memory_order_release);
  Drain();
}

void PrefetchEngine::Drain() {
  if (driver_.joinable()) {
    driver_.join();
  }
}

void PrefetchEngine::DriverLoop() {
  PEVM_TRACE_THREAD_NAME("prefetch-driver");
  PEVM_TRACE_SPAN_ARG("prefetch.drive", "txs", requests_.size());
  const size_t batch_size = std::max<size_t>(store_.config().batch_size, 1);
  const size_t max_pending = static_cast<size_t>(pool_.threads());
  std::vector<std::vector<StateKey>> pending;
  std::vector<StateKey> current;
  uint64_t warm_ns = 0;

  auto flush = [&](bool include_partial) {
    if (include_partial && !current.empty()) {
      pending.push_back(std::move(current));
      current.clear();
    }
    if (pending.empty()) {
      return;
    }
    for (const std::vector<StateKey>& batch : pending) {
      keys_issued_ += batch.size();
    }
    batches_issued_ += pending.size();
    auto start = std::chrono::steady_clock::now();
    pool_.ParallelFor(pending.size(),
                      [&](size_t b) { store_.WarmBatch(std::span<const StateKey>(pending[b])); });
    warm_ns += static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                         std::chrono::steady_clock::now() - start)
                                         .count());
    pending.clear();
  };

  for (size_t j = 0; j < requests_.size(); ++j) {
    // Pacing: stay at most `depth_` transactions ahead of the execution
    // frontier. While stalled, push out whatever is already batched.
    while (!stop_.load(std::memory_order_acquire) &&
           j >= progress_.load(std::memory_order_acquire) + depth_) {
      flush(/*include_partial=*/true);
      std::this_thread::yield();
    }
    if (stop_.load(std::memory_order_acquire)) {
      break;  // Abort: execution already passed everything we could warm.
    }
    std::vector<StateKey> predicted = store_.PredictSet(requests_[j]);
    for (StateKey& key : predicted) {
      current.push_back(std::move(key));
      if (current.size() >= batch_size) {
        pending.push_back(std::move(current));
        current.clear();
      }
    }
    if (pending.size() >= max_pending) {
      flush(/*include_partial=*/false);
    }
  }
  flush(/*include_partial=*/true);
  warm_wall_ns_ = warm_ns;
}

}  // namespace pevm
