#include "src/trie/mpt.h"

#include <array>
#include <cassert>
#include <vector>

#include "src/support/rlp.h"

namespace pevm {
namespace {

// Converts a byte key into one nibble per element (high nibble first).
Bytes ToNibbles(BytesView key) {
  Bytes out;
  out.reserve(key.size() * 2);
  for (uint8_t b : key) {
    out.push_back(b >> 4);
    out.push_back(b & 0xf);
  }
  return out;
}

// Hex-prefix encoding (yellow paper appendix C).
Bytes HexPrefix(BytesView nibbles, bool is_leaf) {
  Bytes out;
  uint8_t flag = is_leaf ? 2 : 0;
  bool odd = nibbles.size() % 2 != 0;
  size_t i = 0;
  if (odd) {
    out.push_back(static_cast<uint8_t>(((flag | 1) << 4) | nibbles[0]));
    i = 1;
  } else {
    out.push_back(static_cast<uint8_t>(flag << 4));
  }
  for (; i + 1 < nibbles.size() + 1 && i < nibbles.size(); i += 2) {
    out.push_back(static_cast<uint8_t>((nibbles[i] << 4) | nibbles[i + 1]));
  }
  return out;
}

size_t CommonPrefix(BytesView a, BytesView b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) {
    ++i;
  }
  return i;
}

}  // namespace

struct MerklePatriciaTrie::Node {
  enum class Type { kLeaf, kExtension, kBranch };

  explicit Node(Type t) : type(t) {}

  Type type;
  Bytes path;   // Nibble path for leaf/extension nodes.
  Bytes value;  // Leaf value, or the value stored at a branch.
  std::array<std::unique_ptr<Node>, 16> children;  // Branch children.
  std::unique_ptr<Node> child;                     // Extension child.

  // Incremental-root memo: the node's RLP encoding and its parent-visible
  // reference, recomputed lazily after a mutation dirtied this node. Cleared
  // (never updated in place) by the mutation path, so a stale memo can never
  // be observed.
  mutable Bytes enc_memo;
  mutable Bytes ref_memo;
  mutable bool enc_valid = false;
  mutable bool ref_valid = false;

  // Durability memo: true once HarvestDirtyNodes emitted (or skipped, for
  // inlined nodes) this node since its last mutation. Cleared together with
  // the encoding memo, so "persisted" implies the whole subtree is unchanged
  // since the last harvest.
  mutable bool persisted = false;
};

namespace {

using Node = MerklePatriciaTrie::Node;
using Type = Node::Type;

// Marks a node whose subtree (or own path/value) changed: both memos are
// stale. Fresh nodes start invalid, so only retained nodes need this.
void Dirty(Node* node) {
  node->enc_valid = false;
  node->ref_valid = false;
  node->enc_memo.clear();
  node->ref_memo.clear();
  node->persisted = false;
}

std::unique_ptr<Node> MakeLeaf(BytesView nibbles, BytesView value) {
  auto n = std::make_unique<Node>(Type::kLeaf);
  n->path.assign(nibbles.begin(), nibbles.end());
  n->value.assign(value.begin(), value.end());
  return n;
}

// Inserts into `node` (which may be null) and returns the new subtree root.
// Sets `*replaced` if an existing key's value was overwritten. Every retained
// node on the mutation spine is dirtied; untouched subtrees keep their memos.
std::unique_ptr<Node> Insert(std::unique_ptr<Node> node, BytesView nibbles, BytesView value,
                             bool* replaced) {
  if (node == nullptr) {
    return MakeLeaf(nibbles, value);
  }
  switch (node->type) {
    case Type::kBranch: {
      Dirty(node.get());
      if (nibbles.empty()) {
        *replaced = !node->value.empty();
        node->value.assign(value.begin(), value.end());
        return node;
      }
      uint8_t idx = nibbles[0];
      node->children[idx] =
          Insert(std::move(node->children[idx]), nibbles.subspan(1), value, replaced);
      return node;
    }
    case Type::kLeaf: {
      size_t cp = CommonPrefix(node->path, nibbles);
      if (cp == node->path.size() && cp == nibbles.size()) {
        *replaced = true;
        Dirty(node.get());
        node->value.assign(value.begin(), value.end());
        return node;
      }
      // Split into a branch (possibly under an extension for the shared prefix).
      auto branch = std::make_unique<Node>(Type::kBranch);
      BytesView old_rest = BytesView(node->path).subspan(cp);
      if (old_rest.empty()) {
        branch->value = node->value;
      } else {
        branch->children[old_rest[0]] = MakeLeaf(old_rest.subspan(1), node->value);
      }
      BytesView new_rest = nibbles.subspan(cp);
      if (new_rest.empty()) {
        branch->value.assign(value.begin(), value.end());
      } else {
        branch->children[new_rest[0]] = MakeLeaf(new_rest.subspan(1), value);
      }
      if (cp == 0) {
        return branch;
      }
      auto ext = std::make_unique<Node>(Type::kExtension);
      ext->path.assign(nibbles.begin(), nibbles.begin() + static_cast<long>(cp));
      ext->child = std::move(branch);
      return ext;
    }
    case Type::kExtension: {
      size_t cp = CommonPrefix(node->path, nibbles);
      if (cp == node->path.size()) {
        Dirty(node.get());
        node->child = Insert(std::move(node->child), nibbles.subspan(cp), value, replaced);
        return node;
      }
      // Diverges inside the extension path: split it. The moved-down child
      // subtree is unchanged, so its memo stays valid.
      auto branch = std::make_unique<Node>(Type::kBranch);
      // Remainder of the existing extension (after cp and the branch nibble).
      uint8_t old_nib = node->path[cp];
      Bytes old_tail(node->path.begin() + static_cast<long>(cp) + 1, node->path.end());
      if (old_tail.empty()) {
        branch->children[old_nib] = std::move(node->child);
      } else {
        auto sub = std::make_unique<Node>(Type::kExtension);
        sub->path = std::move(old_tail);
        sub->child = std::move(node->child);
        branch->children[old_nib] = std::move(sub);
      }
      BytesView new_rest = nibbles.subspan(cp);
      if (new_rest.empty()) {
        branch->value.assign(value.begin(), value.end());
      } else {
        branch->children[new_rest[0]] = MakeLeaf(new_rest.subspan(1), value);
      }
      if (cp == 0) {
        return branch;
      }
      auto ext = std::make_unique<Node>(Type::kExtension);
      ext->path.assign(nibbles.begin(), nibbles.begin() + static_cast<long>(cp));
      ext->child = std::move(branch);
      return ext;
    }
  }
  return node;  // Unreachable.
}

// Rebuilds the canonical form after a deletion left `node` possibly
// degenerate (an extension whose child is a leaf/extension, or a branch with
// a single remaining slot). Nodes whose path grows are dirtied; subtrees
// adopted without modification keep their memos.
std::unique_ptr<Node> Canonicalize(std::unique_ptr<Node> node) {
  if (node == nullptr) {
    return nullptr;
  }
  if (node->type == Type::kExtension) {
    Node* child = node->child.get();
    if (child == nullptr) {
      return nullptr;
    }
    if (child->type == Type::kLeaf || child->type == Type::kExtension) {
      // extension(p) + leaf/extension(q) => leaf/extension(p ++ q).
      Dirty(child);
      child->path.insert(child->path.begin(), node->path.begin(), node->path.end());
      return std::move(node->child);
    }
    return node;  // extension + branch: already canonical.
  }
  if (node->type == Type::kBranch) {
    int live = -1;
    int count = 0;
    for (int i = 0; i < 16; ++i) {
      if (node->children[static_cast<size_t>(i)] != nullptr) {
        live = i;
        ++count;
      }
    }
    if (count == 0) {
      if (node->value.empty()) {
        return nullptr;
      }
      // Only the branch value remains: a leaf with an empty path.
      auto leaf = std::make_unique<Node>(Type::kLeaf);
      leaf->value = std::move(node->value);
      return leaf;
    }
    if (count == 1 && node->value.empty()) {
      // One child left: absorb the branch nibble into it.
      std::unique_ptr<Node> child = std::move(node->children[static_cast<size_t>(live)]);
      uint8_t nib = static_cast<uint8_t>(live);
      if (child->type == Type::kBranch) {
        auto ext = std::make_unique<Node>(Type::kExtension);
        ext->path = {nib};
        ext->child = std::move(child);
        return ext;
      }
      Dirty(child.get());
      child->path.insert(child->path.begin(), nib);
      return child;  // Leaf or extension: path prefix grows by the nibble.
    }
    return node;
  }
  return node;
}

// Removes `nibbles` from the subtree; sets *removed when the key existed.
std::unique_ptr<Node> Remove(std::unique_ptr<Node> node, BytesView nibbles, bool* removed) {
  if (node == nullptr) {
    return nullptr;
  }
  switch (node->type) {
    case Type::kLeaf: {
      if (nibbles.size() == node->path.size() &&
          std::equal(nibbles.begin(), nibbles.end(), node->path.begin())) {
        *removed = true;
        return nullptr;
      }
      return node;
    }
    case Type::kExtension: {
      if (nibbles.size() < node->path.size() ||
          !std::equal(node->path.begin(), node->path.end(), nibbles.begin())) {
        return node;
      }
      node->child = Remove(std::move(node->child), nibbles.subspan(node->path.size()), removed);
      if (!*removed) {
        return node;
      }
      Dirty(node.get());
      return Canonicalize(std::move(node));
    }
    case Type::kBranch: {
      if (nibbles.empty()) {
        if (node->value.empty()) {
          return node;
        }
        node->value.clear();
        *removed = true;
        Dirty(node.get());
        return Canonicalize(std::move(node));
      }
      uint8_t idx = nibbles[0];
      node->children[idx] = Remove(std::move(node->children[idx]), nibbles.subspan(1), removed);
      if (!*removed) {
        return node;
      }
      Dirty(node.get());
      return Canonicalize(std::move(node));
    }
  }
  return node;
}

const Bytes& Encode(const Node* node);

// RLP item that refers to a child: the node's encoding if shorter than 32
// bytes, otherwise the RLP of its keccak hash. Memoized per node.
const Bytes& Ref(const Node* node) {
  if (node->ref_valid) {
    return node->ref_memo;
  }
  const Bytes& enc = Encode(node);
  if (enc.size() < 32) {
    node->ref_memo = enc;
  } else {
    Hash256 h = Keccak256(enc);
    node->ref_memo = RlpEncodeBytes(BytesView(h.data(), h.size()));
  }
  node->ref_valid = true;
  return node->ref_memo;
}

const Bytes& Encode(const Node* node) {
  if (node->enc_valid) {
    return node->enc_memo;
  }
  std::vector<Bytes> items;
  switch (node->type) {
    case Type::kLeaf: {
      items.push_back(RlpEncodeBytes(HexPrefix(node->path, /*is_leaf=*/true)));
      items.push_back(RlpEncodeBytes(node->value));
      break;
    }
    case Type::kExtension: {
      items.push_back(RlpEncodeBytes(HexPrefix(node->path, /*is_leaf=*/false)));
      items.push_back(Ref(node->child.get()));
      break;
    }
    case Type::kBranch: {
      for (const auto& child : node->children) {
        items.push_back(child ? Ref(child.get()) : RlpEncodeBytes({}));
      }
      items.push_back(RlpEncodeBytes(node->value));
      break;
    }
  }
  node->enc_memo = RlpEncodeList(items);
  node->enc_valid = true;
  return node->enc_memo;
}

// Post-order walk over the not-yet-persisted region. Children first so a
// store that applies records in emission order always has a node's children
// before the node referencing them (the write-batch is atomic anyway, but the
// invariant costs nothing and mirrors how real node stores flush).
size_t Harvest(const Node* node, bool is_root, const MerklePatriciaTrie::NodeSink* sink) {
  if (node == nullptr || node->persisted) {
    return 0;
  }
  size_t emitted = 0;
  switch (node->type) {
    case Type::kLeaf:
      break;
    case Type::kExtension:
      emitted += Harvest(node->child.get(), /*is_root=*/false, sink);
      break;
    case Type::kBranch:
      for (const auto& child : node->children) {
        emitted += Harvest(child.get(), /*is_root=*/false, sink);
      }
      break;
  }
  const Bytes& enc = Encode(node);
  // Nodes shorter than 32 bytes are inlined into their parent's encoding and
  // never stored standalone; the root is always stored under its hash.
  if (enc.size() >= 32 || is_root) {
    if (sink != nullptr) {
      (*sink)(Keccak256(enc), BytesView(enc.data(), enc.size()));
    }
    ++emitted;
  }
  node->persisted = true;
  return emitted;
}

// Shared lookup walk from an arbitrary subtree root. `rest` is the remaining
// nibble path (already stripped of whatever the caller consumed).
std::optional<Bytes> Lookup(const Node* node, BytesView rest) {
  while (node != nullptr) {
    switch (node->type) {
      case Type::kLeaf: {
        if (rest.size() == node->path.size() &&
            std::equal(rest.begin(), rest.end(), node->path.begin())) {
          return node->value;
        }
        return std::nullopt;
      }
      case Type::kExtension: {
        if (rest.size() < node->path.size() ||
            !std::equal(node->path.begin(), node->path.end(), rest.begin())) {
          return std::nullopt;
        }
        rest = rest.subspan(node->path.size());
        node = node->child.get();
        break;
      }
      case Type::kBranch: {
        if (rest.empty()) {
          if (node->value.empty()) {
            return std::nullopt;
          }
          return node->value;
        }
        node = node->children[rest[0]].get();
        rest = rest.subspan(1);
        break;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

size_t MerklePatriciaTrie::HarvestDirtyNodes(const NodeSink& sink) const {
  return Harvest(root_.get(), /*is_root=*/true, &sink);
}

void MerklePatriciaTrie::MarkAllPersisted() const {
  Harvest(root_.get(), /*is_root=*/true, nullptr);
}

MerklePatriciaTrie::MerklePatriciaTrie() = default;
MerklePatriciaTrie::~MerklePatriciaTrie() = default;
MerklePatriciaTrie::MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept = default;
MerklePatriciaTrie& MerklePatriciaTrie::operator=(MerklePatriciaTrie&&) noexcept = default;

void MerklePatriciaTrie::Put(BytesView key, BytesView value) {
  assert(!value.empty());
  Bytes nibbles = ToNibbles(key);
  bool replaced = false;
  root_ = Insert(std::move(root_), nibbles, value, &replaced);
  if (!replaced) {
    ++size_;
  }
}

bool MerklePatriciaTrie::Delete(BytesView key) {
  Bytes nibbles = ToNibbles(key);
  bool removed = false;
  root_ = Remove(std::move(root_), nibbles, &removed);
  if (removed) {
    --size_;
  }
  return removed;
}

size_t MerklePatriciaTrie::ApplyDiff(std::span<const TrieUpdate> updates) {
  size_t changed = 0;
  for (const TrieUpdate& update : updates) {
    if (update.value.empty()) {
      changed += Delete(update.key) ? 1 : 0;
    } else {
      size_t before = size_;
      Put(update.key, update.value);
      changed += size_ != before ? 1 : 0;
    }
  }
  return changed;
}

std::optional<Bytes> MerklePatriciaTrie::Get(BytesView key) const {
  Bytes nibbles = ToNibbles(key);
  return Lookup(root_.get(), nibbles);
}

Hash256 MerklePatriciaTrie::RootHash() const {
  if (root_ == nullptr) {
    return Keccak256(RlpEncodeBytes({}));  // 0x56e81f17... — the canonical empty root.
  }
  return Keccak256(Encode(root_.get()));
}

// --- ShardedMpt -------------------------------------------------------------
//
// Invariant: shard i holds exactly the monolithic keys whose first nibble is
// i, stored over the remaining nibbles. Three shapes the monolithic root can
// take, and how the join reproduces each bit-identically:
//   0 live shards  — the canonical empty root.
//   1 live shard i — the monolithic trie has no root branch. A leaf/extension
//                    shard root merges with the nibble: the join emits the
//                    same node with path {i} ++ shard_path. A branch shard
//                    root is a real monolithic node (the child of an
//                    extension with path {i}); the join emits that extension.
//   >= 2 live      — the monolithic root is a branch with no value (keys are
//                    non-empty) whose child i is exactly shard i's root.

ShardedMpt::ShardedMpt() = default;
ShardedMpt::~ShardedMpt() = default;
ShardedMpt::ShardedMpt(ShardedMpt&&) noexcept = default;
ShardedMpt& ShardedMpt::operator=(ShardedMpt&&) noexcept = default;

int ShardedMpt::ShardOf(BytesView key) {
  assert(!key.empty());
  return key[0] >> 4;
}

void ShardedMpt::Put(BytesView key, BytesView value) {
  assert(!value.empty());
  const int shard = ShardOf(key);
  Bytes nibbles = ToNibbles(key);
  bool replaced = false;
  roots_[shard] =
      Insert(std::move(roots_[shard]), BytesView(nibbles).subspan(1), value, &replaced);
  if (!replaced) {
    ++sizes_[shard];
  }
  mutated_[shard] = true;
}

std::optional<Bytes> ShardedMpt::Get(BytesView key) const {
  const int shard = ShardOf(key);
  Bytes nibbles = ToNibbles(key);
  return Lookup(roots_[shard].get(), BytesView(nibbles).subspan(1));
}

bool ShardedMpt::Delete(BytesView key) {
  const int shard = ShardOf(key);
  Bytes nibbles = ToNibbles(key);
  bool removed = false;
  roots_[shard] = Remove(std::move(roots_[shard]), BytesView(nibbles).subspan(1), &removed);
  if (removed) {
    --sizes_[shard];
    mutated_[shard] = true;
  }
  return removed;
}

size_t ShardedMpt::ApplyDiff(std::span<const TrieUpdate> updates) {
  size_t changed = 0;
  for (const TrieUpdate& update : updates) {
    if (update.value.empty()) {
      changed += Delete(update.key) ? 1 : 0;
    } else {
      const int shard = ShardOf(update.key);
      size_t before = sizes_[shard];
      Put(update.key, update.value);
      changed += sizes_[shard] != before ? 1 : 0;
    }
  }
  return changed;
}

size_t ShardedMpt::ApplyShardDiff(int shard, std::span<const TrieUpdate> updates) {
  size_t changed = 0;
  for (const TrieUpdate& update : updates) {
    assert(ShardOf(update.key) == shard);
    if (update.value.empty()) {
      changed += Delete(update.key) ? 1 : 0;
    } else {
      size_t before = sizes_[shard];
      Put(update.key, update.value);
      changed += sizes_[shard] != before ? 1 : 0;
    }
  }
  return changed;
}

void ShardedMpt::PrehashShard(int shard) const {
  if (roots_[shard] != nullptr) {
    Ref(roots_[shard].get());
  }
}

size_t ShardedMpt::size() const {
  size_t total = 0;
  for (size_t s : sizes_) {
    total += s;
  }
  return total;
}

int ShardedMpt::LiveCount(int* lone) const {
  int live = 0;
  for (int i = 0; i < kShards; ++i) {
    if (roots_[i] != nullptr) {
      ++live;
      *lone = i;
    }
  }
  return live;
}

// The monolithic root's RLP encoding, reassembled from shard references.
Bytes ShardedMpt::JoinEncoding() const {
  int lone = -1;
  const int live = LiveCount(&lone);
  assert(live > 0);
  std::vector<Bytes> items;
  if (live == 1) {
    const Node* shard_root = roots_[lone].get();
    if (shard_root->type == Type::kBranch) {
      // extension({lone}) -> shard branch.
      items.push_back(RlpEncodeBytes(HexPrefix(Bytes{static_cast<uint8_t>(lone)},
                                               /*is_leaf=*/false)));
      items.push_back(Ref(shard_root));
    } else {
      // The shard root itself with the nibble prepended to its path.
      Bytes path;
      path.reserve(1 + shard_root->path.size());
      path.push_back(static_cast<uint8_t>(lone));
      path.insert(path.end(), shard_root->path.begin(), shard_root->path.end());
      const bool is_leaf = shard_root->type == Type::kLeaf;
      items.push_back(RlpEncodeBytes(HexPrefix(path, is_leaf)));
      items.push_back(is_leaf ? RlpEncodeBytes(shard_root->value)
                              : Ref(shard_root->child.get()));
    }
  } else {
    for (int i = 0; i < kShards; ++i) {
      items.push_back(roots_[i] ? Ref(roots_[i].get()) : RlpEncodeBytes({}));
    }
    items.push_back(RlpEncodeBytes({}));  // No value: every key has >= 2 nibbles.
  }
  return RlpEncodeList(items);
}

Hash256 ShardedMpt::RootHash() const {
  int lone = -1;
  if (LiveCount(&lone) == 0) {
    return Keccak256(RlpEncodeBytes({}));
  }
  return Keccak256(JoinEncoding());
}

void ShardedMpt::PrepareHarvest() const {
  int lone = -1;
  harvest_live_ = LiveCount(&lone);
  if (harvest_live_ >= 2 && merged_shard_ >= 0 && roots_[merged_shard_] != nullptr) {
    // The last harvest published this shard's root only merged into the
    // single-shard join; now that it is a branch child it needs a standalone
    // record (the monolithic restructure would have dirtied it). Its children
    // are already archived, so only the one node re-emits.
    roots_[merged_shard_]->persisted = false;
  }
}

size_t ShardedMpt::HarvestShardImpl(int shard, const NodeSink* sink) const {
  const Node* shard_root = roots_[shard].get();
  if (shard_root == nullptr) {
    return 0;
  }
  if (harvest_live_ == 1 && shard_root->type != Type::kBranch) {
    // Merged case: the shard root is not a monolithic node (FinishHarvest
    // emits the merged join instead), but its subtree is. Harvest below it
    // and mark the node clean so unchanged spines skip next time.
    size_t emitted = 0;
    if (shard_root->type == Type::kExtension) {
      emitted = Harvest(shard_root->child.get(), /*is_root=*/false, sink);
    }
    shard_root->persisted = true;
    return emitted;
  }
  return Harvest(shard_root, /*is_root=*/false, sink);
}

size_t ShardedMpt::FinishHarvestImpl(const NodeSink* sink) const {
  bool dirty = false;
  for (int i = 0; i < kShards; ++i) {
    dirty = dirty || mutated_[i];
    mutated_[i] = false;
  }
  int lone = -1;
  const int live = LiveCount(&lone);
  merged_shard_ = (live == 1 && roots_[lone]->type != Type::kBranch) ? lone : -1;
  if (!dirty || live == 0) {
    return 0;  // Nothing mutated (or empty trie: the monolithic root is null).
  }
  Bytes enc = JoinEncoding();
  if (sink != nullptr) {
    (*sink)(Keccak256(enc), BytesView(enc.data(), enc.size()));
  }
  return 1;  // The root is always emitted, matching the monolithic harvest.
}

size_t ShardedMpt::HarvestDirtyNodes(const NodeSink& sink) const {
  PrepareHarvest();
  size_t emitted = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    emitted += HarvestShardImpl(shard, &sink);
  }
  return emitted + FinishHarvestImpl(&sink);
}

void ShardedMpt::MarkAllPersisted() const {
  PrepareHarvest();
  for (int shard = 0; shard < kShards; ++shard) {
    HarvestShardImpl(shard, nullptr);
  }
  FinishHarvestImpl(nullptr);
}

size_t ShardedMpt::HarvestShard(int shard, const NodeSink& sink) const {
  return HarvestShardImpl(shard, &sink);
}

size_t ShardedMpt::FinishHarvest(const NodeSink& sink) const {
  return FinishHarvestImpl(&sink);
}

}  // namespace pevm
