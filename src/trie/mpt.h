// In-memory Merkle Patricia Trie (yellow paper appendix D): hex-prefix key
// encoding, RLP node bodies, keccak-256 node references. Used as the
// correctness oracle (§6.2 of the paper): two world states are equal iff
// their MPT roots match.
//
// Supports insertion, lookup and deletion (with full node re-canonicalization
// on delete, so the root stays content-addressed). The executors only insert
// — the root is recomputed from full state snapshots — but deletion completes
// the substrate for downstream users (cleared accounts/slots).
#ifndef SRC_TRIE_MPT_H_
#define SRC_TRIE_MPT_H_

#include <memory>
#include <optional>

#include "src/support/bytes.h"
#include "src/support/keccak.h"

namespace pevm {

class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie();
  ~MerklePatriciaTrie();
  MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie(const MerklePatriciaTrie&) = delete;
  MerklePatriciaTrie& operator=(const MerklePatriciaTrie&) = delete;

  // Inserts (or replaces) `key -> value`. Empty values are rejected (they
  // would mean deletion in Ethereum; callers simply skip empty slots).
  void Put(BytesView key, BytesView value);

  // Returns the stored value, if any.
  std::optional<Bytes> Get(BytesView key) const;

  // Removes `key`; returns false when it was not present. The resulting root
  // equals that of a trie built without the key.
  bool Delete(BytesView key);

  // Keccak-256 root. The empty trie hashes to
  // keccak(rlp("")) = 0x56e81f17...63b421, matching Ethereum.
  Hash256 RootHash() const;

  size_t size() const { return size_; }

  struct Node;  // Exposed for the implementation file's free helpers.

 private:
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace pevm

#endif  // SRC_TRIE_MPT_H_
