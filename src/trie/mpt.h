// In-memory Merkle Patricia Trie (yellow paper appendix D): hex-prefix key
// encoding, RLP node bodies, keccak-256 node references. Used as the
// correctness oracle (§6.2 of the paper): two world states are equal iff
// their MPT roots match.
//
// Supports insertion, lookup and deletion (with full node re-canonicalization
// on delete, so the root stays content-addressed), plus a batched ApplyDiff
// entry point for incremental commitment (src/chain): a long-lived trie
// absorbs one block's write-set diff instead of being rebuilt from a full
// state snapshot.
//
// Incremental roots: every node memoizes its RLP encoding and its reference
// (the encoding if < 32 bytes, else the RLP of its keccak hash); mutations
// invalidate the memo along the touched spine only. RootHash after a k-key
// diff therefore re-hashes O(k · depth) nodes, not the whole trie — the
// asymptotic win that lets the chain runner's committer stage keep up with
// streaming execution. Memoization is invisible to results: roots stay
// bit-identical to a from-scratch build (locked in by the MptPropertyTest
// randomized battery).
//
// Durability hook (src/chain/node_store.h): every node additionally carries a
// `persisted` flag, cleared whenever the node is dirtied. HarvestDirtyNodes
// walks the not-yet-persisted region and emits each hash-referenced node's
// (keccak(encoding), encoding) pair — exactly the records a persistent node
// store (LevelDB-style) would write for the block, O(dirty spine) like the
// re-rooting itself.
#ifndef SRC_TRIE_MPT_H_
#define SRC_TRIE_MPT_H_

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "src/support/bytes.h"
#include "src/support/keccak.h"

namespace pevm {

// One batched trie mutation: an empty value deletes the key (Ethereum's
// convention for cleared slots); deleting an absent key is a no-op.
struct TrieUpdate {
  Bytes key;
  Bytes value;
};

class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie();
  ~MerklePatriciaTrie();
  MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie(const MerklePatriciaTrie&) = delete;
  MerklePatriciaTrie& operator=(const MerklePatriciaTrie&) = delete;

  // Inserts (or replaces) `key -> value`. Empty values are rejected (they
  // would mean deletion in Ethereum; callers use Delete/ApplyDiff instead).
  void Put(BytesView key, BytesView value);

  // Returns the stored value, if any.
  std::optional<Bytes> Get(BytesView key) const;

  // Removes `key`; returns false when it was not present. The resulting root
  // equals that of a trie built without the key.
  bool Delete(BytesView key);

  // Applies a block diff in order: non-empty values are Put, empty values are
  // Delete. Returns the number of updates that changed the key set (inserts
  // plus removals of present keys; value replacements don't count).
  size_t ApplyDiff(std::span<const TrieUpdate> updates);

  // Keccak-256 root. The empty trie hashes to
  // keccak(rlp("")) = 0x56e81f17...63b421, matching Ethereum. Amortized
  // O(dirty spine) thanks to the per-node encoding memo.
  Hash256 RootHash() const;

  size_t size() const { return size_; }

  // Receives one dirty node: its reference hash and RLP encoding.
  using NodeSink = std::function<void(const Hash256&, BytesView)>;

  // Emits every node whose encoding changed since the last harvest (or ever,
  // on a fresh trie) and marks the emitted region clean. Only hash-referenced
  // nodes are emitted — nodes that RLP-encode to < 32 bytes are inlined into
  // their parent on disk exactly as in the reference (the root is always
  // emitted, matching Ethereum's hashed root). Returns the number of nodes
  // emitted. Cost: O(dirty spine), the same asymptotics as RootHash.
  size_t HarvestDirtyNodes(const NodeSink& sink) const;

  // Marks the whole trie persisted without emitting anything: used when a
  // trie is rebuilt from state that is already durable (chain resume), so the
  // next harvest emits only post-resume mutations.
  void MarkAllPersisted() const;

  struct Node;  // Exposed for the implementation file's free helpers.

 private:
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

// The same Merkle Patricia Trie, split by top-level nibble into 16
// independent subtries plus a tiny synthetic root join — the shard layout the
// parallel committer (src/chain/commit.h) fans out over. Each shard stores
// its keys with the first nibble stripped, which makes a shard's root node
// bit-identical (encoding, memo and all) to the corresponding child of the
// monolithic trie's root branch; the join then reassembles the monolithic
// root encoding from the 16 shard references, so RootHash is bit-identical to
// MerklePatriciaTrie over the same contents (locked in by the
// ShardedMptPropertyTest battery, which also checks harvested node sets).
//
// Concurrency contract: the serial surface (Put/Get/Delete/ApplyDiff/
// RootHash/HarvestDirtyNodes) is single-threaded, exactly like the monolithic
// trie. The parallel surface partitions work by shard: ApplyShardDiff,
// PrehashShard and HarvestShard touch only shard-local state, so calls for
// DISTINCT shards may run concurrently; the harvest protocol brackets the
// per-shard phase with serial PrepareHarvest / FinishHarvest calls.
class ShardedMpt {
 public:
  static constexpr int kShards = 16;

  ShardedMpt();
  ~ShardedMpt();
  ShardedMpt(ShardedMpt&&) noexcept;
  ShardedMpt& operator=(ShardedMpt&&) noexcept;
  ShardedMpt(const ShardedMpt&) = delete;
  ShardedMpt& operator=(const ShardedMpt&) = delete;

  // Keys must be non-empty (one byte yields two nibbles, so every shard
  // subtrie path is non-empty too). The chain committer's keys are keccak
  // digests, which spread uniformly over the 16 shards.
  static int ShardOf(BytesView key);

  // Drop-in serial surface, same semantics as MerklePatriciaTrie.
  void Put(BytesView key, BytesView value);
  std::optional<Bytes> Get(BytesView key) const;
  bool Delete(BytesView key);
  size_t ApplyDiff(std::span<const TrieUpdate> updates);
  Hash256 RootHash() const;
  size_t size() const;

  using NodeSink = MerklePatriciaTrie::NodeSink;
  size_t HarvestDirtyNodes(const NodeSink& sink) const;
  void MarkAllPersisted() const;

  // --- Parallel surface (shard-disjoint calls may run concurrently). ---

  // Applies one shard's updates in order; every key must map to `shard`.
  size_t ApplyShardDiff(int shard, std::span<const TrieUpdate> updates);

  // Forces the shard root's encoding + reference memo — the expensive keccak
  // work of RootHash — so a later serial RootHash only joins 16 warm refs.
  void PrehashShard(int shard) const;

  // Harvest protocol: serial PrepareHarvest, then HarvestShard for each shard
  // (parallelizable), then serial FinishHarvest (emits the join root when any
  // shard mutated since the last harvest). The emitted (hash, encoding) set
  // across the three phases is identical to the monolithic trie's
  // HarvestDirtyNodes over the same mutation history.
  void PrepareHarvest() const;
  size_t HarvestShard(int shard, const NodeSink& sink) const;
  size_t FinishHarvest(const NodeSink& sink) const;

 private:
  size_t HarvestShardImpl(int shard, const NodeSink* sink) const;
  size_t FinishHarvestImpl(const NodeSink* sink) const;
  Bytes JoinEncoding() const;
  int LiveCount(int* lone) const;

  std::array<std::unique_ptr<MerklePatriciaTrie::Node>, kShards> roots_;
  std::array<size_t, kShards> sizes_{};
  // Set by any Put / successful Delete, cleared by FinishHarvest: drives the
  // "is the join root dirty" decision exactly like the monolithic root's
  // persisted flag (every mutation dirties the monolithic root spine).
  mutable std::array<bool, kShards> mutated_{};
  // When the last harvest had exactly one live shard whose root is a leaf or
  // extension, that root was published only merged into the synthetic join
  // (nibble prepended) — it is not a standalone node of the monolithic trie.
  // If a second shard comes alive, the monolithic restructure would dirty it,
  // so PrepareHarvest clears its persisted flag to re-emit it standalone.
  mutable int merged_shard_ = -1;
  mutable int harvest_live_ = 0;  // Live-shard count captured by PrepareHarvest.
};

}  // namespace pevm

#endif  // SRC_TRIE_MPT_H_
