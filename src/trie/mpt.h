// In-memory Merkle Patricia Trie (yellow paper appendix D): hex-prefix key
// encoding, RLP node bodies, keccak-256 node references. Used as the
// correctness oracle (§6.2 of the paper): two world states are equal iff
// their MPT roots match.
//
// Supports insertion, lookup and deletion (with full node re-canonicalization
// on delete, so the root stays content-addressed), plus a batched ApplyDiff
// entry point for incremental commitment (src/chain): a long-lived trie
// absorbs one block's write-set diff instead of being rebuilt from a full
// state snapshot.
//
// Incremental roots: every node memoizes its RLP encoding and its reference
// (the encoding if < 32 bytes, else the RLP of its keccak hash); mutations
// invalidate the memo along the touched spine only. RootHash after a k-key
// diff therefore re-hashes O(k · depth) nodes, not the whole trie — the
// asymptotic win that lets the chain runner's committer stage keep up with
// streaming execution. Memoization is invisible to results: roots stay
// bit-identical to a from-scratch build (locked in by the MptPropertyTest
// randomized battery).
//
// Durability hook (src/chain/node_store.h): every node additionally carries a
// `persisted` flag, cleared whenever the node is dirtied. HarvestDirtyNodes
// walks the not-yet-persisted region and emits each hash-referenced node's
// (keccak(encoding), encoding) pair — exactly the records a persistent node
// store (LevelDB-style) would write for the block, O(dirty spine) like the
// re-rooting itself.
#ifndef SRC_TRIE_MPT_H_
#define SRC_TRIE_MPT_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "src/support/bytes.h"
#include "src/support/keccak.h"

namespace pevm {

// One batched trie mutation: an empty value deletes the key (Ethereum's
// convention for cleared slots); deleting an absent key is a no-op.
struct TrieUpdate {
  Bytes key;
  Bytes value;
};

class MerklePatriciaTrie {
 public:
  MerklePatriciaTrie();
  ~MerklePatriciaTrie();
  MerklePatriciaTrie(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie& operator=(MerklePatriciaTrie&&) noexcept;
  MerklePatriciaTrie(const MerklePatriciaTrie&) = delete;
  MerklePatriciaTrie& operator=(const MerklePatriciaTrie&) = delete;

  // Inserts (or replaces) `key -> value`. Empty values are rejected (they
  // would mean deletion in Ethereum; callers use Delete/ApplyDiff instead).
  void Put(BytesView key, BytesView value);

  // Returns the stored value, if any.
  std::optional<Bytes> Get(BytesView key) const;

  // Removes `key`; returns false when it was not present. The resulting root
  // equals that of a trie built without the key.
  bool Delete(BytesView key);

  // Applies a block diff in order: non-empty values are Put, empty values are
  // Delete. Returns the number of updates that changed the key set (inserts
  // plus removals of present keys; value replacements don't count).
  size_t ApplyDiff(std::span<const TrieUpdate> updates);

  // Keccak-256 root. The empty trie hashes to
  // keccak(rlp("")) = 0x56e81f17...63b421, matching Ethereum. Amortized
  // O(dirty spine) thanks to the per-node encoding memo.
  Hash256 RootHash() const;

  size_t size() const { return size_; }

  // Receives one dirty node: its reference hash and RLP encoding.
  using NodeSink = std::function<void(const Hash256&, BytesView)>;

  // Emits every node whose encoding changed since the last harvest (or ever,
  // on a fresh trie) and marks the emitted region clean. Only hash-referenced
  // nodes are emitted — nodes that RLP-encode to < 32 bytes are inlined into
  // their parent on disk exactly as in the reference (the root is always
  // emitted, matching Ethereum's hashed root). Returns the number of nodes
  // emitted. Cost: O(dirty spine), the same asymptotics as RootHash.
  size_t HarvestDirtyNodes(const NodeSink& sink) const;

  // Marks the whole trie persisted without emitting anything: used when a
  // trie is rebuilt from state that is already durable (chain resume), so the
  // next harvest emits only post-resume mutations.
  void MarkAllPersisted() const;

  struct Node;  // Exposed for the implementation file's free helpers.

 private:
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace pevm

#endif  // SRC_TRIE_MPT_H_
