// Tier-0 bytecode analysis: JUMPDEST bitmap, fused straight-line segments
// with static precheck metadata, and per-output expression programs. A pure
// function of (code, fuse) — see program.h for why it must not depend on
// anything else.
#ifndef SRC_CODECACHE_ANALYSIS_H_
#define SRC_CODECACHE_ANALYSIS_H_

#include <memory>

#include "src/codecache/program.h"
#include "src/support/bytes.h"

namespace pevm {

// True if `op` may be part of a fused segment: stack shuffles and pure
// data-flow ops with constant gas and no environment access. EXP is excluded
// (dynamic per-byte gas would break the static gas precheck), as is every op
// that touches storage, memory, calldata, control flow or frames.
constexpr bool IsFusibleOp(Opcode op) {
  return IsPush(op) || IsDup(op) || IsSwap(op) || op == Opcode::kPop ||
         (IsPureOp(op) && op != Opcode::kExp);
}

// Analyzes `code`. With fuse == false the segment tables are empty and only
// the JUMPDEST bitmap is populated. `hash` is stored in the result verbatim.
std::shared_ptr<CodeAnalysis> AnalyzeCode(const Bytes& code, const Hash256& hash, bool fuse);

// Builds the tier-1 pre-decoded dispatch table for an analyzed code blob.
std::shared_ptr<const DecodedProgram> BuildDecodedProgram(const Bytes& code,
                                                          const CodeAnalysis& analysis);

}  // namespace pevm

#endif  // SRC_CODECACHE_ANALYSIS_H_
