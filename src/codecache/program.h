// Cached per-code-hash analysis shared by every executor, OS thread and block
// (the hot-contract code cache, modeled on Monad's tiered VM CodeMap).
//
// Tier 0 — CodeAnalysis — is everything the interpreter used to recompute per
// call and everything the SSA builder needs to log at superinstruction
// granularity: the JUMPDEST bitmap plus the fused straight-line segments with
// their static gas / stack-effect metadata and per-output expression
// programs. Tier 0 is a *pure static function of the bytecode* (and the
// `fuse` analysis option). It deliberately does NOT depend on invocation
// counts, cache residency, or any other runtime state: the SSA log's
// granularity is derived from tier 0, and log granularity feeds deterministic
// BlockReport fields (oplog_entries, redo counters, the virtual makespan), so
// anything hotness-dependent here would make reports differ between a cold
// and a warm cache. See DESIGN.md §4.6.
//
// Tier 1 — DecodedProgram — is the superinstruction/threaded-code dispatch
// form built once a code hash passes the invocation-count promotion
// threshold: pre-decoded instructions (PUSH immediates materialized, next-pc
// resolved, segment index attached) so hot code skips byte decoding. Tier 1
// changes dispatch speed only; it fires bit-identical tracer events and
// charges bit-identical gas, so it may ride on mutable cache state.
//
// This header is intentionally link-free (no .cc): pevm_evm's interpreter and
// pevm_ssa's builder consume these types and the abstract CodeProvider
// without depending on the cache implementation, which lives above them in
// pevm_codecache (analysis.cc + code_cache.cc linking pevm_evm for opcode
// traits).
#ifndef SRC_CODECACHE_PROGRAM_H_
#define SRC_CODECACHE_PROGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/evm/opcode.h"
#include "src/support/bytes.h"
#include "src/support/keccak.h"
#include "src/support/u256.h"

namespace pevm {

// Analyzer-enforced bounds (part of the segment contract, so the interpreter
// can use fixed-size buffers on the fused fast path): a segment references at
// most kMaxSuperInputs entry-stack slots and leaves at most kMaxSuperOutputs
// values on the stack.
inline constexpr size_t kMaxSuperInputs = 32;
inline constexpr size_t kMaxSuperOutputs = 64;

// One step of a postfix expression program (SuperExpr below).
struct SuperStep {
  enum class Kind : uint8_t { kConst, kInput, kOp };
  Kind kind = Kind::kConst;
  // kOp: the pure opcode and its arity (operands are popped top-first, the
  // order EvalPure expects).
  Opcode op = Opcode::kInvalid;
  uint8_t arity = 0;
  // kInput: local input index (into SuperExpr::input_depths).
  uint8_t input = 0;
  // kConst: the immediate value.
  U256 imm;
};

// The dataflow of one escaping stack output of a fused segment, as a postfix
// program over the segment's *referenced* entry-stack inputs. Inputs are
// local: step `kInput i` reads the value that sat at entry-stack depth
// input_depths[i] (0 = top) when the segment started. Exprs are
// separately heap-allocated and shared by shared_ptr so an SSA log entry can
// outlive the CodeAnalysis that produced it (per-block / uncached providers
// drop analyses while the oplog is still live in the commit phase).
struct SuperExpr {
  std::vector<SuperStep> steps;
  std::vector<uint8_t> input_depths;

  // A bare `kInput i` program: the output IS an entry-stack value (DUP/SWAP
  // shuffling). The SSA builder forwards the input's def instead of logging.
  bool IsPassthrough() const {
    return steps.size() == 1 && steps[0].kind == SuperStep::Kind::kInput;
  }
};

// A maximal straight-line run of fusible ops (PUSH*/DUP*/SWAP*/POP and the
// pure data-flow ops except EXP, whose gas is dynamic), executed as one fat
// operation when the static precheck below guarantees the per-op path could
// not fail mid-run. Semantics of the fat op: pop `pop_depth` entries, push
// the `outputs` expressions' values (outputs[0] pushed first / deepest).
struct SuperSegment {
  uint32_t start_pc = 0;
  uint32_t end_pc = 0;    // First pc past the segment.
  uint32_t op_count = 0;  // Instructions fused (feeds ExecStats::instructions).
  int64_t total_gas = 0;  // Sum of constant gas (no dynamic gas by construction).

  // Static precheck (the fused path runs only when all three hold, which
  // makes per-op failure impossible — proven in analysis.cc):
  //   stack_size >= min_height
  //   stack_size + max_growth <= kMaxStack
  //   gas >= total_gas
  uint32_t min_height = 0;  // Deepest entry-stack slot any op touches.
  int32_t max_growth = 0;   // Max net stack growth over any prefix of the run.

  uint32_t pop_depth = 0;  // Entry-stack slots consumed (== min_height).
  std::vector<std::shared_ptr<const SuperExpr>> outputs;
};

// Tier-1 pre-decoded dispatch form: one slot per code offset; slots at
// instruction starts are valid (immediate bytes' slots are never read because
// next_pc skips them).
struct DecodedInsn {
  Opcode op = Opcode::kStop;
  uint32_t next_pc = 0;     // pc after this instruction (past PUSH immediates).
  int32_t segment = -1;     // Fused segment starting here, or -1.
  U256 immediate;           // PUSH* payload (zero-padded past code end).
};

struct DecodedProgram {
  std::vector<DecodedInsn> at;
};

// Tier-0 analysis of one code blob (+ the tier-1 promotion slot).
struct CodeAnalysis {
  Hash256 hash{};
  size_t code_size = 0;
  std::vector<bool> jumpdests;
  // start-pc -> index into `segments`, -1 elsewhere. Mid-segment entry is
  // impossible: jump targets are JUMPDESTs, which are never fusible.
  std::vector<int32_t> segment_at;
  std::vector<SuperSegment> segments;

  // Tier-1 slot, promoted by the cache once the invocation count passes the
  // threshold. Readers acquire-load; the cache publishes with release after
  // building the program exactly once. Never set by uncached providers.
  std::atomic<const DecodedProgram*> program{nullptr};
  std::shared_ptr<const DecodedProgram> program_storage;

  CodeAnalysis() = default;
  CodeAnalysis(const CodeAnalysis&) = delete;
  CodeAnalysis& operator=(const CodeAnalysis&) = delete;
};

// How executors obtain analyses. Implementations must be safe to call from
// any number of threads concurrently.
class CodeProvider {
 public:
  virtual ~CodeProvider() = default;
  // Returns the analysis for `code`; never null. `hash` is the precomputed
  // code hash when the caller has one (WorldState keeps them alongside the
  // code); implementations hash the bytes themselves when it is null, so the
  // result — and therefore SSA log granularity — never depends on hash
  // availability.
  virtual std::shared_ptr<const CodeAnalysis> Analyze(const Bytes& code,
                                                      const Hash256* hash) = 0;
  // True when this provider's analyses fuse straight-line segments. This is
  // the signal for the SSA builder to log at superinstruction granularity
  // (deferred expression trees folded into consuming entries); a non-fusing
  // provider keeps the legacy per-op log so the fuse ablation measures the
  // logging lever, not just dispatch.
  virtual bool fused() const { return true; }
};

// Cache deployment mode. All modes with a provider are *bit-identical* in
// every deterministic output (roots, receipts, oplog_entries, redo counters,
// makespan): they memoize the same pure analysis function, differing only in
// how often it actually runs (wall clock). kOff removes the provider
// entirely — the interpreter falls back to per-op dispatch and per-op SSA
// logging, which preserves roots/receipts/gas/instructions but logs at the
// old one-entry-per-instruction granularity (the §6.4 ablation baseline).
enum class CodeCacheMode : uint8_t {
  kShared,    // Process-wide cache, persists across blocks and executors.
  kPerBlock,  // Fresh cache per read phase (every block analyzes cold).
  kUncached,  // Analyze every invocation (no memoization, no tier 1).
  kOff,       // No provider: legacy per-op dispatch and logging.
};

struct CodeCacheConfig {
  CodeCacheMode mode = CodeCacheMode::kShared;
  // Invocations of one code hash before the tier-1 decoded program is built.
  int promote_threshold = 8;
  // Fuse straight-line runs into superinstructions (and log at that
  // granularity). Disabling keeps tier-0 caching (jumpdest bitmaps) but logs
  // per-op — the oplog-overhead ablation axis.
  bool fuse = true;
};

}  // namespace pevm

#endif  // SRC_CODECACHE_PROGRAM_H_
