#include "src/codecache/code_cache.h"

#include <chrono>

#include "src/codecache/analysis.h"
#include "src/telemetry/metrics.h"

namespace pevm {

std::shared_ptr<const CodeAnalysis> CodeCache::Analyze(const Bytes& code, const Hash256* hash) {
  Hash256 h = hash != nullptr ? *hash : Keccak256(BytesView(code.data(), code.size()));
  Shard& shard = shards_[h[0] & (kShards - 1)];

  Entry* entry = nullptr;
  {
    std::shared_lock lock(shard.mutex);
    auto it = shard.map.find(h);
    if (it != shard.map.end()) {
      entry = it->second.get();
    }
  }
  if (entry == nullptr) {
    std::unique_lock lock(shard.mutex);
    auto [it, inserted] = shard.map.try_emplace(h);
    if (inserted) {
      it->second = std::make_unique<Entry>();
    }
    entry = it->second.get();
  }

  // Analysis runs exactly once per hash, outside the map lock: concurrent
  // first-callers block here (on this entry only) instead of re-analyzing.
  bool built = false;
  std::call_once(entry->analyze_once, [&] {
    auto start = std::chrono::steady_clock::now();
    entry->analysis = AnalyzeCode(code, h, config_.fuse);
    auto elapsed = std::chrono::steady_clock::now() - start;
    built = true;
    misses_.fetch_add(1, std::memory_order_relaxed);
    static auto& miss_counter = telemetry::GetCounter("codecache.miss");
    static auto& analysis_ns = telemetry::GetHistogram("codecache.analysis_ns");
    miss_counter.Add();
    analysis_ns.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  });
  if (!built) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    static auto& hit_counter = telemetry::GetCounter("codecache.hit");
    hit_counter.Add();
  }

  uint64_t n = entry->invocations.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.promote_threshold > 0 &&
      n >= static_cast<uint64_t>(config_.promote_threshold) &&
      entry->analysis->program.load(std::memory_order_acquire) == nullptr) {
    std::call_once(entry->promote_once, [&] {
      CodeAnalysis& analysis = *entry->analysis;
      analysis.program_storage = BuildDecodedProgram(code, analysis);
      analysis.program.store(analysis.program_storage.get(), std::memory_order_release);
      promotions_.fetch_add(1, std::memory_order_relaxed);
      static auto& promote_counter = telemetry::GetCounter("codecache.promotions");
      promote_counter.Add();
    });
  }
  return entry->analysis;
}

CodeCache::Stats CodeCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.promotions = promotions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mutex);
    stats.entries += shard.map.size();
  }
  return stats;
}

std::shared_ptr<const CodeAnalysis> UncachedCodeProvider::Analyze(const Bytes& code,
                                                                  const Hash256* hash) {
  Hash256 h = hash != nullptr ? *hash : Keccak256(BytesView(code.data(), code.size()));
  return AnalyzeCode(code, h, fuse_);
}

CodeCache& SharedCodeCache(bool fuse) {
  static CodeCache fused{CodeCacheConfig{CodeCacheMode::kShared, /*promote_threshold=*/8,
                                         /*fuse=*/true}};
  static CodeCache plain{CodeCacheConfig{CodeCacheMode::kShared, /*promote_threshold=*/8,
                                         /*fuse=*/false}};
  return fuse ? fused : plain;
}

namespace {

UncachedCodeProvider& StaticUncachedProvider(bool fuse) {
  static UncachedCodeProvider fused{/*fuse=*/true};
  static UncachedCodeProvider plain{/*fuse=*/false};
  return fuse ? fused : plain;
}

}  // namespace

CodeProvider* StaticCodeProvider(const CodeCacheConfig& config) {
  switch (config.mode) {
    case CodeCacheMode::kShared:
      return &SharedCodeCache(config.fuse);
    case CodeCacheMode::kPerBlock:
    case CodeCacheMode::kUncached:
      return &StaticUncachedProvider(config.fuse);
    case CodeCacheMode::kOff:
      return nullptr;
  }
  return nullptr;
}

CodeProvider* ResolveCodeProvider(const CodeCacheConfig& config,
                                  std::unique_ptr<CodeCache>& slot) {
  if (config.mode == CodeCacheMode::kPerBlock) {
    slot = std::make_unique<CodeCache>(config);
    return slot.get();
  }
  return StaticCodeProvider(config);
}

}  // namespace pevm
