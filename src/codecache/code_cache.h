// The process-wide per-code-hash cache: sharded read-mostly map from code
// hash to tier-0 analysis, with tier-1 promotion past an invocation
// threshold. Lookups take a shared lock on one of 16 shards (read-mostly fast
// path); the analysis itself runs exactly once per code hash under a
// per-entry once_flag, outside the map lock, so concurrent first-callers
// neither duplicate work nor serialize unrelated hashes. Entries are never
// evicted: the contract set of a chain is small and analyses are a few KB.
#ifndef SRC_CODECACHE_CODE_CACHE_H_
#define SRC_CODECACHE_CODE_CACHE_H_

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/codecache/program.h"
#include "src/support/bytes.h"
#include "src/support/keccak.h"

namespace pevm {

class CodeCache : public CodeProvider {
 public:
  struct Stats {
    uint64_t hits = 0;        // Lookups that found a built analysis.
    uint64_t misses = 0;      // Analyses actually run.
    uint64_t promotions = 0;  // Tier-1 decoded programs built.
    uint64_t entries = 0;     // Distinct code hashes resident.
  };

  explicit CodeCache(CodeCacheConfig config = {}) : config_(config) {}

  std::shared_ptr<const CodeAnalysis> Analyze(const Bytes& code, const Hash256* hash) override;
  bool fused() const override { return config_.fuse; }

  Stats GetStats() const;
  const CodeCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    std::once_flag analyze_once;
    std::shared_ptr<CodeAnalysis> analysis;  // Set under analyze_once.
    std::atomic<uint64_t> invocations{0};
    std::once_flag promote_once;
  };

  // First 8 bytes of a keccak output are as good a hash as any.
  struct KeyHash {
    size_t operator()(const Hash256& h) const {
      uint64_t v;
      std::memcpy(&v, h.data(), sizeof(v));
      return static_cast<size_t>(v);
    }
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Hash256, std::unique_ptr<Entry>, KeyHash> map;
  };

  static constexpr size_t kShards = 16;

  CodeCacheConfig config_;
  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> promotions_{0};
};

// Memoization-free provider: runs the analysis on every call. The ablation
// baseline proving the cache is inert — same pure function, zero reuse.
class UncachedCodeProvider : public CodeProvider {
 public:
  explicit UncachedCodeProvider(bool fuse) : fuse_(fuse) {}
  std::shared_ptr<const CodeAnalysis> Analyze(const Bytes& code, const Hash256* hash) override;
  bool fused() const override { return fuse_; }

 private:
  bool fuse_;
};

// The process-wide shared cache (one per fuse setting; default promotion
// threshold). Persists across blocks, executors and chain runs.
CodeCache& SharedCodeCache(bool fuse);

// Provider for call sites that need static lifetime (chain spec stage,
// FullReexecute fallbacks, baselines): kShared -> the shared cache,
// kPerBlock/kUncached -> a static uncached provider with the same fuse (so
// log granularity always matches the block's read phase), kOff -> nullptr.
CodeProvider* StaticCodeProvider(const CodeCacheConfig& config);

// Provider for a read phase. kPerBlock constructs a fresh cache into `slot`
// (honoring config.promote_threshold); the other modes behave like
// StaticCodeProvider and leave `slot` empty. Per-block caches may be
// destroyed before the block's oplog: log entries keep their expressions
// alive via shared_ptr (see program.h).
CodeProvider* ResolveCodeProvider(const CodeCacheConfig& config,
                                  std::unique_ptr<CodeCache>& slot);

}  // namespace pevm

#endif  // SRC_CODECACHE_CODE_CACHE_H_
