#include "src/codecache/analysis.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/evm/eval.h"

namespace pevm {
namespace {

// Caps keeping expression programs small and local indices in uint8_t range.
// Exceeding a cap ends the current segment and starts a fresh one at the
// offending op — still a pure function of the bytecode.
constexpr size_t kMaxExprSteps = 64;
constexpr size_t kMaxSegmentInputs = kMaxSuperInputs;
constexpr size_t kMaxSimDepth = kMaxSuperOutputs;

// Symbolic value flowing through the analyzer's simulated stack. `size` is
// the flattened postfix length, tracked at construction so the cap check is
// O(1) (shared subtrees are re-emitted per reference, so size can grow
// multiplicatively through DUP chains — exactly what the cap bounds).
struct Node {
  enum class Kind : uint8_t { kConst, kInput, kOp };
  Kind kind = Kind::kConst;
  U256 imm;                // kConst.
  uint32_t depth = 0;      // kInput: entry-stack depth (0 = top).
  Opcode op = Opcode::kInvalid;
  std::vector<std::shared_ptr<Node>> children;  // kOp, EvalPure order (top first).
  size_t size = 1;
};

using NodePtr = std::shared_ptr<Node>;

NodePtr MakeConst(const U256& v) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kConst;
  n->imm = v;
  return n;
}

NodePtr MakeInput(uint32_t depth) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kInput;
  n->depth = depth;
  return n;
}

// Flattens a node tree into a SuperExpr: postfix steps over a compact local
// input list (first-use order). Children are emitted deepest-operand-first so
// that evaluation pops them top-operand-first, matching EvalPure.
void Emit(const Node& node, SuperExpr& expr,
          std::unordered_map<uint32_t, uint8_t>& local_of_depth) {
  switch (node.kind) {
    case Node::Kind::kConst: {
      SuperStep s;
      s.kind = SuperStep::Kind::kConst;
      s.imm = node.imm;
      expr.steps.push_back(std::move(s));
      return;
    }
    case Node::Kind::kInput: {
      auto [it, inserted] = local_of_depth.try_emplace(
          node.depth, static_cast<uint8_t>(expr.input_depths.size()));
      if (inserted) {
        expr.input_depths.push_back(static_cast<uint8_t>(node.depth));
      }
      SuperStep s;
      s.kind = SuperStep::Kind::kInput;
      s.input = it->second;
      expr.steps.push_back(std::move(s));
      return;
    }
    case Node::Kind::kOp: {
      for (size_t i = node.children.size(); i-- > 0;) {
        Emit(*node.children[i], expr, local_of_depth);
      }
      SuperStep s;
      s.kind = SuperStep::Kind::kOp;
      s.op = node.op;
      s.arity = static_cast<uint8_t>(node.children.size());
      expr.steps.push_back(std::move(s));
      return;
    }
  }
}

std::shared_ptr<const SuperExpr> Flatten(const NodePtr& node) {
  auto expr = std::make_shared<SuperExpr>();
  std::unordered_map<uint32_t, uint8_t> local_of_depth;
  Emit(*node, *expr, local_of_depth);
  return expr;
}

// Incremental symbolic execution of one fusible run. The real stack's top
// region is modeled lazily: popping below the simulated bottom materializes
// Input(depth) nodes, so `inputs_used` ends up as exactly the deepest
// entry-stack slot any op touches — which is both pop_depth and the
// min_height underflow precheck.
class SegmentBuilder {
 public:
  void Reset(uint32_t start_pc) {
    start_pc_ = start_pc;
    sim_.clear();
    inputs_used_ = 0;
    max_growth_ = 0;
    total_gas_ = 0;
    op_count_ = 0;
  }

  // True if applying `op` would blow a cap (caller ends the segment first).
  bool WouldOverflow(Opcode op) const {
    int need = 0;
    if (IsDup(op)) {
      need = DupIndex(op);
    } else if (IsSwap(op)) {
      need = SwapIndex(op) + 1;
    } else if (op == Opcode::kPop) {
      need = 1;
    } else if (IsPureOp(op)) {
      need = TraitsOf(op).stack_pops;
    }
    size_t materialize = need > static_cast<int>(sim_.size())
                             ? static_cast<size_t>(need) - sim_.size()
                             : 0;
    if (inputs_used_ + materialize > kMaxSegmentInputs) {
      return true;
    }
    if (sim_.size() + 1 > kMaxSimDepth) {
      return true;
    }
    if (IsPureOp(op)) {
      int arity = TraitsOf(op).stack_pops;
      size_t size = 1;
      for (int i = 0; i < arity; ++i) {
        size_t idx = sim_.size() >= static_cast<size_t>(arity)
                         ? sim_.size() - 1 - static_cast<size_t>(i)
                         : SIZE_MAX;
        size += idx == SIZE_MAX ? 1 : sim_[idx]->size;  // Materialized inputs are size 1.
      }
      if (size > kMaxExprSteps) {
        return true;
      }
    }
    return false;
  }

  void Apply(Opcode op, const U256& push_imm) {
    const OpcodeTraits& traits = TraitsOf(op);
    total_gas_ += traits.const_gas;
    ++op_count_;
    if (IsPush(op)) {
      sim_.push_back(MakeConst(push_imm));
    } else if (IsDup(op)) {
      int n = DupIndex(op);
      EnsureDepth(static_cast<size_t>(n));
      sim_.push_back(sim_[sim_.size() - static_cast<size_t>(n)]);
    } else if (IsSwap(op)) {
      int n = SwapIndex(op);
      EnsureDepth(static_cast<size_t>(n) + 1);
      std::swap(sim_[sim_.size() - 1], sim_[sim_.size() - 1 - static_cast<size_t>(n)]);
    } else if (op == Opcode::kPop) {
      EnsureDepth(1);
      sim_.pop_back();
    } else {
      int arity = traits.stack_pops;
      EnsureDepth(static_cast<size_t>(arity));
      std::vector<NodePtr> children(static_cast<size_t>(arity));
      bool all_const = true;
      for (int i = 0; i < arity; ++i) {
        children[static_cast<size_t>(i)] = sim_.back();
        sim_.pop_back();
        all_const &= children[static_cast<size_t>(i)]->kind == Node::Kind::kConst;
      }
      if (all_const) {
        // Analysis-time constant folding: mirrors both the per-op
        // interpreter's result and the SSA builder's fold-to-no-entry.
        std::vector<U256> ops(children.size());
        for (size_t i = 0; i < children.size(); ++i) {
          ops[i] = children[i]->imm;
        }
        sim_.push_back(MakeConst(EvalPure(op, ops)));
      } else {
        auto node = std::make_shared<Node>();
        node->kind = Node::Kind::kOp;
        node->op = op;
        node->size = 1;
        for (const NodePtr& c : children) {
          node->size += c->size;
        }
        node->children = std::move(children);
        sim_.push_back(std::move(node));
      }
    }
    int32_t delta = static_cast<int32_t>(sim_.size()) - static_cast<int32_t>(inputs_used_);
    max_growth_ = std::max(max_growth_, delta);
  }

  // Finalizes the run [start_pc_, end_pc) into a segment; returns false for
  // runs too short to be worth a fat op.
  bool Finish(uint32_t end_pc, SuperSegment& out) const {
    if (op_count_ < 2) {
      return false;
    }
    out.start_pc = start_pc_;
    out.end_pc = end_pc;
    out.op_count = op_count_;
    out.total_gas = total_gas_;
    out.min_height = static_cast<uint32_t>(inputs_used_);
    out.pop_depth = static_cast<uint32_t>(inputs_used_);
    out.max_growth = max_growth_;
    out.outputs.reserve(sim_.size());
    std::unordered_map<const Node*, std::shared_ptr<const SuperExpr>> memo;
    for (const NodePtr& node : sim_) {  // Bottom-first (push order).
      auto it = memo.find(node.get());
      if (it == memo.end()) {
        it = memo.emplace(node.get(), Flatten(node)).first;
      }
      out.outputs.push_back(it->second);
    }
    return true;
  }

  uint32_t op_count() const { return op_count_; }

 private:
  void EnsureDepth(size_t n) {
    while (sim_.size() < n) {
      sim_.insert(sim_.begin(), MakeInput(static_cast<uint32_t>(inputs_used_)));
      ++inputs_used_;
    }
  }

  uint32_t start_pc_ = 0;
  std::vector<NodePtr> sim_;
  size_t inputs_used_ = 0;
  int32_t max_growth_ = 0;
  int64_t total_gas_ = 0;
  uint32_t op_count_ = 0;
};

U256 PushImmediate(const Bytes& code, size_t pc, int n) {
  Bytes imm(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    size_t idx = pc + 1 + static_cast<size_t>(i);
    imm[static_cast<size_t>(i)] = idx < code.size() ? code[idx] : 0;
  }
  return U256::FromBigEndian(imm);
}

}  // namespace

std::shared_ptr<CodeAnalysis> AnalyzeCode(const Bytes& code, const Hash256& hash, bool fuse) {
  auto analysis = std::make_shared<CodeAnalysis>();
  analysis->hash = hash;
  analysis->code_size = code.size();
  analysis->jumpdests.assign(code.size(), false);
  analysis->segment_at.assign(code.size(), -1);

  for (size_t i = 0; i < code.size(); ++i) {
    Opcode op = static_cast<Opcode>(code[i]);
    if (op == Opcode::kJumpdest) {
      analysis->jumpdests[i] = true;
    } else if (IsPush(op)) {
      i += static_cast<size_t>(PushSize(op));
    }
  }
  if (!fuse) {
    return analysis;
  }

  SegmentBuilder builder;
  bool in_run = false;
  auto finish = [&](size_t end_pc) {
    if (!in_run) {
      return;
    }
    SuperSegment seg;
    if (builder.Finish(static_cast<uint32_t>(end_pc), seg)) {
      analysis->segment_at[seg.start_pc] = static_cast<int32_t>(analysis->segments.size());
      analysis->segments.push_back(std::move(seg));
    }
    in_run = false;
  };

  for (size_t pc = 0; pc < code.size();) {
    Opcode op = static_cast<Opcode>(code[pc]);
    size_t next = pc + 1 + (IsPush(op) ? static_cast<size_t>(PushSize(op)) : 0);
    if (!IsFusibleOp(op)) {
      finish(pc);
      pc = next;
      continue;
    }
    if (in_run && builder.WouldOverflow(op)) {
      finish(pc);
    }
    if (!in_run) {
      builder.Reset(static_cast<uint32_t>(pc));
      in_run = true;
    }
    builder.Apply(op, IsPush(op) ? PushImmediate(code, pc, PushSize(op)) : U256{});
    pc = next;
  }
  finish(code.size());
  return analysis;
}

std::shared_ptr<const DecodedProgram> BuildDecodedProgram(const Bytes& code,
                                                          const CodeAnalysis& analysis) {
  auto program = std::make_shared<DecodedProgram>();
  program->at.resize(code.size());
  for (size_t pc = 0; pc < code.size();) {
    Opcode op = static_cast<Opcode>(code[pc]);
    DecodedInsn& insn = program->at[pc];
    insn.op = op;
    insn.segment = analysis.segment_at[pc];
    size_t next = pc + 1;
    if (IsPush(op)) {
      int n = PushSize(op);
      insn.immediate = PushImmediate(code, pc, n);
      next = pc + 1 + static_cast<size_t>(n);
    }
    insn.next_pc = static_cast<uint32_t>(next);
    pc = next;
  }
  return program;
}

}  // namespace pevm
