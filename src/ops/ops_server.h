// The ops plane a running chain node exposes (DESIGN.md §4.8): an embedded
// admin HTTP endpoint plus the stall watchdog, both fed by read-only views of
// pipeline state. Owned by the ChainRunner (ChainOptions::ops_server) but
// deliberately chain-agnostic: it sees the pipeline only through a
// PipelineProgress closure, the flight recorder, and optional stats
// closures, so tests can drive it with fakes and future subsystems can
// attach without a dependency cycle (ops links telemetry + query; chain
// links ops).
//
// Routes:
//   GET  /            — plain-text index of the endpoints.
//   GET  /metrics     — Prometheus text exposition of the metrics registry
//                       (counters, gauges, 65-bucket histograms as
//                       _bucket/_sum/_count), trace-ring gauges refreshed
//                       per scrape.
//   GET  /healthz     — JSON liveness: pipeline running, blocks
//                       submitted/committed, per-stage progress counters and
//                       queue depths, snapshot-registry and query-engine
//                       stats when attached.
//   GET  /debug/blocks— flight-recorder dump (per-block anatomy, JSON).
//   POST /debug/trace — export the live trace rings as Chrome JSON; body =
//                       target path (default ops_trace.json).
#ifndef SRC_OPS_OPS_SERVER_H_
#define SRC_OPS_OPS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/ops/flight_recorder.h"
#include "src/ops/http_server.h"
#include "src/ops/watchdog.h"
#include "src/query/query_engine.h"
#include "src/query/snapshot.h"

namespace pevm::ops {

struct OpsServerOptions {
  // HTTP endpoint. port < 0 disables it (the watchdog can still run);
  // port 0 binds an ephemeral port, reported by OpsServer::port().
  int port = -1;
  std::string bind_address = "127.0.0.1";
  int http_threads = 2;

  // Flight-recorder ring capacity, in blocks. The recorder itself is always
  // on (it lives in the ChainRunner); this only sizes the ring.
  size_t flight_recorder_blocks = 256;

  // Stall watchdog (off by default: a bench driving the pipeline through
  // deliberately slow configurations should not self-diagnose).
  bool watchdog = false;
  uint64_t watchdog_deadline_ms = 10'000;
  uint64_t watchdog_poll_ms = 200;
  bool watchdog_log_to_stderr = true;
  // Auto-dump prefix on stall: writes <prefix>_trace.json and
  // <prefix>_metrics.json ("" = no dumps).
  std::string stall_dump_prefix;
  // Test/embedder hook forwarded to the watchdog.
  std::function<void(const StallDiagnosis&)> on_stall;

  // Default target of POST /debug/trace when the request body is empty.
  std::string trace_dump_path = "ops_trace.json";

  bool enabled() const { return port >= 0 || watchdog; }
};

class OpsServer {
 public:
  // `recorder` and the `progress` closure must outlive this server (the
  // runner stops the ops plane before tearing the pipeline down).
  // `snapshot_stats` may be null (query tier off).
  OpsServer(const OpsServerOptions& options, const FlightRecorder& recorder,
            std::function<PipelineProgress()> progress,
            std::function<SnapshotStats()> snapshot_stats = nullptr);
  ~OpsServer();

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  // Binds the HTTP endpoint (when port >= 0) and starts the watchdog (when
  // enabled). Returns false with a reason if the socket can't be bound.
  bool Start(std::string* error);

  // Stops the watchdog and the HTTP server (drains in-flight scrapes).
  // Idempotent.
  void Stop();

  // The bound HTTP port, or -1 when the endpoint is disabled.
  int port() const { return http_ ? http_->port() : -1; }

  // Attach/detach the query engine surfaced in /healthz (nullptr detaches).
  // The engine must stay alive until detached or the server stops.
  void AttachQueryEngine(QueryEngine* engine) {
    query_engine_.store(engine, std::memory_order_release);
  }

  StallWatchdog* watchdog() { return watchdog_.get(); }

  // GET /metrics responses served (test introspection).
  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

 private:
  HttpResponse HandleIndex(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleHealthz(const HttpRequest& request);
  HttpResponse HandleBlocks(const HttpRequest& request);
  HttpResponse HandleTraceDump(const HttpRequest& request);

  OpsServerOptions options_;
  const FlightRecorder& recorder_;
  std::function<PipelineProgress()> progress_;
  std::function<SnapshotStats()> snapshot_stats_;
  std::atomic<QueryEngine*> query_engine_{nullptr};
  std::unique_ptr<HttpServer> http_;
  std::unique_ptr<StallWatchdog> watchdog_;
  std::atomic<uint64_t> scrapes_{0};
  bool started_ = false;
};

}  // namespace pevm::ops

#endif  // SRC_OPS_OPS_SERVER_H_
