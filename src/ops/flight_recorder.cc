#include "src/ops/flight_recorder.h"

#include <cstdio>

#include "src/support/bytes.h"

namespace pevm::ops {

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::Record(const BlockAnatomy& anatomy) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(anatomy);
  } else {
    ring_[total_ % capacity_] = anatomy;
  }
  ++total_;
}

void FlightRecorder::StampDurability(uint64_t block_index, uint64_t queue_to_durable_ns,
                                     uint64_t persist_ns, uint64_t commit_batch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (BlockAnatomy& anatomy : ring_) {
    if (anatomy.block_index == block_index) {
      anatomy.queue_to_durable_ns = queue_to_durable_ns;
      anatomy.commit_persist_ns += persist_ns;
      anatomy.commit_batch = commit_batch;
      return;
    }
  }
}

std::vector<BlockAnatomy> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlockAnatomy> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    // The ring wrapped: the oldest resident record sits at total_ % capacity.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(total_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string FlightRecorderJson(const FlightRecorder& recorder) {
  std::vector<BlockAnatomy> records = recorder.Snapshot();
  std::string out;
  out.reserve(records.size() * 640 + 128);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"capacity\": %zu, \"total_recorded\": %llu, \"blocks\": [",
                recorder.capacity(),
                static_cast<unsigned long long>(recorder.total_recorded()));
  out += buf;
  auto field = [&](const char* key, uint64_t value, bool last = false) {
    std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                  static_cast<unsigned long long>(value), last ? "" : ", ");
    out += buf;
  };
  for (size_t i = 0; i < records.size(); ++i) {
    const BlockAnatomy& a = records[i];
    out += i == 0 ? "\n{" : ",\n{";
    field("block", a.block_index);
    field("transactions", a.transactions);
    out += "\"root\": \"";
    out += HexEncode(a.root);
    out += "\", ";
    field("warm_busy_ns", a.warm_busy_ns);
    field("spec_busy_ns", a.spec_busy_ns);
    field("exec_busy_ns", a.exec_busy_ns);
    field("ready_wait_ns", a.ready_wait_ns);
    field("commit_wait_ns", a.commit_wait_ns);
    field("commit_apply_ns", a.commit_apply_ns);
    field("commit_persist_ns", a.commit_persist_ns);
    field("queue_to_durable_ns", a.queue_to_durable_ns);
    field("conflicts", static_cast<uint64_t>(a.conflicts));
    field("redo_success", static_cast<uint64_t>(a.redo_success));
    field("redo_fail", static_cast<uint64_t>(a.redo_fail));
    field("full_reexecutions", static_cast<uint64_t>(a.full_reexecutions));
    field("oplog_entries", a.oplog_entries);
    field("instructions", a.instructions);
    field("prefetch_hits", a.prefetch_hits);
    field("prefetch_misses", a.prefetch_misses);
    field("spec_launched", a.spec_launched);
    field("spec_held", a.spec_held);
    field("spec_clean", a.spec_clean);
    field("spec_repaired", a.spec_repaired);
    field("spec_dropped", a.spec_dropped);
    field("commit_batch", a.commit_batch);
    field("diff_entries", a.diff_entries);
    field("snapshots_retained", a.snapshots_retained);
    field("snapshot_live_pins", a.snapshot_live_pins, /*last=*/true);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace pevm::ops
