#include "src/ops/watchdog.h"

#include <chrono>
#include <cstdio>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace pevm::ops {

bool PipelineProgress::WorkInFlight() const {
  if (blocks_submitted > blocks_committed) {
    return true;
  }
  for (const StageProgress& stage : stages) {
    if (!stage.active) {
      continue;
    }
    if (stage.entered > stage.exited || stage.queue_depth > 0) {
      return true;
    }
  }
  return false;
}

std::vector<uint64_t> PipelineProgress::Fingerprint() const {
  std::vector<uint64_t> fp;
  fp.reserve(stages.size() * 2 + 2);
  fp.push_back(blocks_submitted);
  fp.push_back(blocks_committed);
  for (const StageProgress& stage : stages) {
    fp.push_back(stage.entered);
    fp.push_back(stage.exited);
  }
  return fp;
}

std::string StallDiagnosis::Render() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "PIPELINE STALL: stage '%s' made no progress for %llu ms "
                "(submitted=%llu committed=%llu)\n",
                stage.c_str(), static_cast<unsigned long long>(stalled_for_ms),
                static_cast<unsigned long long>(progress.blocks_submitted),
                static_cast<unsigned long long>(progress.blocks_committed));
  out += buf;
  for (const StageProgress& s : progress.stages) {
    if (!s.active) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "  stage %-6s entered=%llu exited=%llu in_flight=%llu "
                  "queue_depth=%zu high_water=%zu%s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.entered),
                  static_cast<unsigned long long>(s.exited),
                  static_cast<unsigned long long>(s.entered - s.exited), s.queue_depth,
                  s.queue_high_water, s.name == stage ? "   <-- WEDGED" : "");
    out += buf;
  }
  if (!recent_blocks.empty()) {
    std::snprintf(buf, sizeof(buf), "  last %zu committed blocks:\n", recent_blocks.size());
    out += buf;
    for (const BlockAnatomy& a : recent_blocks) {
      std::snprintf(buf, sizeof(buf),
                    "    block %-5llu txs=%-4llu exec=%llu us commit=%llu us "
                    "conflicts=%d redo=%d\n",
                    static_cast<unsigned long long>(a.block_index),
                    static_cast<unsigned long long>(a.transactions),
                    static_cast<unsigned long long>(a.exec_busy_ns / 1000),
                    static_cast<unsigned long long>(a.commit_apply_ns / 1000), a.conflicts,
                    a.redo_success);
      out += buf;
    }
  }
  return out;
}

namespace {

// Most-downstream stage holding a block beats any queue symptom: a stage
// that entered more blocks than it exited is where the pipeline physically
// sits. With every stage between blocks, the first stage with un-picked-up
// input is the one refusing to make progress.
std::string DiagnoseStage(const PipelineProgress& progress) {
  for (auto it = progress.stages.rbegin(); it != progress.stages.rend(); ++it) {
    if (it->active && it->entered > it->exited) {
      return it->name;
    }
  }
  for (const StageProgress& stage : progress.stages) {
    if (stage.active && stage.queue_depth > 0) {
      return stage.name;
    }
  }
  // Submitted blocks unaccounted for by any stage: the intake itself.
  return progress.stages.empty() ? std::string("pipeline") : progress.stages.front().name;
}

}  // namespace

StallWatchdog::StallWatchdog(std::function<PipelineProgress()> source,
                             const FlightRecorder* recorder, const WatchdogOptions& options)
    : source_(std::move(source)), recorder_(recorder), options_(options) {
  if (options_.poll_ms == 0) {
    options_.poll_ms = 50;
  }
  if (options_.deadline_ms < options_.poll_ms) {
    options_.deadline_ms = options_.poll_ms;
  }
  thread_ = std::thread(&StallWatchdog::Loop, this);
}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_requested_) {
      return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

std::optional<StallDiagnosis> StallWatchdog::last_diagnosis() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

void StallWatchdog::Loop() {
  PEVM_TRACE_THREAD_NAME("ops-watchdog");
  std::vector<uint64_t> last_fingerprint;
  uint64_t frozen_since_ns = telemetry::NowNs();
  bool fired_this_episode = false;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                       [this] { return stop_requested_; })) {
        return;
      }
    }
    PipelineProgress progress = source_();
    if (!progress.running) {
      return;  // Pipeline joined; nothing left to watch.
    }
    const uint64_t now = telemetry::NowNs();
    std::vector<uint64_t> fingerprint = progress.Fingerprint();
    if (fingerprint != last_fingerprint) {
      last_fingerprint = std::move(fingerprint);
      frozen_since_ns = now;
      fired_this_episode = false;  // Progress resumed: re-arm.
      continue;
    }
    if (!progress.WorkInFlight()) {
      frozen_since_ns = now;  // Idle is healthy, however long it lasts.
      continue;
    }
    const uint64_t frozen_ms = (now - frozen_since_ns) / 1'000'000;
    if (frozen_ms >= options_.deadline_ms && !fired_this_episode) {
      fired_this_episode = true;
      Fire(progress, frozen_ms);
    }
  }
}

void StallWatchdog::Fire(const PipelineProgress& progress, uint64_t stalled_for_ms) {
  StallDiagnosis diagnosis;
  diagnosis.stage = DiagnoseStage(progress);
  diagnosis.stalled_for_ms = stalled_for_ms;
  diagnosis.progress = progress;
  if (recorder_ != nullptr) {
    std::vector<BlockAnatomy> blocks = recorder_->Snapshot();
    const size_t tail = blocks.size() > 8 ? blocks.size() - 8 : 0;
    diagnosis.recent_blocks.assign(blocks.begin() + static_cast<ptrdiff_t>(tail),
                                   blocks.end());
  }
  stalls_.fetch_add(1, std::memory_order_relaxed);
  if (options_.log_to_stderr) {
    std::string rendered = diagnosis.Render();
    std::fwrite(rendered.data(), 1, rendered.size(), stderr);
  }
  if (!options_.trace_dump_path.empty()) {
    if (telemetry::WriteChromeTrace(options_.trace_dump_path)) {
      std::fprintf(stderr, "watchdog: dumped trace to %s\n",
                   options_.trace_dump_path.c_str());
    }
  }
  if (!options_.metrics_dump_path.empty()) {
    telemetry::UpdateTraceGauges();
    if (telemetry::WriteMetricsJson(options_.metrics_dump_path)) {
      std::fprintf(stderr, "watchdog: dumped metrics to %s\n",
                   options_.metrics_dump_path.c_str());
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_ = diagnosis;
  }
  if (options_.on_stall) {
    options_.on_stall(diagnosis);
  }
}

}  // namespace pevm::ops
