#include "src/ops/ops_server.h"

#include <cstdio>
#include <utility>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace pevm::ops {

OpsServer::OpsServer(const OpsServerOptions& options, const FlightRecorder& recorder,
                     std::function<PipelineProgress()> progress,
                     std::function<SnapshotStats()> snapshot_stats)
    : options_(options),
      recorder_(recorder),
      progress_(std::move(progress)),
      snapshot_stats_(std::move(snapshot_stats)) {}

OpsServer::~OpsServer() { Stop(); }

bool OpsServer::Start(std::string* error) {
  if (started_) {
    return true;
  }
  if (options_.port >= 0) {
    HttpServer::Options http_options;
    http_options.bind_address = options_.bind_address;
    http_options.port = options_.port;
    http_options.threads = options_.http_threads;
    http_ = std::make_unique<HttpServer>(http_options);
    http_->Route("GET", "/", [this](const HttpRequest& r) { return HandleIndex(r); });
    http_->Route("GET", "/metrics", [this](const HttpRequest& r) { return HandleMetrics(r); });
    http_->Route("GET", "/healthz", [this](const HttpRequest& r) { return HandleHealthz(r); });
    http_->Route("GET", "/debug/blocks",
                 [this](const HttpRequest& r) { return HandleBlocks(r); });
    http_->Route("POST", "/debug/trace",
                 [this](const HttpRequest& r) { return HandleTraceDump(r); });
    if (!http_->Start(error)) {
      http_.reset();
      return false;
    }
  }
  if (options_.watchdog) {
    WatchdogOptions watchdog_options;
    watchdog_options.deadline_ms = options_.watchdog_deadline_ms;
    watchdog_options.poll_ms = options_.watchdog_poll_ms;
    watchdog_options.log_to_stderr = options_.watchdog_log_to_stderr;
    watchdog_options.on_stall = options_.on_stall;
    if (!options_.stall_dump_prefix.empty()) {
      watchdog_options.trace_dump_path = options_.stall_dump_prefix + "_trace.json";
      watchdog_options.metrics_dump_path = options_.stall_dump_prefix + "_metrics.json";
    }
    watchdog_ = std::make_unique<StallWatchdog>(progress_, &recorder_, watchdog_options);
  }
  started_ = true;
  return true;
}

void OpsServer::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  if (watchdog_) {
    watchdog_->Stop();
  }
  if (http_) {
    http_->Stop();
  }
}

HttpResponse OpsServer::HandleIndex(const HttpRequest&) {
  return {200, "text/plain; charset=utf-8",
          "pevm ops plane\n"
          "  GET  /metrics      Prometheus text exposition\n"
          "  GET  /healthz      liveness + per-stage progress (JSON)\n"
          "  GET  /debug/blocks flight-recorder dump (JSON)\n"
          "  POST /debug/trace  export Chrome trace JSON (body = path)\n"};
}

HttpResponse OpsServer::HandleMetrics(const HttpRequest&) {
  // Refresh the recorder-health gauges so a scrape sees current ring
  // occupancy, then render. Both steps only read relaxed atomics.
  telemetry::UpdateTraceGauges();
  scrapes_.fetch_add(1, std::memory_order_relaxed);
  return {200, "text/plain; version=0.0.4; charset=utf-8", telemetry::MetricsPrometheus()};
}

HttpResponse OpsServer::HandleHealthz(const HttpRequest&) {
  PipelineProgress progress = progress_();
  std::string body;
  body.reserve(1024);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"status\": \"%s\", \"running\": %s,\n"
                "\"blocks_submitted\": %llu, \"blocks_committed\": %llu,\n"
                "\"stages\": [",
                progress.running ? "ok" : "stopped", progress.running ? "true" : "false",
                static_cast<unsigned long long>(progress.blocks_submitted),
                static_cast<unsigned long long>(progress.blocks_committed));
  body += buf;
  bool first = true;
  for (const StageProgress& stage : progress.stages) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\": \"%s\", \"active\": %s, \"entered\": %llu, "
                  "\"exited\": %llu, \"queue_depth\": %zu, \"queue_high_water\": %zu}",
                  first ? "" : ",", stage.name.c_str(), stage.active ? "true" : "false",
                  static_cast<unsigned long long>(stage.entered),
                  static_cast<unsigned long long>(stage.exited), stage.queue_depth,
                  stage.queue_high_water);
    body += buf;
    first = false;
  }
  body += "\n]";
  if (snapshot_stats_) {
    SnapshotStats stats = snapshot_stats_();
    std::snprintf(buf, sizeof(buf),
                  ",\n\"snapshots\": {\"published\": %llu, \"retired\": %llu, "
                  "\"acquires\": %llu, \"acquire_misses\": %llu, "
                  "\"versions_appended\": %llu, \"versions_folded\": %llu}",
                  static_cast<unsigned long long>(stats.published),
                  static_cast<unsigned long long>(stats.retired),
                  static_cast<unsigned long long>(stats.acquires),
                  static_cast<unsigned long long>(stats.acquire_misses),
                  static_cast<unsigned long long>(stats.versions_appended),
                  static_cast<unsigned long long>(stats.versions_folded));
    body += buf;
  }
  if (QueryEngine* engine = query_engine_.load(std::memory_order_acquire)) {
    QueryStats stats = engine->stats();
    std::snprintf(buf, sizeof(buf),
                  ",\n\"query\": {\"served\": %llu, \"unknown_root\": %llu, "
                  "\"rejected\": %llu, \"calls_reverted\": %llu, "
                  "\"queue_depth\": %zu, \"queue_high_water\": %zu}",
                  static_cast<unsigned long long>(stats.served),
                  static_cast<unsigned long long>(stats.unknown_root),
                  static_cast<unsigned long long>(stats.rejected),
                  static_cast<unsigned long long>(stats.calls_reverted),
                  engine->queue_depth(), engine->queue_high_water());
    body += buf;
  }
  std::snprintf(buf, sizeof(buf),
                ",\n\"flight_recorder\": {\"total_recorded\": %llu, \"capacity\": %zu}",
                static_cast<unsigned long long>(recorder_.total_recorded()),
                recorder_.capacity());
  body += buf;
  if (watchdog_) {
    std::snprintf(buf, sizeof(buf), ",\n\"stalls_detected\": %llu",
                  static_cast<unsigned long long>(watchdog_->stalls_detected()));
    body += buf;
  }
  body += "\n}\n";
  return {200, "application/json", std::move(body)};
}

HttpResponse OpsServer::HandleBlocks(const HttpRequest&) {
  return {200, "application/json", FlightRecorderJson(recorder_)};
}

HttpResponse OpsServer::HandleTraceDump(const HttpRequest& request) {
  std::string path = request.body.empty() ? options_.trace_dump_path : request.body;
  // Strip a trailing newline a curl -d invocation may append.
  while (!path.empty() && (path.back() == '\n' || path.back() == '\r')) {
    path.pop_back();
  }
  if (path.empty()) {
    return {400, "text/plain; charset=utf-8", "empty trace path\n"};
  }
  if (!telemetry::WriteChromeTrace(path)) {
    return {500, "text/plain; charset=utf-8", "cannot write " + path + "\n"};
  }
  return {200, "application/json", "{\"written\": \"" + path + "\"}\n"};
}

}  // namespace pevm::ops
