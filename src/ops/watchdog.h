// Stall watchdog for the chain pipeline: a sampling thread that reads the
// per-stage progress counters (blocks entered/exited per stage, input-queue
// depths) and distinguishes three conditions:
//
//   idle    — no work in flight (every stage drained, queues empty):
//             silent, however long it lasts. An idle node is healthy.
//   busy    — counters changing: silent.
//   stalled — work in flight AND no counter changed for longer than the
//             deadline: fire. The diagnosis names the deepest stuck stage
//             (the most-downstream stage holding a block it has not finished,
//             else the first stage with queued input it is not picking up),
//             carries the full progress sample, and attaches the last
//             flight-recorder entries — what the pipeline was doing when it
//             wedged. Optionally auto-dumps the Chrome trace and a metrics
//             snapshot to disk, because by the time a human attaches, the
//             interesting history is exactly what the rings still hold.
//
// One stall fires once: the watchdog re-arms only after progress resumes, so
// a wedged pipeline produces one diagnosis, not one per poll. The progress
// source is a closure over relaxed atomics — sampling takes no pipeline lock
// and cannot perturb execution (the §4.8 inertness argument).
#ifndef SRC_OPS_WATCHDOG_H_
#define SRC_OPS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/ops/flight_recorder.h"

namespace pevm::ops {

// One pipeline stage's progress sample. entered > exited means the stage is
// holding a block mid-work; queue_depth is the stage's *input* queue.
struct StageProgress {
  std::string name;
  bool active = false;  // Stage thread exists in this configuration.
  uint64_t entered = 0;
  uint64_t exited = 0;
  size_t queue_depth = 0;
  size_t queue_high_water = 0;
};

struct PipelineProgress {
  bool running = false;  // Pipeline threads alive (false after Finish/Abort).
  uint64_t blocks_submitted = 0;
  uint64_t blocks_committed = 0;
  std::vector<StageProgress> stages;  // Upstream → downstream order.

  // True when any stage holds a block, any input queue is non-empty, or
  // submitted blocks have not all committed — i.e. silence is NOT idleness.
  bool WorkInFlight() const;

  // Counters-only fingerprint: two equal fingerprints = zero progress
  // between the samples. Queue depths are excluded deliberately — depth can
  // fluctuate (producers filling up behind a stall) while nothing completes.
  std::vector<uint64_t> Fingerprint() const;
};

struct StallDiagnosis {
  std::string stage;  // The wedged stage's name ("exec", "commit", ...).
  uint64_t stalled_for_ms = 0;
  PipelineProgress progress;                // The sample that fired.
  std::vector<BlockAnatomy> recent_blocks;  // Tail of the flight recorder.

  // Human-readable multi-line rendering (what log_to_stderr prints).
  std::string Render() const;
};

struct WatchdogOptions {
  uint64_t deadline_ms = 10'000;  // No progress for this long (with work
                                  // in flight) = stalled.
  uint64_t poll_ms = 200;         // Sampling period.
  // Auto-dump targets on stall ("" = skip). The trace dump is whatever the
  // per-thread rings still hold; the metrics dump includes the trace-ring
  // gauges refreshed at dump time.
  std::string trace_dump_path;
  std::string metrics_dump_path;
  bool log_to_stderr = true;
  // Test/embedder hook, called on the watchdog thread for each stall.
  std::function<void(const StallDiagnosis&)> on_stall;
};

class StallWatchdog {
 public:
  // `source` is sampled every poll_ms; it must stay callable until Stop()
  // returns (the ChainRunner stops its watchdog before tearing queues down).
  // `recorder` may be null (diagnoses then carry no block anatomy).
  StallWatchdog(std::function<PipelineProgress()> source, const FlightRecorder* recorder,
                const WatchdogOptions& options);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  // Joins the sampling thread. Idempotent.
  void Stop();

  uint64_t stalls_detected() const { return stalls_.load(std::memory_order_relaxed); }
  std::optional<StallDiagnosis> last_diagnosis() const;

 private:
  void Loop();
  void Fire(const PipelineProgress& progress, uint64_t stalled_for_ms);

  std::function<PipelineProgress()> source_;
  const FlightRecorder* recorder_;
  WatchdogOptions options_;

  mutable std::mutex mu_;  // Guards stop_requested_/last_ and the wakeup cv.
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::optional<StallDiagnosis> last_;
  std::atomic<uint64_t> stalls_{0};
  std::thread thread_;
};

}  // namespace pevm::ops

#endif  // SRC_OPS_WATCHDOG_H_
