#include "src/ops/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace pevm::ops {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

// Blocking full-buffer write; the socket carries SO_SNDTIMEO, so a stuck
// scraper times the write out instead of wedging a worker forever.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool SendResponse(int fd, const HttpResponse& response) {
  char header[256];
  int n = std::snprintf(header, sizeof(header),
                        "HTTP/1.1 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        response.status, StatusText(response.status),
                        response.content_type.c_str(), response.body.size());
  if (n <= 0 || static_cast<size_t>(n) >= sizeof(header)) {
    return false;
  }
  return WriteAll(fd, header, static_cast<size_t>(n)) &&
         WriteAll(fd, response.body.data(), response.body.size());
}

// Case-insensitive Content-Length scan over the raw header block. The only
// header this server interprets; everything else passes through unread.
bool FindContentLength(const std::string& headers, size_t* length) {
  *length = 0;
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) {
      eol = headers.size();
    }
    std::string line = headers.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      for (char& c : key) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (key == "content-length") {
        size_t value = 0;
        bool any = false;
        for (size_t i = colon + 1; i < line.size(); ++i) {
          char c = line[i];
          if (c == ' ' || c == '\t') {
            continue;
          }
          if (c < '0' || c > '9') {
            return false;
          }
          value = value * 10 + static_cast<size_t>(c - '0');
          any = true;
        }
        if (!any) {
          return false;
        }
        *length = value;
        return true;
      }
    }
    pos = eol + 2;
  }
  return true;  // No Content-Length header: zero-length body.
}

// Parses "GET /path?query HTTP/1.1" into the request struct.
bool ParseRequestLine(const std::string& line, HttpRequest* request) {
  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) {
    return false;
  }
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    return false;
  }
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') {
    return false;
  }
  size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request->path = std::move(target);
  } else {
    request->path = target.substr(0, qmark);
    request->query = target.substr(qmark + 1);
  }
  return line.compare(sp2 + 1, 5, "HTTP/") == 0;
}

}  // namespace

HttpServer::HttpServer(const Options& options) : options_(options) {
  if (options_.threads < 1) {
    options_.threads = 1;
  }
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(std::string method, std::string path, Handler handler) {
  routes_[std::move(path)][std::move(method)] = std::move(handler);
}

bool HttpServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad bind address: " + options_.bind_address;
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen ") + options_.bind_address + ": " +
               std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = options_.port;
  }
  connections_ = std::make_unique<BoundedQueue<int>>(64);
  acceptor_ = std::thread(&HttpServer::AcceptLoop, this);
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int i = 0; i < options_.threads; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  started_ = true;
  return true;
}

void HttpServer::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  // The acceptor polls with a short timeout and rechecks this flag, so no
  // socket-close race is needed to unblock it (portable, TSan-clean).
  stopping_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // The acceptor closed the queue on exit; workers drain any connection that
  // was already accepted (every accepted scrape gets its answer), then see
  // the closed queue and exit.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) {
      continue;  // Timeout or EINTR; recheck the stop flag.
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    timeval timeout{};
    timeout.tv_sec = options_.io_timeout_ms / 1000;
    timeout.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    if (!connections_->Push(fd)) {
      ::close(fd);  // Queue aborted: shutting down.
    }
  }
  connections_->Close();
}

void HttpServer::WorkerLoop() {
  while (std::optional<int> fd = connections_->Pop()) {
    HandleConnection(*fd);
    ::close(*fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string data;
  data.reserve(1024);
  size_t header_end = std::string::npos;
  char chunk[4096];
  // Read until the blank line ending the headers (then as much body as
  // Content-Length asks for), bounded by max_request_bytes and SO_RCVTIMEO.
  while (header_end == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;  // Peer closed / timed out before a full request arrived.
    }
    data.append(chunk, static_cast<size_t>(n));
    if (data.size() > options_.max_request_bytes) {
      SendResponse(fd, {413, "text/plain; charset=utf-8", "request too large\n"});
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    header_end = data.find("\r\n\r\n");
  }

  HttpRequest request;
  size_t line_end = data.find("\r\n");
  if (!ParseRequestLine(data.substr(0, line_end), &request)) {
    SendResponse(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t content_length = 0;
  if (!FindContentLength(data.substr(line_end + 2, header_end - line_end - 2),
                         &content_length) ||
      content_length > options_.max_request_bytes) {
    SendResponse(fd, {400, "text/plain; charset=utf-8", "bad content-length\n"});
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t body_start = header_end + 4;
  while (data.size() - body_start < content_length) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    data.append(chunk, static_cast<size_t>(n));
    if (data.size() > options_.max_request_bytes) {
      SendResponse(fd, {413, "text/plain; charset=utf-8", "request too large\n"});
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  request.body = data.substr(body_start, content_length);

  auto path_it = routes_.find(request.path);
  if (path_it == routes_.end()) {
    SendResponse(fd, {404, "text/plain; charset=utf-8", "not found\n"});
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto method_it = path_it->second.find(request.method);
  if (method_it == path_it->second.end()) {
    SendResponse(fd, {405, "text/plain; charset=utf-8", "method not allowed\n"});
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  HttpResponse response = method_it->second(request);
  if (SendResponse(fd, response) && response.status < 400) {
    served_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status >= 400) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace pevm::ops
