// Minimal embedded HTTP/1.1 server for the ops plane (DESIGN.md §4.8):
// blocking sockets, one poll()-based acceptor thread, a small worker pool, no
// external dependencies. Deliberately tiny — exact-path routing, one request
// per connection (Connection: close), bounded request size, loopback bind by
// default — because its only job is answering observability scrapes
// (/metrics, /healthz, /debug/*) off the block hot path.
//
// Inertness: the server shares nothing with the pipeline except the handler
// closures it is given, and those only *read* (atomic counters, the flight
// recorder's ring under its own mutex, the metrics registry). Serving a
// scrape can therefore cost the pipeline at most memory bandwidth and a core,
// never a lock on the execution path — the §4.8 argument, proven by
// tests/ops_test.cc's inertness suite.
#ifndef SRC_OPS_HTTP_SERVER_H_
#define SRC_OPS_HTTP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/chain/bounded_queue.h"

namespace pevm::ops {

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (upper-cased as received).
  std::string path;    // Path component only; the query string is split off.
  std::string query;   // Raw query string ("" when absent).
  std::string body;    // POST payload (Content-Length bytes).
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::string bind_address = "127.0.0.1";  // Loopback-only by default.
    int port = 0;                            // 0 = ephemeral; see port().
    int threads = 2;                         // Worker pool size.
    size_t max_request_bytes = 1u << 20;     // Request line + headers + body.
    int io_timeout_ms = 5000;                // Per-connection read/write cap.
  };

  explicit HttpServer(const Options& options);
  ~HttpServer();  // Stops and joins if still running.

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-match route. Call before Start(); the route table is
  // immutable once the acceptor runs. A path registered under any method
  // answers other methods with 405; unknown paths answer 404.
  void Route(std::string method, std::string path, Handler handler);

  // Binds, listens and starts the acceptor + workers. Returns false (with a
  // human-readable reason in *error) if the socket can't be bound.
  bool Start(std::string* error);

  // Stops accepting, drains queued connections, joins every thread.
  // Idempotent; called by the destructor.
  void Stop();

  // The bound port (resolves port 0 to the kernel-assigned ephemeral port).
  // Valid after a successful Start().
  int port() const { return port_; }

  // Serving totals (test introspection; relaxed).
  uint64_t requests_served() const { return served_.load(std::memory_order_relaxed); }
  uint64_t requests_rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  Options options_;
  std::map<std::string, std::map<std::string, Handler>> routes_;  // path → method → handler.
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::unique_ptr<BoundedQueue<int>> connections_;  // Accepted fds → workers.
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace pevm::ops

#endif  // SRC_OPS_HTTP_SERVER_H_
