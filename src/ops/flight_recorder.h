// Always-on per-block flight recorder: a fixed-size ring of BlockAnatomy
// records — where each committed block's wall time went (stage busy vs queue
// wait), what its conflict/redo/speculation outcome was, and what committing
// it cost — assembled by the pipeline from numbers it already computes for
// StageStats / BlockDurability / BlockReport. The last N blocks are always
// available for /debug/blocks and for the stall watchdog's diagnosis, with no
// opt-in flag: the per-block cost is one struct copy under a mutex nobody on
// the hot path contends (the ring's only other readers are ops scrapes).
//
// Inertness (DESIGN.md §4.8): every field is copied *out* of pipeline state
// after the fact; nothing reads the ring back into execution. The deterministic
// fields (conflicts, redo counts, oplog entries, ...) are copies of
// BlockReport fields already proven invariant; the wall-clock fields come
// from the same telemetry::NowNs() clock the trace recorder uses.
#ifndef SRC_OPS_FLIGHT_RECORDER_H_
#define SRC_OPS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/keccak.h"

namespace pevm::ops {

// One committed block's anatomy. Fields marked [det] are deterministic
// (bit-identical run to run for the same stream); everything else is
// wall-clock class and may vary with scheduling.
struct BlockAnatomy {
  // Identity.
  uint64_t block_index = 0;  // [det] Chain-lifetime index (resume-aware).
  uint64_t transactions = 0;  // [det]
  Hash256 root{};             // [det]

  // Stage busy / queue-wait split, in nanoseconds.
  uint64_t warm_busy_ns = 0;
  uint64_t spec_busy_ns = 0;        // 0 when the speculation stage is off.
  uint64_t exec_busy_ns = 0;        // Boundary validation + Execute.
  uint64_t ready_wait_ns = 0;       // Left warm stage → picked up downstream.
  uint64_t commit_wait_ns = 0;      // Left exec stage → committer picked it up.
  uint64_t commit_apply_ns = 0;     // Diff replay + incremental re-root.
  uint64_t commit_persist_ns = 0;   // Batch seal share (lands on batch-last).
  uint64_t queue_to_durable_ns = 0; // Honest per-block durability lag.

  // Execution outcome, copied from the block's BlockReport. [det]
  int conflicts = 0;
  int redo_success = 0;
  int redo_fail = 0;
  int full_reexecutions = 0;
  uint64_t oplog_entries = 0;
  uint64_t instructions = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;

  // Cross-block speculation outcome (all zero when the stage is off).
  // Wall-clock class: which txs launch early depends on thread timing.
  uint64_t spec_launched = 0;
  uint64_t spec_held = 0;
  uint64_t spec_clean = 0;
  uint64_t spec_repaired = 0;
  uint64_t spec_dropped = 0;

  // Commit-batch + snapshot-registry state when the block committed.
  uint64_t commit_batch = 0;        // Seal ordinal the block landed in (1-based; 0 = still open).
  uint64_t diff_entries = 0;        // [det] Ordered-journal entries applied.
  uint64_t snapshots_retained = 0;  // Registry occupancy after publish (0 = tier off).
  uint64_t snapshot_live_pins = 0;  // Outstanding query handles at publish.
};

class FlightRecorder {
 public:
  // `capacity` blocks are retained; older records are overwritten.
  explicit FlightRecorder(size_t capacity = 256);

  // Called by the commit path once per block, after the root is final.
  void Record(const BlockAnatomy& anatomy);

  // Batch-seal follow-up: stamps durability fields onto the ring entry for
  // `block_index` if it is still resident (under heavy wraparound an early
  // batch member may already be gone — stamping is best-effort by design).
  void StampDurability(uint64_t block_index, uint64_t queue_to_durable_ns,
                       uint64_t persist_ns, uint64_t commit_batch);

  // Resident records, oldest first.
  std::vector<BlockAnatomy> Snapshot() const;

  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<BlockAnatomy> ring_;  // Slot = total index % capacity.
  uint64_t total_ = 0;              // Records ever written.
};

// JSON array of the recorder's resident records, oldest first — the
// /debug/blocks response body (root as hex, every counter as a number).
std::string FlightRecorderJson(const FlightRecorder& recorder);

}  // namespace pevm::ops

#endif  // SRC_OPS_FLIGHT_RECORDER_H_
