// A tiny EVM assembler with label fixups — the workload contracts (ERC-20,
// AMM, crowdfund) are written directly in EVM assembly since this
// reproduction has no Solidity compiler.
#ifndef SRC_WORKLOAD_ASSEMBLER_H_
#define SRC_WORKLOAD_ASSEMBLER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/evm/opcode.h"
#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

// 4-byte ABI function selector: first 4 bytes of keccak(signature),
// e.g. Selector("transfer(address,uint256)") == 0xa9059cbb.
uint32_t Selector(std::string_view signature);

class Assembler {
 public:
  // Emits a raw opcode.
  Assembler& Op(Opcode op);
  // Emits the minimal PUSHn for `value` (PUSH0 for zero).
  Assembler& Push(const U256& value);
  Assembler& Push(uint64_t value) { return Push(U256(value)); }
  Assembler& Push(const Address& a) { return Push(U256::FromAddress(a)); }
  // Emits PUSH4 <selector>.
  Assembler& PushSelector(uint32_t selector);

  // Binds `name` here and emits a JUMPDEST.
  Assembler& Label(std::string_view name);
  // PUSH2 <label> JUMP / JUMPI (labels may be bound later).
  Assembler& Jump(std::string_view label);
  Assembler& JumpI(std::string_view label);

  // Resolves all fixups; aborts if a referenced label was never bound.
  Bytes Build() const;

  size_t size() const { return code_.size(); }

 private:
  Assembler& PushPlaceholder(std::string_view label);

  Bytes code_;
  std::unordered_map<std::string, uint16_t> labels_;
  std::vector<std::pair<size_t, std::string>> fixups_;
};

}  // namespace pevm

#endif  // SRC_WORKLOAD_ASSEMBLER_H_
