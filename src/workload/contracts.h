// Hand-assembled workload contracts mirroring the hot-spot applications the
// paper identifies (§3.1): an ERC-20 token (9 of Ethereum's top-10 contracts
// were ERC-20s), a constant-product AMM that moves ERC-20s via inter-contract
// CALLs (Uniswap-style), and a crowdfund with a single hot accumulator slot.
//
// Storage layouts (Solidity conventions):
//   ERC-20:    slot 0 = balances mapping, slot 1 = allowances mapping,
//              slot 2 = totalSupply.
//   AMM:       slot 0 = token0, slot 1 = token1, slot 2 = reserve0,
//              slot 3 = reserve1.
//   Crowdfund: slot 0 = total raised, slot 1 = contributions mapping.
#ifndef SRC_WORKLOAD_CONTRACTS_H_
#define SRC_WORKLOAD_CONTRACTS_H_

#include "src/support/bytes.h"
#include "src/support/keccak.h"
#include "src/support/u256.h"

namespace pevm {

// --- Runtime bytecode. ---
Bytes BuildErc20Code();
Bytes BuildAmmCode();
Bytes BuildCrowdfundCode();

// --- Calldata builders. ---
Bytes Erc20TransferCall(const Address& to, const U256& amount);
Bytes Erc20TransferFromCall(const Address& from, const Address& to, const U256& amount);
Bytes Erc20ApproveCall(const Address& spender, const U256& amount);
Bytes Erc20MintCall(const Address& to, const U256& amount);
Bytes Erc20BalanceOfCall(const Address& owner);
Bytes Erc20TotalSupplyCall();
// zero_for_one selects the swap direction (token0 -> token1 when true).
Bytes AmmSwapCall(const U256& amount_in, bool zero_for_one);
Bytes CrowdfundContributeCall();

// --- Storage-slot helpers (for genesis setup and assertions). ---
inline U256 Erc20BalanceSlot(const Address& owner) {
  return MappingSlot(U256::FromAddress(owner), U256(0));
}
inline U256 Erc20AllowanceSlot(const Address& owner, const Address& spender) {
  return MappingSlot2(U256::FromAddress(owner), U256::FromAddress(spender), U256(1));
}
inline constexpr uint64_t kErc20TotalSupplySlot = 2;

inline constexpr uint64_t kAmmToken0Slot = 0;
inline constexpr uint64_t kAmmToken1Slot = 1;
inline constexpr uint64_t kAmmReserve0Slot = 2;
inline constexpr uint64_t kAmmReserve1Slot = 3;

inline constexpr uint64_t kCrowdfundTotalSlot = 0;
inline U256 CrowdfundContributionSlot(const Address& contributor) {
  return MappingSlot(U256::FromAddress(contributor), U256(1));
}

}  // namespace pevm

#endif  // SRC_WORKLOAD_CONTRACTS_H_
