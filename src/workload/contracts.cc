#include "src/workload/contracts.h"

#include "src/workload/assembler.h"

namespace pevm {
namespace {

// Appends a 32-byte big-endian ABI word.
void AppendWord(Bytes& out, const U256& v) {
  std::array<uint8_t, 32> be = v.ToBigEndian();
  out.insert(out.end(), be.begin(), be.end());
}

Bytes AbiCall(uint32_t selector, std::initializer_list<U256> args) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(selector >> 24));
  out.push_back(static_cast<uint8_t>(selector >> 16));
  out.push_back(static_cast<uint8_t>(selector >> 8));
  out.push_back(static_cast<uint8_t>(selector));
  for (const U256& a : args) {
    AppendWord(out, a);
  }
  return out;
}

// --- Shared assembly idioms. Stack comments list bottom..top. ---

// Consumes the mapping key on top of the stack, leaves keccak(key ++ slot).
// Scribbles over memory [0, 0x40).
void EmitMapSlot(Assembler& a, uint64_t slot) {
  a.Push(0).Op(Opcode::kMstore);              // mem[0] = key
  a.Push(slot).Push(0x20).Op(Opcode::kMstore);  // mem[0x20] = slot
  a.Push(0x40).Push(0).Op(Opcode::kSha3);       // keccak(mem[0..0x40))
}

// Consumes [owner, spender] (spender on top), leaves the two-level mapping
// slot keccak(spender ++ keccak(owner ++ slot)).
void EmitMapSlot2(Assembler& a, uint64_t slot) {
  a.Op(Opcode::kSwap1);  // [spender, owner]
  EmitMapSlot(a, slot);  // [spender, h1]
  a.Op(Opcode::kSwap1);  // [h1, spender]
  a.Push(0).Op(Opcode::kMstore);               // mem[0] = spender
  a.Push(0x20).Op(Opcode::kMstore);            // mem[0x20] = h1
  a.Push(0x40).Push(0).Op(Opcode::kSha3);
}

void EmitReturnTrue(Assembler& a) {
  a.Push(1).Push(0).Op(Opcode::kMstore);
  a.Push(0x20).Push(0).Op(Opcode::kReturn);
}

// Returns the top-of-stack word.
void EmitReturnTop(Assembler& a) {
  a.Push(0).Op(Opcode::kMstore);
  a.Push(0x20).Push(0).Op(Opcode::kReturn);
}

// The _transfer(from, to, amount) body (Figure 4 lines 8-12): expects
// [from, to, amount] on top of the stack and consumes all three. Jumps to
// "revert" when the sender balance is insufficient (the paper's line-9
// constraint-guard site).
void EmitTransferBody(Assembler& a) {
  a.Op(Opcode::kDup3);       // [f,t,a,f]
  EmitMapSlot(a, 0);         // [f,t,a,slotF]
  a.Op(Opcode::kDup1).Op(Opcode::kSload);  // [f,t,a,slotF,fromBal]
  a.Op(Opcode::kDup1).Op(Opcode::kDup4);   // [f,t,a,slotF,fromBal,fromBal,a]
  a.Op(Opcode::kGt);         // a > fromBal -> insufficient
  a.JumpI("revert");         // [f,t,a,slotF,fromBal]
  a.Op(Opcode::kDup3);       // [f,t,a,slotF,fromBal,a]
  a.Op(Opcode::kSwap1).Op(Opcode::kSub);   // [f,t,a,slotF,fromBal-a]
  a.Op(Opcode::kSwap1).Op(Opcode::kSstore);  // balances[from] = fromBal-a; [f,t,a]
  a.Op(Opcode::kDup2);       // [f,t,a,t]
  EmitMapSlot(a, 0);         // [f,t,a,slotT]
  a.Op(Opcode::kDup1).Op(Opcode::kSload);  // [f,t,a,slotT,toBal]
  a.Op(Opcode::kDup3).Op(Opcode::kAdd);    // [f,t,a,slotT,toBal+a]
  a.Op(Opcode::kSwap1).Op(Opcode::kSstore);  // balances[to] += a; [f,t,a]
  a.Op(Opcode::kPop).Op(Opcode::kPop).Op(Opcode::kPop);
}

// Dispatcher prologue: leaves the 4-byte selector on the stack.
void EmitSelectorLoad(Assembler& a) {
  a.Push(0).Op(Opcode::kCalldataload).Push(0xE0).Op(Opcode::kShr);
}

void EmitDispatchCase(Assembler& a, std::string_view signature, std::string_view label) {
  a.Op(Opcode::kDup1).PushSelector(Selector(signature)).Op(Opcode::kEq).JumpI(label);
}

}  // namespace

Bytes BuildErc20Code() {
  Assembler a;
  EmitSelectorLoad(a);
  EmitDispatchCase(a, "transfer(address,uint256)", "transfer");
  EmitDispatchCase(a, "transferFrom(address,address,uint256)", "transferFrom");
  EmitDispatchCase(a, "approve(address,uint256)", "approve");
  EmitDispatchCase(a, "balanceOf(address)", "balanceOf");
  EmitDispatchCase(a, "mint(address,uint256)", "mint");
  EmitDispatchCase(a, "totalSupply()", "totalSupply");
  a.Jump("revert");

  a.Label("transfer").Op(Opcode::kPop);
  a.Op(Opcode::kCaller);                       // [from]
  a.Push(4).Op(Opcode::kCalldataload);         // [from, to]
  a.Push(0x24).Op(Opcode::kCalldataload);      // [from, to, amount]
  EmitTransferBody(a);
  EmitReturnTrue(a);

  a.Label("transferFrom").Op(Opcode::kPop);
  a.Push(4).Op(Opcode::kCalldataload);         // [from]
  a.Op(Opcode::kCaller);                       // [from, spender]
  EmitMapSlot2(a, 1);                          // [slotA]
  a.Op(Opcode::kDup1).Op(Opcode::kSload);      // [slotA, allow]
  a.Push(0x44).Op(Opcode::kCalldataload);      // [slotA, allow, amount]
  a.Op(Opcode::kDup1).Op(Opcode::kDup3);       // [slotA, allow, amount, amount, allow]
  a.Op(Opcode::kLt);                           // allow < amount -> insufficient
  a.JumpI("revert");                           // [slotA, allow, amount]
  a.Op(Opcode::kSwap1);                        // [slotA, amount, allow]
  a.Op(Opcode::kDup2);                         // [slotA, amount, allow, amount]
  a.Op(Opcode::kSwap1).Op(Opcode::kSub);       // [slotA, amount, allow-amount]
  a.Op(Opcode::kSwap1).Op(Opcode::kSwap2);     // [allow-amount, amount, slotA]... see below
  // Stack gymnastics check: [slotA, amount, newAllow] -SWAP1-> [slotA, newAllow,
  // amount] -SWAP2-> [amount, newAllow, slotA]; SSTORE(key=slotA, value=newAllow).
  a.Op(Opcode::kSstore);                       // [amount]
  a.Push(4).Op(Opcode::kCalldataload);         // [amount, from]
  a.Push(0x24).Op(Opcode::kCalldataload);      // [amount, from, to]
  a.Op(Opcode::kDup3);                         // [amount, from, to, amount]
  EmitTransferBody(a);                         // [amount]
  a.Op(Opcode::kPop);
  EmitReturnTrue(a);

  a.Label("approve").Op(Opcode::kPop);
  a.Push(0x24).Op(Opcode::kCalldataload);      // [amount]
  a.Op(Opcode::kCaller);                       // [amount, owner]
  a.Push(4).Op(Opcode::kCalldataload);         // [amount, owner, spender]
  EmitMapSlot2(a, 1);                          // [amount, slotA]
  a.Op(Opcode::kSstore);                       // allowances[owner][spender] = amount
  EmitReturnTrue(a);

  a.Label("balanceOf").Op(Opcode::kPop);
  a.Push(4).Op(Opcode::kCalldataload);         // [owner]
  EmitMapSlot(a, 0);                           // [slot]
  a.Op(Opcode::kSload);                        // [bal]
  EmitReturnTop(a);

  a.Label("mint").Op(Opcode::kPop);
  a.Push(0x24).Op(Opcode::kCalldataload);      // [amount]
  a.Push(4).Op(Opcode::kCalldataload);         // [amount, to]
  EmitMapSlot(a, 0);                           // [amount, slotT]
  a.Op(Opcode::kDup1).Op(Opcode::kSload);      // [amount, slotT, bal]
  a.Op(Opcode::kDup3).Op(Opcode::kAdd);        // [amount, slotT, bal+amount]
  a.Op(Opcode::kSwap1).Op(Opcode::kSstore);    // [amount]
  a.Push(kErc20TotalSupplySlot).Op(Opcode::kSload);  // [amount, ts]
  a.Op(Opcode::kAdd);                          // [ts+amount]
  a.Push(kErc20TotalSupplySlot).Op(Opcode::kSstore);
  EmitReturnTrue(a);

  a.Label("totalSupply").Op(Opcode::kPop);
  a.Push(kErc20TotalSupplySlot).Op(Opcode::kSload);
  EmitReturnTop(a);

  a.Label("revert");
  a.Push(0).Push(0).Op(Opcode::kRevert);
  return a.Build();
}

namespace {

// The directional swap body. Enters with [amount_in]; pulls token-in via
// transferFrom, pays token-out via transfer, updates reserves, returns
// amount_out. Constant-product pricing with the Uniswap 0.3% fee.
void EmitSwapBody(Assembler& a, uint64_t tin_slot, uint64_t tout_slot, uint64_t rin_slot,
                  uint64_t rout_slot) {
  a.Push(rin_slot).Op(Opcode::kSload);    // [in, rIn]
  a.Push(rout_slot).Op(Opcode::kSload);   // [in, rIn, rOut]
  a.Op(Opcode::kDup3).Push(997).Op(Opcode::kMul);   // [in, rIn, rOut, inFee]
  a.Op(Opcode::kDup1).Op(Opcode::kDup3).Op(Opcode::kMul);  // [in,rIn,rOut,inFee,num]
  a.Op(Opcode::kSwap1);                   // [in,rIn,rOut,num,inFee]
  a.Op(Opcode::kDup4).Push(1000).Op(Opcode::kMul);  // [..,num,inFee,rIn*1000]
  a.Op(Opcode::kAdd);                     // [in,rIn,rOut,num,denom]
  a.Op(Opcode::kSwap1).Op(Opcode::kDiv);  // [in,rIn,rOut,out]
  a.Op(Opcode::kDup1).Op(Opcode::kDup3).Op(Opcode::kGt);  // rOut > out ?
  a.Op(Opcode::kIszero).JumpI("revert");  // [in,rIn,rOut,out]
  // reserves[in] = rIn + in
  a.Op(Opcode::kDup3).Op(Opcode::kDup5).Op(Opcode::kAdd);  // [..,out,rIn+in]
  a.Push(rin_slot).Op(Opcode::kSstore);   // [in,rIn,rOut,out]
  // reserves[out] = rOut - out
  a.Op(Opcode::kDup2).Op(Opcode::kDup2);  // [..,out,rOut,out]
  a.Op(Opcode::kSwap1).Op(Opcode::kSub);  // [..,out,rOut-out]
  a.Push(rout_slot).Op(Opcode::kSstore);  // [in,rIn,rOut,out]

  // token_in.transferFrom(CALLER, ADDRESS, in)
  a.Push(U256::Shl(224, U256(Selector("transferFrom(address,address,uint256)"))));
  a.Push(0x80).Op(Opcode::kMstore);
  a.Op(Opcode::kCaller).Push(0x84).Op(Opcode::kMstore);
  a.Op(Opcode::kAddress).Push(0xA4).Op(Opcode::kMstore);
  a.Op(Opcode::kDup4).Push(0xC4).Op(Opcode::kMstore);  // amount = in
  a.Push(0x20).Push(0x160).Push(0x64).Push(0x80).Push(0);
  a.Push(tin_slot).Op(Opcode::kSload);    // token-in address
  a.Op(Opcode::kGas).Op(Opcode::kCall);   // [in,rIn,rOut,out,ok]
  a.Op(Opcode::kIszero).JumpI("revert");  // [in,rIn,rOut,out]

  // token_out.transfer(CALLER, out)
  a.Push(U256::Shl(224, U256(Selector("transfer(address,uint256)"))));
  a.Push(0x80).Op(Opcode::kMstore);
  a.Op(Opcode::kCaller).Push(0x84).Op(Opcode::kMstore);
  a.Op(Opcode::kDup1).Push(0xA4).Op(Opcode::kMstore);  // amount = out
  a.Push(0x20).Push(0x160).Push(0x44).Push(0x80).Push(0);
  a.Push(tout_slot).Op(Opcode::kSload);   // token-out address
  a.Op(Opcode::kGas).Op(Opcode::kCall);
  a.Op(Opcode::kIszero).JumpI("revert");  // [in,rIn,rOut,out]

  a.Push(0).Op(Opcode::kMstore);          // mem[0] = out; [in,rIn,rOut]
  a.Op(Opcode::kPop).Op(Opcode::kPop).Op(Opcode::kPop);
  a.Push(0x20).Push(0).Op(Opcode::kReturn);
}

}  // namespace

Bytes BuildAmmCode() {
  Assembler a;
  EmitSelectorLoad(a);
  EmitDispatchCase(a, "swap(uint256,bool)", "swap");
  a.Jump("revert");

  a.Label("swap").Op(Opcode::kPop);
  a.Push(4).Op(Opcode::kCalldataload);     // [in]
  a.Push(0x24).Op(Opcode::kCalldataload);  // [in, zero_for_one]
  a.JumpI("zero_for_one");
  // direction 1 -> 0: token1 in, token0 out.
  EmitSwapBody(a, kAmmToken1Slot, kAmmToken0Slot, kAmmReserve1Slot, kAmmReserve0Slot);
  a.Label("zero_for_one");
  EmitSwapBody(a, kAmmToken0Slot, kAmmToken1Slot, kAmmReserve0Slot, kAmmReserve1Slot);

  a.Label("revert");
  a.Push(0).Push(0).Op(Opcode::kRevert);
  return a.Build();
}

Bytes BuildCrowdfundCode() {
  Assembler a;
  EmitSelectorLoad(a);
  EmitDispatchCase(a, "contribute()", "contribute");
  a.Jump("revert");

  a.Label("contribute").Op(Opcode::kPop);
  a.Op(Opcode::kCallvalue);                               // [v]
  a.Op(Opcode::kDup1);                                    // [v, v]
  a.Push(kCrowdfundTotalSlot).Op(Opcode::kSload);         // [v, v, total]
  a.Op(Opcode::kAdd);                                     // [v, v+total]
  a.Push(kCrowdfundTotalSlot).Op(Opcode::kSstore);        // [v]
  a.Op(Opcode::kCaller);                                  // [v, caller]
  EmitMapSlot(a, 1);                                      // [v, slotC]
  a.Op(Opcode::kDup1).Op(Opcode::kSload);                 // [v, slotC, cur]
  a.Op(Opcode::kDup3).Op(Opcode::kAdd);                   // [v, slotC, cur+v]
  a.Op(Opcode::kSwap1).Op(Opcode::kSstore);               // [v]
  a.Op(Opcode::kPop);
  EmitReturnTrue(a);

  a.Label("revert");
  a.Push(0).Push(0).Op(Opcode::kRevert);
  return a.Build();
}

Bytes Erc20TransferCall(const Address& to, const U256& amount) {
  return AbiCall(Selector("transfer(address,uint256)"), {U256::FromAddress(to), amount});
}

Bytes Erc20TransferFromCall(const Address& from, const Address& to, const U256& amount) {
  return AbiCall(Selector("transferFrom(address,address,uint256)"),
                 {U256::FromAddress(from), U256::FromAddress(to), amount});
}

Bytes Erc20ApproveCall(const Address& spender, const U256& amount) {
  return AbiCall(Selector("approve(address,uint256)"), {U256::FromAddress(spender), amount});
}

Bytes Erc20MintCall(const Address& to, const U256& amount) {
  return AbiCall(Selector("mint(address,uint256)"), {U256::FromAddress(to), amount});
}

Bytes Erc20BalanceOfCall(const Address& owner) {
  return AbiCall(Selector("balanceOf(address)"), {U256::FromAddress(owner)});
}

Bytes Erc20TotalSupplyCall() { return AbiCall(Selector("totalSupply()"), {}); }

Bytes AmmSwapCall(const U256& amount_in, bool zero_for_one) {
  return AbiCall(Selector("swap(uint256,bool)"), {amount_in, U256(zero_for_one ? 1 : 0)});
}

Bytes CrowdfundContributeCall() { return AbiCall(Selector("contribute()"), {}); }

}  // namespace pevm
