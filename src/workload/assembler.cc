#include "src/workload/assembler.h"

#include <cassert>
#include <cstdlib>

#include "src/support/keccak.h"

namespace pevm {

uint32_t Selector(std::string_view signature) {
  Bytes data(signature.begin(), signature.end());
  Hash256 h = Keccak256(data);
  return (static_cast<uint32_t>(h[0]) << 24) | (static_cast<uint32_t>(h[1]) << 16) |
         (static_cast<uint32_t>(h[2]) << 8) | static_cast<uint32_t>(h[3]);
}

Assembler& Assembler::Op(Opcode op) {
  code_.push_back(static_cast<uint8_t>(op));
  return *this;
}

Assembler& Assembler::Push(const U256& value) {
  unsigned len = value.ByteLength();
  code_.push_back(static_cast<uint8_t>(0x5f + len));  // PUSH0..PUSH32.
  std::array<uint8_t, 32> be = value.ToBigEndian();
  code_.insert(code_.end(), be.begin() + (32 - len), be.end());
  return *this;
}

Assembler& Assembler::PushSelector(uint32_t selector) {
  code_.push_back(0x63);  // PUSH4.
  code_.push_back(static_cast<uint8_t>(selector >> 24));
  code_.push_back(static_cast<uint8_t>(selector >> 16));
  code_.push_back(static_cast<uint8_t>(selector >> 8));
  code_.push_back(static_cast<uint8_t>(selector));
  return *this;
}

Assembler& Assembler::Label(std::string_view name) {
  assert(code_.size() <= 0xffff);
  auto [it, inserted] = labels_.emplace(std::string(name), static_cast<uint16_t>(code_.size()));
  (void)it;
  assert(inserted && "label bound twice");
  return Op(Opcode::kJumpdest);
}

Assembler& Assembler::PushPlaceholder(std::string_view label) {
  code_.push_back(0x61);  // PUSH2.
  fixups_.emplace_back(code_.size(), std::string(label));
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

Assembler& Assembler::Jump(std::string_view label) {
  return PushPlaceholder(label).Op(Opcode::kJump);
}

Assembler& Assembler::JumpI(std::string_view label) {
  return PushPlaceholder(label).Op(Opcode::kJumpi);
}

Bytes Assembler::Build() const {
  Bytes out = code_;
  for (const auto& [pos, label] : fixups_) {
    auto it = labels_.find(label);
    if (it == labels_.end()) {
      std::abort();  // Unbound label: a contract-authoring bug.
    }
    out[pos] = static_cast<uint8_t>(it->second >> 8);
    out[pos + 1] = static_cast<uint8_t>(it->second & 0xff);
  }
  return out;
}

}  // namespace pevm
