#include "src/workload/block_gen.h"

#include <cassert>
#include <unordered_set>

#include "src/workload/contracts.h"

namespace pevm {
namespace {

// Address-space bases (disjoint ranges).
constexpr uint64_t kTokenBase = 0x100000;
constexpr uint64_t kPoolBase = 0x200000;
constexpr uint64_t kFundBase = 0x300000;
constexpr uint64_t kUserBase = 0x400000;

const U256 kUserEther = U256::Exp(U256(10), U256(21));       // 1000 ether.
const U256 kUserTokenBalance = U256::Exp(U256(10), U256(12));
const U256 kPoolReserve = U256::Exp(U256(10), U256(15));
const U256 kGasPrice = U256(10'000'000'000ULL);  // 10 gwei.

// The first users act as "operators" (exchange hot wallets) that hold
// transferFrom allowances from everyone.
constexpr int kOperators = 16;
// Whale owners: hot accounts that approved every user as a spender (the
// paper's §3.2 transferFrom conflict pattern).
constexpr int kWhales = 4;

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      token_zipf_(static_cast<uint64_t>(config.tokens), config.token_zipf_s),
      user_zipf_(static_cast<uint64_t>(config.users), config.user_zipf_s),
      pool_zipf_(static_cast<uint64_t>(config.pools), config.pool_zipf_s),
      contract_zipf_(static_cast<uint64_t>(config.tokens + config.pools + config.funds),
                     config.contract_zipf_s) {}

Address WorkloadGenerator::TokenAddress(int i) const {
  return Address::FromId(kTokenBase + static_cast<uint64_t>(i));
}
Address WorkloadGenerator::PoolAddress(int i) const {
  return Address::FromId(kPoolBase + static_cast<uint64_t>(i));
}
Address WorkloadGenerator::FundAddress(int i) const {
  return Address::FromId(kFundBase + static_cast<uint64_t>(i));
}
Address WorkloadGenerator::UserAddress(int i) const {
  return Address::FromId(kUserBase + static_cast<uint64_t>(i));
}

WorldState WorkloadGenerator::MakeGenesis() const {
  WorldState state;
  Bytes erc20 = BuildErc20Code();
  Bytes amm = BuildAmmCode();
  Bytes crowdfund = BuildCrowdfundCode();

  for (int u = 0; u < config_.users; ++u) {
    state.SetBalance(UserAddress(u), kUserEther);
  }
  for (int t = 0; t < config_.tokens; ++t) {
    Address token = TokenAddress(t);
    state.SetCode(token, erc20);
    U256 supply;
    for (int u = 0; u < config_.users; ++u) {
      state.SetStorage(token, Erc20BalanceSlot(UserAddress(u)), kUserTokenBalance);
      supply = supply + kUserTokenBalance;
    }
    for (int u = 0; u < config_.users; ++u) {
      Address user = UserAddress(u);
      // Everyone approved the operators (transferFrom workload), the pools
      // (AMM workload), and themselves (conflict-sweep workload).
      for (int o = 0; o < std::min(kOperators, config_.users); ++o) {
        state.SetStorage(token, Erc20AllowanceSlot(user, UserAddress(o)), ~U256{});
      }
      for (int p = 0; p < config_.pools; ++p) {
        state.SetStorage(token, Erc20AllowanceSlot(user, PoolAddress(p)), ~U256{});
      }
      state.SetStorage(token, Erc20AllowanceSlot(user, user), ~U256{});
      // Whale owners (exchange-style hot accounts, incl. the Figure 11
      // owner "A" = user 0) approved every user as a spender.
      for (int w = 0; w < std::min(kWhales, config_.users); ++w) {
        state.SetStorage(token, Erc20AllowanceSlot(UserAddress(w), user), ~U256{});
      }
    }
    for (int p = 0; p < config_.pools; ++p) {
      state.SetStorage(token, Erc20BalanceSlot(PoolAddress(p)), kPoolReserve);
      supply = supply + kPoolReserve;
    }
    state.SetStorage(token, U256(kErc20TotalSupplySlot), supply);
  }
  for (int p = 0; p < config_.pools; ++p) {
    Address pool = PoolAddress(p);
    int t0 = p % config_.tokens;
    int t1 = (p + 1) % config_.tokens;
    state.SetCode(pool, amm);
    state.SetStorage(pool, U256(kAmmToken0Slot), U256::FromAddress(TokenAddress(t0)));
    state.SetStorage(pool, U256(kAmmToken1Slot), U256::FromAddress(TokenAddress(t1)));
    state.SetStorage(pool, U256(kAmmReserve0Slot), kPoolReserve);
    state.SetStorage(pool, U256(kAmmReserve1Slot), kPoolReserve);
  }
  for (int f = 0; f < config_.funds; ++f) {
    state.SetCode(FundAddress(f), crowdfund);
  }
  return state;
}

uint64_t WorkloadGenerator::NextNonce(const Address& sender) { return nonces_[sender]++; }

int WorkloadGenerator::SampleUser() { return static_cast<int>(user_zipf_(rng_) - 1); }

int WorkloadGenerator::SampleToken() { return static_cast<int>(token_zipf_(rng_) - 1); }

Transaction WorkloadGenerator::MakeNativeTransfer(int from_user, int to_user) {
  Transaction tx;
  tx.from = UserAddress(from_user);
  tx.to = UserAddress(to_user);
  tx.value = U256(1 + rng_() % 1'000'000) * U256(1'000'000'000ULL);
  tx.gas_limit = 50'000;
  tx.gas_price = kGasPrice;
  tx.nonce = NextNonce(tx.from);
  return tx;
}

Transaction WorkloadGenerator::MakeErc20Transfer(int token, int from_user, int to_user,
                                                 bool failing) {
  Transaction tx;
  tx.from = UserAddress(from_user);
  tx.to = TokenAddress(token);
  U256 amount = failing ? kUserTokenBalance * U256(1000) : U256(1 + rng_() % 1000);
  tx.data = Erc20TransferCall(UserAddress(to_user), amount);
  tx.gas_limit = 150'000;
  tx.gas_price = kGasPrice;
  tx.nonce = NextNonce(tx.from);
  return tx;
}

Transaction WorkloadGenerator::MakeErc20TransferFrom(int token, int owner, int spender,
                                                     int to_user) {
  Transaction tx;
  tx.from = UserAddress(spender);
  tx.to = TokenAddress(token);
  tx.data = Erc20TransferFromCall(UserAddress(owner), UserAddress(to_user),
                                  U256(1 + rng_() % 1000));
  tx.gas_limit = 200'000;
  tx.gas_price = kGasPrice;
  tx.nonce = NextNonce(tx.from);
  return tx;
}

Transaction WorkloadGenerator::MakeAmmSwap(int pool, int user) {
  Transaction tx;
  tx.from = UserAddress(user);
  tx.to = PoolAddress(pool);
  tx.data = AmmSwapCall(U256(1000 + rng_() % 100'000), (rng_() & 1) != 0);
  tx.gas_limit = 500'000;
  tx.gas_price = kGasPrice;
  tx.nonce = NextNonce(tx.from);
  return tx;
}

Transaction WorkloadGenerator::MakeContribute(int fund, int user) {
  Transaction tx;
  tx.from = UserAddress(user);
  tx.to = FundAddress(fund);
  tx.data = CrowdfundContributeCall();
  tx.value = U256(1 + rng_() % 100) * U256::Exp(U256(10), U256(12));
  tx.gas_limit = 100'000;
  tx.gas_price = kGasPrice;
  tx.nonce = NextNonce(tx.from);
  return tx;
}

Block WorkloadGenerator::MakeBlock() {
  Block block;
  block.context.number = U256(block_number_);
  block.context.timestamp = U256(block_number_ * 12);
  block.context.coinbase = Address::FromId(0xC0FFEE);
  block.context.base_fee = U256(1'000'000'000ULL);
  block.context.prevrandao = U256(block_number_ * 0x9e3779b97f4a7c15ULL);
  ++block_number_;

  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::unordered_set<int> used_senders;
  auto sample_sender = [&]() {
    // Mainnet blocks have mostly distinct senders (same-account transactions
    // serialize on the nonce anyway); resample a few times before accepting a
    // repeat.
    for (int attempt = 0; attempt < 4; ++attempt) {
      int s = static_cast<int>(rng_() % static_cast<uint64_t>(config_.users));
      if (used_senders.insert(s).second) {
        return s;
      }
    }
    return static_cast<int>(rng_() % static_cast<uint64_t>(config_.users));
  };
  int target = config_.transactions_per_block;
  while (static_cast<int>(block.transactions.size()) < target) {
    double roll = uniform(rng_);
    // Recipients and contracts are hot (Fig. 3); senders mostly distinct.
    int sender = sample_sender();
    int receiver = SampleUser();
    if (roll < config_.erc20_transfer_frac) {
      bool failing = uniform(rng_) < config_.failing_tx_frac;
      block.transactions.push_back(
          MakeErc20Transfer(SampleToken(), sender, receiver, failing));
    } else if (roll < config_.erc20_transfer_frac + config_.erc20_transfer_from_frac) {
      // Exchange-style batch payouts: several adjacent transferFroms draining
      // the same hot whale account (the paper's §3.2 conflict pattern).
      int whale = static_cast<int>(rng_() % kWhales);
      int token = SampleToken();
      int burst = 1 + static_cast<int>(rng_() % 3);
      for (int b = 0; b < burst && static_cast<int>(block.transactions.size()) < target; ++b) {
        block.transactions.push_back(MakeErc20TransferFrom(
            token, /*owner=*/whale, /*spender=*/b == 0 ? sender : sample_sender(),
            /*to=*/SampleUser()));
      }
    } else if (roll < config_.erc20_transfer_frac + config_.erc20_transfer_from_frac +
                          config_.amm_swap_frac) {
      // MEV-era DEX traffic: arbitrage/sandwich bundles put several swaps on
      // the same pool at *adjacent* block positions.
      int pool = static_cast<int>(pool_zipf_(rng_) - 1);
      int bundle = 1 + static_cast<int>(rng_() % 4);
      for (int b = 0; b < bundle && static_cast<int>(block.transactions.size()) < target; ++b) {
        block.transactions.push_back(MakeAmmSwap(pool, b == 0 ? sender : sample_sender()));
      }
    } else if (roll < config_.erc20_transfer_frac + config_.erc20_transfer_from_frac +
                          config_.amm_swap_frac + config_.crowdfund_frac) {
      // ICO/crowdfund rushes cluster contributions at adjacent positions.
      int fund = static_cast<int>(rng_() % static_cast<uint64_t>(config_.funds));
      int burst = 1 + static_cast<int>(rng_() % 3);
      for (int b = 0; b < burst && static_cast<int>(block.transactions.size()) < target; ++b) {
        block.transactions.push_back(MakeContribute(fund, b == 0 ? sender : sample_sender()));
      }
    } else {
      block.transactions.push_back(MakeNativeTransfer(sender, receiver));
    }
  }
  return block;
}

Block WorkloadGenerator::MakeHotContractBlock(int transactions) {
  Block block;
  block.context.number = U256(block_number_);
  block.context.timestamp = U256(block_number_ * 12);
  block.context.coinbase = Address::FromId(0xC0FFEE);
  block.context.base_fee = U256(1'000'000'000ULL);
  block.context.prevrandao = U256(block_number_ * 0x9e3779b97f4a7c15ULL);
  ++block_number_;

  for (int j = 0; j < transactions; ++j) {
    // One unified hotness ranking across every deployed contract, pools
    // first: the hottest mainnet contracts by call volume are the top DEX
    // pools (DEX traffic concentrates hard on the top pools), so the head of
    // the Zipf ranking maps to the AMM deployments, then the ERC-20 tokens,
    // then the long-tail crowdfund contracts.
    int rank = static_cast<int>(contract_zipf_(rng_) - 1);
    int sender = static_cast<int>(rng_() % static_cast<uint64_t>(config_.users));
    if (rank < config_.pools) {
      block.transactions.push_back(MakeAmmSwap(rank, sender));
    } else if (rank < config_.pools + config_.tokens) {
      block.transactions.push_back(
          MakeErc20Transfer(rank - config_.pools, sender, SampleUser(), /*failing=*/false));
    } else {
      block.transactions.push_back(
          MakeContribute(rank - config_.pools - config_.tokens, sender));
    }
  }
  return block;
}

Block WorkloadGenerator::MakeErc20ConflictBlock(int transactions, double conflict_ratio) {
  assert(config_.users > transactions + 1000);
  Block block;
  block.context.number = U256(block_number_);
  block.context.timestamp = U256(block_number_ * 12);
  block.context.coinbase = Address::FromId(0xC0FFEE);
  ++block_number_;

  int conflicting = static_cast<int>(conflict_ratio * transactions + 0.5);
  for (int j = 0; j < transactions; ++j) {
    int spender = 1 + j;  // Distinct senders: no nonce interference.
    int owner = j < conflicting ? 0 : spender;  // Shared owner -> balances[A] conflict.
    int recipient = 1000 + j;
    block.transactions.push_back(MakeErc20TransferFrom(0, owner, spender, recipient));
  }
  return block;
}

std::vector<TimedQuery> WorkloadGenerator::MakeQueryLoad(int n,
                                                         const QueryWorkloadConfig& qc) const {
  // Own RNG and skew state: const method, so a bench interleaving query
  // generation with MakeBlock cannot perturb the transaction stream.
  std::mt19937_64 rng(qc.seed);
  ZipfDistribution contract_zipf(
      static_cast<uint64_t>(config_.pools + config_.tokens + config_.funds), qc.contract_zipf_s);
  ZipfDistribution user_zipf(static_cast<uint64_t>(config_.users), qc.user_zipf_s);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  // Same pools-first unified hotness ranking as MakeHotContractBlock, so the
  // query tier probes exactly the contracts the write pipeline is mutating.
  auto pick_contract = [&](int rank, bool* is_token, int* index) {
    if (rank < config_.pools) {
      *is_token = false;
      *index = rank;
      return PoolAddress(rank);
    }
    if (rank < config_.pools + config_.tokens) {
      *is_token = true;
      *index = rank - config_.pools;
      return TokenAddress(*index);
    }
    *is_token = false;
    *index = rank - config_.pools - config_.tokens;
    return FundAddress(*index);
  };

  std::vector<TimedQuery> load;
  load.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    TimedQuery timed;
    if (qc.burst > 0) {
      timed.offset_ns = static_cast<uint64_t>(i / qc.burst) * qc.burst_gap_ns;
    }
    QueryRequest& req = timed.request;
    const double kind = uniform(rng);
    const int user = static_cast<int>(user_zipf(rng) - 1);
    if (kind < qc.storage_frac) {
      req.kind = QueryKind::kGetStorageAt;
      int rank = static_cast<int>(contract_zipf(rng) - 1);
      bool is_token = false;
      int index = 0;
      req.account = pick_contract(rank, &is_token, &index);
      if (is_token) {
        // Hot-user balance slot or total supply, like a token dashboard.
        req.slot = (rng() % 4 == 0) ? U256(kErc20TotalSupplySlot)
                                    : Erc20BalanceSlot(UserAddress(user));
      } else if (rank < config_.pools) {
        req.slot = U256(rng() % 2 == 0 ? kAmmReserve0Slot : kAmmReserve1Slot);
      } else {
        req.slot = U256(kCrowdfundTotalSlot);
      }
    } else if (kind < qc.storage_frac + qc.call_frac) {
      // eth_call traffic goes to the ERC-20s (the only read-only selectors
      // the workload contracts expose); token choice inherits the contract
      // ranking's skew.
      req.kind = QueryKind::kCall;
      int rank = static_cast<int>(contract_zipf(rng) - 1);
      req.account = TokenAddress(rank % config_.tokens);
      req.caller = UserAddress(user);
      req.calldata = (rng() % 4 == 0) ? Erc20TotalSupplyCall()
                                      : Erc20BalanceOfCall(UserAddress(user));
    } else if (kind < qc.storage_frac + qc.call_frac + qc.nonce_frac) {
      req.kind = QueryKind::kGetNonce;
      req.account = UserAddress(user);
    } else if (kind < qc.storage_frac + qc.call_frac + qc.nonce_frac + qc.code_frac) {
      req.kind = QueryKind::kGetCode;
      int rank = static_cast<int>(contract_zipf(rng) - 1);
      bool is_token = false;
      int index = 0;
      req.account = pick_contract(rank, &is_token, &index);
    } else {
      req.kind = QueryKind::kGetBalance;
      req.account = UserAddress(user);
    }
    load.push_back(std::move(timed));
  }
  return load;
}

}  // namespace pevm
