// Synthetic mainnet-like workload generation, the substitute for the paper's
// Ethereum blocks 14,000,000-15,000,000 (DESIGN.md §3.1). Contention
// structure is calibrated to the paper's own hot-spot measurements (Fig. 3):
// Zipfian contract popularity (s = 1.1 reproduces "0.1% of contracts receive
// 76% of invocations" at mainnet scale), Zipfian account activity, a
// transaction mix dominated by ERC-20 traffic, plus AMM swaps on hot pools,
// crowdfund contributions, and native transfers.
#ifndef SRC_WORKLOAD_BLOCK_GEN_H_
#define SRC_WORKLOAD_BLOCK_GEN_H_

#include <random>
#include <unordered_map>
#include <vector>

#include "src/exec/types.h"
#include "src/query/query_engine.h"
#include "src/state/world_state.h"
#include "src/support/zipf.h"

namespace pevm {

struct WorkloadConfig {
  uint64_t seed = 42;
  int transactions_per_block = 200;

  // Population sizes.
  int tokens = 24;
  int pools = 6;
  int users = 2000;
  int funds = 2;

  // Skew (rank-1 items are the hottest). Paper Fig. 3 measures 0.1% of slots
  // receiving 62% of accesses; within a single block that concentration
  // shows up as a handful of very hot keys (whale balances, top DEX pool
  // reserves, crowdfund accumulators) touched by a large share of
  // transactions.
  double token_zipf_s = 1.25;
  double user_zipf_s = 1.2;
  // DEX traffic concentrates hard on the top pools (WETH/stable pairs).
  double pool_zipf_s = 2.0;
  // Skew of the *unified* contract ranking (tokens ∪ pools ∪ funds) used by
  // MakeHotContractBlock: s ≈ 1 reproduces the paper's hot-contract
  // concentration over the whole deployed set, the regime the code cache's
  // hit rate and tier-1 promotion are measured against.
  double contract_zipf_s = 1.0;

  // Transaction mix (fractions; remainder goes to native transfers).
  // DEX-era mainnet: swaps are a third of the gas, ERC-20 traffic most of
  // the rest.
  double erc20_transfer_frac = 0.36;
  double erc20_transfer_from_frac = 0.14;
  double amm_swap_frac = 0.30;
  double crowdfund_frac = 0.06;

  // Fraction of ERC-20 transfers whose amount exceeds the sender's balance
  // (they revert on-chain; exercises the constraint-guard abort path).
  double failing_tx_frac = 0.01;
};

// Read-only query load for the concurrent serving tier (DESIGN.md §4.7).
// Mirrors public-RPC traffic shape: balance polls dominated by active users,
// storage probes and eth_calls concentrated on the same Zipf-hot contracts
// the write workload hammers — so queries contend for exactly the snapshot
// versions the pipeline keeps publishing.
struct QueryWorkloadConfig {
  uint64_t seed = 7;
  // Kind mix (fractions; remainder goes to getBalance).
  double storage_frac = 0.30;  // getStorageAt on token/pool/fund slots.
  double call_frac = 0.25;     // eth_call: balanceOf / totalSupply.
  double nonce_frac = 0.10;    // getTransactionCount.
  double code_frac = 0.05;     // getCode on contracts.
  // Skew: which contract a storage probe / call targets, which user a
  // balance/nonce poll asks about (rank 1 hottest, like the write side).
  double contract_zipf_s = 1.0;
  double user_zipf_s = 1.2;
  // Arrival schedule. burst = 0 emits every offset at 0 (submit as fast as
  // backpressure allows). burst > 0 groups queries into bursts of that size,
  // `burst_gap_ns` apart — the bursty open-loop arrival the bench replays.
  int burst = 0;
  uint64_t burst_gap_ns = 0;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  // Builds the genesis world state: users funded with ether and tokens,
  // pools seeded with reserves and user approvals, contracts deployed.
  WorldState MakeGenesis() const;

  // Generates the next block (sender nonces advance across calls and must be
  // replayed in generation order against the genesis/evolving state).
  Block MakeBlock();

  // Figure 11 workload: a block of ERC-20 transferFrom transactions where
  // `conflict_ratio` of them drain the same owner account (all conflicting on
  // balances[A], paper §3.2) and the rest touch disjoint accounts.
  Block MakeErc20ConflictBlock(int transactions, double conflict_ratio);

  // Code-cache workload: every transaction targets a contract drawn from one
  // Zipfian ranking over the whole deployed set (tokens, then pools, then
  // funds, hottest-first by rank), with the call shape implied by the
  // contract's kind. With contract_zipf_s ≈ 1 a handful of code hashes absorb
  // most invocations — the distribution the per-code-hash analysis cache and
  // its promotion threshold are designed for.
  Block MakeHotContractBlock(int transactions);

  // Read-only query load over this workload's population (satellite of the
  // query tier): Zipf-skewed contract/user choice, kind mix per
  // QueryWorkloadConfig, arrival offsets per its burst schedule. const —
  // query generation must not perturb the transaction stream's RNG, so
  // interleaving MakeBlock and MakeQueryLoad calls changes nothing.
  std::vector<TimedQuery> MakeQueryLoad(int n, const QueryWorkloadConfig& config) const;

  const WorkloadConfig& config() const { return config_; }

  // Adjusts mix fractions / skew between blocks (Figure 9's block-to-block
  // diversity). Population sizes must not change — they are baked into the
  // genesis.
  void SetMix(double erc20, double erc20_from, double amm, double crowdfund, double failing) {
    config_.erc20_transfer_frac = erc20;
    config_.erc20_transfer_from_frac = erc20_from;
    config_.amm_swap_frac = amm;
    config_.crowdfund_frac = crowdfund;
    config_.failing_tx_frac = failing;
  }
  void SetTransactionsPerBlock(int n) { config_.transactions_per_block = n; }

  // Addresses (deterministic, derived from indices).
  Address TokenAddress(int i) const;
  Address PoolAddress(int i) const;
  Address FundAddress(int i) const;
  Address UserAddress(int i) const;

 private:
  Transaction MakeNativeTransfer(int from_user, int to_user);
  Transaction MakeErc20Transfer(int token, int from_user, int to_user, bool failing);
  Transaction MakeErc20TransferFrom(int token, int owner, int spender, int to_user);
  Transaction MakeAmmSwap(int pool, int user);
  Transaction MakeContribute(int fund, int user);

  uint64_t NextNonce(const Address& sender);
  int SampleUser();
  int SampleToken();

  WorkloadConfig config_;
  std::mt19937_64 rng_;
  ZipfDistribution token_zipf_;
  ZipfDistribution user_zipf_;
  ZipfDistribution pool_zipf_;
  ZipfDistribution contract_zipf_;
  std::unordered_map<Address, uint64_t> nonces_;
  uint64_t block_number_ = 14'000'000;
};

}  // namespace pevm

#endif  // SRC_WORKLOAD_BLOCK_GEN_H_
