// The pluggable durability boundary of the incremental committer
// (src/chain/commit.h): a NodeStore receives one block's worth of dirty trie
// nodes plus the flat-state mirror (account bodies, storage slots, code) and
// seals them with CommitBlock — the point at which the block becomes the
// chain's durable head.
//
// Two implementations:
//   - InMemoryNodeStore: hash maps, no I/O. The accounting oracle — byte and
//     node counts identical to the KV-backed store, durability-free.
//   - KvNodeStore: batches everything into one KvStore WriteBatch per block
//     and commits it atomically under a commit marker with a single group
//     fsync. Because the manifest entry (block count + per-block root) rides
//     in the same batch, a crash anywhere leaves the store describing exactly
//     the last fully durable block: RecoverChain rebuilds the committed
//     WorldState from the flat mirror and the committer re-seeds its trie
//     from that, so the recovered root is bit-identical to a from-scratch
//     replay of the committed prefix (locked in by tests/recovery_test.cc).
#ifndef SRC_CHAIN_NODE_STORE_H_
#define SRC_CHAIN_NODE_STORE_H_

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/state/world_state.h"
#include "src/support/keccak.h"

namespace pevm {

// What sealing one block cost (feeds ChainReport's durability stats).
struct NodeStoreCommitStats {
  uint64_t nodes_written = 0;
  uint64_t bytes_appended = 0;  // Framed log bytes (0 for the in-memory store).
  uint64_t fsyncs = 0;
  uint64_t sync_ns = 0;  // Wall time inside fdatasync.
};

struct Hash256Hash {
  size_t operator()(const Hash256& h) const { return Fnv1a(BytesView(h.data(), h.size())); }
};

class NodeStore {
 public:
  virtual ~NodeStore() = default;

  // Trie archive: one hash-referenced node encoding. Content-addressed, so a
  // node's record is immutable and re-writing it is a no-op — both stores skip
  // duplicates (identical subtrees recur constantly, e.g. N token contracts
  // seeded with the same balance table share every storage-trie node). The
  // skip is crash-safe: batch rollback is always a suffix drop, so any node a
  // surviving root references was durably committed no later than that root.
  virtual void PutNode(const Hash256& hash, BytesView encoding) = 0;
  virtual std::optional<Bytes> GetNode(const Hash256& hash) = 0;

  // Flat-state mirror (what recovery and the SimStore backing read).
  virtual void PutAccount(const Address& address, const U256& balance, uint64_t nonce) = 0;
  // A zero value deletes the slot record (absent = zero, as in state).
  virtual void PutStorage(const Address& address, const U256& slot, const U256& value) = 0;
  virtual void PutCode(const Address& address, BytesView code) = 0;

  // Seals the genesis image (block count 0). Everything Put since the
  // previous seal becomes durable atomically.
  virtual NodeStoreCommitStats CommitGenesis(const Hash256& root) = 0;

  // Seals a run of consecutive blocks [first_block_index, first + roots.size())
  // as ONE atomic batch: everything Put since the previous seal, the advanced
  // block count and every per-block manifest root land in a single WriteBatch
  // with a single group fsync. Per-block roots stay individually recorded, so
  // RecoverChain replays them exactly as with single-block commits — but a
  // crash between seals rolls back to the previous *batch* boundary (the
  // durability-lag contract, DESIGN.md §4.4).
  virtual NodeStoreCommitStats CommitBatch(uint64_t first_block_index,
                                           std::span<const Hash256> roots) = 0;

  // Single-block convenience: a batch of one.
  NodeStoreCommitStats CommitBlock(uint64_t block_index, const Hash256& root) {
    return CommitBatch(block_index, std::span<const Hash256>(&root, 1));
  }
};

// No-I/O reference implementation; also handy test introspection.
class InMemoryNodeStore final : public NodeStore {
 public:
  void PutNode(const Hash256& hash, BytesView encoding) override;
  std::optional<Bytes> GetNode(const Hash256& hash) override;
  void PutAccount(const Address& address, const U256& balance, uint64_t nonce) override;
  void PutStorage(const Address& address, const U256& slot, const U256& value) override;
  void PutCode(const Address& address, BytesView code) override;
  NodeStoreCommitStats CommitGenesis(const Hash256& root) override;
  NodeStoreCommitStats CommitBatch(uint64_t first_block_index,
                                   std::span<const Hash256> roots) override;

  size_t node_count() const { return nodes_.size(); }
  uint64_t total_node_bytes() const { return total_node_bytes_; }
  const std::vector<Hash256>& roots() const { return roots_; }

 private:
  NodeStoreCommitStats SealPending();

  std::unordered_map<Hash256, Bytes, Hash256Hash> nodes_;
  std::unordered_map<std::string, Bytes> flat_;
  std::vector<Hash256> roots_;
  uint64_t total_node_bytes_ = 0;
  uint64_t pending_nodes_ = 0;
  uint64_t pending_bytes_ = 0;
};

// Durable implementation on the embedded KV store. Not internally
// synchronized: exactly one thread (the chain runner's committer stage) may
// use it at a time, which also means one WriteBatch and one group fsync per
// CommitBatch — multi-block batching amortizes both across every block the
// batch seals.
class KvNodeStore final : public NodeStore {
 public:
  explicit KvNodeStore(KvStore& store) : store_(&store) {}

  void PutNode(const Hash256& hash, BytesView encoding) override;
  std::optional<Bytes> GetNode(const Hash256& hash) override;
  void PutAccount(const Address& address, const U256& balance, uint64_t nonce) override;
  void PutStorage(const Address& address, const U256& slot, const U256& value) override;
  void PutCode(const Address& address, BytesView code) override;
  NodeStoreCommitStats CommitGenesis(const Hash256& root) override;
  NodeStoreCommitStats CommitBatch(uint64_t first_block_index,
                                   std::span<const Hash256> roots) override;

  KvStore& store() { return *store_; }

 private:
  NodeStoreCommitStats Seal();

  KvStore* store_;
  WriteBatch pending_;
  // Node hashes already in the open batch — the in-flight half of the dedup
  // (KvStore::Contains covers everything sealed). Cleared at Seal so memory
  // stays bounded by one block's dirty set.
  std::unordered_set<Hash256, Hash256Hash> pending_node_hashes_;
  uint64_t pending_nodes_ = 0;
};

// The committed chain state a KV directory describes.
struct RecoveredChain {
  WorldState state;
  uint64_t blocks_committed = 0;  // Chain blocks after genesis; resume here.
  Hash256 root{};                 // Root of `state` per the manifest.
  std::vector<Hash256> roots;     // Per-block manifest roots, in block order.
};

// Rebuilds the committed WorldState from a recovered KvStore's flat mirror
// and manifest. Returns nullopt when the store holds no committed genesis
// (fresh or fully torn directory). The caller is expected to verify that the
// re-seeded trie's root matches `root` (ChainRunner does, and aborts on
// mismatch — a divergence would mean the flat mirror and the node archive
// disagree).
std::optional<RecoveredChain> RecoverChain(KvStore& store);

}  // namespace pevm

#endif  // SRC_CHAIN_NODE_STORE_H_
