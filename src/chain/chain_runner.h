// ChainRunner: streaming multi-block execution as a three-stage pipeline
// (the paper's full node loop, with the §6.2 commitment bottleneck taken off
// the critical path):
//
//   stage 1 (warm)   — while block N executes, warm block N+1's predicted
//                      access set into the executor's SimStore via the async
//                      PrefetchEngine (cross-*block* prefetch; the per-tx
//                      pipeline inside Execute is PR 2's).
//   stage 2 (exec)   — run block N through any Executor on the shared
//                      exec pipeline, journaling its write diff.
//   stage 3 (commit) — fold block N-1's diff into a persistent incremental
//                      MPT (IncrementalStateTrie) on a dedicated committer
//                      thread, so state-root computation overlaps execution.
//
// Stages are connected by bounded queues (bounded_queue.h): a slow committer
// back-pressures execution, a slow executor back-pressures warming and
// Submit. Determinism contract (DESIGN.md §3.2): the pipeline changes wall
// clock only. Roots, receipts and virtual makespans are bit-identical to
// executing the same blocks one at a time, at every queue depth, OS thread
// count and overlap setting, because (a) the committer replays each block's
// ordered diff exactly as WorldState applied it and (b) SimStore warming
// never carries values, so racing the warm stage against execution cannot
// change what any transaction reads.
#ifndef SRC_CHAIN_CHAIN_RUNNER_H_
#define SRC_CHAIN_CHAIN_RUNNER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/chain/bounded_queue.h"
#include "src/chain/commit.h"
#include "src/exec/executor.h"
#include "src/exec/pipeline.h"

namespace pevm {

// Every block executor the repo implements, runnable under the chain runner.
enum class ExecutorKind {
  kSerial,
  kTwoPhaseLocking,
  kOcc,
  kBlockStm,
  kParallelEvm,
};

std::string_view ExecutorKindName(ExecutorKind kind);
std::unique_ptr<Executor> MakeExecutor(ExecutorKind kind, const ExecOptions& options);

struct ChainOptions {
  ExecutorKind executor = ExecutorKind::kParallelEvm;
  // Per-block executor options. The runner forces external_warmup = true (it
  // owns the SimStore lifecycle; see ExecOptions).
  ExecOptions exec;
  // Capacity of each inter-stage queue: how many blocks a stage may run ahead
  // of the next before backpressure stalls it.
  size_t queue_depth = 4;
  // When false, the diff is committed inline on the execution thread after
  // each block (the serial-commitment baseline the overlapped pipeline is
  // measured against); stage 3's thread is not started.
  bool overlap_commit = true;
};

// Per-stage accounting. busy_ns counts time spent doing stage work (warming,
// executing, committing); wall_ns is the stage thread's lifetime, so
// busy_fraction() ~ 1 means the stage was the pipeline bottleneck. With
// overlap_commit = false the commit stage runs on the exec thread and its
// wall_ns mirrors the exec stage's.
struct StageStats {
  uint64_t busy_ns = 0;
  uint64_t wall_ns = 0;
  uint64_t blocks = 0;
  size_t max_queue_depth = 0;  // High-water mark of the stage's input queue.

  double busy_fraction() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(busy_ns) / static_cast<double>(wall_ns);
  }
};

struct ChainReport {
  StageStats warm;
  StageStats exec;
  StageStats commit;

  uint64_t blocks_submitted = 0;
  uint64_t blocks_executed = 0;
  uint64_t blocks_committed = 0;  // == roots.size(); a consistent prefix.
  uint64_t wall_ns = 0;           // First Submit to pipeline join.
  bool aborted = false;

  // State root after each committed block, in block order, plus the final
  // root (the seed root when nothing committed).
  std::vector<Hash256> roots;
  Hash256 final_root{};

  // Per-block executor reports, in block order, for executed blocks.
  std::vector<BlockReport> block_reports;

  double blocks_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(blocks_committed) * 1e9 /
                                    static_cast<double>(wall_ns);
  }
};

class ChainRunner {
 public:
  // Copies `genesis` as the chain's committed state and seeds the incremental
  // trie from it (the one O(state) build in the stream's lifetime). Pipeline
  // threads start immediately and idle on their queues.
  ChainRunner(const ChainOptions& options, const WorldState& genesis);

  // Aborts the stream if neither Finish nor Abort was called.
  ~ChainRunner();

  ChainRunner(const ChainRunner&) = delete;
  ChainRunner& operator=(const ChainRunner&) = delete;

  // Enqueues one block. Blocks the caller while the pipeline is saturated
  // (backpressure). Returns false — dropping the block — after Finish/Abort.
  bool Submit(Block block);

  // Closes the stream, drains every stage, joins the pipeline and returns the
  // final report. Idempotent (subsequent calls return the same report).
  ChainReport Finish();

  // Drops every queued block/diff, lets in-flight stage work finish, joins
  // and reports. The committed prefix stays consistent: roots holds exactly
  // the blocks whose diffs were fully applied, in block order.
  ChainReport Abort();

  // The chain's committed state (stable only after Finish/Abort).
  const WorldState& state() const { return state_; }

 private:
  void WarmLoop();
  void ExecLoop();
  void CommitLoop();
  void CommitOne(const StateDiff& diff);
  void JoinAll();
  ChainReport BuildReport(bool aborted);

  ChainOptions options_;
  std::unique_ptr<Executor> executor_;
  SimStore* store_ = nullptr;  // Owned by executor_; null without storage sim.

  WorldState state_;
  IncrementalStateTrie trie_;
  Hash256 seed_root_{};

  std::unique_ptr<BoundedQueue<Block>> input_;     // Submit -> warm.
  std::unique_ptr<BoundedQueue<Block>> ready_;     // warm -> exec.
  std::unique_ptr<BoundedQueue<StateDiff>> diffs_; // exec -> commit.

  std::thread warm_thread_;
  std::thread exec_thread_;
  std::thread commit_thread_;  // Only started when overlap_commit.

  // Each stage's stats are written by that stage's thread only and read after
  // the join; roots_/block_reports_ likewise.
  StageStats warm_stats_;
  StageStats exec_stats_;
  StageStats commit_stats_;
  std::vector<Hash256> roots_;
  std::vector<BlockReport> block_reports_;

  // Submit may race Finish/Abort (a producer thread aborted mid-stream), so
  // the shared flags are atomic; the queues provide the actual cutoff.
  std::atomic<uint64_t> blocks_submitted_{0};
  std::atomic<bool> finished_{false};
  WallTimer run_timer_;  // Reset at construction end, read after the join.
  uint64_t run_wall_ns_ = 0;
  std::optional<ChainReport> report_;
};

}  // namespace pevm

#endif  // SRC_CHAIN_CHAIN_RUNNER_H_
