// ChainRunner: streaming multi-block execution as a three-stage pipeline
// (the paper's full node loop, with the §6.2 commitment bottleneck taken off
// the critical path):
//
//   stage 1 (warm)   — while block N executes, warm block N+1's predicted
//                      access set into the executor's SimStore via the async
//                      PrefetchEngine (cross-*block* prefetch; the per-tx
//                      pipeline inside Execute is PR 2's).
//   stage 2 (exec)   — run block N through any Executor on the shared
//                      exec pipeline, journaling its write diff.
//   stage 3 (commit) — fold block N-1's diff into a persistent incremental
//                      MPT (IncrementalStateTrie) on a dedicated committer
//                      thread, so state-root computation overlaps execution.
//
// Stages are connected by bounded queues (bounded_queue.h): a slow committer
// back-pressures execution, a slow executor back-pressures warming and
// Submit. Determinism contract (DESIGN.md §3.2): the pipeline changes wall
// clock only. Roots, receipts and virtual makespans are bit-identical to
// executing the same blocks one at a time, at every queue depth, OS thread
// count and overlap setting, because (a) the committer replays each block's
// ordered diff exactly as WorldState applied it and (b) SimStore warming
// never carries values, so racing the warm stage against execution cannot
// change what any transaction reads.
#ifndef SRC_CHAIN_CHAIN_RUNNER_H_
#define SRC_CHAIN_CHAIN_RUNNER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "src/chain/bounded_queue.h"
#include "src/chain/commit.h"
#include "src/exec/executor.h"
#include "src/exec/pipeline.h"

namespace pevm {

// Every block executor the repo implements, runnable under the chain runner.
enum class ExecutorKind {
  kSerial,
  kTwoPhaseLocking,
  kOcc,
  kBlockStm,
  kParallelEvm,
};

std::string_view ExecutorKindName(ExecutorKind kind);
std::unique_ptr<Executor> MakeExecutor(ExecutorKind kind, const ExecOptions& options);

// Where stage 3 persists committed blocks. kNone keeps the pre-durability
// behaviour (trie only); kInMemory attaches the accounting NodeStore (same
// write stream, no I/O); kKv opens — or reopens — the embedded log-structured
// store at ChainOptions::kv_dir and makes every committed block durable.
enum class PersistMode {
  kNone,
  kInMemory,
  kKv,
};

struct ChainOptions {
  ExecutorKind executor = ExecutorKind::kParallelEvm;
  // Per-block executor options. The runner forces external_warmup = true (it
  // owns the SimStore lifecycle; see ExecOptions).
  ExecOptions exec;
  // Capacity of each inter-stage queue: how many blocks a stage may run ahead
  // of the next before backpressure stalls it.
  size_t queue_depth = 4;
  // When false, the diff is committed inline on the execution thread after
  // each block (the serial-commitment baseline the overlapped pipeline is
  // measured against); stage 3's thread is not started.
  bool overlap_commit = true;
  // Durability (see PersistMode). With kKv, a directory that already holds
  // committed blocks resumes: the runner rebuilds the committed WorldState
  // from the store, verifies its root against the durable manifest, and keeps
  // numbering blocks where the manifest left off — the `genesis` constructor
  // argument is ignored in that case. Determinism contract: persistence
  // changes wall clock only; roots/receipts/makespans stay bit-identical.
  PersistMode persist = PersistMode::kNone;
  std::string kv_dir;  // Store directory; required when persist == kKv.
  KvOptions kv;        // fsync / segment-size / compaction knobs.
  // Route the executor SimStore's cold reads through the KV store's flat
  // state records (real preads against the same file the committer writes)
  // instead of the simulated cold latency. Requires persist == kKv.
  bool kv_backed_sim_store = false;
  // Commit-stage knobs: shard-parallel re-rooting width and how many blocks
  // fold into one durable seal (see CommitOptions). Batching trades commit
  // durability lag for amortized fsyncs/WriteBatches; roots stay per-block
  // and bit-identical at every setting.
  CommitOptions commit;
};

// Per-stage accounting. busy_ns counts time spent doing stage work (warming,
// executing, committing); wall_ns is the stage thread's lifetime, so
// busy_fraction() ~ 1 means the stage was the pipeline bottleneck. With
// overlap_commit = false the commit stage runs on the exec thread and its
// wall_ns mirrors the exec stage's.
struct StageStats {
  uint64_t busy_ns = 0;
  uint64_t wall_ns = 0;
  uint64_t blocks = 0;
  size_t max_queue_depth = 0;  // High-water mark of the stage's input queue.

  double busy_fraction() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(busy_ns) / static_cast<double>(wall_ns);
  }
};

// What making one block durable cost (all-zero under PersistMode::kNone;
// bytes but no fsyncs under kInMemory). persist_ns ⊂ the commit stage's
// busy_ns; sync_ns ⊂ persist_ns.
struct BlockDurability {
  uint64_t apply_ns = 0;    // Diff replay + incremental re-root.
  uint64_t persist_ns = 0;  // Dirty-node harvest + store commit (incl. sync).
  uint64_t sync_ns = 0;     // Inside fdatasync.
  uint64_t nodes_written = 0;
  uint64_t bytes_appended = 0;  // Framed log bytes, commit marker included.
  uint64_t fsyncs = 0;
  // Honest per-block latency under batching: from the block's diff entering
  // the commit stage (or, inline, commit start) to its batch's seal
  // returning. With batch_blocks > 1, seal costs above land on the batch's
  // last block, but THIS field is still per-block — early batch members
  // accrue their real wait for the batch boundary.
  uint64_t queue_to_durable_ns = 0;
};

struct ChainReport {
  StageStats warm;
  StageStats exec;
  StageStats commit;

  uint64_t blocks_submitted = 0;
  uint64_t blocks_executed = 0;
  uint64_t blocks_committed = 0;  // == roots.size(); a consistent prefix.
  uint64_t blocks_resumed = 0;    // Durable blocks recovered at construction.
  uint64_t commit_batches = 0;    // Durable seals this run (== blocks at batch 1).
  uint64_t wall_ns = 0;           // First Submit to pipeline join.
  bool aborted = false;

  // Per committed block (this run only, index-aligned with roots), plus the
  // run's totals including the genesis seal.
  std::vector<BlockDurability> durability;
  uint64_t kv_bytes_appended = 0;
  uint64_t kv_fsyncs = 0;
  uint64_t kv_sync_ns = 0;

  // State root after each committed block, in block order, plus the final
  // root (the seed root when nothing committed).
  std::vector<Hash256> roots;
  Hash256 final_root{};

  // Per-block executor reports, in block order, for executed blocks.
  std::vector<BlockReport> block_reports;

  double blocks_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(blocks_committed) * 1e9 /
                                    static_cast<double>(wall_ns);
  }
};

class ChainRunner {
 public:
  // Copies `genesis` as the chain's committed state and seeds the incremental
  // trie from it (the one O(state) build in the stream's lifetime). Pipeline
  // threads start immediately and idle on their queues.
  ChainRunner(const ChainOptions& options, const WorldState& genesis);

  // Aborts the stream if neither Finish nor Abort was called.
  ~ChainRunner();

  ChainRunner(const ChainRunner&) = delete;
  ChainRunner& operator=(const ChainRunner&) = delete;

  // Enqueues one block. Blocks the caller while the pipeline is saturated
  // (backpressure). Returns false — dropping the block — after Finish/Abort.
  bool Submit(Block block);

  // Closes the stream, drains every stage, joins the pipeline and returns the
  // final report. Idempotent (subsequent calls return the same report).
  ChainReport Finish();

  // Drops every queued block/diff, lets in-flight stage work finish, joins
  // and reports. The committed prefix stays consistent: roots holds exactly
  // the blocks whose diffs were fully applied, in block order.
  ChainReport Abort();

  // The chain's committed state (stable only after Finish/Abort).
  const WorldState& state() const { return state_; }

  // Blocks found already durable when the KV directory was reopened (0 on a
  // fresh directory or without persistence). New blocks number from here.
  uint64_t recovered_blocks() const { return recovered_blocks_; }

  // The backing store (null unless persist == kKv). Test introspection and
  // explicit SyncNow; the runner itself owns the lifecycle.
  KvStore* kv_store() { return kv_store_.get(); }

 private:
  // A block's diff plus the monotonic instant it left the exec stage — the
  // anchor for the honest enqueue→durable latency under batching.
  struct PendingCommit {
    StateDiff diff;
    uint64_t enqueue_ns = 0;
  };

  void WarmLoop();
  void ExecLoop();
  void CommitLoop();
  void CommitOne(PendingCommit pending);
  // Seals every applied-but-unsealed block as one NodeStore batch and stamps
  // each one's queue_to_durable_ns. No-op on an empty batch; called at the
  // batch boundary and on commit-stage drain (Finish AND Abort, so the
  // durable manifest never lags the applied prefix in-process).
  void FlushBatch();
  void JoinAll();
  ChainReport BuildReport(bool aborted);

  ChainOptions options_;
  // Durability stack. kv_store_ precedes executor_ deliberately: the
  // executor's SimStore may hold a backing pointer into it, so the store must
  // be destroyed last.
  std::unique_ptr<KvStore> kv_store_;
  std::unique_ptr<NodeStore> node_store_;
  std::unique_ptr<Executor> executor_;
  SimStore* store_ = nullptr;  // Owned by executor_; null without storage sim.

  WorldState state_;
  // Engaged in the constructor (after recovery decides the seed); never reset.
  std::optional<IncrementalStateTrie> trie_;
  Hash256 seed_root_{};
  uint64_t recovered_blocks_ = 0;
  NodeStoreCommitStats genesis_durability_;

  std::unique_ptr<BoundedQueue<Block>> input_;         // Submit -> warm.
  std::unique_ptr<BoundedQueue<Block>> ready_;         // warm -> exec.
  std::unique_ptr<BoundedQueue<PendingCommit>> diffs_; // exec -> commit.

  std::thread warm_thread_;
  std::thread exec_thread_;
  std::thread commit_thread_;  // Only started when overlap_commit.

  // Each stage's stats are written by that stage's thread only and read after
  // the join; roots_/block_reports_ likewise.
  StageStats warm_stats_;
  StageStats exec_stats_;
  StageStats commit_stats_;
  std::vector<Hash256> roots_;
  std::vector<BlockReport> block_reports_;
  std::vector<BlockDurability> durability_;
  // Enqueue instants of applied-but-unsealed blocks (the open batch); always
  // the tail of roots_/durability_. Committer-thread-only state.
  std::vector<uint64_t> batch_enqueue_ns_;
  uint64_t commit_batches_ = 0;

  // Submit may race Finish/Abort (a producer thread aborted mid-stream), so
  // the shared flags are atomic; the queues provide the actual cutoff.
  std::atomic<uint64_t> blocks_submitted_{0};
  std::atomic<bool> finished_{false};
  WallTimer run_timer_;  // Reset at construction end, read after the join.
  uint64_t run_wall_ns_ = 0;
  std::optional<ChainReport> report_;
};

}  // namespace pevm

#endif  // SRC_CHAIN_CHAIN_RUNNER_H_
