// ChainRunner: streaming multi-block execution as a three-stage pipeline
// (the paper's full node loop, with the §6.2 commitment bottleneck taken off
// the critical path):
//
//   stage 1 (warm)   — while block N executes, warm block N+1's predicted
//                      access set into the executor's SimStore via the async
//                      PrefetchEngine (cross-*block* prefetch; the per-tx
//                      pipeline inside Execute is PR 2's).
//   stage 2 (exec)   — run block N through any Executor on the shared
//                      exec pipeline, journaling its write diff.
//   stage 3 (commit) — fold block N-1's diff into a persistent incremental
//                      MPT (IncrementalStateTrie) on a dedicated committer
//                      thread, so state-root computation overlaps execution.
//
// Stages are connected by bounded queues (bounded_queue.h): a slow committer
// back-pressures execution, a slow executor back-pressures warming and
// Submit. Determinism contract (DESIGN.md §3.2): the pipeline changes wall
// clock only. Roots, receipts and virtual makespans are bit-identical to
// executing the same blocks one at a time, at every queue depth, OS thread
// count and overlap setting, because (a) the committer replays each block's
// ordered diff exactly as WorldState applied it and (b) SimStore warming
// never carries values, so racing the warm stage against execution cannot
// change what any transaction reads.
#ifndef SRC_CHAIN_CHAIN_RUNNER_H_
#define SRC_CHAIN_CHAIN_RUNNER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/chain/bounded_queue.h"
#include "src/chain/commit.h"
#include "src/exec/boundary.h"
#include "src/exec/executor.h"
#include "src/exec/pipeline.h"
#include "src/exec/thread_pool.h"
#include "src/ops/flight_recorder.h"
#include "src/ops/ops_server.h"
#include "src/query/snapshot.h"
#include "src/state/spec_overlay.h"

namespace pevm {

// Every block executor the repo implements, runnable under the chain runner.
enum class ExecutorKind {
  kSerial,
  kTwoPhaseLocking,
  kOcc,
  kBlockStm,
  kParallelEvm,
};

std::string_view ExecutorKindName(ExecutorKind kind);
std::unique_ptr<Executor> MakeExecutor(ExecutorKind kind, const ExecOptions& options);

// Where stage 3 persists committed blocks. kNone keeps the pre-durability
// behaviour (trie only); kInMemory attaches the accounting NodeStore (same
// write stream, no I/O); kKv opens — or reopens — the embedded log-structured
// store at ChainOptions::kv_dir and makes every committed block durable.
enum class PersistMode {
  kNone,
  kInMemory,
  kKv,
};

struct ChainOptions {
  ExecutorKind executor = ExecutorKind::kParallelEvm;
  // Per-block executor options. The runner forces external_warmup = true (it
  // owns the SimStore lifecycle; see ExecOptions).
  ExecOptions exec;
  // Capacity of each inter-stage queue: how many blocks a stage may run ahead
  // of the next before backpressure stalls it.
  size_t queue_depth = 4;
  // When false, the diff is committed inline on the execution thread after
  // each block (the serial-commitment baseline the overlapped pipeline is
  // measured against); stage 3's thread is not started.
  bool overlap_commit = true;
  // Durability (see PersistMode). With kKv, a directory that already holds
  // committed blocks resumes: the runner rebuilds the committed WorldState
  // from the store, verifies its root against the durable manifest, and keeps
  // numbering blocks where the manifest left off — the `genesis` constructor
  // argument is ignored in that case. Determinism contract: persistence
  // changes wall clock only; roots/receipts/makespans stay bit-identical.
  PersistMode persist = PersistMode::kNone;
  std::string kv_dir;  // Store directory; required when persist == kKv.
  KvOptions kv;        // fsync / segment-size / compaction knobs.
  // Route the executor SimStore's cold reads through the KV store's flat
  // state records (real preads against the same file the committer writes)
  // instead of the simulated cold latency. Requires persist == kKv.
  bool kv_backed_sim_store = false;
  // Commit-stage knobs: shard-parallel re-rooting width and how many blocks
  // fold into one durable seal (see CommitOptions). Batching trades commit
  // durability lag for amortized fsyncs/WriteBatches; roots stay per-block
  // and bit-identical at every setting.
  CommitOptions commit;
  // Cross-block speculative execution (DESIGN.md §4.5): while block N
  // executes, a fourth pipeline stage runs block N+1's read phase against an
  // overlay of N's uncommitted writes; at the block boundary every
  // speculative record is validated against the committed state and either
  // reused, redo-repaired, or dropped. Determinism contract: speculation
  // changes wall clock only — roots, receipts, virtual makespans and every
  // deterministic BlockReport field are bit-identical to speculate = false.
  // Ignored (stage not started) for executors whose seed_mode() is kSkip.
  bool speculate = false;

  // Width of the speculation stage's read pool. The stage is latency-bound —
  // its threads mostly sit in simulated-storage waits, and its results are
  // boundary-validated anyway — so like prefetch workers it defaults wider
  // than the execution width instead of inheriting exec.os_threads. 0 means
  // max(16, resolved exec width). Wall-clock only, like everything here.
  int spec_threads = 0;

  // Concurrent read-only query tier (DESIGN.md §4.7). When enabled the
  // runner owns a SnapshotRegistry: the seed root is published at
  // construction and stage 3 publishes every committed (block, root, diff)
  // triple, keeping the last `query_retain` roots acquirable; eviction of
  // anything a live handle can still reach is deferred by the registry's
  // refcounts. Serving threads (a QueryEngine over snapshots()) read the
  // registry only — the tier is wall-clock-only: roots, receipts and every
  // deterministic BlockReport field are bit-identical with it on or off, at
  // any serving thread count.
  bool query_tier = false;
  size_t query_retain = 8;

  // Live ops plane (DESIGN.md §4.8): the embedded admin HTTP endpoint
  // (/metrics, /healthz, /debug/blocks, /debug/trace) and the stall
  // watchdog, both read-only over pipeline state. ops_server.port < 0 and
  // ops_server.watchdog == false (the defaults) start neither; the per-block
  // flight recorder runs regardless — it is part of the runner, always on,
  // and inert: roots and every deterministic BlockReport field are
  // bit-identical with the plane off, idle, or hammered (tests/ops_test.cc).
  ops::OpsServerOptions ops_server;
};

// Per-stage accounting. busy_ns counts time spent doing stage work (warming,
// executing, committing); wall_ns is the stage thread's lifetime, so
// busy_fraction() ~ 1 means the stage was the pipeline bottleneck. With
// overlap_commit = false the commit stage runs on the exec thread and its
// wall_ns mirrors the exec stage's.
struct StageStats {
  uint64_t busy_ns = 0;
  uint64_t wall_ns = 0;
  uint64_t blocks = 0;
  size_t max_queue_depth = 0;  // High-water mark of the stage's input queue.

  double busy_fraction() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(busy_ns) / static_cast<double>(wall_ns);
  }
};

// What making one block durable cost (all-zero under PersistMode::kNone;
// bytes but no fsyncs under kInMemory). persist_ns ⊂ the commit stage's
// busy_ns; sync_ns ⊂ persist_ns.
struct BlockDurability {
  uint64_t apply_ns = 0;    // Diff replay + incremental re-root.
  uint64_t persist_ns = 0;  // Dirty-node harvest + store commit (incl. sync).
  uint64_t sync_ns = 0;     // Inside fdatasync.
  uint64_t nodes_written = 0;
  uint64_t bytes_appended = 0;  // Framed log bytes, commit marker included.
  uint64_t fsyncs = 0;
  // Honest per-block latency under batching: from the block's diff entering
  // the commit stage (or, inline, commit start) to its batch's seal
  // returning. With batch_blocks > 1, seal costs above land on the batch's
  // last block, but THIS field is still per-block — early batch members
  // accrue their real wait for the batch boundary.
  uint64_t queue_to_durable_ns = 0;
};

// Cross-block speculation outcome totals. Everything here is wall-clock
// class: which transactions launch early (vs are held or arrive after the
// boundary) depends on thread timing, so these counters may vary run to run
// — unlike the deterministic BlockReport fields, which speculation cannot
// change at all.
struct SpecStats {
  uint64_t blocks_speculated = 0;  // Blocks that went through the spec stage.
  uint64_t txs_launched = 0;       // Speculated against the overlay.
  uint64_t txs_held = 0;           // Kept back by the hot-key gate.
  uint64_t seeds_clean = 0;        // Reused verbatim at the boundary.
  uint64_t seeds_redo_repaired = 0;
  uint64_t seeds_dropped = 0;
  uint64_t stale_reads = 0;        // Stale read-set entries across boundaries.
  uint64_t boundary_validate_wall_ns = 0;
};

struct ChainReport {
  StageStats warm;
  StageStats spec;  // All-zero unless ChainOptions::speculate engaged.
  StageStats exec;
  StageStats commit;
  SpecStats speculation;
  // Registry accounting (all-zero unless ChainOptions::query_tier). Publish/
  // retire/fold counts are deterministic per stream; acquires/pins/deferred
  // evictions depend on serving-thread timing (wall-clock class).
  SnapshotStats query_snapshots;

  uint64_t blocks_submitted = 0;
  uint64_t blocks_executed = 0;
  uint64_t blocks_committed = 0;  // == roots.size(); a consistent prefix.
  uint64_t blocks_resumed = 0;    // Durable blocks recovered at construction.
  uint64_t commit_batches = 0;    // Durable seals this run (== blocks at batch 1).
  uint64_t wall_ns = 0;           // First Submit to pipeline join.
  bool aborted = false;

  // Per committed block (this run only, index-aligned with roots), plus the
  // run's totals including the genesis seal.
  std::vector<BlockDurability> durability;
  uint64_t kv_bytes_appended = 0;
  uint64_t kv_fsyncs = 0;
  uint64_t kv_sync_ns = 0;

  // State root after each committed block, in block order, plus the final
  // root (the seed root when nothing committed).
  std::vector<Hash256> roots;
  Hash256 final_root{};

  // Per-block executor reports, in block order, for executed blocks.
  std::vector<BlockReport> block_reports;

  double blocks_per_sec() const {
    return wall_ns == 0 ? 0.0 : static_cast<double>(blocks_committed) * 1e9 /
                                    static_cast<double>(wall_ns);
  }
};

class ChainRunner {
 public:
  // Copies `genesis` as the chain's committed state and seeds the incremental
  // trie from it (the one O(state) build in the stream's lifetime). Pipeline
  // threads start immediately and idle on their queues.
  ChainRunner(const ChainOptions& options, const WorldState& genesis);

  // Aborts the stream if neither Finish nor Abort was called.
  ~ChainRunner();

  ChainRunner(const ChainRunner&) = delete;
  ChainRunner& operator=(const ChainRunner&) = delete;

  // Enqueues one block. Blocks the caller while the pipeline is saturated
  // (backpressure). Returns false — dropping the block — after Finish/Abort.
  bool Submit(Block block);

  // Closes the stream, drains every stage, joins the pipeline and returns the
  // final report. Idempotent (subsequent calls return the same report).
  ChainReport Finish();

  // Drops every queued block/diff, lets in-flight stage work finish, joins
  // and reports. The committed prefix stays consistent: roots holds exactly
  // the blocks whose diffs were fully applied, in block order.
  ChainReport Abort();

  // The chain's committed state (stable only after Finish/Abort).
  const WorldState& state() const { return state_; }

  // Blocks found already durable when the KV directory was reopened (0 on a
  // fresh directory or without persistence). New blocks number from here.
  uint64_t recovered_blocks() const { return recovered_blocks_; }

  // The backing store (null unless persist == kKv). Test introspection and
  // explicit SyncNow; the runner itself owns the lifecycle.
  KvStore* kv_store() { return kv_store_.get(); }

  // The query tier's snapshot registry (null unless query_tier). Safe to read
  // from any number of serving threads while the pipeline runs; the single
  // publisher is stage 3.
  SnapshotRegistry* snapshots() { return snapshots_.get(); }

  // The always-on per-block flight recorder (ring capacity from
  // ChainOptions::ops_server.flight_recorder_blocks). Safe to snapshot from
  // any thread while the pipeline runs.
  const ops::FlightRecorder& flight_recorder() const { return flight_; }

  // The ops plane (null unless ops_server.enabled()). Live while the runner
  // lives; the destructor stops it before tearing the pipeline down. Attach
  // a QueryEngine here to surface serving stats in /healthz.
  ops::OpsServer* ops_server() { return ops_.get(); }

  // Per-stage progress sample for the watchdog and /healthz: relaxed counter
  // reads plus queue depths, never a pipeline lock. Callable from any thread.
  ops::PipelineProgress Progress() const;

 private:
  // What the warm stage hands downstream: the block plus the anatomy scalars
  // only the warm stage knows (its busy time and the hand-off instant the
  // ready-queue wait is measured from).
  struct WarmedBlock {
    Block block;
    uint64_t warm_busy_ns = 0;
    uint64_t warmed_ns = 0;  // telemetry::NowNs() at hand-off.
  };

  // A block's diff plus the monotonic instant it left the exec stage — the
  // anchor for the honest enqueue→durable latency under batching — and the
  // anatomy assembled so far (stage 3 finalizes and records it).
  struct PendingCommit {
    StateDiff diff;
    uint64_t enqueue_ns = 0;
    ops::BlockAnatomy anatomy;
  };

  // What the speculation stage hands the exec stage: the block plus (when the
  // stage ran on it) its overlay speculation records awaiting boundary
  // validation, carrying the upstream anatomy scalars through.
  struct SpecItem {
    Block block;
    std::optional<SpeculativeBlock> spec;
    uint64_t warm_busy_ns = 0;
    uint64_t warmed_ns = 0;
    uint64_t spec_busy_ns = 0;
  };

  // Launch/hold filter for the speculation stage: a transaction predicted to
  // touch a key whose recent conflicts needed full re-execution fallback is
  // held back (its early record would just be dropped at the boundary);
  // redo-repairable hot keys stay launchable — repairing them cheaply at the
  // boundary is the point of the operation-level redo machinery. Rebuilt from
  // each block's conflict_keys histogram by the exec thread, queried by the
  // spec thread; wall-clock-only by construction (held transactions merely
  // speculate in-block as usual).
  class HotKeyGate {
   public:
    // `keys` is the block's in-block conflict histogram; `boundary_dropped`
    // the keys whose staleness just made the boundary drop a record — the
    // cross-block flavor of a fallback, fed back for the same reason.
    void Update(const std::vector<ConflictKeyStats>& keys,
                const std::vector<StateKey>& boundary_dropped) {
      std::lock_guard<std::mutex> lock(mu_);
      hot_.clear();
      for (const ConflictKeyStats& stats : keys) {
        if (stats.fallback > 0) {
          hot_.insert(stats.key);
        }
      }
      for (const StateKey& key : boundary_dropped) {
        hot_.insert(key);
      }
    }

    bool ShouldHold(std::span<const StateKey> predicted) const {
      std::lock_guard<std::mutex> lock(mu_);
      if (hot_.empty()) {
        return false;
      }
      for (const StateKey& key : predicted) {
        if (hot_.contains(key)) {
          return true;
        }
      }
      return false;
    }

   private:
    mutable std::mutex mu_;
    std::unordered_set<StateKey, StateKeyHash> hot_;
  };

  void WarmLoop();
  void SpecLoop();
  void ExecLoop();
  void CommitLoop();
  void CommitOne(PendingCommit pending);
  // Seals every applied-but-unsealed block as one NodeStore batch and stamps
  // each one's queue_to_durable_ns. No-op on an empty batch; called at the
  // batch boundary and on commit-stage drain (Finish AND Abort, so the
  // durable manifest never lags the applied prefix in-process).
  void FlushBatch();
  void JoinAll();
  ChainReport BuildReport(bool aborted);

  ChainOptions options_;
  // Durability stack. kv_store_ precedes executor_ deliberately: the
  // executor's SimStore may hold a backing pointer into it, so the store must
  // be destroyed last.
  std::unique_ptr<KvStore> kv_store_;
  std::unique_ptr<NodeStore> node_store_;
  std::unique_ptr<Executor> executor_;
  SimStore* store_ = nullptr;  // Owned by executor_; null without storage sim.

  WorldState state_;
  // Engaged in the constructor (after recovery decides the seed); never reset.
  std::optional<IncrementalStateTrie> trie_;
  Hash256 seed_root_{};
  uint64_t recovered_blocks_ = 0;
  NodeStoreCommitStats genesis_durability_;

  // Root-pinned snapshot registry for the read-only query tier (null unless
  // options_.query_tier). Created in the constructor — after recovery fixes
  // the seed root, before any pipeline thread starts — and published to only
  // by CommitOne (commit thread when overlapped, exec thread inline), so the
  // registry's single-publisher contract holds either way.
  std::unique_ptr<SnapshotRegistry> snapshots_;

  std::unique_ptr<BoundedQueue<Block>> input_;         // Submit -> warm.
  std::unique_ptr<BoundedQueue<WarmedBlock>> ready_;   // warm -> spec/exec.
  std::unique_ptr<BoundedQueue<SpecItem>> specced_;    // spec -> exec (speculate only).
  std::unique_ptr<BoundedQueue<PendingCommit>> diffs_; // exec -> commit.

  // Cross-block speculation plumbing, engaged only when spec_enabled_.
  // overlay_ observes every state_ write; spec_base_ is the frozen committed
  // state captured before the observer attached; spec_pool_ is the stage's
  // own worker pool (the PoolFor singletons are not reentrant and the exec
  // thread's read phase uses them concurrently).
  bool spec_enabled_ = false;
  SpecOverlay overlay_;
  std::optional<WorldState> spec_base_;
  std::unique_ptr<ThreadPool> spec_pool_;
  HotKeyGate gate_;

  std::thread warm_thread_;
  std::thread spec_thread_;  // Only started when spec_enabled_.
  std::thread exec_thread_;
  std::thread commit_thread_;  // Only started when overlap_commit.

  // Each stage's stats are written by that stage's thread only and read after
  // the join; roots_/block_reports_ likewise. spec_totals_ is exec-thread
  // state: launched/held counts travel inside the SpecItem, boundary outcomes
  // are produced on the exec thread.
  StageStats warm_stats_;
  StageStats spec_stats_;
  StageStats exec_stats_;
  StageStats commit_stats_;
  SpecStats spec_totals_;
  std::vector<Hash256> roots_;
  std::vector<BlockReport> block_reports_;
  std::vector<BlockDurability> durability_;
  // Enqueue instants of applied-but-unsealed blocks (the open batch); always
  // the tail of roots_/durability_. Committer-thread-only state.
  std::vector<uint64_t> batch_enqueue_ns_;
  uint64_t commit_batches_ = 0;

  // Ops plane. flight_ is always on (its Record sits on the commit path but
  // is one struct copy under an uncontended mutex); progress counters are
  // relaxed atomics bumped at stage entry/exit so the watchdog and /healthz
  // can sample without touching any pipeline lock. ops_ is declared after
  // the queues so it is destroyed (and its threads joined) before the queues
  // its Progress closure reads — the destructor additionally stops it first.
  ops::FlightRecorder flight_;
  std::atomic<uint64_t> warm_in_{0}, warm_out_{0};
  std::atomic<uint64_t> spec_in_{0}, spec_out_{0};
  std::atomic<uint64_t> exec_in_{0}, exec_out_{0};
  std::atomic<uint64_t> commit_in_{0}, commit_out_{0};
  std::atomic<uint64_t> blocks_committed_{0};
  std::atomic<bool> pipeline_running_{true};
  std::unique_ptr<ops::OpsServer> ops_;

  // Submit may race Finish/Abort (a producer thread aborted mid-stream), so
  // the shared flags are atomic; the queues provide the actual cutoff.
  std::atomic<uint64_t> blocks_submitted_{0};
  std::atomic<bool> finished_{false};
  WallTimer run_timer_;  // Reset at construction end, read after the join.
  uint64_t run_wall_ns_ = 0;
  std::optional<ChainReport> report_;
};

}  // namespace pevm

#endif  // SRC_CHAIN_CHAIN_RUNNER_H_
