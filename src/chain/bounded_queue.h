// A small bounded MPMC queue with blocking push/pop, used as the backpressure
// channel between the chain runner's pipeline stages (src/chain/chain_runner.h).
// Capacity bounds how far a producer stage may run ahead of its consumer: a
// full queue blocks the producer, so an overloaded committer stalls execution
// instead of letting diffs pile up without bound.
//
// Shutdown has two flavors, matching the runner's:
//  - Close(): no more pushes; pops drain whatever is queued, then return empty.
//  - Abort(): drop everything queued *and* close — consumers finish only the
//    item they already popped, which is what keeps the committed prefix
//    consistent on abort.
#ifndef SRC_CHAIN_BOUNDED_QUEUE_H_
#define SRC_CHAIN_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pevm {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  // Blocks while the queue is full. Returns false (dropping `item`) once the
  // queue is closed or aborted.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    if (items_.size() > max_depth_) {
      max_depth_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty and open. Returns nullopt only when the
  // queue is closed and fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  // No more pushes; queued items remain poppable.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Drops every queued item, then closes.
  void Abort() {
    std::lock_guard<std::mutex> lock(mu_);
    items_.clear();
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // High-water mark, sampled after each push.
  size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  size_t capacity_;
  size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace pevm

#endif  // SRC_CHAIN_BOUNDED_QUEUE_H_
