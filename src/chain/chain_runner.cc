#include "src/chain/chain_runner.h"

#include <utility>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"

namespace pevm {

std::string_view ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kTwoPhaseLocking:
      return "2pl";
    case ExecutorKind::kOcc:
      return "occ";
    case ExecutorKind::kBlockStm:
      return "block-stm";
    case ExecutorKind::kParallelEvm:
      return "parallelevm";
  }
  return "?";
}

std::unique_ptr<Executor> MakeExecutor(ExecutorKind kind, const ExecOptions& options) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return std::make_unique<SerialExecutor>(options);
    case ExecutorKind::kTwoPhaseLocking:
      return std::make_unique<TwoPhaseLockingExecutor>(options);
    case ExecutorKind::kOcc:
      return std::make_unique<OccExecutor>(options);
    case ExecutorKind::kBlockStm:
      return std::make_unique<BlockStmExecutor>(options);
    case ExecutorKind::kParallelEvm:
      return std::make_unique<ParallelEvmExecutor>(options);
  }
  return nullptr;
}

ChainRunner::ChainRunner(const ChainOptions& options, const WorldState& genesis)
    : options_(options), state_(genesis), trie_(genesis) {
  options_.exec.external_warmup = true;  // The runner owns the SimStore lifecycle.
  executor_ = MakeExecutor(options_.executor, options_.exec);
  store_ = executor_->chain_store();
  seed_root_ = trie_.Root();
  input_ = std::make_unique<BoundedQueue<Block>>(options_.queue_depth);
  ready_ = std::make_unique<BoundedQueue<Block>>(options_.queue_depth);
  diffs_ = std::make_unique<BoundedQueue<StateDiff>>(options_.queue_depth);
  warm_thread_ = std::thread(&ChainRunner::WarmLoop, this);
  exec_thread_ = std::thread(&ChainRunner::ExecLoop, this);
  if (options_.overlap_commit) {
    commit_thread_ = std::thread(&ChainRunner::CommitLoop, this);
  }
  run_timer_ = WallTimer();  // Exclude trie seeding and thread spawn from wall_ns.
}

ChainRunner::~ChainRunner() {
  if (!finished_.load()) {
    Abort();
  }
}

bool ChainRunner::Submit(Block block) {
  if (finished_.load()) {
    return false;
  }
  if (!input_->Push(std::move(block))) {
    return false;
  }
  blocks_submitted_.fetch_add(1);
  return true;
}

ChainReport ChainRunner::Finish() {
  if (finished_.load()) {
    return *report_;
  }
  input_->Close();
  JoinAll();
  report_ = BuildReport(/*aborted=*/false);
  finished_.store(true);
  return *report_;
}

ChainReport ChainRunner::Abort() {
  if (finished_.load()) {
    return *report_;
  }
  // Drop everything queued; stages finish only the item they already hold, so
  // the committed prefix stays a prefix.
  input_->Abort();
  ready_->Abort();
  diffs_->Abort();
  JoinAll();
  report_ = BuildReport(/*aborted=*/true);
  finished_.store(true);
  return *report_;
}

void ChainRunner::WarmLoop() {
  WallTimer stage;
  while (std::optional<Block> block = input_->Pop()) {
    WallTimer busy;
    if (store_ && options_.exec.prefetch_depth > 0 && !block->transactions.empty()) {
      // Whole-block warm-up: depth >= request count means the driver never
      // waits for NotifyStarted, so Drain (join-without-abort) is safe.
      std::vector<PrefetchRequest> requests = BuildPrefetchRequests(*block);
      PrefetchEngine engine(*store_, std::move(requests),
                            static_cast<int>(block->transactions.size()));
      engine.Drain();
    }
    warm_stats_.busy_ns += busy.ElapsedNs();
    ++warm_stats_.blocks;
    if (!ready_->Push(std::move(*block))) {
      break;  // Aborted downstream.
    }
  }
  ready_->Close();
  warm_stats_.wall_ns = stage.ElapsedNs();
}

void ChainRunner::ExecLoop() {
  WallTimer stage;
  while (std::optional<Block> block = ready_->Pop()) {
    WallTimer busy;
    state_.BeginDiff();
    BlockReport report = executor_->Execute(*block, state_);
    StateDiff diff = state_.TakeDiff();
    exec_stats_.busy_ns += busy.ElapsedNs();
    ++exec_stats_.blocks;
    block_reports_.push_back(std::move(report));
    if (options_.overlap_commit) {
      if (!diffs_->Push(std::move(diff))) {
        break;  // Aborted downstream.
      }
    } else {
      CommitOne(diff);
    }
  }
  diffs_->Close();
  exec_stats_.wall_ns = stage.ElapsedNs();
  if (!options_.overlap_commit) {
    commit_stats_.wall_ns = exec_stats_.wall_ns;
  }
}

void ChainRunner::CommitLoop() {
  WallTimer stage;
  while (std::optional<StateDiff> diff = diffs_->Pop()) {
    CommitOne(*diff);
  }
  commit_stats_.wall_ns = stage.ElapsedNs();
}

void ChainRunner::CommitOne(const StateDiff& diff) {
  WallTimer busy;
  trie_.ApplyDiff(diff);
  roots_.push_back(trie_.Root());
  commit_stats_.busy_ns += busy.ElapsedNs();
  ++commit_stats_.blocks;
}

void ChainRunner::JoinAll() {
  if (warm_thread_.joinable()) {
    warm_thread_.join();
  }
  if (exec_thread_.joinable()) {
    exec_thread_.join();
  }
  if (commit_thread_.joinable()) {
    commit_thread_.join();
  }
  run_wall_ns_ = run_timer_.ElapsedNs();
}

ChainReport ChainRunner::BuildReport(bool aborted) {
  ChainReport report;
  report.warm = warm_stats_;
  report.exec = exec_stats_;
  report.commit = commit_stats_;
  report.warm.max_queue_depth = input_->max_depth();
  report.exec.max_queue_depth = ready_->max_depth();
  report.commit.max_queue_depth = diffs_->max_depth();
  report.blocks_submitted = blocks_submitted_.load();
  report.blocks_executed = exec_stats_.blocks;
  report.blocks_committed = roots_.size();
  report.wall_ns = run_wall_ns_;
  report.aborted = aborted;
  report.roots = roots_;
  report.final_root = roots_.empty() ? seed_root_ : roots_.back();
  report.block_reports = block_reports_;
  return report;
}

}  // namespace pevm
