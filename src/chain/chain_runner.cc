#include "src/chain/chain_runner.h"

#include "src/codecache/code_cache.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace pevm {

std::string_view ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kTwoPhaseLocking:
      return "2pl";
    case ExecutorKind::kOcc:
      return "occ";
    case ExecutorKind::kBlockStm:
      return "block-stm";
    case ExecutorKind::kParallelEvm:
      return "parallelevm";
  }
  return "?";
}

std::unique_ptr<Executor> MakeExecutor(ExecutorKind kind, const ExecOptions& options) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return std::make_unique<SerialExecutor>(options);
    case ExecutorKind::kTwoPhaseLocking:
      return std::make_unique<TwoPhaseLockingExecutor>(options);
    case ExecutorKind::kOcc:
      return std::make_unique<OccExecutor>(options);
    case ExecutorKind::kBlockStm:
      return std::make_unique<BlockStmExecutor>(options);
    case ExecutorKind::kParallelEvm:
      return std::make_unique<ParallelEvmExecutor>(options);
  }
  return nullptr;
}

namespace {

[[noreturn]] void FatalChain(const char* what, const std::string& detail) {
  std::fprintf(stderr, "chain_runner: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

ChainRunner::ChainRunner(const ChainOptions& options, const WorldState& genesis)
    : options_(options), state_(genesis), flight_(options.ops_server.flight_recorder_blocks) {
  options_.exec.external_warmup = true;  // The runner owns the SimStore lifecycle.
  switch (options_.persist) {
    case PersistMode::kNone:
      trie_.emplace(state_, nullptr, IncrementalStateTrie::SeedMode::kFresh, options_.commit);
      break;
    case PersistMode::kInMemory:
      node_store_ = std::make_unique<InMemoryNodeStore>();
      trie_.emplace(state_, node_store_.get(), IncrementalStateTrie::SeedMode::kFresh,
                    options_.commit);
      break;
    case PersistMode::kKv: {
      std::string error;
      kv_store_ = KvStore::Open(options_.kv_dir, options_.kv, &error);
      if (!kv_store_) {
        FatalChain("cannot open kv store", error);
      }
      node_store_ = std::make_unique<KvNodeStore>(*kv_store_);
      if (std::optional<RecoveredChain> recovered = RecoverChain(*kv_store_)) {
        // Resume: the durable manifest wins over the genesis argument. The
        // re-seeded trie's root cross-checks the flat mirror against the
        // manifest — a mismatch means the store is internally inconsistent,
        // which the commit-marker protocol is supposed to make impossible.
        state_ = std::move(recovered->state);
        recovered_blocks_ = recovered->blocks_committed;
        trie_.emplace(state_, node_store_.get(),
                      IncrementalStateTrie::SeedMode::kAlreadyDurable, options_.commit);
        if (trie_->Root() != recovered->root) {
          FatalChain("recovered state root mismatch", options_.kv_dir);
        }
      } else {
        trie_.emplace(state_, node_store_.get(), IncrementalStateTrie::SeedMode::kFresh,
                      options_.commit);
      }
      break;
    }
  }
  genesis_durability_ = trie_->genesis_stats();
  if (options_.kv_backed_sim_store) {
    if (!kv_store_) {
      FatalChain("kv_backed_sim_store requires persist == kKv", options_.kv_dir);
    }
    options_.exec.storage.backing = kv_store_.get();
  }
  executor_ = MakeExecutor(options_.executor, options_.exec);
  store_ = executor_->chain_store();
  seed_root_ = trie_->Root();
  if (options_.query_tier) {
    // Registry base = the committed (possibly recovered) state; the seed root
    // becomes the first acquirable snapshot. Built before any pipeline thread
    // starts so serving threads may attach immediately.
    snapshots_ = std::make_unique<SnapshotRegistry>(
        state_, seed_root_, recovered_blocks_, std::max<size_t>(1, options_.query_retain));
  }
  spec_enabled_ = options_.speculate && executor_->seed_mode() != SpecMode::kSkip;
  if (spec_enabled_) {
    // Frozen speculation base: copied BEFORE the observer attaches, so the
    // copy holds no observer pointer and never sees post-construction writes
    // (those reach the spec stage through the overlay instead).
    spec_base_.emplace(state_);
    state_.SetWriteObserver(&overlay_);
    const int spec_width =
        options_.spec_threads > 0
            ? ThreadPool::ResolveWidth(options_.spec_threads)
            : std::max(16, ThreadPool::ResolveWidth(options_.exec.os_threads));
    spec_pool_ = std::make_unique<ThreadPool>(spec_width);
    // Depth 1 deliberately, regardless of queue_depth: the hand-off queue
    // bounds speculative run-ahead. With a deeper queue the spec stage races
    // several blocks past the commit frontier and nearly every overlay read
    // it takes is stale by its boundary; depth 1 keeps it roughly one block
    // ahead of the executor — full overlap, minimal staleness.
    specced_ = std::make_unique<BoundedQueue<SpecItem>>(1);
  }
  input_ = std::make_unique<BoundedQueue<Block>>(options_.queue_depth);
  ready_ = std::make_unique<BoundedQueue<WarmedBlock>>(options_.queue_depth);
  diffs_ = std::make_unique<BoundedQueue<PendingCommit>>(options_.queue_depth);
  if (options_.ops_server.enabled()) {
    // After the queues exist (the Progress closure reads their depths),
    // before the pipeline threads start — a scrape that lands during Submit
    // of block 1 must already see a coherent sample.
    std::function<SnapshotStats()> snapshot_stats;
    if (snapshots_) {
      snapshot_stats = [this] { return snapshots_->stats(); };
    }
    ops_ = std::make_unique<ops::OpsServer>(options_.ops_server, flight_,
                                            [this] { return Progress(); },
                                            std::move(snapshot_stats));
    std::string error;
    if (!ops_->Start(&error)) {
      FatalChain("cannot start ops server", error);
    }
  }
  warm_thread_ = std::thread(&ChainRunner::WarmLoop, this);
  if (spec_enabled_) {
    spec_thread_ = std::thread(&ChainRunner::SpecLoop, this);
  }
  exec_thread_ = std::thread(&ChainRunner::ExecLoop, this);
  if (options_.overlap_commit) {
    commit_thread_ = std::thread(&ChainRunner::CommitLoop, this);
  }
  run_timer_ = WallTimer();  // Exclude trie seeding and thread spawn from wall_ns.
}

ChainRunner::~ChainRunner() {
  // Quiesce the ops plane first: once Stop returns, no HTTP worker or
  // watchdog thread can be inside Progress()/flight-recorder reads while the
  // queues below tear down.
  if (ops_) {
    ops_->Stop();
  }
  if (!finished_.load()) {
    Abort();
  }
}

ops::PipelineProgress ChainRunner::Progress() const {
  ops::PipelineProgress progress;
  progress.running = pipeline_running_.load(std::memory_order_relaxed);
  progress.blocks_submitted = blocks_submitted_.load(std::memory_order_relaxed);
  progress.blocks_committed = blocks_committed_.load(std::memory_order_relaxed);

  ops::StageProgress warm;
  warm.name = "warm";
  warm.active = true;
  warm.entered = warm_in_.load(std::memory_order_relaxed);
  warm.exited = warm_out_.load(std::memory_order_relaxed);
  warm.queue_depth = input_->depth();
  warm.queue_high_water = input_->max_depth();
  progress.stages.push_back(std::move(warm));

  ops::StageProgress spec;
  spec.name = "spec";
  spec.active = spec_enabled_;
  spec.entered = spec_in_.load(std::memory_order_relaxed);
  spec.exited = spec_out_.load(std::memory_order_relaxed);
  if (spec_enabled_) {
    spec.queue_depth = ready_->depth();
    spec.queue_high_water = ready_->max_depth();
  }
  progress.stages.push_back(std::move(spec));

  ops::StageProgress exec;
  exec.name = "exec";
  exec.active = true;
  exec.entered = exec_in_.load(std::memory_order_relaxed);
  exec.exited = exec_out_.load(std::memory_order_relaxed);
  if (spec_enabled_) {
    exec.queue_depth = specced_->depth();
    exec.queue_high_water = specced_->max_depth();
  } else {
    exec.queue_depth = ready_->depth();
    exec.queue_high_water = ready_->max_depth();
  }
  progress.stages.push_back(std::move(exec));

  // Active even with overlap_commit = false: CommitOne then runs inline on
  // the exec thread but still counts entry/exit, so an inline committer
  // wedged in a trie apply is diagnosed as "commit", not "exec".
  ops::StageProgress commit;
  commit.name = "commit";
  commit.active = true;
  commit.entered = commit_in_.load(std::memory_order_relaxed);
  commit.exited = commit_out_.load(std::memory_order_relaxed);
  commit.queue_depth = diffs_->depth();
  commit.queue_high_water = diffs_->max_depth();
  progress.stages.push_back(std::move(commit));
  return progress;
}

bool ChainRunner::Submit(Block block) {
  if (finished_.load()) {
    return false;
  }
  if (!input_->Push(std::move(block))) {
    return false;
  }
  blocks_submitted_.fetch_add(1);
  return true;
}

ChainReport ChainRunner::Finish() {
  if (finished_.load()) {
    return *report_;
  }
  input_->Close();
  JoinAll();
  report_ = BuildReport(/*aborted=*/false);
  finished_.store(true);
  return *report_;
}

ChainReport ChainRunner::Abort() {
  if (finished_.load()) {
    return *report_;
  }
  // Drop everything queued; stages finish only the item they already hold, so
  // the committed prefix stays a prefix.
  input_->Abort();
  ready_->Abort();
  if (specced_) {
    specced_->Abort();
  }
  diffs_->Abort();
  JoinAll();
  report_ = BuildReport(/*aborted=*/true);
  finished_.store(true);
  return *report_;
}

void ChainRunner::WarmLoop() {
  PEVM_TRACE_THREAD_NAME("chain-warm");
  WallTimer stage;
  while (std::optional<Block> block = input_->Pop()) {
    warm_in_.fetch_add(1, std::memory_order_relaxed);
    WallTimer busy;
    PEVM_TRACE_COUNTER("chain.input_queue", input_->depth());
    {
      PEVM_TRACE_SPAN_ARG("chain.warm", "block", warm_stats_.blocks);
      if (store_ && options_.exec.prefetch_depth > 0 && !block->transactions.empty()) {
        // Whole-block warm-up: depth >= request count means the driver never
        // waits for NotifyStarted, so Drain (join-without-abort) is safe.
        std::vector<PrefetchRequest> requests = BuildPrefetchRequests(*block);
        PrefetchEngine engine(*store_, std::move(requests),
                              static_cast<int>(block->transactions.size()));
        engine.Drain();
      }
    }
    uint64_t busy_ns = busy.ElapsedNs();
    warm_stats_.busy_ns += busy_ns;
    ++warm_stats_.blocks;
    bool pushed = ready_->Push(WarmedBlock{std::move(*block), busy_ns, telemetry::NowNs()});
    warm_out_.fetch_add(1, std::memory_order_relaxed);
    if (!pushed) {
      break;  // Aborted downstream.
    }
  }
  ready_->Close();
  warm_stats_.wall_ns = stage.ElapsedNs();
}

void ChainRunner::SpecLoop() {
  PEVM_TRACE_THREAD_NAME("chain-spec");
  static auto& launched_hist = telemetry::GetHistogram("chain.spec_launched_per_block");
  WallTimer stage;
  const bool with_log = executor_->seed_mode() == SpecMode::kWithLog;
  while (std::optional<WarmedBlock> warmed = ready_->Pop()) {
    spec_in_.fetch_add(1, std::memory_order_relaxed);
    WallTimer busy;
    PEVM_TRACE_COUNTER("chain.ready_queue", ready_->depth());
    SpecItem item{std::move(warmed->block), std::nullopt};
    item.warm_busy_ns = warmed->warm_busy_ns;
    item.warmed_ns = warmed->warmed_ns;
    const size_t n = item.block.transactions.size();
    if (n > 0) {
      PEVM_TRACE_SPAN_ARG("chain.spec_launch", "txs", n);
      SpeculativeBlock spec;
      spec.specs.resize(n);
      // Gate prepass (cheap, serial): hold back transactions predicted to
      // touch fallback-hot keys; their early record would only be dropped.
      std::vector<PrefetchRequest> requests = BuildPrefetchRequests(item.block);
      std::vector<char> launch(n, 0);
      for (size_t i = 0; i < n; ++i) {
        std::vector<StateKey> predicted =
            store_ ? store_->PredictSet(requests[i])
                   : std::vector<StateKey>{StateKey::Balance(requests[i].from),
                                           StateKey::Nonce(requests[i].from),
                                           StateKey::Balance(requests[i].to)};
        if (gate_.ShouldHold(predicted)) {
          ++spec.held;
        } else {
          launch[i] = 1;
          ++spec.launched;
        }
      }
      // Early read phase against overlay ∘ frozen base: overlay hits are the
      // in-flight block's uncommitted writes; base reads pay the simulated
      // storage latency and warm residency — work the in-block read phase
      // then skips. Values are predictions; the boundary validation on the
      // exec thread is what makes reusing them sound.
      SpecOverlayReader reader(overlay_, *spec_base_, store_);
      auto speculate_one = [&](size_t i) {
        if (!launch[i]) {
          return;
        }
        PEVM_TRACE_SPAN_ARG("chain.speculate", "tx", i);
        item.spec->specs[i] = SpeculateTransaction(reader, item.block.context,
                                                   item.block.transactions[i], with_log,
                                                   StaticCodeProvider(options_.exec.code_cache));
      };
      item.spec = std::move(spec);
      spec_pool_->ParallelFor(n, speculate_one);
      launched_hist.Observe(item.spec->launched);
    }
    uint64_t busy_ns = busy.ElapsedNs();
    item.spec_busy_ns = busy_ns;
    spec_stats_.busy_ns += busy_ns;
    ++spec_stats_.blocks;
    bool pushed = specced_->Push(std::move(item));
    spec_out_.fetch_add(1, std::memory_order_relaxed);
    if (!pushed) {
      break;  // Aborted downstream.
    }
  }
  specced_->Close();
  spec_stats_.wall_ns = stage.ElapsedNs();
}

void ChainRunner::ExecLoop() {
  PEVM_TRACE_THREAD_NAME("chain-exec");
  static auto& exec_hist = telemetry::GetHistogram("chain.exec_block_ns");
  static auto& repaired_hist = telemetry::GetHistogram("chain.boundary_redo_repaired");
  static auto& dropped_hist = telemetry::GetHistogram("chain.boundary_dropped");
  WallTimer stage;
  // With speculation the exec stage's input is the spec stage's output;
  // otherwise blocks come straight from the warm stage.
  auto next = [this]() -> std::optional<SpecItem> {
    if (spec_enabled_) {
      return specced_->Pop();
    }
    if (std::optional<WarmedBlock> warmed = ready_->Pop()) {
      SpecItem item{std::move(warmed->block), std::nullopt};
      item.warm_busy_ns = warmed->warm_busy_ns;
      item.warmed_ns = warmed->warmed_ns;
      return item;
    }
    return std::nullopt;
  };
  while (std::optional<SpecItem> item = next()) {
    exec_in_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t picked_ns = telemetry::NowNs();
    WallTimer busy;
    if (spec_enabled_) {
      PEVM_TRACE_COUNTER("chain.specced_queue", specced_->depth());
    } else {
      PEVM_TRACE_COUNTER("chain.ready_queue", ready_->depth());
    }
    Block& block = item->block;
    BlockReport report;
    // Flight-recorder anatomy: assembled here on the exec thread from values
    // the pipeline already computes; reading them into this plain struct is
    // the ops plane's only touch on the hot path.
    ops::BlockAnatomy anatomy;
    anatomy.transactions = block.transactions.size();
    anatomy.warm_busy_ns = item->warm_busy_ns;
    anatomy.spec_busy_ns = item->spec_busy_ns;
    // Hand-off wait: warm push instant to exec pop instant, minus the spec
    // stage's own busy time (which is work, not waiting).
    uint64_t since_warm = picked_ns > item->warmed_ns ? picked_ns - item->warmed_ns : 0;
    anatomy.ready_wait_ns =
        since_warm > item->spec_busy_ns ? since_warm - item->spec_busy_ns : 0;
    // Boundary validation: the previous block's Execute has returned and this
    // thread is the only state_ writer, so state_ is quiescent — exactly the
    // committed post-predecessor state the seeds must be validated against.
    BoundarySeeds seeds;
    bool have_seeds = false;
    std::vector<StateKey> boundary_dropped;
    if (item->spec) {
      WallTimer validate;
      PEVM_TRACE_SPAN_ARG("chain.boundary_validate", "block", exec_stats_.blocks);
      BoundaryOutcome outcome = ValidateBoundary(std::move(item->spec->specs), state_);
      ++spec_totals_.blocks_speculated;
      spec_totals_.txs_launched += item->spec->launched;
      spec_totals_.txs_held += item->spec->held;
      spec_totals_.seeds_clean += outcome.clean;
      spec_totals_.seeds_redo_repaired += outcome.redo_repaired;
      spec_totals_.seeds_dropped += outcome.dropped;
      spec_totals_.stale_reads += outcome.stale_keys;
      spec_totals_.boundary_validate_wall_ns += validate.ElapsedNs();
      repaired_hist.Observe(outcome.redo_repaired);
      dropped_hist.Observe(outcome.dropped);
      anatomy.spec_launched = item->spec->launched;
      anatomy.spec_held = item->spec->held;
      anatomy.spec_clean = outcome.clean;
      anatomy.spec_repaired = outcome.redo_repaired;
      anatomy.spec_dropped = outcome.dropped;
      seeds = std::move(outcome.seeds);
      boundary_dropped = std::move(outcome.dropped_keys);
      have_seeds = true;
    }
    {
      PEVM_TRACE_SPAN_ARG("chain.exec", "block", exec_stats_.blocks);
      state_.BeginDiff();
      report = executor_->Execute(block, state_, have_seeds ? &seeds : nullptr);
    }
    if (spec_enabled_) {
      gate_.Update(report.conflict_keys, boundary_dropped);
    }
    StateDiff diff = state_.TakeDiff();
    uint64_t busy_ns = busy.ElapsedNs();
    exec_stats_.busy_ns += busy_ns;
    exec_hist.Observe(busy_ns);
    ++exec_stats_.blocks;
    anatomy.exec_busy_ns = busy_ns;
    anatomy.conflicts = report.conflicts;
    anatomy.redo_success = report.redo_success;
    anatomy.redo_fail = report.redo_fail;
    anatomy.full_reexecutions = report.full_reexecutions;
    anatomy.oplog_entries = report.oplog_entries;
    anatomy.instructions = report.instructions;
    anatomy.prefetch_hits = report.prefetch_hits;
    anatomy.prefetch_misses = report.prefetch_misses;
    block_reports_.push_back(std::move(report));
    PendingCommit pending{std::move(diff), telemetry::NowNs(), std::move(anatomy)};
    exec_out_.fetch_add(1, std::memory_order_relaxed);
    if (options_.overlap_commit) {
      if (!diffs_->Push(std::move(pending))) {
        break;  // Aborted downstream.
      }
    } else {
      CommitOne(std::move(pending));
    }
  }
  if (!options_.overlap_commit) {
    // Inline committer: seal the open batch before the stream closes.
    WallTimer tail;
    FlushBatch();
    commit_stats_.busy_ns += tail.ElapsedNs();
  }
  diffs_->Close();
  exec_stats_.wall_ns = stage.ElapsedNs();
  if (!options_.overlap_commit) {
    commit_stats_.wall_ns = exec_stats_.wall_ns;
  }
}

void ChainRunner::CommitLoop() {
  PEVM_TRACE_THREAD_NAME("chain-commit");
  WallTimer stage;
  while (std::optional<PendingCommit> pending = diffs_->Pop()) {
    PEVM_TRACE_COUNTER("chain.diff_queue", diffs_->depth());
    CommitOne(std::move(*pending));
  }
  // Seal the open batch on drain — Finish AND Abort — so the durable
  // manifest covers exactly the applied prefix roots_ reports.
  WallTimer tail;
  FlushBatch();
  commit_stats_.busy_ns += tail.ElapsedNs();
  commit_stats_.wall_ns = stage.ElapsedNs();
}

void ChainRunner::CommitOne(PendingCommit pending) {
  static auto& commit_hist = telemetry::GetHistogram("chain.commit_block_ns");
  static auto& apply_serial_hist = telemetry::GetHistogram("chain.commit_apply_serial_ns");
  static auto& apply_parallel_hist = telemetry::GetHistogram("chain.commit_apply_parallel_ns");
  static auto& batch_gauge = telemetry::GetGauge("chain.commit_batch_depth");
  commit_in_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t commit_start_ns = telemetry::NowNs();
  WallTimer busy;
  PEVM_TRACE_SPAN_ARG("chain.commit", "block", commit_stats_.blocks);
  trie_->ApplyDiff(pending.diff);
  Hash256 root = trie_->Root();
  BlockDurability durability;
  durability.apply_ns = busy.ElapsedNs();
  apply_serial_hist.Observe(trie_->last_apply().serial_ns);
  apply_parallel_hist.Observe(trie_->last_apply().parallel_ns);
  roots_.push_back(root);
  if (snapshots_) {
    // Publish AFTER the root is final: acquirers see (block, root, versions)
    // only once the triple is complete. Single publisher by construction —
    // CommitOne runs on exactly one thread (commit or, inline, exec).
    snapshots_->Publish(recovered_blocks_ + roots_.size(), root, pending.diff);
  }
  durability_.push_back(durability);
  batch_enqueue_ns_.push_back(pending.enqueue_ns);
  batch_gauge.Set(static_cast<int64_t>(batch_enqueue_ns_.size()));
  // Finalize and record the anatomy BEFORE a possible FlushBatch: the durable
  // fields are back-stamped there by block index, so the record must already
  // be in the ring. queue_to_durable stays 0 until the batch seals.
  pending.anatomy.block_index = recovered_blocks_ + roots_.size();
  pending.anatomy.root = root;
  pending.anatomy.commit_wait_ns =
      commit_start_ns > pending.enqueue_ns ? commit_start_ns - pending.enqueue_ns : 0;
  pending.anatomy.commit_apply_ns = durability.apply_ns;
  pending.anatomy.diff_entries = pending.diff.size();
  if (snapshots_) {
    pending.anatomy.snapshots_retained = snapshots_->retained();
    pending.anatomy.snapshot_live_pins = snapshots_->live_pins();
  }
  flight_.Record(pending.anatomy);
  size_t batch = options_.commit.batch_blocks > 0 ? options_.commit.batch_blocks : 1;
  if (batch_enqueue_ns_.size() >= batch) {
    FlushBatch();
  }
  uint64_t busy_ns = busy.ElapsedNs();
  commit_stats_.busy_ns += busy_ns;
  commit_hist.Observe(busy_ns);
  ++commit_stats_.blocks;
  blocks_committed_.fetch_add(1, std::memory_order_relaxed);
  commit_out_.fetch_add(1, std::memory_order_relaxed);
}

void ChainRunner::FlushBatch() {
  static auto& q2d_hist = telemetry::GetHistogram("chain.block_queue_to_durable_ns");
  const size_t count = batch_enqueue_ns_.size();
  if (count == 0) {
    return;
  }
  const size_t first_local = roots_.size() - count;
  uint64_t batch_persist_ns = 0;
  if (node_store_ != nullptr) {
    static auto& persist_hist = telemetry::GetHistogram("chain.commit_persist_ns");
    // Chain-lifetime block index: a resumed runner keeps counting where the
    // recovered manifest left off.
    WallTimer persist;
    PEVM_TRACE_SPAN_ARG("chain.commit_batch", "blocks", count);
    NodeStoreCommitStats stats =
        trie_->CommitBatch(recovered_blocks_ + first_local,
                           std::span<const Hash256>(roots_.data() + first_local, count));
    uint64_t persist_ns = persist.ElapsedNs();
    batch_persist_ns = persist_ns;
    persist_hist.Observe(persist_ns);
    // Seal costs are shared by the whole batch; attribute them to its last
    // block so the report's totals stay exact (a per-block split would be
    // arbitrary). Per-block latency lives in queue_to_durable_ns below.
    BlockDurability& last = durability_.back();
    last.persist_ns += persist_ns;
    last.sync_ns += stats.sync_ns;
    last.nodes_written += stats.nodes_written;
    last.bytes_appended += stats.bytes_appended;
    last.fsyncs += stats.fsyncs;
  }
  const uint64_t now = telemetry::NowNs();
  for (size_t i = 0; i < count; ++i) {
    uint64_t enqueue_ns = batch_enqueue_ns_[i];
    uint64_t latency = now > enqueue_ns ? now - enqueue_ns : 0;
    durability_[first_local + i].queue_to_durable_ns = latency;
    q2d_hist.Observe(latency);
    // Back-stamp the flight record now that the block is durable. Seal costs
    // attribute to the batch's last block, mirroring durability_ above.
    flight_.StampDurability(recovered_blocks_ + first_local + i + 1, latency,
                            i + 1 == count ? batch_persist_ns : 0, commit_batches_ + 1);
  }
  batch_enqueue_ns_.clear();
  ++commit_batches_;
}

void ChainRunner::JoinAll() {
  if (warm_thread_.joinable()) {
    warm_thread_.join();
  }
  if (spec_thread_.joinable()) {
    spec_thread_.join();
  }
  if (exec_thread_.joinable()) {
    exec_thread_.join();
  }
  if (commit_thread_.joinable()) {
    commit_thread_.join();
  }
  // Pipeline is quiescent: tell the watchdog to stand down rather than
  // diagnose the (intentional) absence of progress as a stall.
  pipeline_running_.store(false, std::memory_order_relaxed);
  run_wall_ns_ = run_timer_.ElapsedNs();
}

ChainReport ChainRunner::BuildReport(bool aborted) {
  ChainReport report;
  report.warm = warm_stats_;
  report.spec = spec_stats_;
  report.exec = exec_stats_;
  report.commit = commit_stats_;
  report.speculation = spec_totals_;
  report.warm.max_queue_depth = input_->max_depth();
  if (spec_enabled_) {
    report.spec.max_queue_depth = ready_->max_depth();
    report.exec.max_queue_depth = specced_->max_depth();
  } else {
    report.exec.max_queue_depth = ready_->max_depth();
  }
  report.commit.max_queue_depth = diffs_->max_depth();
  report.blocks_submitted = blocks_submitted_.load();
  report.blocks_executed = exec_stats_.blocks;
  report.blocks_committed = roots_.size();
  report.blocks_resumed = recovered_blocks_;
  report.commit_batches = commit_batches_;
  report.wall_ns = run_wall_ns_;
  report.aborted = aborted;
  report.durability = durability_;
  report.kv_bytes_appended = genesis_durability_.bytes_appended;
  report.kv_fsyncs = genesis_durability_.fsyncs;
  report.kv_sync_ns = genesis_durability_.sync_ns;
  for (const BlockDurability& d : durability_) {
    report.kv_bytes_appended += d.bytes_appended;
    report.kv_fsyncs += d.fsyncs;
    report.kv_sync_ns += d.sync_ns;
  }
  report.roots = roots_;
  report.final_root = roots_.empty() ? seed_root_ : roots_.back();
  report.block_reports = block_reports_;
  if (snapshots_) {
    report.query_snapshots = snapshots_->stats();
  }
  return report;
}

}  // namespace pevm
