#include "src/chain/chain_runner.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/baselines/two_phase_locking.h"
#include "src/core/parallel_evm.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace pevm {

std::string_view ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kTwoPhaseLocking:
      return "2pl";
    case ExecutorKind::kOcc:
      return "occ";
    case ExecutorKind::kBlockStm:
      return "block-stm";
    case ExecutorKind::kParallelEvm:
      return "parallelevm";
  }
  return "?";
}

std::unique_ptr<Executor> MakeExecutor(ExecutorKind kind, const ExecOptions& options) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return std::make_unique<SerialExecutor>(options);
    case ExecutorKind::kTwoPhaseLocking:
      return std::make_unique<TwoPhaseLockingExecutor>(options);
    case ExecutorKind::kOcc:
      return std::make_unique<OccExecutor>(options);
    case ExecutorKind::kBlockStm:
      return std::make_unique<BlockStmExecutor>(options);
    case ExecutorKind::kParallelEvm:
      return std::make_unique<ParallelEvmExecutor>(options);
  }
  return nullptr;
}

namespace {

[[noreturn]] void FatalChain(const char* what, const std::string& detail) {
  std::fprintf(stderr, "chain_runner: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

ChainRunner::ChainRunner(const ChainOptions& options, const WorldState& genesis)
    : options_(options), state_(genesis) {
  options_.exec.external_warmup = true;  // The runner owns the SimStore lifecycle.
  switch (options_.persist) {
    case PersistMode::kNone:
      trie_.emplace(state_, nullptr, IncrementalStateTrie::SeedMode::kFresh, options_.commit);
      break;
    case PersistMode::kInMemory:
      node_store_ = std::make_unique<InMemoryNodeStore>();
      trie_.emplace(state_, node_store_.get(), IncrementalStateTrie::SeedMode::kFresh,
                    options_.commit);
      break;
    case PersistMode::kKv: {
      std::string error;
      kv_store_ = KvStore::Open(options_.kv_dir, options_.kv, &error);
      if (!kv_store_) {
        FatalChain("cannot open kv store", error);
      }
      node_store_ = std::make_unique<KvNodeStore>(*kv_store_);
      if (std::optional<RecoveredChain> recovered = RecoverChain(*kv_store_)) {
        // Resume: the durable manifest wins over the genesis argument. The
        // re-seeded trie's root cross-checks the flat mirror against the
        // manifest — a mismatch means the store is internally inconsistent,
        // which the commit-marker protocol is supposed to make impossible.
        state_ = std::move(recovered->state);
        recovered_blocks_ = recovered->blocks_committed;
        trie_.emplace(state_, node_store_.get(),
                      IncrementalStateTrie::SeedMode::kAlreadyDurable, options_.commit);
        if (trie_->Root() != recovered->root) {
          FatalChain("recovered state root mismatch", options_.kv_dir);
        }
      } else {
        trie_.emplace(state_, node_store_.get(), IncrementalStateTrie::SeedMode::kFresh,
                      options_.commit);
      }
      break;
    }
  }
  genesis_durability_ = trie_->genesis_stats();
  if (options_.kv_backed_sim_store) {
    if (!kv_store_) {
      FatalChain("kv_backed_sim_store requires persist == kKv", options_.kv_dir);
    }
    options_.exec.storage.backing = kv_store_.get();
  }
  executor_ = MakeExecutor(options_.executor, options_.exec);
  store_ = executor_->chain_store();
  seed_root_ = trie_->Root();
  input_ = std::make_unique<BoundedQueue<Block>>(options_.queue_depth);
  ready_ = std::make_unique<BoundedQueue<Block>>(options_.queue_depth);
  diffs_ = std::make_unique<BoundedQueue<PendingCommit>>(options_.queue_depth);
  warm_thread_ = std::thread(&ChainRunner::WarmLoop, this);
  exec_thread_ = std::thread(&ChainRunner::ExecLoop, this);
  if (options_.overlap_commit) {
    commit_thread_ = std::thread(&ChainRunner::CommitLoop, this);
  }
  run_timer_ = WallTimer();  // Exclude trie seeding and thread spawn from wall_ns.
}

ChainRunner::~ChainRunner() {
  if (!finished_.load()) {
    Abort();
  }
}

bool ChainRunner::Submit(Block block) {
  if (finished_.load()) {
    return false;
  }
  if (!input_->Push(std::move(block))) {
    return false;
  }
  blocks_submitted_.fetch_add(1);
  return true;
}

ChainReport ChainRunner::Finish() {
  if (finished_.load()) {
    return *report_;
  }
  input_->Close();
  JoinAll();
  report_ = BuildReport(/*aborted=*/false);
  finished_.store(true);
  return *report_;
}

ChainReport ChainRunner::Abort() {
  if (finished_.load()) {
    return *report_;
  }
  // Drop everything queued; stages finish only the item they already hold, so
  // the committed prefix stays a prefix.
  input_->Abort();
  ready_->Abort();
  diffs_->Abort();
  JoinAll();
  report_ = BuildReport(/*aborted=*/true);
  finished_.store(true);
  return *report_;
}

void ChainRunner::WarmLoop() {
  PEVM_TRACE_THREAD_NAME("chain-warm");
  WallTimer stage;
  while (std::optional<Block> block = input_->Pop()) {
    WallTimer busy;
    PEVM_TRACE_COUNTER("chain.input_queue", input_->depth());
    {
      PEVM_TRACE_SPAN_ARG("chain.warm", "block", warm_stats_.blocks);
      if (store_ && options_.exec.prefetch_depth > 0 && !block->transactions.empty()) {
        // Whole-block warm-up: depth >= request count means the driver never
        // waits for NotifyStarted, so Drain (join-without-abort) is safe.
        std::vector<PrefetchRequest> requests = BuildPrefetchRequests(*block);
        PrefetchEngine engine(*store_, std::move(requests),
                              static_cast<int>(block->transactions.size()));
        engine.Drain();
      }
    }
    warm_stats_.busy_ns += busy.ElapsedNs();
    ++warm_stats_.blocks;
    if (!ready_->Push(std::move(*block))) {
      break;  // Aborted downstream.
    }
  }
  ready_->Close();
  warm_stats_.wall_ns = stage.ElapsedNs();
}

void ChainRunner::ExecLoop() {
  PEVM_TRACE_THREAD_NAME("chain-exec");
  static auto& exec_hist = telemetry::GetHistogram("chain.exec_block_ns");
  WallTimer stage;
  while (std::optional<Block> block = ready_->Pop()) {
    WallTimer busy;
    PEVM_TRACE_COUNTER("chain.ready_queue", ready_->depth());
    BlockReport report;
    {
      PEVM_TRACE_SPAN_ARG("chain.exec", "block", exec_stats_.blocks);
      state_.BeginDiff();
      report = executor_->Execute(*block, state_);
    }
    StateDiff diff = state_.TakeDiff();
    uint64_t busy_ns = busy.ElapsedNs();
    exec_stats_.busy_ns += busy_ns;
    exec_hist.Observe(busy_ns);
    ++exec_stats_.blocks;
    block_reports_.push_back(std::move(report));
    PendingCommit pending{std::move(diff), telemetry::NowNs()};
    if (options_.overlap_commit) {
      if (!diffs_->Push(std::move(pending))) {
        break;  // Aborted downstream.
      }
    } else {
      CommitOne(std::move(pending));
    }
  }
  if (!options_.overlap_commit) {
    // Inline committer: seal the open batch before the stream closes.
    WallTimer tail;
    FlushBatch();
    commit_stats_.busy_ns += tail.ElapsedNs();
  }
  diffs_->Close();
  exec_stats_.wall_ns = stage.ElapsedNs();
  if (!options_.overlap_commit) {
    commit_stats_.wall_ns = exec_stats_.wall_ns;
  }
}

void ChainRunner::CommitLoop() {
  PEVM_TRACE_THREAD_NAME("chain-commit");
  WallTimer stage;
  while (std::optional<PendingCommit> pending = diffs_->Pop()) {
    PEVM_TRACE_COUNTER("chain.diff_queue", diffs_->depth());
    CommitOne(std::move(*pending));
  }
  // Seal the open batch on drain — Finish AND Abort — so the durable
  // manifest covers exactly the applied prefix roots_ reports.
  WallTimer tail;
  FlushBatch();
  commit_stats_.busy_ns += tail.ElapsedNs();
  commit_stats_.wall_ns = stage.ElapsedNs();
}

void ChainRunner::CommitOne(PendingCommit pending) {
  static auto& commit_hist = telemetry::GetHistogram("chain.commit_block_ns");
  static auto& apply_serial_hist = telemetry::GetHistogram("chain.commit_apply_serial_ns");
  static auto& apply_parallel_hist = telemetry::GetHistogram("chain.commit_apply_parallel_ns");
  static auto& batch_gauge = telemetry::GetGauge("chain.commit_batch_depth");
  WallTimer busy;
  PEVM_TRACE_SPAN_ARG("chain.commit", "block", commit_stats_.blocks);
  trie_->ApplyDiff(pending.diff);
  Hash256 root = trie_->Root();
  BlockDurability durability;
  durability.apply_ns = busy.ElapsedNs();
  apply_serial_hist.Observe(trie_->last_apply().serial_ns);
  apply_parallel_hist.Observe(trie_->last_apply().parallel_ns);
  roots_.push_back(root);
  durability_.push_back(durability);
  batch_enqueue_ns_.push_back(pending.enqueue_ns);
  batch_gauge.Set(static_cast<int64_t>(batch_enqueue_ns_.size()));
  size_t batch = options_.commit.batch_blocks > 0 ? options_.commit.batch_blocks : 1;
  if (batch_enqueue_ns_.size() >= batch) {
    FlushBatch();
  }
  uint64_t busy_ns = busy.ElapsedNs();
  commit_stats_.busy_ns += busy_ns;
  commit_hist.Observe(busy_ns);
  ++commit_stats_.blocks;
}

void ChainRunner::FlushBatch() {
  static auto& q2d_hist = telemetry::GetHistogram("chain.block_queue_to_durable_ns");
  const size_t count = batch_enqueue_ns_.size();
  if (count == 0) {
    return;
  }
  const size_t first_local = roots_.size() - count;
  if (node_store_ != nullptr) {
    static auto& persist_hist = telemetry::GetHistogram("chain.commit_persist_ns");
    // Chain-lifetime block index: a resumed runner keeps counting where the
    // recovered manifest left off.
    WallTimer persist;
    PEVM_TRACE_SPAN_ARG("chain.commit_batch", "blocks", count);
    NodeStoreCommitStats stats =
        trie_->CommitBatch(recovered_blocks_ + first_local,
                           std::span<const Hash256>(roots_.data() + first_local, count));
    uint64_t persist_ns = persist.ElapsedNs();
    persist_hist.Observe(persist_ns);
    // Seal costs are shared by the whole batch; attribute them to its last
    // block so the report's totals stay exact (a per-block split would be
    // arbitrary). Per-block latency lives in queue_to_durable_ns below.
    BlockDurability& last = durability_.back();
    last.persist_ns += persist_ns;
    last.sync_ns += stats.sync_ns;
    last.nodes_written += stats.nodes_written;
    last.bytes_appended += stats.bytes_appended;
    last.fsyncs += stats.fsyncs;
  }
  const uint64_t now = telemetry::NowNs();
  for (size_t i = 0; i < count; ++i) {
    uint64_t enqueue_ns = batch_enqueue_ns_[i];
    uint64_t latency = now > enqueue_ns ? now - enqueue_ns : 0;
    durability_[first_local + i].queue_to_durable_ns = latency;
    q2d_hist.Observe(latency);
  }
  batch_enqueue_ns_.clear();
  ++commit_batches_;
}

void ChainRunner::JoinAll() {
  if (warm_thread_.joinable()) {
    warm_thread_.join();
  }
  if (exec_thread_.joinable()) {
    exec_thread_.join();
  }
  if (commit_thread_.joinable()) {
    commit_thread_.join();
  }
  run_wall_ns_ = run_timer_.ElapsedNs();
}

ChainReport ChainRunner::BuildReport(bool aborted) {
  ChainReport report;
  report.warm = warm_stats_;
  report.exec = exec_stats_;
  report.commit = commit_stats_;
  report.warm.max_queue_depth = input_->max_depth();
  report.exec.max_queue_depth = ready_->max_depth();
  report.commit.max_queue_depth = diffs_->max_depth();
  report.blocks_submitted = blocks_submitted_.load();
  report.blocks_executed = exec_stats_.blocks;
  report.blocks_committed = roots_.size();
  report.blocks_resumed = recovered_blocks_;
  report.commit_batches = commit_batches_;
  report.wall_ns = run_wall_ns_;
  report.aborted = aborted;
  report.durability = durability_;
  report.kv_bytes_appended = genesis_durability_.bytes_appended;
  report.kv_fsyncs = genesis_durability_.fsyncs;
  report.kv_sync_ns = genesis_durability_.sync_ns;
  for (const BlockDurability& d : durability_) {
    report.kv_bytes_appended += d.bytes_appended;
    report.kv_fsyncs += d.fsyncs;
    report.kv_sync_ns += d.sync_ns;
  }
  report.roots = roots_;
  report.final_root = roots_.empty() ? seed_root_ : roots_.back();
  report.block_reports = block_reports_;
  return report;
}

}  // namespace pevm
