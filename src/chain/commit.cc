#include "src/chain/commit.h"

#include <vector>

#include "src/support/rlp.h"

namespace pevm {
namespace {

Hash256 SlotKey(const U256& slot) {
  std::array<uint8_t, 32> be = slot.ToBigEndian();
  return Keccak256(BytesView(be.data(), be.size()));
}

}  // namespace

IncrementalStateTrie::IncrementalStateTrie(const WorldState& genesis, NodeStore* store,
                                           SeedMode mode)
    : store_(store) {
  const bool persist_genesis = store_ != nullptr && mode == SeedMode::kFresh;
  for (const auto& [address, account] : genesis.accounts()) {
    AccountEntry& entry = entries_[address];
    entry.balance = account.balance;
    entry.nonce = account.nonce;
    entry.code_hash = Keccak256(account.code);
    entry.addr_key = Keccak256(address.view());
    if (persist_genesis) {
      store_->PutAccount(address, account.balance, account.nonce);
      if (!account.code.empty()) {
        store_->PutCode(address, BytesView(account.code.data(), account.code.size()));
      }
    }
    for (const auto& [slot, value] : account.storage) {
      if (value.IsZero()) {
        continue;
      }
      Hash256 key = SlotKey(slot);
      entry.storage.Put(BytesView(key.data(), key.size()), RlpEncodeUint(value));
      if (persist_genesis) {
        store_->PutStorage(address, slot, value);
      }
    }
    account_trie_.Put(
        BytesView(entry.addr_key.data(), entry.addr_key.size()),
        RlpAccountBody(entry.nonce, entry.balance, entry.storage.RootHash(), entry.code_hash));
  }
  if (persist_genesis) {
    auto sink = [this](const Hash256& hash, BytesView encoding) {
      store_->PutNode(hash, encoding);
    };
    for (auto& [address, entry] : entries_) {
      entry.storage.HarvestDirtyNodes(sink);
    }
    account_trie_.HarvestDirtyNodes(sink);
    genesis_stats_ = store_->CommitGenesis(Root());
  } else if (store_ != nullptr) {
    // Resume: the snapshot came from the store, so every node this seed built
    // is already durable. Align the flags; the next harvest emits only what
    // post-resume blocks dirty.
    for (auto& [address, entry] : entries_) {
      entry.storage.MarkAllPersisted();
    }
    account_trie_.MarkAllPersisted();
  }
}

IncrementalStateTrie::AccountEntry& IncrementalStateTrie::Ensure(const Address& address) {
  auto [it, inserted] = entries_.try_emplace(address);
  if (inserted) {
    it->second.code_hash = Keccak256(Bytes{});
    it->second.addr_key = Keccak256(address.view());
  }
  return it->second;
}

void IncrementalStateTrie::ApplyDiff(const StateDiff& diff) {
  // Replay in journal order with WorldState's exact mutation semantics, then
  // re-encode each dirty account body once. Account-trie insertion order does
  // not matter (the MPT is canonical), only the final bodies do.
  std::unordered_set<Address> dirty;
  for (const auto& [key, value] : diff) {
    switch (key.kind) {
      case StateKeyKind::kBalance:
        Ensure(key.address).balance = value;
        dirty.insert(key.address);
        break;
      case StateKeyKind::kNonce:
        Ensure(key.address).nonce = value.AsUint64();
        dirty.insert(key.address);
        break;
      case StateKeyKind::kStorage:
        if (value.IsZero()) {
          // Clearing a slot never materializes the account (mirrors
          // WorldState::SetStorage).
          auto it = entries_.find(key.address);
          if (it == entries_.end()) {
            break;
          }
          Hash256 slot_key = SlotKey(key.slot);
          it->second.storage.Delete(BytesView(slot_key.data(), slot_key.size()));
          dirty.insert(key.address);
          if (store_ != nullptr) {
            store_->PutStorage(key.address, key.slot, value);
          }
        } else {
          AccountEntry& entry = Ensure(key.address);
          Hash256 slot_key = SlotKey(key.slot);
          entry.storage.Put(BytesView(slot_key.data(), slot_key.size()),
                            RlpEncodeUint(value));
          dirty.insert(key.address);
          if (store_ != nullptr) {
            store_->PutStorage(key.address, key.slot, value);
          }
        }
        break;
    }
  }
  std::vector<TrieUpdate> updates;
  updates.reserve(dirty.size());
  for (const Address& address : dirty) {
    const AccountEntry& entry = entries_.at(address);
    TrieUpdate update;
    update.key.assign(entry.addr_key.begin(), entry.addr_key.end());
    update.value =
        RlpAccountBody(entry.nonce, entry.balance, entry.storage.RootHash(), entry.code_hash);
    updates.push_back(std::move(update));
    if (store_ != nullptr) {
      // Every dirty account gets a mirror record — even an all-zero body
      // materializes the account, and recovery must rebuild the exact account
      // set (roots depend on it).
      store_->PutAccount(address, entry.balance, entry.nonce);
      pending_storage_dirty_.insert(address);
    }
  }
  account_trie_.ApplyDiff(updates);
}

Hash256 IncrementalStateTrie::Root() const { return account_trie_.RootHash(); }

NodeStoreCommitStats IncrementalStateTrie::CommitBlock(uint64_t block_index) {
  if (store_ == nullptr) {
    return {};
  }
  auto sink = [this](const Hash256& hash, BytesView encoding) {
    store_->PutNode(hash, encoding);
  };
  // Storage tries first only by convention — the archive is content-addressed
  // so harvest order cannot matter.
  for (const Address& address : pending_storage_dirty_) {
    entries_.at(address).storage.HarvestDirtyNodes(sink);
  }
  pending_storage_dirty_.clear();
  account_trie_.HarvestDirtyNodes(sink);
  return store_->CommitBlock(block_index, Root());
}

}  // namespace pevm
