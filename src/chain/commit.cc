#include "src/chain/commit.h"

#include <chrono>

#include "src/support/rlp.h"
#include "src/telemetry/trace.h"

namespace pevm {
namespace {

Hash256 SlotKey(const U256& slot) {
  std::array<uint8_t, 32> be = slot.ToBigEndian();
  return Keccak256(BytesView(be.data(), be.size()));
}

uint64_t MonoNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

IncrementalStateTrie::IncrementalStateTrie(const WorldState& genesis, NodeStore* store,
                                           SeedMode mode, const CommitOptions& options)
    : pool_(std::make_unique<ThreadPool>(ThreadPool::ResolveWidth(
          options.os_threads > 0 ? options.os_threads : 1))),
      store_(store) {
  // Phase 1: keccak every address key in parallel (the dominant seeding cost
  // after storage tries), then bucket accounts by shard on this thread.
  std::vector<const std::pair<const Address, Account>*> items;
  items.reserve(genesis.accounts().size());
  for (const auto& kv : genesis.accounts()) {
    items.push_back(&kv);
  }
  std::vector<Hash256> addr_keys(items.size());
  pool_->ParallelFor(items.size(),
                     [&](size_t i) { addr_keys[i] = Keccak256(items[i]->first.view()); });
  std::array<std::vector<size_t>, ShardedMpt::kShards> buckets;
  for (size_t i = 0; i < items.size(); ++i) {
    int shard = addr_keys[i][0] >> 4;
    shard_of_.emplace(items[i]->first, static_cast<uint8_t>(shard));
    buckets[shard].push_back(i);
  }

  // Phase 2: build each shard — entries, storage tries, subtrie, warm root
  // ref — fully independently.
  pool_->ParallelFor(ShardedMpt::kShards, [&](size_t s) {
    PEVM_TRACE_SPAN_ARG("commit.seed_shard", "shard", s);
    std::vector<TrieUpdate> updates;
    updates.reserve(buckets[s].size());
    for (size_t i : buckets[s]) {
      const auto& [address, account] = *items[i];
      AccountEntry& entry = shards_[s].entries[address];
      entry.balance = account.balance;
      entry.nonce = account.nonce;
      entry.code_hash = Keccak256(account.code);
      entry.addr_key = addr_keys[i];
      for (const auto& [slot, value] : account.storage) {
        if (value.IsZero()) {
          continue;
        }
        Hash256 key = SlotKey(slot);
        entry.storage.Put(BytesView(key.data(), key.size()), RlpEncodeUint(value));
      }
      TrieUpdate update;
      update.key.assign(entry.addr_key.begin(), entry.addr_key.end());
      update.value =
          RlpAccountBody(entry.nonce, entry.balance, entry.storage.RootHash(), entry.code_hash);
      updates.push_back(std::move(update));
    }
    account_trie_.ApplyShardDiff(static_cast<int>(s), updates);
    account_trie_.PrehashShard(static_cast<int>(s));
  });

  if (store_ == nullptr) {
    return;
  }
  if (mode == SeedMode::kFresh) {
    for (const auto* item : items) {
      const auto& [address, account] = *item;
      store_->PutAccount(address, account.balance, account.nonce);
      if (!account.code.empty()) {
        store_->PutCode(address, BytesView(account.code.data(), account.code.size()));
      }
      for (const auto& [slot, value] : account.storage) {
        if (value.IsZero()) {
          continue;
        }
        store_->PutStorage(address, slot, value);
      }
    }
  }
  // No per-node archive pass at seed time: recovery rebuilds the trie from
  // the flat mirror alone, so archiving the genesis image would be O(state)
  // keccak + log bytes for records nothing reads. Bulk-mark everything the
  // seed built persisted instead (cheap flag walks, no hashing); the archive
  // only ever receives post-seed dirty spines. Applies to resume too — a
  // recovered snapshot is durable by definition.
  pool_->ParallelFor(ShardedMpt::kShards, [&](size_t s) {
    for (auto& [address, entry] : shards_[s].entries) {
      entry.storage.MarkAllPersisted();
    }
  });
  account_trie_.MarkAllPersisted();
  if (mode == SeedMode::kFresh) {
    genesis_stats_ = store_->CommitGenesis(Root());
  }
}

IncrementalStateTrie::~IncrementalStateTrie() = default;

IncrementalStateTrie::AccountEntry& IncrementalStateTrie::Ensure(ShardState& shard,
                                                                 const Address& address) {
  auto [it, inserted] = shard.entries.try_emplace(address);
  if (inserted) {
    it->second.code_hash = Keccak256(Bytes{});
    it->second.addr_key = Keccak256(address.view());
  }
  return it->second;
}

int IncrementalStateTrie::ShardFor(const Address& address) {
  auto [it, inserted] = shard_of_.try_emplace(address, uint8_t{0});
  if (inserted) {
    Hash256 key = Keccak256(address.view());
    it->second = static_cast<uint8_t>(key[0] >> 4);
  }
  return it->second;
}

void IncrementalStateTrie::ReplayShard(int shard_index) {
  // Replay this shard's journal slice in order with WorldState's exact
  // mutation semantics, then re-encode each dirty account body once.
  // Account-trie insertion order does not matter (the MPT is canonical), only
  // the final bodies do.
  ShardState& shard = shards_[shard_index];
  auto mark_dirty = [&shard](const Address& address) {
    if (shard.dirty_seen.insert(address).second) {
      shard.dirty.push_back(address);
    }
  };
  for (const auto* op : shard.ops) {
    const StateKey& key = op->first;
    const U256& value = op->second;
    switch (key.kind) {
      case StateKeyKind::kBalance:
        Ensure(shard, key.address).balance = value;
        mark_dirty(key.address);
        break;
      case StateKeyKind::kNonce:
        Ensure(shard, key.address).nonce = value.AsUint64();
        mark_dirty(key.address);
        break;
      case StateKeyKind::kStorage:
        if (value.IsZero()) {
          // Clearing a slot never materializes the account (mirrors
          // WorldState::SetStorage).
          auto it = shard.entries.find(key.address);
          if (it == shard.entries.end()) {
            break;
          }
          Hash256 slot_key = SlotKey(key.slot);
          it->second.storage.Delete(BytesView(slot_key.data(), slot_key.size()));
          mark_dirty(key.address);
          if (store_ != nullptr) {
            shard.storage_ops.push_back({key.address, key.slot, value});
          }
        } else {
          AccountEntry& entry = Ensure(shard, key.address);
          Hash256 slot_key = SlotKey(key.slot);
          entry.storage.Put(BytesView(slot_key.data(), slot_key.size()), RlpEncodeUint(value));
          mark_dirty(key.address);
          if (store_ != nullptr) {
            shard.storage_ops.push_back({key.address, key.slot, value});
          }
        }
        break;
    }
  }
  std::vector<TrieUpdate> updates;
  updates.reserve(shard.dirty.size());
  for (const Address& address : shard.dirty) {
    const AccountEntry& entry = shard.entries.at(address);
    TrieUpdate update;
    update.key.assign(entry.addr_key.begin(), entry.addr_key.end());
    update.value =
        RlpAccountBody(entry.nonce, entry.balance, entry.storage.RootHash(), entry.code_hash);
    updates.push_back(std::move(update));
    if (store_ != nullptr) {
      shard.storage_dirty.insert(address);
    }
  }
  account_trie_.ApplyShardDiff(shard_index, updates);
  account_trie_.PrehashShard(shard_index);
}

void IncrementalStateTrie::ApplyDiff(const StateDiff& diff) {
  // Serial partition: route every journal entry to its address's shard. The
  // only per-entry cost is the shard cache lookup (a keccak for first-ever
  // addresses); nothing is materialized here — existence decisions belong to
  // the replay, which sees its shard's ops in exact journal order.
  uint64_t t0 = MonoNs();
  for (const auto& op : diff) {
    shards_[ShardFor(op.first.address)].ops.push_back(&op);
  }

  uint64_t t1 = MonoNs();
  pool_->ParallelFor(ShardedMpt::kShards, [this](size_t s) {
    PEVM_TRACE_SPAN_ARG("commit.shard_reroot", "shard", s);
    ReplayShard(static_cast<int>(s));
  });
  uint64_t t2 = MonoNs();

  // Serial flat-mirror flush, shard by shard. Per-key write order is
  // journal order (an account's writes all live in one shard), which is all
  // the store's WriteBatch semantics need; cross-shard interleaving differs
  // from the monolithic committer but touches disjoint keys.
  for (ShardState& shard : shards_) {
    if (store_ != nullptr) {
      for (const StorageOp& op : shard.storage_ops) {
        store_->PutStorage(op.address, op.slot, op.value);
      }
      for (const Address& address : shard.dirty) {
        // Every dirty account gets a mirror record — even an all-zero body
        // materializes the account, and recovery must rebuild the exact
        // account set (roots depend on it).
        const AccountEntry& entry = shard.entries.at(address);
        store_->PutAccount(address, entry.balance, entry.nonce);
      }
    }
    shard.ops.clear();
    shard.dirty.clear();
    shard.dirty_seen.clear();
    shard.storage_ops.clear();
  }
  uint64_t t3 = MonoNs();
  last_apply_.serial_ns = (t1 - t0) + (t3 - t2);
  last_apply_.parallel_ns = t2 - t1;
}

Hash256 IncrementalStateTrie::Root() const { return account_trie_.RootHash(); }

size_t IncrementalStateTrie::account_count() const {
  size_t total = 0;
  for (const ShardState& shard : shards_) {
    total += shard.entries.size();
  }
  return total;
}

NodeStoreCommitStats IncrementalStateTrie::CommitBatch(uint64_t first_block_index,
                                                       std::span<const Hash256> roots) {
  if (store_ == nullptr || roots.empty()) {
    return {};
  }
  // Shard-parallel harvest into per-shard buffers (the store is not
  // internally synchronized), then a serial merge. The archive is
  // content-addressed, so the merge order cannot affect what recovery sees —
  // only which duplicate writer wins the no-op race, and duplicates are
  // bit-identical by construction.
  account_trie_.PrepareHarvest();
  pool_->ParallelFor(ShardedMpt::kShards, [this](size_t s) {
    PEVM_TRACE_SPAN_ARG("commit.harvest_shard", "shard", s);
    ShardState& shard = shards_[s];
    MerklePatriciaTrie::NodeSink sink = [&shard](const Hash256& hash, BytesView encoding) {
      shard.harvest.emplace_back(hash, Bytes(encoding.begin(), encoding.end()));
    };
    for (const Address& address : shard.storage_dirty) {
      shard.entries.at(address).storage.HarvestDirtyNodes(sink);
    }
    shard.storage_dirty.clear();
    account_trie_.HarvestShard(static_cast<int>(s), sink);
  });
  for (ShardState& shard : shards_) {
    for (const auto& [hash, encoding] : shard.harvest) {
      store_->PutNode(hash, BytesView(encoding.data(), encoding.size()));
    }
    shard.harvest.clear();
  }
  account_trie_.FinishHarvest(
      [this](const Hash256& hash, BytesView encoding) { store_->PutNode(hash, encoding); });
  return store_->CommitBatch(first_block_index, roots);
}

NodeStoreCommitStats IncrementalStateTrie::CommitBlock(uint64_t block_index) {
  Hash256 root = Root();
  return CommitBatch(block_index, std::span<const Hash256>(&root, 1));
}

}  // namespace pevm
