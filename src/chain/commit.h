// Incremental state commitment for the chain runner: a long-lived secure
// Merkle Patricia state trie that absorbs one block's ordered write diff
// (WorldState::TakeDiff) per ApplyDiff call instead of being rebuilt from a
// full state snapshot. With the per-node encoding memo in src/trie this makes
// the commit stage O(diff · depth) per block — the asymptotic change that lets
// a dedicated committer thread keep pace with streaming execution (the
// paper's §6.2 commitment bottleneck, Reddio-style async commitment).
//
// Correctness contract: after ApplyDiff of every diff a WorldState emitted
// since genesis, Root() is bit-identical to that WorldState's from-scratch
// StateRoot(). The replay applies WorldState's exact account-existence
// semantics — in particular a zero storage write never materializes an
// account, while any balance/nonce write (even of zero) does — because the
// secure trie includes every account the state map holds, empty or not.
//
// Durability (optional): given a NodeStore, the trie additionally streams
// each block's effects to it — the flat-state mirror during ApplyDiff and the
// dirty trie nodes (account trie + touched storage tries, via the MPT's
// HarvestDirtyNodes) at CommitBlock, which seals the batch atomically with
// the (block index, root) manifest entry. Seeding replays the whole genesis
// image; resuming from an already-durable state (SeedMode::kAlreadyDurable)
// writes nothing and marks every node persisted instead, so the next harvest
// emits only post-resume mutations.
#ifndef SRC_CHAIN_COMMIT_H_
#define SRC_CHAIN_COMMIT_H_

#include <unordered_map>
#include <unordered_set>

#include "src/chain/node_store.h"
#include "src/state/world_state.h"
#include "src/trie/mpt.h"

namespace pevm {

class IncrementalStateTrie {
 public:
  // How the seeding snapshot relates to the attached store (ignored without
  // one): kFresh persists the full genesis image and seals it with
  // CommitGenesis; kAlreadyDurable assumes the snapshot was recovered *from*
  // the store and only aligns the persisted flags.
  enum class SeedMode { kFresh, kAlreadyDurable };

  // Seeds the trie from a full snapshot (one O(state) build at stream start;
  // every block after that is incremental).
  explicit IncrementalStateTrie(const WorldState& genesis, NodeStore* store = nullptr,
                                SeedMode mode = SeedMode::kFresh);

  // Replays one block's ordered mutation journal and folds the dirty account
  // bodies into the account trie. Storage-slot writes update the per-account
  // storage trie (zero value = slot delete); dirty storage roots are
  // recomputed incrementally as well. With a store attached, the flat-state
  // mirror entries for every touched account/slot are forwarded into the
  // store's pending batch as a side effect.
  void ApplyDiff(const StateDiff& diff);

  // Root of the account trie. Bit-identical to WorldState::StateRoot() of the
  // state that produced the applied diffs. Amortized O(dirty spine).
  Hash256 Root() const;

  // Harvests the nodes dirtied since the last commit into the store and seals
  // the block batch (one durable commit, one fsync). `block_index` is the
  // chain-lifetime index — a resumed runner keeps counting where the
  // recovered manifest left off. No-op (all-zero stats) without a store.
  NodeStoreCommitStats CommitBlock(uint64_t block_index);

  // Stats of the genesis seal performed by the kFresh constructor (all-zero
  // without a store or when resuming).
  const NodeStoreCommitStats& genesis_stats() const { return genesis_stats_; }

  size_t account_count() const { return entries_.size(); }

 private:
  // The mutable account fields plus the memoized pieces the from-scratch
  // build recomputes every time: the keccak'd trie key and the code hash
  // (code is immutable after genesis — WorldState::SetCode asserts so).
  struct AccountEntry {
    U256 balance;
    uint64_t nonce = 0;
    Hash256 code_hash;
    Hash256 addr_key;
    MerklePatriciaTrie storage;
  };

  AccountEntry& Ensure(const Address& address);

  std::unordered_map<Address, AccountEntry> entries_;
  MerklePatriciaTrie account_trie_;

  NodeStore* store_ = nullptr;  // Not owned; may be null (in-memory only).
  NodeStoreCommitStats genesis_stats_;
  // Accounts whose storage trie may hold unharvested nodes, accumulated by
  // ApplyDiff since the last CommitBlock. The account trie needs no such set:
  // its harvest starts at the root and skips clean subtrees.
  std::unordered_set<Address> pending_storage_dirty_;
};

}  // namespace pevm

#endif  // SRC_CHAIN_COMMIT_H_
