// Incremental state commitment for the chain runner: a long-lived secure
// Merkle Patricia state trie that absorbs one block's ordered write diff
// (WorldState::TakeDiff) per ApplyDiff call instead of being rebuilt from a
// full state snapshot. With the per-node encoding memo in src/trie this makes
// the commit stage O(diff · depth) per block — the asymptotic change that lets
// a dedicated committer thread keep pace with streaming execution (the
// paper's §6.2 commitment bottleneck, Reddio-style async commitment).
//
// Correctness contract: after ApplyDiff of every diff a WorldState emitted
// since genesis, Root() is bit-identical to that WorldState's from-scratch
// StateRoot(). The replay applies WorldState's exact account-existence
// semantics — in particular a zero storage write never materializes an
// account, while any balance/nonce write (even of zero) does — because the
// secure trie includes every account the state map holds, empty or not.
#ifndef SRC_CHAIN_COMMIT_H_
#define SRC_CHAIN_COMMIT_H_

#include <unordered_map>

#include "src/state/world_state.h"
#include "src/trie/mpt.h"

namespace pevm {

class IncrementalStateTrie {
 public:
  // Seeds the trie from a full snapshot (one O(state) build at stream start;
  // every block after that is incremental).
  explicit IncrementalStateTrie(const WorldState& genesis);

  // Replays one block's ordered mutation journal and folds the dirty account
  // bodies into the account trie. Storage-slot writes update the per-account
  // storage trie (zero value = slot delete); dirty storage roots are
  // recomputed incrementally as well.
  void ApplyDiff(const StateDiff& diff);

  // Root of the account trie. Bit-identical to WorldState::StateRoot() of the
  // state that produced the applied diffs. Amortized O(dirty spine).
  Hash256 Root() const;

  size_t account_count() const { return entries_.size(); }

 private:
  // The mutable account fields plus the memoized pieces the from-scratch
  // build recomputes every time: the keccak'd trie key and the code hash
  // (code is immutable after genesis — WorldState::SetCode asserts so).
  struct AccountEntry {
    U256 balance;
    uint64_t nonce = 0;
    Hash256 code_hash;
    Hash256 addr_key;
    MerklePatriciaTrie storage;
  };

  AccountEntry& Ensure(const Address& address);

  std::unordered_map<Address, AccountEntry> entries_;
  MerklePatriciaTrie account_trie_;
};

}  // namespace pevm

#endif  // SRC_CHAIN_COMMIT_H_
