// Incremental state commitment for the chain runner: a long-lived secure
// Merkle Patricia state trie that absorbs one block's ordered write diff
// (WorldState::TakeDiff) per ApplyDiff call instead of being rebuilt from a
// full state snapshot. With the per-node encoding memo in src/trie this makes
// the commit stage O(diff · depth) per block — the asymptotic change that lets
// a dedicated committer thread keep pace with streaming execution (the
// paper's §6.2 commitment bottleneck, Reddio-style async commitment).
//
// Sharded parallel re-rooting (DESIGN.md §4.4): the account trie is a
// ShardedMpt — 16 independent subtries split by the top nibble of the keccak'd
// address key — and every per-account structure (entries, storage tries, dirty
// sets) lives in the shard its address hashes to. ApplyDiff partitions the
// journal by shard on the calling thread, replays and re-roots all 16 shards
// in parallel on the committer's own ThreadPool, then flushes the flat-mirror
// store writes serially in shard order (per-key write order is preserved
// because an account's writes all land in one shard). Roots stay bit-identical
// to the monolithic serial committer because the shard split is a pure
// re-association of the same trie (the join reassembles the exact monolithic
// root encoding) and because replay semantics per account are untouched.
//
// Correctness contract: after ApplyDiff of every diff a WorldState emitted
// since genesis, Root() is bit-identical to that WorldState's from-scratch
// StateRoot(). The replay applies WorldState's exact account-existence
// semantics — in particular a zero storage write never materializes an
// account, while any balance/nonce write (even of zero) does — because the
// secure trie includes every account the state map holds, empty or not.
//
// Durability (optional): given a NodeStore, the trie additionally streams
// each block's effects to it — the flat-state mirror during ApplyDiff and the
// dirty trie nodes (account trie + touched storage tries, harvested per shard
// in parallel) at CommitBatch, which seals a run of blocks atomically with
// their manifest entries in one WriteBatch + one group fsync
// (CommitOptions::batch_blocks controls how many blocks the runner folds into
// one seal). Seeding replays the whole genesis image; because the flat mirror
// alone drives recovery, seeding skips the per-node archive pass entirely and
// bulk-marks the freshly built tries persisted — the node archive only ever
// receives post-genesis dirty spines. Resuming from an already-durable state
// (SeedMode::kAlreadyDurable) writes nothing and marks persisted the same way.
#ifndef SRC_CHAIN_COMMIT_H_
#define SRC_CHAIN_COMMIT_H_

#include <array>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/chain/node_store.h"
#include "src/exec/thread_pool.h"
#include "src/state/world_state.h"
#include "src/trie/mpt.h"

namespace pevm {

// Commit-stage knobs, threaded through ChainOptions.
struct CommitOptions {
  // Committer pool width for shard-parallel re-rooting and harvesting
  // (ThreadPool::ResolveWidth semantics: 0 = one per hardware thread, capped).
  // The committer owns its pool — it runs concurrently with the executor
  // stage, whose pool is busy and not reentrant.
  int os_threads = 1;
  // Blocks folded into one durable NodeStore seal. Per-block roots are still
  // computed and recorded in the manifest; batching amortizes the WriteBatch,
  // the fsync and the node-archive writes across the batch. Crash recovery
  // resumes from the last *batch* boundary (durability-lag contract,
  // DESIGN.md §4.4). 0 is treated as 1.
  size_t batch_blocks = 1;
};

class IncrementalStateTrie {
 public:
  // How the seeding snapshot relates to the attached store (ignored without
  // one): kFresh persists the full genesis image and seals it with
  // CommitGenesis; kAlreadyDurable assumes the snapshot was recovered *from*
  // the store and only aligns the persisted flags.
  enum class SeedMode { kFresh, kAlreadyDurable };

  // Seeds the trie from a full snapshot (one O(state) build at stream start,
  // shard-parallel; every block after that is incremental).
  explicit IncrementalStateTrie(const WorldState& genesis, NodeStore* store = nullptr,
                                SeedMode mode = SeedMode::kFresh,
                                const CommitOptions& options = {});
  ~IncrementalStateTrie();

  // Replays one block's ordered mutation journal and folds the dirty account
  // bodies into the account trie: serial partition by shard, parallel
  // per-shard replay + re-root + root-ref prehash, serial flat-mirror flush.
  // Storage-slot writes update the per-account storage trie (zero value =
  // slot delete); dirty storage roots are recomputed incrementally as well.
  // With a store attached, the flat-state mirror entries for every touched
  // account/slot are forwarded into the store's pending batch as a side
  // effect.
  void ApplyDiff(const StateDiff& diff);

  // Root of the account trie. Bit-identical to WorldState::StateRoot() of the
  // state that produced the applied diffs. After ApplyDiff every shard root
  // ref is warm, so this only joins 16 memoized references.
  Hash256 Root() const;

  // Harvests the nodes dirtied since the last seal (shard-parallel) into the
  // store and seals blocks [first_block_index, first + roots.size()) as one
  // atomic batch — one durable commit, one fsync, with every per-block root
  // recorded in the manifest. `roots[i]` must be the root observed after
  // applying block first_block_index + i. Indices are chain-lifetime — a
  // resumed runner keeps counting where the recovered manifest left off.
  // No-op (all-zero stats) without a store or with an empty span.
  NodeStoreCommitStats CommitBatch(uint64_t first_block_index,
                                   std::span<const Hash256> roots);

  // Single-block convenience: a batch of one at the current root.
  NodeStoreCommitStats CommitBlock(uint64_t block_index);

  // Stats of the genesis seal performed by the kFresh constructor (all-zero
  // without a store or when resuming).
  const NodeStoreCommitStats& genesis_stats() const { return genesis_stats_; }

  size_t account_count() const;

  // Where the last ApplyDiff's wall time went: the serial portion (journal
  // partition + flat-mirror flush on the calling thread) vs the shard-parallel
  // portion (replay, re-root, prehash). Feeds the commit-latency histograms.
  struct ApplyBreakdown {
    uint64_t serial_ns = 0;
    uint64_t parallel_ns = 0;
  };
  const ApplyBreakdown& last_apply() const { return last_apply_; }

 private:
  // The mutable account fields plus the memoized pieces the from-scratch
  // build recomputes every time: the keccak'd trie key and the code hash
  // (code is immutable after genesis — WorldState::SetCode asserts so).
  struct AccountEntry {
    U256 balance;
    uint64_t nonce = 0;
    Hash256 code_hash;
    Hash256 addr_key;
    MerklePatriciaTrie storage;
  };

  // A buffered flat-mirror storage write (journal-order within its shard;
  // replayed into the store serially after the parallel phase).
  struct StorageOp {
    Address address;
    U256 slot;
    U256 value;
  };

  // Everything an address's commitment touches, keyed by the top nibble of
  // its keccak'd trie key — the unit of parallelism. Only the owning shard's
  // task reads or writes a ShardState during the parallel phase.
  struct ShardState {
    std::unordered_map<Address, AccountEntry> entries;
    std::vector<const std::pair<StateKey, U256>*> ops;  // This diff's journal slice.
    std::vector<Address> dirty;                         // First-touch order.
    std::unordered_set<Address> dirty_seen;
    std::vector<StorageOp> storage_ops;  // Buffered flat-mirror writes.
    // Accounts whose storage trie may hold unharvested nodes, accumulated
    // across ApplyDiff calls until the next CommitBatch.
    std::unordered_set<Address> storage_dirty;
    std::vector<std::pair<Hash256, Bytes>> harvest;  // Per-shard node buffer.
  };

  AccountEntry& Ensure(ShardState& shard, const Address& address);
  int ShardFor(const Address& address);
  void ReplayShard(int shard);

  std::array<ShardState, ShardedMpt::kShards> shards_;
  // Address → shard cache (the nibble of keccak(address)); grows monotonically
  // and never implies account existence.
  std::unordered_map<Address, uint8_t> shard_of_;
  ShardedMpt account_trie_;
  std::unique_ptr<ThreadPool> pool_;

  NodeStore* store_ = nullptr;  // Not owned; may be null (in-memory only).
  NodeStoreCommitStats genesis_stats_;
  ApplyBreakdown last_apply_;
};

}  // namespace pevm

#endif  // SRC_CHAIN_COMMIT_H_
