#include "src/chain/node_store.h"

#include <utility>

#include "src/state/kv_keys.h"

namespace pevm {
namespace {

// Framed log cost of one batch operation / commit marker, mirroring
// record.cc's encoding. Lets the in-memory store report the same
// bytes-appended figure the KV log would, so benches can separate "bytes the
// protocol writes" from "what the filesystem charges for them".
size_t FramedPutBytes(size_t key, size_t value) { return kRecordHeaderSize + 1 + 4 + key + value; }
size_t FramedDeleteBytes(size_t key) { return kRecordHeaderSize + 1 + 4 + key; }
constexpr size_t kFramedCommitBytes = kRecordHeaderSize + 1 + 8;

Bytes RootBytes(const Hash256& root) { return Bytes(root.begin(), root.end()); }

}  // namespace

void InMemoryNodeStore::PutNode(const Hash256& hash, BytesView encoding) {
  auto [it, inserted] = nodes_.try_emplace(hash, Bytes(encoding.begin(), encoding.end()));
  if (!inserted) {
    return;  // Content-addressed: the record is already identical.
  }
  total_node_bytes_ += encoding.size();
  ++pending_nodes_;
  pending_bytes_ += FramedPutBytes(1 + hash.size(), encoding.size());
}

std::optional<Bytes> InMemoryNodeStore::GetNode(const Hash256& hash) {
  auto it = nodes_.find(hash);
  if (it == nodes_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void InMemoryNodeStore::PutAccount(const Address& address, const U256& balance, uint64_t nonce) {
  std::string key = kvkeys::AccountKey(address);
  pending_bytes_ += FramedPutBytes(key.size(), 40);
  flat_[std::move(key)] = kvkeys::EncodeAccountRecord(balance, nonce);
}

void InMemoryNodeStore::PutStorage(const Address& address, const U256& slot, const U256& value) {
  std::string key = kvkeys::StorageKey(address, slot);
  if (value.IsZero()) {
    pending_bytes_ += FramedDeleteBytes(key.size());
    flat_.erase(key);
    return;
  }
  std::array<uint8_t, 32> be = value.ToBigEndian();
  pending_bytes_ += FramedPutBytes(key.size(), be.size());
  flat_[std::move(key)] = Bytes(be.begin(), be.end());
}

void InMemoryNodeStore::PutCode(const Address& address, BytesView code) {
  std::string key = kvkeys::CodeKey(address);
  pending_bytes_ += FramedPutBytes(key.size(), code.size());
  flat_[std::move(key)] = Bytes(code.begin(), code.end());
}

NodeStoreCommitStats InMemoryNodeStore::CommitGenesis(const Hash256& root) {
  pending_bytes_ += FramedPutBytes(kvkeys::kGenesisRoot.size(), root.size());
  pending_bytes_ += FramedPutBytes(kvkeys::kCommittedBlocks.size(), 8);
  roots_.clear();
  return SealPending();
}

NodeStoreCommitStats InMemoryNodeStore::CommitBatch(uint64_t first_block_index,
                                                    std::span<const Hash256> roots) {
  // One advanced block count for the whole batch, one root record per block —
  // exactly what the KV store's WriteBatch carries.
  pending_bytes_ += FramedPutBytes(kvkeys::kCommittedBlocks.size(), 8);
  for (size_t i = 0; i < roots.size(); ++i) {
    pending_bytes_ += FramedPutBytes(kvkeys::RootKey(first_block_index + i).size(),
                                     roots[i].size());
    roots_.push_back(roots[i]);
  }
  return SealPending();
}

NodeStoreCommitStats InMemoryNodeStore::SealPending() {
  NodeStoreCommitStats stats;
  stats.nodes_written = pending_nodes_;
  stats.bytes_appended = pending_bytes_ + kFramedCommitBytes;
  pending_nodes_ = 0;
  pending_bytes_ = 0;
  return stats;
}

void KvNodeStore::PutNode(const Hash256& hash, BytesView encoding) {
  std::string key = kvkeys::NodeKey(hash);
  if (!pending_node_hashes_.insert(hash).second || store_->Contains(key)) {
    return;  // Already in this batch, or already durable in the log.
  }
  pending_.Put(key, encoding);
  ++pending_nodes_;
}

std::optional<Bytes> KvNodeStore::GetNode(const Hash256& hash) {
  return store_->Get(kvkeys::NodeKey(hash));
}

void KvNodeStore::PutAccount(const Address& address, const U256& balance, uint64_t nonce) {
  Bytes record = kvkeys::EncodeAccountRecord(balance, nonce);
  pending_.Put(kvkeys::AccountKey(address), BytesView(record.data(), record.size()));
}

void KvNodeStore::PutStorage(const Address& address, const U256& slot, const U256& value) {
  std::string key = kvkeys::StorageKey(address, slot);
  if (value.IsZero()) {
    pending_.Delete(key);
    return;
  }
  std::array<uint8_t, 32> be = value.ToBigEndian();
  pending_.Put(key, BytesView(be.data(), be.size()));
}

void KvNodeStore::PutCode(const Address& address, BytesView code) {
  pending_.Put(kvkeys::CodeKey(address), code);
}

NodeStoreCommitStats KvNodeStore::CommitGenesis(const Hash256& root) {
  Bytes root_bytes = RootBytes(root);
  pending_.Put(kvkeys::kGenesisRoot, BytesView(root_bytes.data(), root_bytes.size()));
  Bytes count = kvkeys::EncodeU64Be(0);
  pending_.Put(kvkeys::kCommittedBlocks, BytesView(count.data(), count.size()));
  return Seal();
}

NodeStoreCommitStats KvNodeStore::CommitBatch(uint64_t first_block_index,
                                              std::span<const Hash256> roots) {
  Bytes count = kvkeys::EncodeU64Be(first_block_index + roots.size());
  pending_.Put(kvkeys::kCommittedBlocks, BytesView(count.data(), count.size()));
  for (size_t i = 0; i < roots.size(); ++i) {
    Bytes root_bytes = RootBytes(roots[i]);
    pending_.Put(kvkeys::RootKey(first_block_index + i),
                 BytesView(root_bytes.data(), root_bytes.size()));
  }
  return Seal();
}

NodeStoreCommitStats KvNodeStore::Seal() {
  KvCommitResult result = store_->Commit(pending_);
  NodeStoreCommitStats stats;
  stats.nodes_written = pending_nodes_;
  stats.bytes_appended = result.bytes_appended;
  stats.fsyncs = result.fsynced ? 1 : 0;
  stats.sync_ns = result.sync_ns;
  pending_.Clear();
  pending_node_hashes_.clear();
  pending_nodes_ = 0;
  return stats;
}

std::optional<RecoveredChain> RecoverChain(KvStore& store) {
  // The manifest is the source of truth for *whether* anything is durable:
  // a store that never sealed genesis recovers to nothing (the commit marker
  // protocol guarantees the genesis batch is all-or-nothing).
  std::optional<Bytes> genesis_root = store.Get(kvkeys::kGenesisRoot);
  std::optional<Bytes> count_bytes = store.Get(kvkeys::kCommittedBlocks);
  if (!genesis_root.has_value() || !count_bytes.has_value() || genesis_root->size() != 32) {
    return std::nullopt;
  }

  RecoveredChain chain;
  chain.blocks_committed = kvkeys::DecodeU64Be(BytesView(count_bytes->data(), count_bytes->size()));

  for (uint64_t b = 0; b < chain.blocks_committed; ++b) {
    std::optional<Bytes> root = store.Get(kvkeys::RootKey(b));
    if (!root.has_value() || root->size() != 32) {
      // Unreachable with an intact manifest (count and roots commit in the
      // same batch); surface as unrecoverable rather than fabricate state.
      return std::nullopt;
    }
    Hash256 h{};
    std::copy(root->begin(), root->end(), h.begin());
    chain.roots.push_back(h);
  }
  if (chain.blocks_committed == 0) {
    std::copy(genesis_root->begin(), genesis_root->end(), chain.root.begin());
  } else {
    chain.root = chain.roots.back();
  }

  // Rebuild the committed WorldState from the flat mirror. Account records
  // come first: a zero-balance/zero-nonce record still materializes the
  // account (mirroring WorldState's balance-write semantics), which is why
  // the committer writes one for every dirty account.
  std::string account_prefix(1, kvkeys::kAccountPrefix);
  store.ScanPrefix(account_prefix, [&chain](std::string_view key, BytesView value) {
    if (key.size() != 1 + Address::kSize || value.size() != 40) {
      return;
    }
    Address address;
    std::copy(key.begin() + 1, key.end(), address.bytes().begin());
    chain.state.SetBalance(address, U256::FromBigEndian(BytesView(value.data(), 32)));
    chain.state.SetNonce(address, kvkeys::DecodeU64Be(BytesView(value.data() + 32, 8)));
  });
  std::string storage_prefix(1, kvkeys::kStoragePrefix);
  store.ScanPrefix(storage_prefix, [&chain](std::string_view key, BytesView value) {
    if (key.size() != 1 + Address::kSize + 32 || value.size() != 32) {
      return;
    }
    Address address;
    std::copy(key.begin() + 1, key.begin() + 1 + Address::kSize, address.bytes().begin());
    U256 slot = U256::FromBigEndian(
        BytesView(reinterpret_cast<const uint8_t*>(key.data()) + 1 + Address::kSize, 32));
    chain.state.SetStorage(address, slot, U256::FromBigEndian(value));
  });
  std::string code_prefix(1, kvkeys::kCodePrefix);
  store.ScanPrefix(code_prefix, [&chain](std::string_view key, BytesView value) {
    if (key.size() != 1 + Address::kSize) {
      return;
    }
    Address address;
    std::copy(key.begin() + 1, key.end(), address.bytes().begin());
    chain.state.SetCode(address, Bytes(value.begin(), value.end()));
  });
  return chain;
}

}  // namespace pevm
