// The virtual-time cost model. This reproduction runs on a single-core
// machine, so instead of measuring wall-clock time the executors charge each
// piece of work a nanosecond cost shaped like Geth's profile (storage reads
// dominate; see paper §6.3 "State Prefetching": SLOADs are the bottleneck)
// and a deterministic scheduler computes the makespan on N virtual worker
// threads. DESIGN.md §3.2 documents the substitution.
#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/evm/evm_types.h"
#include "src/evm/opcode.h"

namespace pevm {

struct CostConfig {
  // Compute cost per unit of non-storage gas (interpreter dispatch,
  // arithmetic, keccak, memory).
  double ns_per_gas = 1.1;
  // Committed-state point read missing the cache (LevelDB-backed MPT node
  // walk, as in the paper's archive-node setup).
  uint64_t cold_read_ns = 2300;
  // Committed-state read served from cache (prefetched or touched earlier in
  // the block).
  uint64_t warm_read_ns = 80;
  // Per-key cost of the write phase (memory trie update, journal append).
  uint64_t commit_key_ns = 120;
  // Per-key cost of the validation phase (hash lookup + compare).
  uint64_t validate_key_ns = 28;
  // Fixed envelope cost per transaction (signature already verified;
  // receipt/bookkeeping).
  uint64_t per_tx_ns = 1500;
  // Relative read-phase overhead of SSA operation-log generation.
  // The paper measures ~4.5% (§6.4).
  double ssa_overhead = 0.045;
  // Redo-phase cost per re-executed log entry (operand reconstruction +
  // pure evaluation — a handful of table lookups and one ALU op, far cheaper
  // than interpreting the same instruction with stack/memory/gas machinery)
  // and per DFS-visited graph node.
  uint64_t redo_entry_ns = 160;
  uint64_t dfs_node_ns = 8;
  // Cross-thread coordination cost of an optimistic abort in shared-memory
  // STM schedulers (ESTIMATE marking, counter decreases, cache-line
  // invalidations across 16 hardware threads).
  uint64_t stm_abort_ns = 16000;
  // Scheduling/bookkeeping cost charged per task handoff in parallel
  // executors (queue pop, atomics).
  uint64_t dispatch_ns = 150;
  // Fixed per-block cost of parallel coordination (worker pool wake-up,
  // fork-join barriers, result aggregation); serial execution does not pay it.
  uint64_t per_block_ns = 60000;
};

class CostModel {
 public:
  explicit CostModel(const CostConfig& config) : c_(config) {}

  const CostConfig& config() const { return c_; }

  // Virtual duration of one transaction execution.
  //   stats:       interpreter counters (+ gas_used from the receipt).
  //   cold_reads:  distinct committed keys read that missed the cache.
  //   warm_reads:  remaining committed-state reads.
  //   with_ssa:    whether the SSA operation log was generated alongside.
  uint64_t ExecutionCost(const ExecStats& stats, uint64_t cold_reads, uint64_t warm_reads,
                         bool with_ssa) const {
    // Strip storage gas out of the compute component: storage is charged in
    // real time units below.
    uint64_t storage_gas = 800 * stats.sloads + stats.sstore_gas;
    uint64_t envelope_gas = std::min<uint64_t>(stats.gas_used, 21000);
    uint64_t compute_gas =
        stats.gas_used - std::min(stats.gas_used, storage_gas + envelope_gas);
    double ns = static_cast<double>(compute_gas) * c_.ns_per_gas;
    if (with_ssa) {
      ns *= 1.0 + c_.ssa_overhead;
    }
    return static_cast<uint64_t>(ns) + cold_reads * c_.cold_read_ns +
           warm_reads * c_.warm_read_ns + c_.per_tx_ns;
  }

  uint64_t ValidationCost(size_t read_set_size) const {
    return c_.validate_key_ns * read_set_size + c_.dispatch_ns;
  }

  uint64_t CommitCost(size_t write_set_size) const {
    return c_.commit_key_ns * write_set_size;
  }

  // Redo-phase cost: DFS over `visited` DUG nodes, re-execution of
  // `reexecuted` entries, plus warm re-reads of the conflicting slots.
  uint64_t RedoCost(size_t visited, size_t reexecuted, size_t conflict_keys) const {
    return c_.dfs_node_ns * visited + c_.redo_entry_ns * reexecuted +
           c_.warm_read_ns * conflict_keys;
  }

 private:
  CostConfig c_;
};

// Greedy list scheduler: assigns task durations (in index order) to the
// least-loaded of `threads` workers; returns per-task completion times and
// the makespan. Models an embarrassingly parallel read phase.
struct ScheduleResult {
  std::vector<uint64_t> finish;  // Per task.
  uint64_t makespan = 0;
};

ScheduleResult ListSchedule(const std::vector<uint64_t>& durations, int threads,
                            uint64_t dispatch_ns);

}  // namespace pevm

#endif  // SRC_SIM_COST_MODEL_H_
