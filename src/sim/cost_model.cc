#include "src/sim/cost_model.h"

#include <queue>

namespace pevm {

ScheduleResult ListSchedule(const std::vector<uint64_t>& durations, int threads,
                            uint64_t dispatch_ns) {
  ScheduleResult result;
  result.finish.resize(durations.size());
  if (threads < 1) {
    threads = 1;
  }
  // Min-heap of worker available-times.
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> workers;
  for (int i = 0; i < threads; ++i) {
    workers.push(0);
  }
  for (size_t i = 0; i < durations.size(); ++i) {
    uint64_t start = workers.top();
    workers.pop();
    uint64_t end = start + dispatch_ns + durations[i];
    result.finish[i] = end;
    result.makespan = std::max(result.makespan, end);
    workers.push(end);
  }
  return result;
}

}  // namespace pevm
