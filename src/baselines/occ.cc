#include "src/baselines/occ.h"

#include <vector>

#include "src/exec/apply.h"
#include "src/state/state_view.h"

namespace pevm {
namespace {

struct Speculation {
  Receipt receipt;
  ReadSet reads;
  WriteSet writes;
};

}  // namespace

BlockReport OccExecutor::Execute(const Block& block, WorldState& state) {
  CostModel cost(options_.cost);
  StateCache cache(options_.prefetch);
  BlockReport report;
  size_t n = block.transactions.size();

  // Read phase.
  std::vector<Speculation> specs(n);
  std::vector<uint64_t> durations(n);
  for (size_t i = 0; i < n; ++i) {
    StateView view(state);
    Speculation& spec = specs[i];
    spec.receipt = ApplyTransaction(view, block.context, block.transactions[i]);
    spec.reads = view.read_set();
    spec.writes = view.take_write_set();
    uint64_t total_reads = TotalReadOps(spec.receipt.stats);
    uint64_t cold = std::min(cache.Touch(spec.reads), total_reads);
    durations[i] =
        cost.ExecutionCost(spec.receipt.stats, cold, total_reads - cold, /*with_ssa=*/false);
    report.instructions += spec.receipt.stats.instructions;
  }
  ScheduleResult schedule =
      ListSchedule(durations, options_.threads, options_.cost.dispatch_ns);

  // Validate-and-commit loop.
  uint64_t t = 0;
  U256 fees;
  for (size_t i = 0; i < n; ++i) {
    Speculation& spec = specs[i];
    t = std::max(t, schedule.finish[i]);
    t += cost.ValidationCost(spec.reads.size());

    bool conflict = false;
    for (const auto& [key, observed] : spec.reads) {
      if (state.Get(key) != observed) {
        conflict = true;
        break;
      }
    }

    if (!conflict) {
      if (spec.receipt.valid) {
        t += cost.CommitCost(spec.writes.size());
        state.Apply(spec.writes);
        fees = fees + spec.receipt.fee;
      }
      report.receipts.push_back(std::move(spec.receipt));
      continue;
    }

    // Abort-and-restart: the entire transaction re-executes on the commit
    // path (transaction-level conflict resolution).
    ++report.conflicts;
    ++report.full_reexecutions;
    StateView view(state);
    Receipt receipt = ApplyTransaction(view, block.context, block.transactions[i]);
    uint64_t total_reads = TotalReadOps(receipt.stats);
    uint64_t cold = std::min(cache.Touch(view.read_set()), total_reads);
    t += cost.ExecutionCost(receipt.stats, cold, total_reads - cold, /*with_ssa=*/false);
    report.instructions += receipt.stats.instructions;
    if (receipt.valid) {
      t += cost.CommitCost(view.write_set().size());
      state.Apply(view.write_set());
      fees = fees + receipt.fee;
    }
    report.receipts.push_back(std::move(receipt));
  }

  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options_.cost.per_block_ns;
  return report;
}

}  // namespace pevm
