#include "src/baselines/occ.h"

#include <algorithm>

#include "src/codecache/code_cache.h"
#include "src/exec/pipeline.h"
#include "src/telemetry/trace.h"

namespace pevm {

BlockReport OccExecutor::Execute(const Block& block, WorldState& state, BoundarySeeds* seeds) {
  WallTimer block_timer;
  CostModel cost(options_.cost);
  StateCache cache(options_.prefetch);
  SimStore* store = EnsureSimStore(options_, sim_store_);
  BlockReport report;
  size_t n = block.transactions.size();

  // Read phase (no operation logs: OCC cannot repair, only restart). Seeds
  // that survived boundary validation clean are adopted verbatim.
  ReadPhase read = RunReadPhase(block, state, SpecMode::kPlain, cache, cost, options_, store,
                                report, seeds);
  ScheduleResult schedule =
      ListSchedule(read.durations, options_.threads, options_.cost.dispatch_ns);

  // Validate-and-commit loop.
  WallTimer commit_timer;
  PEVM_TRACE_SPAN_ARG("exec.commit_loop", "txs", n);
  uint64_t t = 0;
  U256 fees;
  ConflictAttribution attribution;
  for (size_t i = 0; i < n; ++i) {
    Speculation& spec = read.specs[i];
    t = std::max(t, schedule.finish[i]);
    t += cost.ValidationCost(spec.reads.size());

    ConflictMap conflicts = FindConflicts(spec.reads, state);
    if (conflicts.empty()) {
      t += CommitSpeculation(spec, state, cost, fees, report);
      continue;
    }

    // Abort-and-restart: the entire transaction re-executes on the commit
    // path (transaction-level conflict resolution).
    ++report.conflicts;
    PEVM_TRACE_INSTANT_ARG("exec.conflict", "tx", i);
    RecordConflicts(conflicts, ConflictOutcome::kFallback, attribution);
    ++report.full_reexecutions;
    t += FullReexecute(block, i, state, cache, cost, store, fees, report,
                       StaticCodeProvider(options_.code_cache));
  }
  report.conflict_keys = attribution.Sorted();

  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options_.cost.per_block_ns;
  report.commit_wall_ns = commit_timer.ElapsedNs();
  report.wall_ns = block_timer.ElapsedNs();
  return report;
}

}  // namespace pevm
