// Optimistic concurrency control adapted to blockchains (paper §2.2):
// speculative parallel execution, then in-order validation; a failed
// validation aborts and re-executes the whole transaction on the commit
// path. Identical pipeline to ParallelEVM minus the SSA log and redo phase —
// the comparison the paper's Table 1 makes.
#ifndef SRC_BASELINES_OCC_H_
#define SRC_BASELINES_OCC_H_

#include "src/exec/executor.h"

namespace pevm {

class OccExecutor final : public Executor {
 public:
  explicit OccExecutor(const ExecOptions& options) : options_(options) {}

  std::string_view name() const override { return "occ"; }
  BlockReport Execute(const Block& block, WorldState& state) override {
    return Execute(block, state, nullptr);
  }
  BlockReport Execute(const Block& block, WorldState& state, BoundarySeeds* seeds) override;
  // Plain records (no SSA log): seeds can only be reused clean — any stale
  // read drops the record at the boundary, mirroring OCC's in-block
  // restart-only conflict handling.
  SpecMode seed_mode() const override { return SpecMode::kPlain; }
  SimStore* chain_store() override { return EnsureSimStore(options_, sim_store_); }

 private:
  ExecOptions options_;
  std::unique_ptr<SimStore> sim_store_;  // See parallel_evm.h.
};

}  // namespace pevm

#endif  // SRC_BASELINES_OCC_H_
