#include "src/baselines/block_stm.h"

#include <cassert>
#include <map>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/exec/apply.h"
#include "src/codecache/code_cache.h"
#include "src/exec/pipeline.h"
#include "src/state/state_view.h"
#include "src/telemetry/trace.h"

namespace pevm {
namespace {

// A read's provenance: which transaction/incarnation produced the value
// (txn == -1 means the pre-block committed state).
struct Version {
  int txn = -1;
  int incarnation = 0;
  friend bool operator==(const Version&, const Version&) = default;
};

struct WriteVersion {
  int incarnation = 0;
  U256 value;
  bool estimate = false;  // Aborted incarnation's write: dependency marker.
};

// Multi-version memory: per key, the writes of every transaction that wrote
// it, ordered by transaction index.
using MvMemory = std::unordered_map<StateKey, std::map<int, WriteVersion>, StateKeyHash>;

// Resolves transaction `txn`'s reads against the multi-version memory,
// recording provenance; reading an ESTIMATE requests an execution abort.
class MvReader final : public BaseReader {
 public:
  MvReader(const MvMemory& mv, const WorldState& base, SimStore* store, int txn)
      : mv_(&mv), base_(&base), store_(store), txn_(txn) {}

  U256 Read(const StateKey& key) const override {
    auto kit = mv_->find(key);
    if (kit != mv_->end()) {
      // Highest writer strictly below us.
      auto vit = kit->second.lower_bound(txn_);
      if (vit != kit->second.begin()) {
        --vit;
        if (vit->second.estimate) {
          abort_ = true;
          blocking_txn_ = vit->first;
          return U256{};
        }
        reads_.push_back({key, Version{vit->first, vit->second.incarnation}, vit->second.value});
        return vit->second.value;
      }
    }
    // Only committed-state reads touch storage; multi-version hits are
    // in-memory.
    if (store_ != nullptr) {
      store_->Touch(key);
    }
    U256 value = base_->Get(key);
    reads_.push_back({key, Version{}, value});
    return value;
  }

  const Bytes* ReadCode(const Address& a) const override { return base_->GetCode(a); }
  bool ShouldAbort() const override { return abort_; }

  struct Read_ {
    StateKey key;
    Version version;
    U256 value;
  };

  bool aborted() const { return abort_; }
  int blocking_txn() const { return blocking_txn_; }
  std::vector<Read_> TakeReads() { return std::move(reads_); }

 private:
  const MvMemory* mv_;
  const WorldState* base_;
  SimStore* store_;
  int txn_;
  mutable bool abort_ = false;
  mutable int blocking_txn_ = -1;
  mutable std::vector<Read_> reads_;
};

using ReadRecord = MvReader::Read_;

enum class TxStatus { kReady, kExecuting, kExecuted, kBlocked };

struct TxState {
  TxStatus status = TxStatus::kReady;
  int incarnation = 0;
  uint64_t exec_finish = 0;  // Virtual time the last successful execution landed.
  // Abort coordination latency (ESTIMATE marking, counter decreases,
  // rescheduling) charged to the next incarnation's start.
  uint64_t abort_penalty = 0;
  std::vector<ReadRecord> reads;
  WriteSet writes;
  Receipt receipt;
  std::unordered_set<int> dependents;  // Blocked on this transaction.
};

struct Task {
  enum class Kind { kExecute, kValidate } kind = Kind::kExecute;
  int txn = -1;
  int incarnation = 0;
};

// A completed task waiting for its virtual finish time.
struct InFlight {
  uint64_t finish = 0;
  size_t seq = 0;  // Tie-break for determinism.
  int worker = 0;
  Task task;
  // Execution effects (computed at start time, applied at finish).
  bool exec_aborted = false;
  int blocking_txn = -1;
  std::vector<ReadRecord> reads;
  WriteSet writes;
  Receipt receipt;
  bool validation_passed = false;

  friend bool operator>(const InFlight& a, const InFlight& b) {
    return a.finish != b.finish ? a.finish > b.finish : a.seq > b.seq;
  }
};

}  // namespace

BlockReport BlockStmExecutor::Execute(const Block& block, WorldState& state) {
  WallTimer block_timer;
  CostModel cost(options_.cost);
  StateCache cache(options_.prefetch);
  SimStore* store = EnsureSimStore(options_, sim_store_);
  BlockReport report;
  const int n = static_cast<int>(block.transactions.size());
  if (n == 0) {
    return report;
  }
  if (store && !options_.external_warmup) {
    store->BeginBlock();
  }
  const bool account_prefetch = store && options_.prefetch_depth > 0;
  std::vector<PrefetchRequest> requests;
  std::optional<PrefetchEngine> engine;
  if (account_prefetch) {
    requests = BuildPrefetchRequests(block);
    if (!options_.external_warmup) {
      engine.emplace(*store, requests, options_.prefetch_depth);
    }
  }

  MvMemory mv;
  std::vector<TxState> txs(static_cast<size_t>(n));
  int execution_idx = 0;
  int validation_idx = 0;

  // --- Scheduler (paper's collaborative scheduler, counter form). ---
  auto fetch_next = [&]() -> std::optional<Task> {
    while (execution_idx < n || validation_idx < n) {
      if (validation_idx < execution_idx || execution_idx >= n) {
        int j = validation_idx++;
        if (j < n && txs[static_cast<size_t>(j)].status == TxStatus::kExecuted) {
          return Task{Task::Kind::kValidate, j, txs[static_cast<size_t>(j)].incarnation};
        }
        continue;
      }
      int j = execution_idx++;
      if (j < n && txs[static_cast<size_t>(j)].status == TxStatus::kReady) {
        txs[static_cast<size_t>(j)].status = TxStatus::kExecuting;
        return Task{Task::Kind::kExecute, j, txs[static_cast<size_t>(j)].incarnation};
      }
    }
    return std::nullopt;
  };

  // --- Task bodies (real execution/validation; duration from the model). ---
  auto run_execute = [&](InFlight& fl) -> uint64_t {
    const Transaction& tx = block.transactions[static_cast<size_t>(fl.task.txn)];
    if (engine) {
      engine->NotifyStarted(static_cast<size_t>(fl.task.txn));
    }
    uint64_t penalty = txs[static_cast<size_t>(fl.task.txn)].abort_penalty;
    txs[static_cast<size_t>(fl.task.txn)].abort_penalty = 0;
    MvReader reader(mv, state, store, fl.task.txn);
    StateView view(reader);
    fl.receipt = ApplyTransaction(view, block.context, tx, nullptr,
                                  StaticCodeProvider(options_.code_cache));
    fl.exec_aborted = reader.aborted();
    fl.blocking_txn = reader.blocking_txn();
    fl.reads = reader.TakeReads();
    fl.writes = view.take_write_set();
    report.instructions += fl.receipt.stats.instructions;
    if (fl.exec_aborted) {
      // Partial execution: charge the instructions actually run plus the
      // reads made so far.
      return penalty + options_.cost.per_tx_ns + fl.receipt.stats.instructions * 2 +
             fl.reads.size() * options_.cost.warm_read_ns;
    }
    ReadSet read_keys;
    for (const ReadRecord& r : fl.reads) {
      read_keys.emplace(r.key, U256{});
    }
    uint64_t total_reads = TotalReadOps(fl.receipt.stats);
    uint64_t cold = std::min(cache.Touch(read_keys), total_reads);
    return penalty +
           cost.ExecutionCost(fl.receipt.stats, cold, total_reads - cold, /*with_ssa=*/false);
  };

  auto run_validate = [&](InFlight& fl) -> uint64_t {
    TxState& t = txs[static_cast<size_t>(fl.task.txn)];
    fl.validation_passed = true;
    for (const ReadRecord& r : t.reads) {
      Version current;  // Base by default.
      auto kit = mv.find(r.key);
      if (kit != mv.end()) {
        auto vit = kit->second.lower_bound(fl.task.txn);
        if (vit != kit->second.begin()) {
          --vit;
          if (vit->second.estimate) {
            fl.validation_passed = false;
            break;
          }
          current = Version{vit->first, vit->second.incarnation};
        }
      }
      if (!(current == r.version)) {
        fl.validation_passed = false;
        break;
      }
    }
    // Scheduler validations are in-memory version compares against the
    // multi-version map — cheaper than the trie-backed commit validation.
    return options_.cost.validate_key_ns * t.reads.size() + 60;
  };

  // --- Effect application at virtual completion time. ---
  auto apply_execute = [&](InFlight& fl) {
    TxState& t = txs[static_cast<size_t>(fl.task.txn)];
    if (fl.task.incarnation != t.incarnation) {
      return;  // Stale incarnation (aborted while running).
    }
    if (fl.exec_aborted) {
      ++report.full_reexecutions;  // This run's work is wasted.
      // Blocking on an ESTIMATE costs a suspend/wake round trip (cheaper
      // than a full abort: no ESTIMATE marking or counter decreases).
      t.abort_penalty += options_.cost.stm_abort_ns / 4;
      TxState& dep = txs[static_cast<size_t>(fl.blocking_txn)];
      if (dep.status == TxStatus::kExecuted) {
        t.status = TxStatus::kReady;  // Dependency resolved meanwhile.
        execution_idx = std::min(execution_idx, fl.task.txn);
      } else {
        t.status = TxStatus::kBlocked;
        dep.dependents.insert(fl.task.txn);
      }
      return;
    }
    // Publish writes; retract stale ones from the previous incarnation.
    bool wrote_new_key = false;
    for (const auto& [key, value] : fl.writes) {
      if (!t.writes.contains(key)) {
        wrote_new_key = true;
      }
      mv[key][fl.task.txn] = WriteVersion{t.incarnation, value, false};
    }
    for (const auto& [key, value] : t.writes) {
      if (!fl.writes.contains(key)) {
        mv[key].erase(fl.task.txn);
      }
    }
    t.reads = std::move(fl.reads);
    t.writes = std::move(fl.writes);
    t.receipt = std::move(fl.receipt);
    t.status = TxStatus::kExecuted;
    t.exec_finish = fl.finish;
    (void)wrote_new_key;
    validation_idx = std::min(validation_idx, fl.task.txn);
    // Wake transactions blocked on us.
    for (int d : t.dependents) {
      TxState& dep = txs[static_cast<size_t>(d)];
      if (dep.status == TxStatus::kBlocked) {
        dep.status = TxStatus::kReady;
        execution_idx = std::min(execution_idx, d);
      }
    }
    t.dependents.clear();
  };

  auto apply_validate = [&](InFlight& fl) {
    TxState& t = txs[static_cast<size_t>(fl.task.txn)];
    if (fl.task.incarnation != t.incarnation || t.status != TxStatus::kExecuted) {
      return;  // Stale.
    }
    if (fl.validation_passed) {
      return;
    }
    // Abort: mark writes as estimates and schedule the next incarnation.
    // The coordination (ESTIMATE flags, counter decreases, rescheduling)
    // delays the next incarnation.
    ++report.conflicts;
    t.abort_penalty += options_.cost.stm_abort_ns;
    for (const auto& [key, value] : t.writes) {
      auto kit = mv.find(key);
      if (kit != mv.end()) {
        auto vit = kit->second.find(fl.task.txn);
        if (vit != kit->second.end()) {
          vit->second.estimate = true;
        }
      }
    }
    ++t.incarnation;
    t.status = TxStatus::kReady;
    execution_idx = std::min(execution_idx, fl.task.txn);
    validation_idx = std::min(validation_idx, fl.task.txn);
  };

  // --- Discrete-event loop over virtual workers. ---
  std::priority_queue<std::pair<uint64_t, int>, std::vector<std::pair<uint64_t, int>>,
                      std::greater<>>
      free_workers;
  for (int w = 0; w < options_.threads; ++w) {
    free_workers.push({0, w});
  }
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> inflight;
  size_t seq = 0;
  uint64_t makespan = 0;
  // Safety valve against scheduler livelock (never hit in practice).
  const size_t kMaxTasks = 1000 + static_cast<size_t>(n) * 200;
  size_t tasks_run = 0;

  while (true) {
    // Apply any completion that precedes the earliest free worker.
    if (!inflight.empty() &&
        (free_workers.empty() || inflight.top().finish <= free_workers.top().first)) {
      InFlight fl = inflight.top();
      inflight.pop();
      makespan = std::max(makespan, fl.finish);
      if (fl.task.kind == Task::Kind::kExecute) {
        apply_execute(fl);
      } else {
        apply_validate(fl);
      }
      free_workers.push({fl.finish, fl.worker});
      continue;
    }
    if (free_workers.empty()) {
      break;  // Nothing free, nothing in flight.
    }
    auto [now, worker] = free_workers.top();
    std::optional<Task> task = fetch_next();
    if (!task.has_value()) {
      if (inflight.empty()) {
        break;  // Quiescent: done.
      }
      // Idle until the next completion re-opens work.
      free_workers.pop();
      free_workers.push({inflight.top().finish, worker});
      continue;
    }
    free_workers.pop();
    if (++tasks_run > kMaxTasks) {
      break;  // Livelock guard; the commit sweep below repairs serially.
    }
    InFlight fl;
    fl.task = *task;
    fl.seq = seq++;
    fl.worker = worker;
    uint64_t duration = fl.task.kind == Task::Kind::kExecute ? run_execute(fl) : run_validate(fl);
    fl.finish = now + options_.cost.dispatch_ns + duration;
    inflight.push(std::move(fl));
  }

  // The prefetcher must be quiescent before the commit sweep below starts
  // mutating `state` and the accounting pass updates the hint table.
  if (engine) {
    engine->Finish();
    report.prefetch_wall_ns += engine->warm_wall_ns();
  }
  if (account_prefetch) {
    std::vector<ReadSet> observed(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      for (const ReadRecord& r : txs[static_cast<size_t>(j)].reads) {
        if (r.version.txn == -1) {  // Base reads only: mv hits never touch storage.
          observed[static_cast<size_t>(j)].emplace(r.key, r.value);
        }
      }
    }
    std::vector<const ReadSet*> reads(static_cast<size_t>(n), nullptr);
    for (int j = 0; j < n; ++j) {
      reads[static_cast<size_t>(j)] = &observed[static_cast<size_t>(j)];
    }
    AccountPrefetch(*store, requests, reads, report);
  }
  report.read_wall_ns = block_timer.ElapsedNs();

  // --- Commit sweep: verify each transaction's reads against the now-
  // committed state by value, then apply its write set in block order. At
  // quiescence Block-STM guarantees consistency, so re-executions here are
  // a correctness net for the livelock-guard path only. The sweep pipelines
  // with the scheduler: committing transaction j waits only for j's own
  // final execution (and the preceding commits), not the whole DES.
  WallTimer commit_timer;
  PEVM_TRACE_SPAN_ARG("exec.commit_loop", "txs", n);
  uint64_t t = 0;
  U256 fees;
  // Hot-key attribution covers the commit sweep's value validation only; the
  // scheduler's version-based aborts above live in multi-version memory and
  // are counted in report.conflicts, not per key.
  ConflictAttribution attribution;
  std::unordered_set<StateKey, StateKeyHash> stale;  // Dedup: reads may repeat keys.
  for (int j = 0; j < n; ++j) {
    TxState& tx_state = txs[static_cast<size_t>(j)];
    bool consistent = tx_state.status == TxStatus::kExecuted;
    t = std::max(t, tx_state.exec_finish);
    t += cost.ValidationCost(tx_state.reads.size());  // Final in-order check.
    if (consistent) {
      // Full scan (no break on the first mismatch) so every stale key is
      // attributed; the virtual cost already charges the whole read set and
      // state.Get has no side effects, so this cannot perturb the oracle.
      stale.clear();
      for (const ReadRecord& r : tx_state.reads) {
        if (state.Get(r.key) != r.value) {
          stale.insert(r.key);
        }
      }
      consistent = stale.empty();
      if (!consistent) {
        PEVM_TRACE_INSTANT_ARG("exec.conflict", "tx", j);
        for (const StateKey& key : stale) {
          attribution.Record(key, ConflictOutcome::kFallback);
        }
      }
    }
    if (!consistent) {
      ++report.full_reexecutions;
      t += FullReexecute(block, static_cast<size_t>(j), state, cache, cost, store, fees,
                         report, StaticCodeProvider(options_.code_cache));
      continue;
    }
    t += CommitResult(std::move(tx_state.receipt), std::move(tx_state.writes), state, cost,
                      fees, report);
  }
  report.conflict_keys = attribution.Sorted();

  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t + options_.cost.per_block_ns;
  report.commit_wall_ns = commit_timer.ElapsedNs();
  report.wall_ns = block_timer.ElapsedNs();
  return report;
}

}  // namespace pevm
