// Block-STM (Gelashvili et al., PPoPP '23), the strongest transaction-level
// baseline the paper compares against: optimistic execution over a
// multi-version memory with ESTIMATE markers, a collaborative scheduler
// interleaving execution and validation tasks across workers, incarnation
// counters, and dependency-based blocking. Executions and validations are
// performed for real (against the actual multi-version state); worker timing
// is a deterministic discrete-event simulation on virtual threads
// (DESIGN.md §3.2).
#ifndef SRC_BASELINES_BLOCK_STM_H_
#define SRC_BASELINES_BLOCK_STM_H_

#include "src/exec/executor.h"

namespace pevm {

class BlockStmExecutor final : public Executor {
 public:
  explicit BlockStmExecutor(const ExecOptions& options) : options_(options) {}

  std::string_view name() const override { return "block-stm"; }
  BlockReport Execute(const Block& block, WorldState& state) override;
  SimStore* chain_store() override { return EnsureSimStore(options_, sim_store_); }

 private:
  ExecOptions options_;
  std::unique_ptr<SimStore> sim_store_;  // See parallel_evm.h.
};

}  // namespace pevm

#endif  // SRC_BASELINES_BLOCK_STM_H_
