// The baseline: Geth-style in-order sequential execution. Every other
// executor's post-state must match this one's, and speedups are measured
// against its makespan.
#ifndef SRC_BASELINES_SERIAL_H_
#define SRC_BASELINES_SERIAL_H_

#include "src/exec/executor.h"

namespace pevm {

class SerialExecutor final : public Executor {
 public:
  explicit SerialExecutor(const ExecOptions& options) : options_(options) {}

  std::string_view name() const override { return "serial"; }
  BlockReport Execute(const Block& block, WorldState& state) override;
  SimStore* chain_store() override { return EnsureSimStore(options_, sim_store_); }

 private:
  ExecOptions options_;
  std::unique_ptr<SimStore> sim_store_;  // See parallel_evm.h.
};

}  // namespace pevm

#endif  // SRC_BASELINES_SERIAL_H_
