#include "src/baselines/serial.h"

#include <optional>
#include <vector>

#include "src/exec/apply.h"
#include "src/codecache/code_cache.h"
#include "src/exec/pipeline.h"
#include "src/state/state_view.h"

namespace pevm {

BlockReport SerialExecutor::Execute(const Block& block, WorldState& state) {
  WallTimer block_timer;
  CostModel cost(options_.cost);
  StateCache cache(options_.prefetch);
  SimStore* store = EnsureSimStore(options_, sim_store_);
  BlockReport report;
  size_t n = block.transactions.size();
  report.receipts.reserve(n);

  // Serial execution still benefits from the async pipeline: the engine
  // warms transaction i + depth's predicted keys while transaction i
  // executes (this is the paper's Table-2 "Prefetch" row, made wall-clock).
  // In chain mode (external_warmup) the runner's stage 1 already warmed the
  // block, so only the deterministic accounting remains.
  if (store && !options_.external_warmup) {
    store->BeginBlock();
  }
  const bool account_prefetch = store && options_.prefetch_depth > 0 && n > 0;
  std::vector<PrefetchRequest> requests;
  std::optional<PrefetchEngine> engine;
  if (account_prefetch) {
    requests = BuildPrefetchRequests(block);
    if (!options_.external_warmup) {
      engine.emplace(*store, requests, options_.prefetch_depth);
    }
  }
  std::vector<ReadSet> observed;  // Per-tx read sets for prefetch accounting.
  if (account_prefetch) {
    observed.reserve(n);
  }

  uint64_t t = 0;
  U256 fees;
  for (size_t i = 0; i < n; ++i) {
    const Transaction& tx = block.transactions[i];
    if (engine) {
      engine->NotifyStarted(i);
    }
    std::optional<SimStoreReader> reader;
    std::optional<StateView> view;  // In-place: StateView is self-referential.
    if (store) {
      reader.emplace(*store, state);
      view.emplace(*reader);
    } else {
      view.emplace(state);
    }
    Receipt receipt = ApplyTransaction(*view, block.context, tx, nullptr,
                                       StaticCodeProvider(options_.code_cache));
    uint64_t cold = cache.Touch(view->read_set());
    uint64_t warm = TotalReadOps(receipt.stats) - std::min(TotalReadOps(receipt.stats), cold);
    t += cost.ExecutionCost(receipt.stats, cold, warm, /*with_ssa=*/false);
    report.instructions += receipt.stats.instructions;
    if (account_prefetch) {
      observed.push_back(view->read_set());
    }
    if (receipt.valid) {
      t += cost.CommitCost(view->write_set().size());
      state.Apply(view->write_set());
      fees = fees + receipt.fee;
    }
    report.receipts.push_back(std::move(receipt));
  }
  if (engine) {
    engine->Finish();
    report.prefetch_wall_ns += engine->warm_wall_ns();
  }
  if (account_prefetch) {
    std::vector<const ReadSet*> reads(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      reads[i] = &observed[i];
    }
    AccountPrefetch(*store, requests, reads, report);
  }
  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t;
  report.wall_ns = block_timer.ElapsedNs();
  return report;
}

}  // namespace pevm
