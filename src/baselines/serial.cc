#include "src/baselines/serial.h"

#include "src/exec/apply.h"
#include "src/exec/pipeline.h"
#include "src/state/state_view.h"

namespace pevm {

BlockReport SerialExecutor::Execute(const Block& block, WorldState& state) {
  WallTimer block_timer;
  CostModel cost(options_.cost);
  StateCache cache(options_.prefetch);
  BlockReport report;
  report.receipts.reserve(block.transactions.size());
  uint64_t t = 0;
  U256 fees;
  for (const Transaction& tx : block.transactions) {
    StateView view(state);
    Receipt receipt = ApplyTransaction(view, block.context, tx);
    uint64_t cold = cache.Touch(view.read_set());
    uint64_t warm = TotalReadOps(receipt.stats) - std::min(TotalReadOps(receipt.stats), cold);
    t += cost.ExecutionCost(receipt.stats, cold, warm, /*with_ssa=*/false);
    report.instructions += receipt.stats.instructions;
    if (receipt.valid) {
      t += cost.CommitCost(view.write_set().size());
      state.Apply(view.write_set());
      fees = fees + receipt.fee;
    }
    report.receipts.push_back(std::move(receipt));
  }
  CreditCoinbase(state, block.context.coinbase, fees);
  report.makespan_ns = t;
  report.wall_ns = block_timer.ElapsedNs();
  return report;
}

}  // namespace pevm
