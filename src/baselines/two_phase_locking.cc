#include "src/baselines/two_phase_locking.h"

#include <functional>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/exec/apply.h"
#include "src/codecache/code_cache.h"
#include "src/exec/pipeline.h"
#include "src/state/state_view.h"

namespace pevm {
namespace {

constexpr uint64_t kLockOpNs = 60;  // Lock-table access per acquisition/release.
// Handing a contended lock to a parked thread costs a futex wake plus a
// scheduling delay — the convoy effect that makes lock-based execution
// collapse under hot-spot contention.
constexpr uint64_t kLockWakeupNs = 7000;

enum class St { kIdle, kRunning, kWaiting, kExecuted, kCommitted };

struct TxSim {
  std::vector<StateKey> points;  // Lock-acquisition order (first accesses).
  uint64_t exec_cost = 0;
  uint64_t seg_cost = 0;  // exec_cost spread over points.size()+1 segments.
  size_t next_point = 0;
  St st = St::kIdle;
  std::vector<StateKey> held;
  std::optional<StateKey> waiting_on;
  int worker = -1;
  uint64_t epoch = 0;  // Invalidates in-flight events after a wound.
  int aborts = 0;
};

struct LockState {
  int owner = -1;
  std::set<int> waiters;  // Ordered: the oldest (lowest index) wins.
};

struct Event {
  uint64_t time = 0;
  uint64_t seq = 0;
  int tx = -1;
  uint64_t epoch = 0;
  friend bool operator>(const Event& a, const Event& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

}  // namespace

BlockReport TwoPhaseLockingExecutor::Execute(const Block& block, WorldState& state) {
  WallTimer block_timer;
  CostModel cost(options_.cost);
  StateCache cache(options_.prefetch);
  BlockReport report;
  const int n = static_cast<int>(block.transactions.size());

  // --- Pre-pass: serial semantics + per-transaction traces/costs. ---
  std::vector<TxSim> sims(static_cast<size_t>(n));
  std::vector<size_t> write_counts(static_cast<size_t>(n), 0);
  U256 fees;
  for (int i = 0; i < n; ++i) {
    StateView view(state);
    Receipt receipt = ApplyTransaction(view, block.context, block.transactions[static_cast<size_t>(i)],
                                       nullptr, StaticCodeProvider(options_.code_cache));
    TxSim& sim = sims[static_cast<size_t>(i)];
    std::unordered_set<StateKey, StateKeyHash> seen;
    for (const StateKey& key : view.read_order()) {
      if (seen.insert(key).second) {
        sim.points.push_back(key);
      }
    }
    for (const auto& [key, value] : view.write_set()) {
      if (seen.insert(key).second) {
        sim.points.push_back(key);
      }
    }
    uint64_t total_reads = TotalReadOps(receipt.stats);
    uint64_t cold = std::min(cache.Touch(view.read_set()), total_reads);
    sim.exec_cost =
        cost.ExecutionCost(receipt.stats, cold, total_reads - cold, /*with_ssa=*/false);
    sim.seg_cost = sim.exec_cost / (sim.points.size() + 1);
    write_counts[static_cast<size_t>(i)] = view.write_set().size();
    report.instructions += receipt.stats.instructions;
    if (receipt.valid) {
      state.Apply(view.write_set());
      fees = fees + receipt.fee;
    }
    report.receipts.push_back(std::move(receipt));
  }
  CreditCoinbase(state, block.context.coinbase, fees);

  // --- Lock-contention simulation (wound-wait, in-order commit). ---
  std::unordered_map<StateKey, LockState, StateKeyHash> locks;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  uint64_t seq = 0;
  int next_tx_to_start = 0;
  int commit_upto = 0;
  uint64_t commit_tail = 0;  // When the previous commit finished.
  uint64_t makespan = 0;

  auto schedule = [&](int tx, uint64_t time) {
    events.push(Event{time, seq++, tx, sims[static_cast<size_t>(tx)].epoch});
  };

  auto start_tx = [&](int tx, int worker, uint64_t time) {
    TxSim& sim = sims[static_cast<size_t>(tx)];
    sim.worker = worker;
    sim.st = St::kRunning;
    sim.next_point = 0;
    sim.held.clear();
    sim.waiting_on.reset();
    ++sim.epoch;
    schedule(tx, time + sim.seg_cost);
  };

  // Forward declarations via std::function to allow mutual recursion.
  std::function<void(const StateKey&, uint64_t)> resolve_lock;
  std::function<void(int, uint64_t)> wound;
  std::function<void(int, uint64_t)> granted;
  std::function<void(uint64_t)> try_commit_chain;

  granted = [&](int tx, uint64_t time) {
    TxSim& sim = sims[static_cast<size_t>(tx)];
    bool was_parked = sim.st == St::kWaiting;
    sim.held.push_back(sim.points[sim.next_point]);
    sim.waiting_on.reset();
    sim.st = St::kRunning;
    ++sim.next_point;
    uint64_t wakeup = was_parked ? kLockWakeupNs : 0;
    schedule(tx, time + kLockOpNs + wakeup + sim.seg_cost);
  };

  wound = [&](int victim, uint64_t time) {
    TxSim& sim = sims[static_cast<size_t>(victim)];
    ++report.lock_aborts;
    ++sim.aborts;
    std::vector<StateKey> released = std::move(sim.held);
    sim.held.clear();
    if (sim.waiting_on.has_value()) {
      locks[*sim.waiting_on].waiters.erase(victim);
      sim.waiting_on.reset();
    }
    for (const StateKey& key : released) {
      locks[key].owner = -1;
    }
    // Naive immediate retry (as the paper describes): the wound wastes the
    // partial execution and the victim restarts from scratch.
    sim.st = St::kRunning;
    sim.next_point = 0;
    ++sim.epoch;
    uint64_t backoff = kLockWakeupNs + sim.exec_cost / 8;
    schedule(victim, time + backoff + sim.seg_cost);
    for (const StateKey& key : released) {
      resolve_lock(key, time);
    }
  };

  resolve_lock = [&](const StateKey& key, uint64_t time) {
    LockState& lock = locks[key];
    if (lock.waiters.empty()) {
      return;
    }
    int oldest = *lock.waiters.begin();
    if (lock.owner == -1) {
      lock.waiters.erase(lock.waiters.begin());
      lock.owner = oldest;
      granted(oldest, time);
      return;
    }
    if (oldest < lock.owner) {
      wound(lock.owner, time);  // Releases this lock and recursively resolves.
    }
  };

  try_commit_chain = [&](uint64_t time) {
    while (commit_upto < n && sims[static_cast<size_t>(commit_upto)].st == St::kExecuted) {
      TxSim& sim = sims[static_cast<size_t>(commit_upto)];
      uint64_t start = std::max(time, commit_tail);
      uint64_t end = start + cost.CommitCost(write_counts[static_cast<size_t>(commit_upto)]) +
                     kLockOpNs * sim.held.size();
      commit_tail = end;
      makespan = std::max(makespan, end);
      sim.st = St::kCommitted;
      std::vector<StateKey> released = std::move(sim.held);
      for (const StateKey& key : released) {
        locks[key].owner = -1;
      }
      int worker = sim.worker;
      ++commit_upto;
      for (const StateKey& key : released) {
        resolve_lock(key, end);
      }
      if (next_tx_to_start < n) {
        start_tx(next_tx_to_start++, worker, end);
      }
      time = end;
    }
  };

  int initial = std::min(options_.threads, n);
  for (int w = 0; w < initial; ++w) {
    start_tx(next_tx_to_start++, w, 0);
  }

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    TxSim& sim = sims[static_cast<size_t>(ev.tx)];
    if (ev.epoch != sim.epoch || sim.st != St::kRunning) {
      continue;  // Stale event (wounded or already blocked meanwhile).
    }
    if (sim.next_point >= sim.points.size()) {
      sim.st = St::kExecuted;
      makespan = std::max(makespan, ev.time);
      try_commit_chain(ev.time);
      continue;
    }
    const StateKey& key = sim.points[sim.next_point];
    LockState& lock = locks[key];
    if (lock.owner == -1 || lock.owner == ev.tx) {
      if (lock.owner == -1) {
        lock.owner = ev.tx;
      }
      granted(ev.tx, ev.time);
      continue;
    }
    sim.st = St::kWaiting;
    sim.waiting_on = key;
    lock.waiters.insert(ev.tx);
    resolve_lock(key, ev.time);
  }

  report.conflicts = report.lock_aborts;
  report.makespan_ns = makespan + options_.cost.per_block_ns;
  report.wall_ns = block_timer.ElapsedNs();
  return report;
}

}  // namespace pevm
