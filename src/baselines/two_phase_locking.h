// Block-ordered two-phase locking (paper §2.2 / §6.3): transactions acquire
// exclusive per-key locks as they execute; priority follows block order
// (wound-wait: an earlier transaction needing a lock held by a later one
// aborts the later one), locks are held until the in-order commit. This is
// the pessimistic baseline — on hot-spot workloads it degrades to near-serial
// (the paper measures 1.26x).
//
// State semantics come from a serial pre-pass (2PL with in-order commit is
// serializable in block order by construction); the lock-contention
// discrete-event simulation on virtual threads provides the timing
// (DESIGN.md §3.2). Lock-acquisition traces are the per-transaction
// first-access orders recorded by the pre-pass.
#ifndef SRC_BASELINES_TWO_PHASE_LOCKING_H_
#define SRC_BASELINES_TWO_PHASE_LOCKING_H_

#include "src/exec/executor.h"

namespace pevm {

class TwoPhaseLockingExecutor final : public Executor {
 public:
  explicit TwoPhaseLockingExecutor(const ExecOptions& options) : options_(options) {}

  std::string_view name() const override { return "2pl"; }
  BlockReport Execute(const Block& block, WorldState& state) override;

 private:
  ExecOptions options_;
};

}  // namespace pevm

#endif  // SRC_BASELINES_TWO_PHASE_LOCKING_H_
