// The metrics registry: named counters, gauges, and fixed-bucket latency
// histograms (power-of-two nanosecond buckets, interpolated p50/p95/p99),
// snapshotted to JSON. Complements the trace recorder: traces answer "where
// did this run's time go", metrics answer "what were the rates and tails".
//
// Cost contract: an enabled counter bump is one relaxed fetch_add; a
// histogram observation is a bit_width + two relaxed fetch_adds. Lookup by
// name takes a mutex — instrumentation sites cache the returned reference in
// a function-local static so the hot path never touches the registry map.
//
// Inertness: like the trace recorder, metrics only observe — typically
// piggybacking on durations the code already measures for wall-clock
// BlockReport fields — and never feed anything back into execution.
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pevm::telemetry {

class Counter {
 public:
  void Add(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Clear() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Clear() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: bucket i holds values whose bit width is i, i.e.
// 0 → {0}, 1 → {1}, 2 → {2,3}, 3 → {4..7}, ... 64 buckets cover uint64_t.
// Quantiles interpolate linearly inside the selected bucket, so p99 of
// nanosecond latencies is exact to within a factor-of-2 bucket's width.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }
  // Quantile in [0,1] → interpolated value; 0 if the histogram is empty.
  double Quantile(double q) const;
  void Clear();

  // Inclusive [lo, hi] value range of bucket i.
  static uint64_t BucketLo(size_t i);
  static uint64_t BucketHi(size_t i);

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Registry lookups: create-on-first-use, stable references for the process
// lifetime. Cache the reference at the instrumentation site:
//   static auto& fsyncs = telemetry::GetCounter("kv.fsyncs");
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);

// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
// {name: {count, sum, p50, p95, p99, buckets: [{lo, hi, count}...]}}},
// keys sorted by name.
std::string MetricsJson();
bool WriteMetricsJson(const std::string& path);

// Prometheus text exposition format (the ops server's GET /metrics body):
// counters as `# TYPE x counter` + value rows, gauges likewise, histograms as
// the standard cumulative `x_bucket{le="..."}` series (one row per non-empty
// power-of-two bucket plus the mandatory le="+Inf" row, which equals x_count)
// with `x_sum` / `x_count`. Registry names are sanitized for the Prometheus
// charset: every byte outside [a-zA-Z0-9_:] (the registry's '.' separators
// in particular) becomes '_'. Safe to call while instrumentation threads keep
// writing — every value is a relaxed atomic read, and each histogram's bucket
// array is snapshotted before rendering so the cumulative series is monotone
// within one scrape.
std::string MetricsPrometheus();

// Zeroes every registered metric (registrations survive). Test hygiene.
void ClearMetrics();

}  // namespace pevm::telemetry

#endif  // SRC_TELEMETRY_METRICS_H_
