// The trace recorder: per-thread lock-free ring buffers of span / instant /
// counter events, exported as Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing). Built for the question the aggregate BlockReport /
// ChainReport counters cannot answer: *where inside a run* the wall time goes
// — which thread was executing, which was waiting on a queue, whether the
// committer really hashed under the executor's cold-read stalls.
//
// Cost contract:
//   - Compiled out entirely (macros expand to nothing) when the tree is built
//     with -DPEVM_TELEMETRY=OFF (PEVM_TELEMETRY_DISABLED).
//   - Runtime-disabled (the default): one relaxed atomic load per macro site.
//   - Enabled: one monotonic-clock read per span edge (a vDSO TSC read +
//     scale on Linux/x86) plus a handful of relaxed stores into the calling
//     thread's own ring buffer — no locks, no allocation on the hot path.
//
// Inertness contract (DESIGN.md §4.3): the recorder only *observes* the wall
// clock. It never feeds a value back into execution, never touches the
// virtual-time cost model, and never synchronizes threads that were not
// already synchronized — so state roots, receipts, virtual makespans and every
// deterministic BlockReport counter are bit-identical with tracing on or off
// (tests/telemetry_test.cc proves it across all executors and thread counts).
//
// Concurrency: each ring buffer has exactly one writer (its thread); the
// exporter reads concurrently through the same atomic slots, so a torn
// in-flight event can at worst surface as one garbled entry in the JSON,
// never as UB or a TSan report. When the ring wraps, the oldest events are
// overwritten (the export notes how many were dropped).
#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pevm::telemetry {

// --- Runtime switch. ------------------------------------------------------

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }

// Flips recording globally. Already-buffered events are kept; use Reset() to
// drop them. Threads observe the flip on their next event (relaxed — tracing
// needs no cross-thread ordering of its own).
void SetEnabled(bool enabled);

// Drops every buffered event (buffers and thread registrations survive, so
// long-lived pool threads keep recording). Test / between-run hygiene.
void Reset();

// Names the calling thread in the exported trace ("chain-exec", "kv-compact",
// ...). Idempotent; last call wins. Safe before or after the thread's first
// event.
void SetThreadName(const char* name);

// Ring capacity (events per thread) for buffers registered *after* the call;
// rounded up to a power of two, minimum 8. Existing buffers keep their size.
// Default 32768 events (~1.5 MB per thread). Returns the applied capacity.
size_t SetRingCapacity(size_t events);

// --- Recording. -----------------------------------------------------------

enum class EventKind : uint8_t {
  kNone = 0,  // Empty slot (never exported).
  kSpan,      // Duration event: [begin_ns, end_ns].
  kInstant,   // Point event at begin_ns.
  kCounter,   // Sampled value (arg) at begin_ns; Perfetto draws a track.
};

// Monotonic wall-clock nanoseconds (steady_clock: a vDSO clock_gettime —
// i.e. one TSC read plus a scale — on Linux). The ONLY clock telemetry may
// read: never the virtual-time oracle.
uint64_t NowNs();

// Low-level emitters; prefer the PEVM_TRACE_* macros below, which compile out
// with PEVM_TELEMETRY_DISABLED and check Enabled() exactly once per site.
// `name` and `arg_name` must be string literals (stored by pointer).
void EmitSpan(const char* name, uint64_t begin_ns, uint64_t end_ns,
              const char* arg_name = nullptr, uint64_t arg = 0);
void EmitInstant(const char* name, const char* arg_name = nullptr, uint64_t arg = 0);
void EmitCounter(const char* name, uint64_t value);

// RAII span: records [construction, destruction) on the calling thread.
class Span {
 public:
  explicit Span(const char* name) : name_(Enabled() ? name : nullptr) {
    if (name_ != nullptr) {
      begin_ns_ = NowNs();
    }
  }
  Span(const char* name, const char* arg_name, uint64_t arg)
      : name_(Enabled() ? name : nullptr), arg_name_(arg_name), arg_(arg) {
    if (name_ != nullptr) {
      begin_ns_ = NowNs();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      EmitSpan(name_, begin_ns_, NowNs(), arg_name_, arg_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  // nullptr = recording was off at construction.
  const char* arg_name_ = nullptr;
  uint64_t arg_ = 0;
  uint64_t begin_ns_ = 0;
};

// --- Export. --------------------------------------------------------------

// Serializes every buffered event as a Chrome trace_event JSON object
// ({"traceEvents": [...]}), including thread-name metadata rows so Perfetto
// labels the real threads. Spans still open (Span objects alive) are absent —
// export after the run quiesces.
std::string ChromeTraceJson();

// ChromeTraceJson() to `path`; returns false (errno preserved) on I/O error.
bool WriteChromeTrace(const std::string& path);

// Events dropped to ring wraparound since the last Reset(), summed over all
// threads (also embedded in the export as metadata).
uint64_t DroppedEvents();

// Registered thread-buffer count (test introspection).
size_t RegisteredThreads();

// Live per-thread ring introspection. Sampled while writers keep pushing:
// counts are relaxed atomic reads, so a sample can be one event stale but
// never torn. Ordered by registration (tid ascending).
struct RingStats {
  uint64_t tid = 0;
  std::string thread_name;
  uint64_t events_pushed = 0;  // Lifetime pushes (monotone per thread).
  uint64_t dropped = 0;        // Overwritten by ring wraparound.
  size_t occupancy = 0;        // Events currently resident (≤ capacity).
  size_t capacity = 0;
};
std::vector<RingStats> TraceRingStats();

// Publishes the recorder's own health into the metrics registry:
// "trace.dropped_events" and "trace.ring_threads" plus a per-thread
// "trace.ring_occupancy.t<tid>" gauge — so ring-buffer undersizing shows up
// on a live /metrics scrape instead of only in the post-run JSON export. The
// ops server calls this on every scrape; benches call it once before the
// --metrics= snapshot.
void UpdateTraceGauges();

}  // namespace pevm::telemetry

// --- Macros: the only instrumentation surface the rest of the tree uses. ---
//
// PEVM_TRACE_SPAN(name)                 — scoped span, current scope.
// PEVM_TRACE_SPAN_ARG(name, k, v)       — scoped span with one uint64 arg.
// PEVM_TRACE_INSTANT(name)              — point event.
// PEVM_TRACE_INSTANT_ARG(name, k, v)    — point event with one uint64 arg.
// PEVM_TRACE_COUNTER(name, value)       — counter sample (Perfetto track).
// PEVM_TRACE_THREAD_NAME(name)          — label the calling thread.
#if defined(PEVM_TELEMETRY_DISABLED)

#define PEVM_TRACE_SPAN(name)
#define PEVM_TRACE_SPAN_ARG(name, arg_name, arg)
#define PEVM_TRACE_INSTANT(name)
#define PEVM_TRACE_INSTANT_ARG(name, arg_name, arg)
#define PEVM_TRACE_COUNTER(name, value)
#define PEVM_TRACE_THREAD_NAME(name)

#else

#define PEVM_TRACE_CONCAT2(a, b) a##b
#define PEVM_TRACE_CONCAT(a, b) PEVM_TRACE_CONCAT2(a, b)
#define PEVM_TRACE_SPAN(name) \
  ::pevm::telemetry::Span PEVM_TRACE_CONCAT(pevm_trace_span_, __LINE__)(name)
#define PEVM_TRACE_SPAN_ARG(name, arg_name, arg) \
  ::pevm::telemetry::Span PEVM_TRACE_CONCAT(pevm_trace_span_, __LINE__)( \
      name, arg_name, static_cast<uint64_t>(arg))
#define PEVM_TRACE_INSTANT(name)                 \
  do {                                           \
    if (::pevm::telemetry::Enabled()) {          \
      ::pevm::telemetry::EmitInstant(name);      \
    }                                            \
  } while (0)
#define PEVM_TRACE_INSTANT_ARG(name, arg_name, arg)                                    \
  do {                                                                                 \
    if (::pevm::telemetry::Enabled()) {                                                \
      ::pevm::telemetry::EmitInstant(name, arg_name, static_cast<uint64_t>(arg));      \
    }                                                                                  \
  } while (0)
#define PEVM_TRACE_COUNTER(name, value)                                    \
  do {                                                                     \
    if (::pevm::telemetry::Enabled()) {                                    \
      ::pevm::telemetry::EmitCounter(name, static_cast<uint64_t>(value));  \
    }                                                                      \
  } while (0)
#define PEVM_TRACE_THREAD_NAME(name) ::pevm::telemetry::SetThreadName(name)

#endif  // PEVM_TELEMETRY_DISABLED

#endif  // SRC_TELEMETRY_TRACE_H_
