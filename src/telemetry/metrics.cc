#include "src/telemetry/metrics.h"

#include <bit>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace pevm::telemetry {

void Histogram::Observe(uint64_t value) {
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::BucketLo(size_t i) {
  return i == 0 ? 0 : uint64_t{1} << (i - 1);
}

uint64_t Histogram::BucketHi(size_t i) {
  if (i == 0) {
    return 0;
  }
  if (i >= 64) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << i) - 1;
}

double Histogram::Quantile(double q) const {
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Snapshot counts first so a concurrent Observe cannot push the target rank
  // past the cumulative total.
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0.0;
  }
  double rank = q * static_cast<double>(total);
  double cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) {
      continue;
    }
    double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank) {
      double within = counts[i] == 0 ? 0.0 : (rank - cumulative) / static_cast<double>(counts[i]);
      double lo = static_cast<double>(BucketLo(i));
      double hi = static_cast<double>(BucketHi(i));
      return lo + (hi - lo) * within;
    }
    cumulative = next;
  }
  return static_cast<double>(BucketHi(kBuckets - 1));
}

void Histogram::Clear() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

// std::map keeps the JSON snapshot sorted; unique_ptr keeps references stable
// across rehashing-free growth. Leaked for the same shutdown-order reason as
// the trace registry.
struct MetricsRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

template <typename T>
T& GetOrCreate(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
               std::string_view name, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

Counter& GetCounter(std::string_view name) {
  MetricsRegistry& registry = GlobalMetrics();
  return GetOrCreate(registry.counters, name, registry.mu);
}

Gauge& GetGauge(std::string_view name) {
  MetricsRegistry& registry = GlobalMetrics();
  return GetOrCreate(registry.gauges, name, registry.mu);
}

Histogram& GetHistogram(std::string_view name) {
  MetricsRegistry& registry = GlobalMetrics();
  return GetOrCreate(registry.histograms, name, registry.mu);
}

std::string MetricsJson() {
  MetricsRegistry& registry = GlobalMetrics();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::string out = "{\n\"counters\": {";
  // Sized for the histogram header row: ~70 literal chars + two 20-digit
  // integers + three %.1f doubles that can themselves reach 20+ chars.
  char buf[256];
  bool first = true;
  for (const auto& [name, counter] : registry.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"";
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf), "\": %llu",
                  static_cast<unsigned long long>(counter->value()));
    out += buf;
  }
  out += "\n},\n\"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"";
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf), "\": %lld", static_cast<long long>(gauge->value()));
    out += buf;
  }
  out += "\n},\n\"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : registry.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  \"";
    AppendEscaped(out, name);
    std::snprintf(buf, sizeof(buf),
                  "\": {\"count\": %llu, \"sum\": %llu, \"p50\": %.1f, \"p95\": %.1f, "
                  "\"p99\": %.1f, \"buckets\": [",
                  static_cast<unsigned long long>(histogram->count()),
                  static_cast<unsigned long long>(histogram->sum()), histogram->Quantile(0.50),
                  histogram->Quantile(0.95), histogram->Quantile(0.99));
    out += buf;
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t count = histogram->bucket_count(i);
      if (count == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ", ";
      }
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "{\"lo\": %llu, \"hi\": %llu, \"count\": %llu}",
                    static_cast<unsigned long long>(Histogram::BucketLo(i)),
                    static_cast<unsigned long long>(Histogram::BucketHi(i)),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
    out += "]}";
  }
  out += "\n}\n}\n";
  return out;
}

namespace {

// Prometheus metric-name charset is [a-zA-Z0-9_:]; the registry's dotted
// names ("chain.exec_block_ns") become underscored ("chain_exec_block_ns").
void AppendPromName(std::string& out, const std::string& name) {
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
}

}  // namespace

std::string MetricsPrometheus() {
  MetricsRegistry& registry = GlobalMetrics();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::string out;
  out.reserve(1u << 14);
  char buf[128];
  for (const auto& [name, counter] : registry.counters) {
    out += "# TYPE ";
    AppendPromName(out, name);
    out += " counter\n";
    AppendPromName(out, name);
    std::snprintf(buf, sizeof(buf), " %llu\n", static_cast<unsigned long long>(counter->value()));
    out += buf;
  }
  for (const auto& [name, gauge] : registry.gauges) {
    out += "# TYPE ";
    AppendPromName(out, name);
    out += " gauge\n";
    AppendPromName(out, name);
    std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(gauge->value()));
    out += buf;
  }
  for (const auto& [name, histogram] : registry.histograms) {
    // Snapshot the buckets first, then derive _count from the same snapshot:
    // the le="+Inf" row MUST equal _count within one scrape even while
    // observers keep appending (the live count_ may already be ahead).
    uint64_t counts[Histogram::kBuckets];
    uint64_t total = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      counts[i] = histogram->bucket_count(i);
      total += counts[i];
    }
    out += "# TYPE ";
    AppendPromName(out, name);
    out += " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += counts[i];
      // Bucket 64's upper bound is UINT64_MAX; it is represented by the
      // mandatory +Inf row below instead of a 20-digit le value.
      if (counts[i] == 0 || i >= 64) {
        continue;
      }
      AppendPromName(out, name);
      std::snprintf(buf, sizeof(buf), "_bucket{le=\"%llu\"} %llu\n",
                    static_cast<unsigned long long>(Histogram::BucketHi(i)),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    AppendPromName(out, name);
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %llu\n",
                  static_cast<unsigned long long>(total));
    out += buf;
    AppendPromName(out, name);
    std::snprintf(buf, sizeof(buf), "_sum %llu\n",
                  static_cast<unsigned long long>(histogram->sum()));
    out += buf;
    AppendPromName(out, name);
    std::snprintf(buf, sizeof(buf), "_count %llu\n", static_cast<unsigned long long>(total));
    out += buf;
  }
  return out;
}

bool WriteMetricsJson(const std::string& path) {
  std::string json = MetricsJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

void ClearMetrics() {
  MetricsRegistry& registry = GlobalMetrics();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, counter] : registry.counters) {
    counter->Clear();
  }
  for (auto& [name, gauge] : registry.gauges) {
    gauge->Clear();
  }
  for (auto& [name, histogram] : registry.histograms) {
    histogram->Clear();
  }
}

}  // namespace pevm::telemetry
