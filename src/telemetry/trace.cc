#include "src/telemetry/trace.h"

#include "src/telemetry/metrics.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace pevm::telemetry {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

// One ring slot. Every field is an atomic so the exporter may read while the
// owning thread overwrites a wrapped slot: the worst case is one garbled
// event in the output, never UB. Relaxed everywhere — ordering comes from the
// buffer head's release/acquire pair.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> arg_name{nullptr};
  std::atomic<uint64_t> arg{0};
  std::atomic<uint64_t> begin_ns{0};
  std::atomic<uint64_t> end_ns{0};
  std::atomic<uint8_t> kind{0};
};

struct ThreadBuffer {
  explicit ThreadBuffer(size_t cap, uint64_t id)
      : capacity(cap), mask(cap - 1), slots(new Slot[cap]), tid(id) {}

  const size_t capacity;  // Power of two.
  const size_t mask;
  std::unique_ptr<Slot[]> slots;
  std::atomic<uint64_t> head{0};  // Events ever pushed by the owner thread.
  const uint64_t tid;
  std::mutex name_mu;
  std::string name = "thread";
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint64_t next_tid = 1;
  size_t ring_capacity = 1u << 15;
};

// Leaked intentionally: pool / compaction threads may emit events during
// static destruction, after a function-local static would have died.
Registry& GlobalRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto b = std::make_shared<ThreadBuffer>(registry.ring_capacity, registry.next_tid++);
    registry.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void Push(EventKind kind, const char* name, uint64_t begin_ns, uint64_t end_ns,
          const char* arg_name, uint64_t arg) {
  ThreadBuffer& buffer = LocalBuffer();
  uint64_t h = buffer.head.load(std::memory_order_relaxed);
  Slot& slot = buffer.slots[h & buffer.mask];
  slot.name.store(name, std::memory_order_relaxed);
  slot.arg_name.store(arg_name, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.begin_ns.store(begin_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  buffer.head.store(h + 1, std::memory_order_release);
}

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void AppendMicros(std::string& out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Reset() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    buffer->head.store(0, std::memory_order_relaxed);
  }
}

void SetThreadName(const char* name) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.name_mu);
  buffer.name = name;
}

size_t SetRingCapacity(size_t events) {
  size_t capacity = std::bit_ceil(events < 8 ? size_t{8} : events);
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.ring_capacity = capacity;
  return capacity;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void EmitSpan(const char* name, uint64_t begin_ns, uint64_t end_ns, const char* arg_name,
              uint64_t arg) {
  Push(EventKind::kSpan, name, begin_ns, end_ns, arg_name, arg);
}

void EmitInstant(const char* name, const char* arg_name, uint64_t arg) {
  uint64_t now = NowNs();
  Push(EventKind::kInstant, name, now, now, arg_name, arg);
}

void EmitCounter(const char* name, uint64_t value) {
  uint64_t now = NowNs();
  Push(EventKind::kCounter, name, now, now, nullptr, value);
}

uint64_t DroppedEvents() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  uint64_t dropped = 0;
  for (const auto& buffer : registry.buffers) {
    uint64_t head = buffer->head.load(std::memory_order_relaxed);
    if (head > buffer->capacity) {
      dropped += head - buffer->capacity;
    }
  }
  return dropped;
}

size_t RegisteredThreads() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.buffers.size();
}

std::vector<RingStats> TraceRingStats() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  std::vector<RingStats> out;
  out.reserve(buffers.size());
  for (const auto& buffer : buffers) {
    RingStats stats;
    stats.tid = buffer->tid;
    {
      std::lock_guard<std::mutex> lock(buffer->name_mu);
      stats.thread_name = buffer->name;
    }
    uint64_t head = buffer->head.load(std::memory_order_relaxed);
    stats.events_pushed = head;
    stats.capacity = buffer->capacity;
    stats.dropped = head > buffer->capacity ? head - buffer->capacity : 0;
    stats.occupancy = head > buffer->capacity ? buffer->capacity : static_cast<size_t>(head);
    out.push_back(std::move(stats));
  }
  return out;
}

void UpdateTraceGauges() {
  std::vector<RingStats> rings = TraceRingStats();
  uint64_t dropped = 0;
  for (const RingStats& ring : rings) {
    dropped += ring.dropped;
    char name[64];
    std::snprintf(name, sizeof(name), "trace.ring_occupancy.t%llu",
                  static_cast<unsigned long long>(ring.tid));
    GetGauge(name).Set(static_cast<int64_t>(ring.occupancy));
  }
  GetGauge("trace.dropped_events").Set(static_cast<int64_t>(dropped));
  GetGauge("trace.ring_threads").Set(static_cast<int64_t>(rings.size()));
}

std::string ChromeTraceJson() {
  // Snapshot the buffer list, then walk each ring without any lock: the head
  // acquire pairs with the writer's release, so every slot strictly below
  // head is fully written (only a concurrent overwrite of the oldest wrapped
  // slot can tear, by design).
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }

  // Perfetto renders absolute microsecond timestamps, but a common base keeps
  // the numbers short and the JSON compact.
  uint64_t base_ns = UINT64_MAX;
  struct Range {
    uint64_t begin = 0, end = 0;
  };
  std::vector<Range> ranges(buffers.size());
  for (size_t b = 0; b < buffers.size(); ++b) {
    uint64_t head = buffers[b]->head.load(std::memory_order_acquire);
    uint64_t first = head > buffers[b]->capacity ? head - buffers[b]->capacity : 0;
    ranges[b] = {first, head};
    for (uint64_t i = first; i < head; ++i) {
      const Slot& slot = buffers[b]->slots[i & buffers[b]->mask];
      if (slot.kind.load(std::memory_order_relaxed) != 0) {
        uint64_t begin = slot.begin_ns.load(std::memory_order_relaxed);
        if (begin < base_ns) {
          base_ns = begin;
        }
      }
    }
  }
  if (base_ns == UINT64_MAX) {
    base_ns = 0;
  }

  std::string out;
  out.reserve(1u << 16);
  out += "{\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"dropped_events\": ";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(DroppedEvents()));
  out += buf;
  out += "},\n\"traceEvents\": [\n";
  out += "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, "
         "\"args\": {\"name\": \"pevm\"}}";
  for (const auto& buffer : buffers) {
    std::string name;
    {
      std::lock_guard<std::mutex> lock(buffer->name_mu);
      name = buffer->name;
    }
    std::snprintf(buf, sizeof(buf), ",\n{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                                    "\"tid\": %llu, \"args\": {\"name\": \"",
                  static_cast<unsigned long long>(buffer->tid));
    out += buf;
    AppendJsonEscaped(out, name.c_str());
    out += "\"}}";
  }

  for (size_t b = 0; b < buffers.size(); ++b) {
    const ThreadBuffer& buffer = *buffers[b];
    for (uint64_t i = ranges[b].begin; i < ranges[b].end; ++i) {
      const Slot& slot = buffer.slots[i & buffer.mask];
      auto kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
      const char* name = slot.name.load(std::memory_order_relaxed);
      if (kind == EventKind::kNone || name == nullptr) {
        continue;
      }
      uint64_t begin = slot.begin_ns.load(std::memory_order_relaxed);
      uint64_t end = slot.end_ns.load(std::memory_order_relaxed);
      // Clamp a torn slot (overwrite raced the export) instead of emitting a
      // timestamp from before the base.
      if (begin < base_ns) {
        begin = base_ns;
      }
      if (end < begin) {
        end = begin;
      }
      const char* arg_name = slot.arg_name.load(std::memory_order_relaxed);
      uint64_t arg = slot.arg.load(std::memory_order_relaxed);

      out += ",\n{\"name\": \"";
      AppendJsonEscaped(out, name);
      out += "\", \"cat\": \"pevm\", \"pid\": 1, \"tid\": ";
      std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(buffer.tid));
      out += buf;
      out += ", \"ts\": ";
      AppendMicros(out, begin - base_ns);
      switch (kind) {
        case EventKind::kSpan:
          out += ", \"ph\": \"X\", \"dur\": ";
          AppendMicros(out, end - begin);
          break;
        case EventKind::kInstant:
          out += ", \"ph\": \"i\", \"s\": \"t\"";
          break;
        case EventKind::kCounter:
          out += ", \"ph\": \"C\"";
          break;
        case EventKind::kNone:
          break;
      }
      if (kind == EventKind::kCounter) {
        std::snprintf(buf, sizeof(buf), ", \"args\": {\"value\": %llu}",
                      static_cast<unsigned long long>(arg));
        out += buf;
      } else if (arg_name != nullptr) {
        out += ", \"args\": {\"";
        AppendJsonEscaped(out, arg_name);
        std::snprintf(buf, sizeof(buf), "\": %llu}", static_cast<unsigned long long>(arg));
        out += buf;
      }
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  std::string json = ChromeTraceJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace pevm::telemetry
