// The common block-executor interface every concurrency-control algorithm
// implements, plus the shared virtual-time reporting types.
#ifndef SRC_EXEC_EXECUTOR_H_
#define SRC_EXEC_EXECUTOR_H_

#include <memory>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/codecache/program.h"
#include "src/exec/types.h"
#include "src/sim/cost_model.h"
#include "src/state/sim_store.h"
#include "src/state/world_state.h"

namespace pevm {

// Per-transaction read-phase mode (also an executor's answer to "what shape
// of cross-block speculation record can you consume?" — see
// Executor::seed_mode).
enum class SpecMode : uint8_t {
  kSkip,     // Do not speculate (scheduled fallback transactions).
  kPlain,    // Speculate without an operation log (OCC-style).
  kWithLog,  // Speculate and generate the SSA operation log.
};

struct ExecOptions {
  int threads = 16;  // Virtual worker threads (the paper's machine: 8c/16t).
  CostConfig cost;
  // Table 2 methodology: a prior prefetching run warmed every storage slot,
  // so committed-state reads never miss. This is the *virtual-time* oracle
  // knob; the wall-clock prefetch pipeline below is independent of it.
  bool prefetch = false;
  // Real OS worker threads for the read phase (0 = one per hardware thread,
  // capped at 16). Changes only the wall-clock BlockReport fields: state
  // roots, receipts, counters and the virtual makespan are bit-identical for
  // every value, including 1.
  int os_threads = 0;
  // Asynchronous storage prefetch pipeline (wall clock): how many
  // transactions ahead of execution the background PrefetchEngine may warm
  // the simulated storage cache. 0 disables the engine. Like os_threads this
  // can only move the wall-clock BlockReport fields; the prefetch_* hit/miss
  // counters it unlocks are deterministic functions of the predicted access
  // sets, computed on the block-order pass.
  int prefetch_depth = 0;
  // Simulated storage latency/batching behind the prefetcher. All-zero
  // latencies (the default) keep the store as pure residency bookkeeping.
  SimStoreConfig storage;
  // Per-code-hash analysis cache + superinstruction fusion (src/codecache).
  // Every provider-backed mode (kShared/kPerBlock/kUncached) is bit-identical
  // in all deterministic BlockReport fields — the cache memoizes a pure
  // function of the bytecode; only wall clock moves. kOff removes the
  // provider: roots/receipts/gas/instructions unchanged, but the SSA log
  // returns to per-op granularity (more oplog_entries, different redo
  // counters — the §6.4 ablation baseline). `fuse` toggles the granularity on
  // its own axis.
  CodeCacheConfig code_cache;
  // Chain-runner handoff (src/chain): when true, a ChainRunner owns the
  // SimStore lifecycle — Execute neither clears residency (BeginBlock) nor
  // starts its own PrefetchEngine, because the chain's warm-up stage already
  // warmed this block while the previous one executed. The deterministic
  // prefetch hit/miss/wasted accounting and the hint-table learning still run
  // on the block-order pass, so those counters are bit-identical to a
  // single-block run. Wall-clock only, like everything SimStore touches.
  bool external_warmup = false;
};

// --- Conflict attribution. -------------------------------------------------
//
// Per validation failure, the (address, key) pairs whose stale reads caused
// it, aggregated into a per-block hot-key histogram with the resolution
// outcome (redo repair vs full-re-execution fallback) per key. Recorded on
// the deterministic block-order commit path only, so like every other
// non-wall counter it is bit-identical for any OS-thread count.

enum class ConflictOutcome : uint8_t {
  kRedoResolved = 0,  // The conflicting transaction was repaired by redo.
  kFallback = 1,      // It fell back to full re-execution (or OCC-style
                      // unconditional re-execution).
};

struct ConflictKeyStats {
  StateKey key;
  uint64_t conflicts = 0;      // Stale-read occurrences of this key.
  uint64_t redo_resolved = 0;  // ...on transactions redo repaired.
  uint64_t fallback = 0;       // ...on transactions that re-executed.

  friend bool operator==(const ConflictKeyStats&, const ConflictKeyStats&) = default;
};

// Accumulates per-key conflict counts across a block's commit sweep.
class ConflictAttribution {
 public:
  void Record(const StateKey& key, ConflictOutcome outcome) {
    Counts& counts = stats_[key];
    ++counts.conflicts;
    if (outcome == ConflictOutcome::kRedoResolved) {
      ++counts.redo_resolved;
    } else {
      ++counts.fallback;
    }
  }

  bool empty() const { return stats_.empty(); }

  // Deterministic hot-first ordering: conflict count descending, ties broken
  // by key bytes ascending. Defined in pipeline.cc.
  std::vector<ConflictKeyStats> Sorted() const;

 private:
  struct Counts {
    uint64_t conflicts = 0;
    uint64_t redo_resolved = 0;
    uint64_t fallback = 0;
  };
  std::unordered_map<StateKey, Counts, StateKeyHash> stats_;
};

struct BlockReport {
  uint64_t makespan_ns = 0;

  // Real wall-clock measurements (the virtual-time makespan above stays the
  // paper-figure oracle; these report what the hardware actually did). The
  // only BlockReport fields allowed to vary with ExecOptions::os_threads.
  uint64_t wall_ns = 0;         // Whole Execute() call.
  uint64_t read_wall_ns = 0;    // Parallel speculation (read phase).
  uint64_t commit_wall_ns = 0;  // Validate/redo/write sweep.

  // Conflict-resolution statistics.
  int conflicts = 0;       // Transactions that failed validation.
  int redo_success = 0;    // Conflicts resolved by the redo phase.
  int redo_fail = 0;       // Redo aborted (guard failure) -> full re-execution.
  int full_reexecutions = 0;
  int lock_aborts = 0;     // 2PL wounds.
  uint64_t redo_entries_reexecuted = 0;
  uint64_t redo_ns = 0;    // Virtual time spent in redo.
  uint64_t oplog_entries = 0;
  uint64_t instructions = 0;

  // Async-prefetch accounting (all zero unless ExecOptions::prefetch_depth
  // > 0). hits/misses classify each transaction's observed reads against its
  // predicted access set; wasted counts predicted keys no transaction read.
  // All three are computed on the deterministic block-order pass, so they are
  // OS-thread-count invariant; prefetch_wall_ns is the engine's real warm-up
  // time and belongs with the wall-clock fields above.
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t prefetch_wall_ns = 0;

  // Hot-key conflict histogram (hottest first, ConflictAttribution::Sorted
  // order). Empty for executors without read validation (serial, 2PL).
  // Deterministic: recorded on the block-order commit path.
  std::vector<ConflictKeyStats> conflict_keys;

  std::vector<Receipt> receipts;
};

// Sums every additive BlockReport field (virtual makespan, wall clocks,
// conflict/redo/prefetch counters) across `reports` and re-aggregates the
// per-key conflict histograms into one hot-first histogram. Receipts are not
// carried over. The ChainReport companion: benches aggregate
// chain_report.block_reports through this instead of hand-rolling sums.
BlockReport AggregateBlockReports(const std::vector<BlockReport>& reports);

// Boundary-validated cross-block speculation records, produced by the chain
// runner's speculation stage (defined in src/exec/pipeline.h).
struct BoundarySeeds;

class Executor {
 public:
  virtual ~Executor() = default;
  virtual std::string_view name() const = 0;
  // Executes the block's transactions in block order against `state`,
  // committing all effects (including the block-end coinbase fee credit).
  virtual BlockReport Execute(const Block& block, WorldState& state) = 0;
  // Cross-block handoff (src/chain): a speculation stage may have pre-executed
  // some of this block's transactions against the previous block's uncommitted
  // overlay and boundary-validated them against `state` (so each engaged seed
  // is bit-identical to what a fresh speculation would produce). Executors
  // that can consume seeds override this; the default ignores them and the
  // block executes exactly as unseeded.
  virtual BlockReport Execute(const Block& block, WorldState& state, BoundarySeeds* seeds) {
    (void)seeds;
    return Execute(block, state);
  }
  // The speculation-record shape this executor's read phase consumes — what
  // the chain's speculation stage must produce for seeds to be bit-identical
  // to fresh speculation (kWithLog for ParallelEVM, kPlain for OCC). kSkip
  // means "cannot consume seeds": the chain disables the stage entirely.
  virtual SpecMode seed_mode() const { return SpecMode::kSkip; }
  // Chain-runner handoff: the executor's simulated-storage front-end, created
  // on demand (nullptr when the wall-clock storage model is disabled). The
  // chain's warm-up stage warms block N+1's predicted access set into this
  // store while block N executes. Call before Execute runs on another thread;
  // the store itself is internally synchronized.
  virtual SimStore* chain_store() { return nullptr; }
};

// Tracks which committed-state keys are memory-resident. Executors consult it
// to split reads into cold (disk-latency) and warm (cache-latency).
class StateCache {
 public:
  explicit StateCache(bool all_warm) : all_warm_(all_warm) {}

  // Counts the cold keys in `reads`, then marks them resident.
  uint64_t Touch(const ReadSet& reads) {
    if (all_warm_) {
      return 0;
    }
    uint64_t cold = 0;
    for (const auto& [key, value] : reads) {
      if (resident_.insert(key).second) {
        ++cold;
      }
    }
    return cold;
  }

 private:
  bool all_warm_;
  std::unordered_set<StateKey, StateKeyHash> resident_;
};

// Lazily instantiates an executor's simulated-storage front-end when the
// wall-clock storage model or the async prefetch pipeline is enabled;
// returns nullptr (and the executor skips all SimStore plumbing) otherwise.
// The store lives across Execute calls so the access-hint table learned in
// one block predicts the next.
inline SimStore* EnsureSimStore(const ExecOptions& options, std::unique_ptr<SimStore>& slot) {
  if (options.prefetch_depth <= 0 && options.storage.cold_read_ns == 0 &&
      options.storage.warm_read_ns == 0 && options.storage.backing == nullptr) {
    return nullptr;
  }
  if (!slot) {
    slot = std::make_unique<SimStore>(options.storage);
  }
  return slot.get();
}

// Envelope reads (sender nonce + balance) that are not counted in
// ExecStats::sloads but still hit committed state.
inline constexpr uint64_t kEnvelopeReads = 3;

// Total committed-read operations a transaction performed; used to derive the
// warm-read count once cold reads are known.
inline uint64_t TotalReadOps(const ExecStats& stats) { return stats.sloads + kEnvelopeReads; }

// Credits the accumulated fees to the coinbase (all executors defer this to
// block end; see src/exec/apply.h).
inline void CreditCoinbase(WorldState& state, const Address& coinbase, const U256& fees) {
  if (!fees.IsZero()) {
    state.SetBalance(coinbase, state.GetBalance(coinbase) + fees);
  }
}

}  // namespace pevm

#endif  // SRC_EXEC_EXECUTOR_H_
