// The common block-executor interface every concurrency-control algorithm
// implements, plus the shared virtual-time reporting types.
#ifndef SRC_EXEC_EXECUTOR_H_
#define SRC_EXEC_EXECUTOR_H_

#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/exec/types.h"
#include "src/sim/cost_model.h"
#include "src/state/world_state.h"

namespace pevm {

struct ExecOptions {
  int threads = 16;  // Virtual worker threads (the paper's machine: 8c/16t).
  CostConfig cost;
  // Table 2 methodology: a prior prefetching run warmed every storage slot,
  // so committed-state reads never miss.
  bool prefetch = false;
  // Real OS worker threads for the read phase (0 = one per hardware thread,
  // capped at 16). Changes only the wall-clock BlockReport fields: state
  // roots, receipts, counters and the virtual makespan are bit-identical for
  // every value, including 1.
  int os_threads = 0;
};

struct BlockReport {
  uint64_t makespan_ns = 0;

  // Real wall-clock measurements (the virtual-time makespan above stays the
  // paper-figure oracle; these report what the hardware actually did). The
  // only BlockReport fields allowed to vary with ExecOptions::os_threads.
  uint64_t wall_ns = 0;         // Whole Execute() call.
  uint64_t read_wall_ns = 0;    // Parallel speculation (read phase).
  uint64_t commit_wall_ns = 0;  // Validate/redo/write sweep.

  // Conflict-resolution statistics.
  int conflicts = 0;       // Transactions that failed validation.
  int redo_success = 0;    // Conflicts resolved by the redo phase.
  int redo_fail = 0;       // Redo aborted (guard failure) -> full re-execution.
  int full_reexecutions = 0;
  int lock_aborts = 0;     // 2PL wounds.
  uint64_t redo_entries_reexecuted = 0;
  uint64_t redo_ns = 0;    // Virtual time spent in redo.
  uint64_t oplog_entries = 0;
  uint64_t instructions = 0;

  std::vector<Receipt> receipts;
};

class Executor {
 public:
  virtual ~Executor() = default;
  virtual std::string_view name() const = 0;
  // Executes the block's transactions in block order against `state`,
  // committing all effects (including the block-end coinbase fee credit).
  virtual BlockReport Execute(const Block& block, WorldState& state) = 0;
};

// Tracks which committed-state keys are memory-resident. Executors consult it
// to split reads into cold (disk-latency) and warm (cache-latency).
class StateCache {
 public:
  explicit StateCache(bool all_warm) : all_warm_(all_warm) {}

  // Counts the cold keys in `reads`, then marks them resident.
  uint64_t Touch(const ReadSet& reads) {
    if (all_warm_) {
      return 0;
    }
    uint64_t cold = 0;
    for (const auto& [key, value] : reads) {
      if (resident_.insert(key).second) {
        ++cold;
      }
    }
    return cold;
  }

 private:
  bool all_warm_;
  std::unordered_set<StateKey, StateKeyHash> resident_;
};

// Envelope reads (sender nonce + balance) that are not counted in
// ExecStats::sloads but still hit committed state.
inline constexpr uint64_t kEnvelopeReads = 3;

// Total committed-read operations a transaction performed; used to derive the
// warm-read count once cold reads are known.
inline uint64_t TotalReadOps(const ExecStats& stats) { return stats.sloads + kEnvelopeReads; }

// Credits the accumulated fees to the coinbase (all executors defer this to
// block end; see src/exec/apply.h).
inline void CreditCoinbase(WorldState& state, const Address& coinbase, const U256& fees) {
  if (!fees.IsZero()) {
    state.SetBalance(coinbase, state.GetBalance(coinbase) + fees);
  }
}

}  // namespace pevm

#endif  // SRC_EXEC_EXECUTOR_H_
