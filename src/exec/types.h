// Block-level execution types shared by every executor.
#ifndef SRC_EXEC_TYPES_H_
#define SRC_EXEC_TYPES_H_

#include <vector>

#include "src/evm/evm_types.h"
#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

struct Transaction {
  Address from;
  Address to;  // Contract creation is out of scope; `to` is always set.
  U256 value;
  Bytes data;
  int64_t gas_limit = 1'000'000;
  U256 gas_price{1'000'000'000};  // 1 gwei.
  uint64_t nonce = 0;
};

struct Block {
  BlockContext context;
  std::vector<Transaction> transactions;
};

struct Receipt {
  // False when the transaction could not even start (bad nonce / insufficient
  // upfront balance). Invalid transactions leave no writes but do leave the
  // reads that proved them invalid, so validation can retry them.
  bool valid = false;
  EvmStatus status = EvmStatus::kSuccess;
  int64_t gas_used = 0;
  U256 fee;  // gas_used * gas_price; credited to the coinbase at block end.
  Bytes output;
  ExecStats stats;

  friend bool operator==(const Receipt&, const Receipt&) = default;
};

}  // namespace pevm

#endif  // SRC_EXEC_TYPES_H_
