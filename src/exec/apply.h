// Applies one transaction to a StateView: the full Ethereum envelope (nonce
// check/bump, intrinsic gas, upfront fee debit, value transfer, execution,
// refund) shared verbatim by every executor so they necessarily agree on
// semantics.
//
// Coinbase fees are NOT written to state here: every executor accumulates
// Receipt::fee and credits the coinbase once at block end. Writing the
// coinbase balance per transaction would make every transaction pair
// conflict, an artifact all parallel-execution systems special-case (see
// DESIGN.md).
#ifndef SRC_EXEC_APPLY_H_
#define SRC_EXEC_APPLY_H_

#include "src/codecache/program.h"
#include "src/evm/tracer.h"
#include "src/exec/types.h"
#include "src/state/state_view.h"

namespace pevm {

inline constexpr int64_t kTxBaseGas = 21000;
inline constexpr int64_t kTxDataZeroGas = 4;
inline constexpr int64_t kTxDataNonZeroGas = 16;

int64_t IntrinsicGas(const Transaction& tx);

// Executes `tx` against `view`, buffering all writes in the view. `tracer`
// may be null. `provider` (the code cache, may be null) only affects wall
// clock unless the tracer opts into superinstruction events — see
// src/codecache/program.h for the inertness contract.
Receipt ApplyTransaction(StateView& view, const BlockContext& block, const Transaction& tx,
                         Tracer* tracer = nullptr, CodeProvider* provider = nullptr);

}  // namespace pevm

#endif  // SRC_EXEC_APPLY_H_
