#include "src/exec/pipeline.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/codecache/code_cache.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/exec/thread_pool.h"
#include "src/state/state_view.h"
#include "src/telemetry/trace.h"

namespace pevm {
namespace {

// Deterministic key order for attribution tie-breaking: address bytes, then
// kind, then slot.
bool StateKeyLess(const StateKey& a, const StateKey& b) {
  if (auto cmp = a.address <=> b.address; cmp != 0) {
    return cmp < 0;
  }
  if (a.kind != b.kind) {
    return a.kind < b.kind;
  }
  return a.slot < b.slot;
}

// Worker pools are expensive to spawn, so one pool per requested width is
// kept for the process lifetime. Pools are stateless between jobs, so reuse
// across blocks and executors is safe.
ThreadPool& PoolFor(int width) {
  static std::mutex mu;
  static std::unordered_map<int, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<ThreadPool>& slot = pools[width];
  if (!slot) {
    slot = std::make_unique<ThreadPool>(width);
  }
  return *slot;
}

// The one speculation body behind both SpeculateTransaction overloads.
Speculation SpeculateIntoView(StateView& view, const BlockContext& context,
                              const Transaction& tx, bool with_log, CodeProvider* provider) {
  Speculation spec;
  if (with_log) {
    // Log granularity follows the provider: a fusing provider means
    // superinstruction logging (deferred expressions folded into consuming
    // entries); no provider (kOff) or fuse=false keeps the per-op baseline.
    SsaBuilder::Options builder_options;
    builder_options.superinstruction_log = provider != nullptr && provider->fused();
    SsaBuilder builder(builder_options);
    spec.receipt = ApplyTransaction(view, context, tx, &builder, provider);
    if (!spec.receipt.valid) {
      builder.MarkNotRedoable();
    }
    spec.log = builder.TakeLog();
  } else {
    spec.receipt = ApplyTransaction(view, context, tx, nullptr, provider);
  }
  spec.reads = view.read_set();
  spec.writes = view.take_write_set();
  return spec;
}

}  // namespace

std::vector<ConflictKeyStats> ConflictAttribution::Sorted() const {
  std::vector<ConflictKeyStats> out;
  out.reserve(stats_.size());
  for (const auto& [key, counts] : stats_) {
    out.push_back({key, counts.conflicts, counts.redo_resolved, counts.fallback});
  }
  std::sort(out.begin(), out.end(), [](const ConflictKeyStats& a, const ConflictKeyStats& b) {
    if (a.conflicts != b.conflicts) {
      return a.conflicts > b.conflicts;
    }
    return StateKeyLess(a.key, b.key);
  });
  return out;
}

BlockReport AggregateBlockReports(const std::vector<BlockReport>& reports) {
  BlockReport total;
  std::unordered_map<StateKey, ConflictKeyStats, StateKeyHash> keys;
  for (const BlockReport& r : reports) {
    total.makespan_ns += r.makespan_ns;
    total.wall_ns += r.wall_ns;
    total.read_wall_ns += r.read_wall_ns;
    total.commit_wall_ns += r.commit_wall_ns;
    total.conflicts += r.conflicts;
    total.redo_success += r.redo_success;
    total.redo_fail += r.redo_fail;
    total.full_reexecutions += r.full_reexecutions;
    total.lock_aborts += r.lock_aborts;
    total.redo_entries_reexecuted += r.redo_entries_reexecuted;
    total.redo_ns += r.redo_ns;
    total.oplog_entries += r.oplog_entries;
    total.instructions += r.instructions;
    total.prefetch_hits += r.prefetch_hits;
    total.prefetch_misses += r.prefetch_misses;
    total.prefetch_wasted += r.prefetch_wasted;
    total.prefetch_wall_ns += r.prefetch_wall_ns;
    for (const ConflictKeyStats& stats : r.conflict_keys) {
      ConflictKeyStats& merged = keys.try_emplace(stats.key, ConflictKeyStats{stats.key}).first->second;
      merged.conflicts += stats.conflicts;
      merged.redo_resolved += stats.redo_resolved;
      merged.fallback += stats.fallback;
    }
  }
  total.conflict_keys.reserve(keys.size());
  for (const auto& [key, stats] : keys) {
    total.conflict_keys.push_back(stats);
  }
  std::sort(total.conflict_keys.begin(), total.conflict_keys.end(),
            [](const ConflictKeyStats& a, const ConflictKeyStats& b) {
              if (a.conflicts != b.conflicts) {
                return a.conflicts > b.conflicts;
              }
              return StateKeyLess(a.key, b.key);
            });
  return total;
}

Speculation SpeculateTransaction(const BaseReader& reader, const BlockContext& context,
                                 const Transaction& tx, bool with_log, CodeProvider* provider) {
  StateView view(reader);
  return SpeculateIntoView(view, context, tx, with_log, provider);
}

Speculation SpeculateTransaction(const WorldState& state, const BlockContext& context,
                                 const Transaction& tx, bool with_log, SimStore* store,
                                 CodeProvider* provider) {
  // StateView is self-referential when it owns its reader, so both variants
  // are constructed in place.
  std::optional<SimStoreReader> reader;
  std::optional<StateView> view;
  if (store) {
    reader.emplace(*store, state);
    view.emplace(*reader);
  } else {
    view.emplace(state);
  }
  return SpeculateIntoView(*view, context, tx, with_log, provider);
}

ReadPhase RunReadPhase(const Block& block, const WorldState& state,
                       std::span<const SpecMode> modes, StateCache& cache,
                       const CostModel& cost, const ExecOptions& options, SimStore* store,
                       BlockReport& report, BoundarySeeds* seeds) {
  WallTimer timer;
  size_t n = block.transactions.size();
  PEVM_TRACE_SPAN_ARG("exec.read_phase", "txs", n);
  ReadPhase phase;
  phase.specs.resize(n);
  phase.durations.assign(n, 0);

  // Code-cache provider for this read phase. kPerBlock owns a fresh cache for
  // the duration of this call — safe even though oplogs outlive it, because
  // log entries hold their fused expressions by shared_ptr.
  std::unique_ptr<CodeCache> per_block_cache;
  CodeProvider* provider = ResolveCodeProvider(options.code_cache, per_block_cache);

  if (store && !options.external_warmup) {
    store->BeginBlock();
  }
  // The deterministic prefetch accounting (and hint learning) runs whenever
  // the async pipeline is requested; the engine itself only when this call
  // owns the warm-up (a chain runner's stage 1 already warmed the block).
  const bool account_prefetch = store && options.prefetch_depth > 0 && n > 0;
  std::vector<PrefetchRequest> requests;
  std::optional<PrefetchEngine> engine;
  if (account_prefetch) {
    requests = BuildPrefetchRequests(block);
    if (!options.external_warmup) {
      engine.emplace(*store, requests, options.prefetch_depth);
    }
  }

  // Parallel section: each index touches only the read-only committed state
  // and its own Speculation slot (the prefetch engine warms the store's
  // residency set concurrently, but never values).
  auto speculate_one = [&](size_t i) {
    if (engine) {
      engine->NotifyStarted(i);
    }
    if (modes[i] == SpecMode::kSkip) {
      return;
    }
    // Boundary-validated cross-block seed: adopt the record instead of
    // re-speculating. Validation already proved it bit-identical to what the
    // speculation below would produce, so the deterministic block-order pass
    // (and everything downstream) cannot tell the difference.
    if (seeds && i < seeds->specs.size() && seeds->specs[i]) {
      PEVM_TRACE_SPAN_ARG("exec.adopt_seed", "tx", i);
      phase.specs[i] = *std::move(seeds->specs[i]);
      seeds->specs[i].reset();
      return;
    }
    PEVM_TRACE_SPAN_ARG("exec.speculate", "tx", i);
    phase.specs[i] = SpeculateTransaction(state, block.context, block.transactions[i],
                                          modes[i] == SpecMode::kWithLog, store, provider);
  };
  int width = ThreadPool::ResolveWidth(options.os_threads);
  if (width <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      speculate_one(i);
    }
  } else {
    PoolFor(width).ParallelFor(n, speculate_one);
  }
  if (engine) {
    engine->Finish();
    report.prefetch_wall_ns += engine->warm_wall_ns();
  }

  // Order-dependent accounting runs strictly in block order on this thread,
  // so cold/warm classification and report counters are identical for every
  // pool width (including width 1).
  for (size_t i = 0; i < n; ++i) {
    if (modes[i] == SpecMode::kSkip) {
      continue;
    }
    Speculation& spec = phase.specs[i];
    uint64_t total_reads = TotalReadOps(spec.receipt.stats);
    uint64_t cold = std::min(cache.Touch(spec.reads), total_reads);
    phase.durations[i] = cost.ExecutionCost(spec.receipt.stats, cold, total_reads - cold,
                                            /*with_ssa=*/modes[i] == SpecMode::kWithLog);
    report.oplog_entries += spec.log.size();
    report.instructions += spec.receipt.stats.instructions;
  }
  if (account_prefetch) {
    std::vector<const ReadSet*> reads(n, nullptr);
    for (size_t i = 0; i < n; ++i) {
      if (modes[i] != SpecMode::kSkip) {
        reads[i] = &phase.specs[i].reads;
      }
    }
    AccountPrefetch(*store, requests, reads, report);
  }
  report.read_wall_ns += timer.ElapsedNs();
  return phase;
}

ReadPhase RunReadPhase(const Block& block, const WorldState& state, SpecMode mode,
                       StateCache& cache, const CostModel& cost, const ExecOptions& options,
                       SimStore* store, BlockReport& report, BoundarySeeds* seeds) {
  std::vector<SpecMode> modes(block.transactions.size(), mode);
  return RunReadPhase(block, state, modes, cache, cost, options, store, report, seeds);
}

std::vector<PrefetchRequest> BuildPrefetchRequests(const Block& block) {
  std::vector<PrefetchRequest> requests;
  requests.reserve(block.transactions.size());
  for (const Transaction& tx : block.transactions) {
    PrefetchRequest request;
    request.from = tx.from;
    request.to = tx.to;
    if (tx.data.size() >= 4) {
      request.selector = (static_cast<uint32_t>(tx.data[0]) << 24) |
                         (static_cast<uint32_t>(tx.data[1]) << 16) |
                         (static_cast<uint32_t>(tx.data[2]) << 8) |
                         static_cast<uint32_t>(tx.data[3]);
      request.has_selector = true;
    }
    requests.push_back(request);
  }
  return requests;
}

void AccountPrefetch(SimStore& store, const std::vector<PrefetchRequest>& requests,
                     const std::vector<const ReadSet*>& reads_per_tx, BlockReport& report) {
  size_t n = requests.size();
  // Predictions are computed for every transaction *before* any hint update,
  // matching what the engine (which ran against the block-start hint table)
  // actually issued.
  std::vector<std::vector<StateKey>> predicted(n);
  for (size_t i = 0; i < n; ++i) {
    predicted[i] = store.PredictSet(requests[i]);
  }
  std::unordered_set<StateKey, StateKeyHash> predicted_union;
  std::unordered_set<StateKey, StateKeyHash> read_union;
  for (size_t i = 0; i < n; ++i) {
    predicted_union.insert(predicted[i].begin(), predicted[i].end());
    if (!reads_per_tx[i]) {
      continue;
    }
    std::unordered_set<StateKey, StateKeyHash> tx_predicted(predicted[i].begin(),
                                                            predicted[i].end());
    for (const auto& [key, value] : *reads_per_tx[i]) {
      read_union.insert(key);
      if (tx_predicted.contains(key)) {
        ++report.prefetch_hits;
      } else {
        ++report.prefetch_misses;
      }
    }
  }
  for (const StateKey& key : predicted_union) {
    if (!read_union.contains(key)) {
      ++report.prefetch_wasted;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (reads_per_tx[i]) {
      store.RecordObserved(requests[i], *reads_per_tx[i]);
    }
  }
}

ConflictMap FindConflicts(const ReadSet& reads, const WorldState& state) {
  ConflictMap conflicts;
  for (const auto& [key, observed] : reads) {
    U256 current = state.Get(key);
    if (current != observed) {
      conflicts.emplace(key, current);
    }
  }
  return conflicts;
}

uint64_t CommitResult(Receipt&& receipt, WriteSet&& writes, WorldState& state,
                      const CostModel& cost, U256& fees, BlockReport& report) {
  uint64_t t = 0;
  if (receipt.valid) {
    t += cost.CommitCost(writes.size());
    state.Apply(writes);
    fees = fees + receipt.fee;
  }
  report.receipts.push_back(std::move(receipt));
  return t;
}

uint64_t CommitSpeculation(Speculation& spec, WorldState& state, const CostModel& cost,
                           U256& fees, BlockReport& report) {
  return CommitResult(std::move(spec.receipt), std::move(spec.writes), state, cost, fees,
                      report);
}

uint64_t CommitRedo(Speculation& spec, RedoResult&& redo, size_t conflict_count,
                    WorldState& state, const CostModel& cost, U256& fees, BlockReport& report) {
  ++report.redo_success;
  report.redo_entries_reexecuted += redo.reexecuted;
  uint64_t redo_ns = cost.RedoCost(redo.dfs_visited, redo.reexecuted, conflict_count);
  report.redo_ns += redo_ns;
  uint64_t t = redo_ns + cost.CommitCost(redo.write_set.size());
  state.Apply(redo.write_set);
  fees = fees + spec.receipt.fee;
  if (spec.log.has_return) {
    // The redo left the defining entries' results patched in place; rebuild a
    // storage-dependent output (balanceOf, AMM amount_out) to match what a
    // fresh execution against the repaired reads would have returned.
    spec.receipt.output = PatchedReturnOutput(spec.log);
  }
  report.receipts.push_back(std::move(spec.receipt));
  return t;
}

uint64_t ChargeFailedRedo(const RedoResult& redo, size_t conflict_count, const CostModel& cost,
                          BlockReport& report) {
  uint64_t wasted = cost.RedoCost(redo.dfs_visited, redo.reexecuted, conflict_count);
  report.redo_ns += wasted;
  return wasted;
}

uint64_t FullReexecute(const Block& block, size_t i, WorldState& state, StateCache& cache,
                       const CostModel& cost, SimStore* store, U256& fees, BlockReport& report,
                       CodeProvider* provider) {
  PEVM_TRACE_SPAN_ARG("exec.fallback", "tx", i);
  std::optional<SimStoreReader> reader;
  std::optional<StateView> view;
  if (store) {
    reader.emplace(*store, state);
    view.emplace(*reader);
  } else {
    view.emplace(state);
  }
  Receipt receipt = ApplyTransaction(*view, block.context, block.transactions[i], nullptr,
                                     provider);
  uint64_t total_reads = TotalReadOps(receipt.stats);
  uint64_t cold = std::min(cache.Touch(view->read_set()), total_reads);
  uint64_t t = cost.ExecutionCost(receipt.stats, cold, total_reads - cold, /*with_ssa=*/false);
  report.instructions += receipt.stats.instructions;
  return t +
         CommitResult(std::move(receipt), view->take_write_set(), state, cost, fees, report);
}

}  // namespace pevm
