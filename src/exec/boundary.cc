#include "src/exec/boundary.h"

#include <utility>

#include "src/core/redo.h"

namespace pevm {

BoundaryOutcome ValidateBoundary(std::vector<std::optional<Speculation>> specs,
                                 const WorldState& committed) {
  BoundaryOutcome outcome;
  outcome.seeds.specs.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    if (!specs[i]) {
      continue;
    }
    Speculation& spec = *specs[i];
    ++outcome.validated;
    ConflictMap conflicts = FindConflicts(spec.reads, committed);
    if (conflicts.empty()) {
      // Every read matches the committed state: the record is the pure
      // function of the same inputs a fresh speculation would consume.
      ++outcome.clean;
      outcome.seeds.specs[i] = std::move(spec);
      continue;
    }
    outcome.stale_keys += conflicts.size();
    if (spec.log.redoable && spec.receipt.valid) {
      RedoResult redo = RunRedo(
          spec.log, conflicts, [&committed](const StateKey& key) { return committed.Get(key); });
      if (redo.success) {
        // The guards proved the control path unchanged; make the record
        // indistinguishable from a fresh speculation against `committed`:
        // patch the stale reads, rebuild the write set from the patched log,
        // and re-slice the receipt output from its provenance.
        for (const auto& [key, value] : conflicts) {
          spec.reads[key] = value;
        }
        spec.writes = std::move(redo.write_set);
        if (spec.log.has_return) {
          spec.receipt.output = PatchedReturnOutput(spec.log);
        }
        ++outcome.redo_repaired;
        outcome.seeds.specs[i] = std::move(spec);
        continue;
      }
    }
    // Unrepairable (guard failure, non-redoable, invalid envelope, or a
    // kPlain record with no log): forget the early work. The transaction
    // speculates fresh in-block, exactly as if never launched.
    ++outcome.dropped;
    for (const auto& [key, value] : conflicts) {
      outcome.dropped_keys.push_back(key);
    }
  }
  return outcome;
}

}  // namespace pevm
