#include "src/exec/thread_pool.h"

#include <algorithm>

#include "src/telemetry/trace.h"

namespace pevm {

ThreadPool::ThreadPool(int threads) {
  int workers = std::max(threads, 1) - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    running_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  size_t i;
  while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < n) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return running_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  PEVM_TRACE_THREAD_NAME("pool-worker");
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* fn;
    size_t n;
    {
      // Queue-wait vs run split: the idle span covers the cv wait for the
      // next job, the run span covers this worker's share of the claim loop.
      PEVM_TRACE_SPAN("pool.idle");
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) {
        return;
      }
      seen = epoch_;
      fn = fn_;
      n = n_;
    }
    PEVM_TRACE_SPAN_ARG("pool.run", "n", n);
    size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < n) {
      (*fn)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

int ThreadPool::ResolveWidth(int requested) {
  if (requested > 0) {
    return requested;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 16u));
}

}  // namespace pevm
