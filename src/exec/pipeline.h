// The shared executor pipeline (paper §5.1): the one Speculation record, the
// genuinely parallel read phase, the read-set validation scan, and the
// commit-side accounting (clean commit, redo repair, failed-redo charge,
// serial fallback re-execution, fee accrual). Every concurrency-control
// executor — ParallelEVM, OCC, Block-STM's commit sweep, and the §7
// proposer/validator pair — is built from these pieces, so they necessarily
// agree on semantics and on cost accounting.
//
// Time is reported twice (DESIGN.md §3.2): the virtual-time cost model stays
// the paper-figure oracle (makespan_ns), while WallTimer feeds the real
// wall-clock BlockReport fields (wall_ns, read_wall_ns, commit_wall_ns) that
// the thread-pool read phase actually earns. Results are bit-identical for
// every OS-thread count: only the wall-clock fields may differ.
#ifndef SRC_EXEC_PIPELINE_H_
#define SRC_EXEC_PIPELINE_H_

#include <chrono>
#include <optional>
#include <span>
#include <vector>

#include "src/core/oplog.h"
#include "src/core/redo.h"
#include "src/exec/executor.h"
#include "src/state/state_view.h"

namespace pevm {

// One transaction's speculative execution against the block-start state: the
// receipt, the observed read set (validation input), the buffered write set
// (commit input) and, when requested, the SSA operation log (redo input).
// (SpecMode, the per-transaction read-phase mode, lives in executor.h so the
// Executor interface can name its seedable shape.)
struct Speculation {
  Receipt receipt;
  ReadSet reads;
  WriteSet writes;
  TxLog log;
};

// Cross-block speculation hand-off (declared in executor.h): per-transaction
// speculation records produced against the *previous* block's uncommitted
// overlay and boundary-validated against the committed state, so each engaged
// entry is bit-identical to the record a fresh in-block speculation would
// produce. RunReadPhase consumes engaged entries instead of re-speculating;
// disengaged entries (not launched, or dropped at the boundary) speculate
// fresh as usual.
struct BoundarySeeds {
  std::vector<std::optional<Speculation>> specs;
};

// Speculatively executes `tx` against the committed state, buffering all
// effects in the returned record. Thread-safe: `state` is only read. When
// `store` is set, committed reads route through the simulated storage
// front-end (wall-clock latency + residency tracking; values are unchanged).
// `provider` is the code cache (null = legacy per-op dispatch and logging);
// since speculation logs through SsaBuilder, provider presence and fuse
// setting determine oplog granularity and must match across every site that
// speculates transactions of one block (RunReadPhase and the chain's spec
// stage both derive theirs from ExecOptions::code_cache).
Speculation SpeculateTransaction(const WorldState& state, const BlockContext& context,
                                 const Transaction& tx, bool with_log, SimStore* store = nullptr,
                                 CodeProvider* provider = nullptr);

// As above, but against an arbitrary committed-state reader (the chain's
// speculation stage passes an overlay view stacking the in-flight block's
// writes over the committed state). Thread-safety is the reader's contract.
Speculation SpeculateTransaction(const BaseReader& reader, const BlockContext& context,
                                 const Transaction& tx, bool with_log,
                                 CodeProvider* provider = nullptr);

struct ReadPhase {
  std::vector<Speculation> specs;
  // Virtual speculation duration per transaction (0 for kSkip); feeds
  // ListSchedule.
  std::vector<uint64_t> durations;
};

// Runs the read phase: speculates every non-skipped transaction concurrently
// on `options.os_threads` real OS threads (0 = one per hardware thread)
// against the read-only committed state, then runs all order-dependent
// accounting (StateCache cold/warm classification, virtual durations, report
// counters) as a deterministic block-order pass on the calling thread. Adds
// the elapsed wall time to report.read_wall_ns.
//
// When `store` is set, reads pay the simulated storage latency; when
// additionally `options.prefetch_depth` > 0, a background PrefetchEngine
// warms the predicted access set of transaction i+depth while transaction i
// executes, and the deterministic prefetch hit/miss/wasted counters land in
// `report`. With `options.external_warmup` a chain runner already warmed the
// block (and owns residency), so the per-block BeginBlock and the engine are
// skipped — the deterministic accounting still runs.
//
// When `seeds` is set, a transaction with an engaged seed entry adopts that
// record instead of speculating (its boundary validation already proved it
// bit-identical to a fresh speculation), skipping the per-transaction
// storage-latency wait; everything downstream — the deterministic block-order
// accounting pass included — treats it exactly like a fresh record, so every
// deterministic BlockReport field is unchanged by seeding.
ReadPhase RunReadPhase(const Block& block, const WorldState& state,
                       std::span<const SpecMode> modes, StateCache& cache,
                       const CostModel& cost, const ExecOptions& options, SimStore* store,
                       BlockReport& report, BoundarySeeds* seeds = nullptr);

// Uniform-mode convenience overload.
ReadPhase RunReadPhase(const Block& block, const WorldState& state, SpecMode mode,
                       StateCache& cache, const CostModel& cost, const ExecOptions& options,
                       SimStore* store, BlockReport& report, BoundarySeeds* seeds = nullptr);

// Builds the per-transaction static access-set predictions (envelope
// accounts + calldata selector) the PrefetchEngine and AccountPrefetch
// consume.
std::vector<PrefetchRequest> BuildPrefetchRequests(const Block& block);

// Deterministic prefetch accounting, run on the block-order pass after the
// engine has been joined: classifies every observed read as a prefetch hit
// (its key was in the transaction's predicted set) or miss, counts predicted
// keys nothing read as wasted, then feeds the observed storage keys back
// into the store's hint table. reads_per_tx entries may be null (skipped /
// never-executed transactions).
void AccountPrefetch(SimStore& store, const std::vector<PrefetchRequest>& requests,
                     const std::vector<const ReadSet*>& reads_per_tx, BlockReport& report);

// Validation scan: every read whose committed value changed since
// speculation, mapped to the freshly committed value (the redo phase's patch
// input).
ConflictMap FindConflicts(const ReadSet& reads, const WorldState& state);

// Books every key of a validation failure into the block's attribution
// histogram under the given resolution outcome. Call on the block-order
// commit path (after the outcome is known) so the histogram stays
// OS-thread-count invariant.
inline void RecordConflicts(const ConflictMap& conflicts, ConflictOutcome outcome,
                            ConflictAttribution& attribution) {
  for (const auto& [key, value] : conflicts) {
    attribution.Record(key, outcome);
  }
}

// Commits a validated receipt + write set: applies the writes and accrues the
// fee if the receipt is valid, then moves the receipt into the report.
// Returns the virtual commit cost.
uint64_t CommitResult(Receipt&& receipt, WriteSet&& writes, WorldState& state,
                      const CostModel& cost, U256& fees, BlockReport& report);

// Clean-speculation commit (validation found no conflicts).
uint64_t CommitSpeculation(Speculation& spec, WorldState& state, const CostModel& cost,
                           U256& fees, BlockReport& report);

// Books a successful redo repair: success counters, write application, fee
// accrual, receipt hand-off. Returns the virtual redo + commit cost.
uint64_t CommitRedo(Speculation& spec, RedoResult&& redo, size_t conflict_count,
                    WorldState& state, const CostModel& cost, U256& fees, BlockReport& report);

// Charges a failed redo attempt's DFS and partial re-execution: the abort
// happens on the commit path, so the wasted work is real makespan (callers
// count report.redo_fail themselves).
uint64_t ChargeFailedRedo(const RedoResult& redo, size_t conflict_count, const CostModel& cost,
                          BlockReport& report);

// Write-phase fallback: serial re-execution of transaction `i` against the
// committed state (cannot conflict again), committing its effects. Returns
// the virtual cost (callers count report.full_reexecutions themselves).
// With `store` set, the re-execution reads through the storage front-end —
// keys the read phase (or the prefetcher) already warmed stay warm.
// `provider` is wall-clock-only here (no tracer attached): pass
// StaticCodeProvider(options.code_cache) so fallbacks share the cache.
uint64_t FullReexecute(const Block& block, size_t i, WorldState& state, StateCache& cache,
                       const CostModel& cost, SimStore* store, U256& fees, BlockReport& report,
                       CodeProvider* provider = nullptr);

// Wall-clock stopwatch feeding the real-time BlockReport fields.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  uint64_t ElapsedNs() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start_)
                                     .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pevm

#endif  // SRC_EXEC_PIPELINE_H_
