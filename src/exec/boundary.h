// Cross-block speculation boundary (DESIGN.md §4.5): while block N executes,
// the chain's speculation stage runs block N+1's read phase against an
// overlay of N's uncommitted writes. When N commits, ValidateBoundary checks
// every speculative record against the now-committed state and decides, per
// transaction, whether the record can seed N+1's in-block read phase:
//
//   clean          — no read changed; the record is *definitionally* what a
//                    fresh speculation would produce (same pure function of
//                    the same committed values).
//   redo-repaired  — some reads are stale but the operation-level redo
//                    machinery (src/core/redo.h) repairs the record in place:
//                    reads patched to committed values, the write set rebuilt
//                    from the patched log, the receipt output re-sliced from
//                    its provenance. A successful redo proves the control
//                    path (and therefore gas, status and stats) unchanged, so
//                    the repaired record is bit-identical to a fresh one.
//   dropped        — the redo declined (guard failure, non-redoable log, or
//                    no log at all for kPlain seeds); the transaction simply
//                    speculates fresh inside block N+1, exactly as if it had
//                    never been launched early.
//
// Correctness therefore never depends on *which* transactions were launched
// early — only wall-clock time does.
#ifndef SRC_EXEC_BOUNDARY_H_
#define SRC_EXEC_BOUNDARY_H_

#include <optional>
#include <vector>

#include "src/exec/pipeline.h"
#include "src/state/world_state.h"

namespace pevm {

// A block's cross-block speculation records, produced by the chain's
// speculation stage against the predecessor overlay. Disengaged entries were
// held back by the hot-key gate (predicted to conflict) and speculate
// in-block as usual.
struct SpeculativeBlock {
  std::vector<std::optional<Speculation>> specs;
  uint64_t launched = 0;  // Transactions speculated against the overlay.
  uint64_t held = 0;      // Transactions the hot-key gate kept back.
};

struct BoundaryOutcome {
  BoundarySeeds seeds;
  uint64_t validated = 0;      // Engaged records inspected.
  uint64_t clean = 0;          // Reused verbatim (no stale read).
  uint64_t redo_repaired = 0;  // Repaired by operation-level redo.
  uint64_t dropped = 0;        // Discarded; will speculate fresh in-block.
  uint64_t stale_keys = 0;     // Total stale read-set entries observed.
  // Stale keys of records the redo could NOT repair — the cross-block analog
  // of an in-block full-reexecution fallback. The chain feeds these to its
  // hot-key gate so repeat offenders are held instead of launched, wasted and
  // dropped again (redo-repairable keys stay launchable; repair is cheap).
  std::vector<StateKey> dropped_keys;
};

// Validates every engaged speculative record against the committed
// post-predecessor state and returns the seeds safe to hand to
// Executor::Execute. Runs on the chain's exec thread between the
// predecessor's commit barrier and the successor's read phase, so `committed`
// is quiescent. Consumes `specs`.
BoundaryOutcome ValidateBoundary(std::vector<std::optional<Speculation>> specs,
                                 const WorldState& committed);

}  // namespace pevm

#endif  // SRC_EXEC_BOUNDARY_H_
