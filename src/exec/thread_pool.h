// A minimal fork-join worker pool for the genuinely parallel read phase.
// ParallelFor hands out indices through an atomic counter so stragglers never
// idle the pool, and the calling thread participates in every job, so a
// 1-thread pool degenerates to a plain serial loop.
//
// Determinism contract: the pool only changes *which OS thread* computes an
// index, never the result — callers must keep each index's work independent
// (read shared state, write only slot i of a pre-sized output). Everything
// order-dependent (cache accounting, report counters) belongs in a block-order
// pass after ParallelFor returns; see src/exec/pipeline.cc.
#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pevm {

class ThreadPool {
 public:
  // Spawns `threads - 1` workers (the caller is the remaining one).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs fn(i) for every i in [0, n) across the pool and blocks until all
  // indices finished. Not reentrant: one job at a time per pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Caller thread + workers.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Maps an ExecOptions::os_threads request to a pool width:
  // positive values pass through, 0 means one thread per hardware thread
  // (capped at 16 — beyond the paper's 8c/16t testbed the read phase is
  // memory-bound anyway).
  static int ResolveWidth(int requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here for a new job.
  std::condition_variable done_cv_;  // ParallelFor waits here for completion.
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t n_ = 0;
  std::atomic<size_t> next_{0};  // Next unclaimed index of the current job.
  int running_ = 0;              // Workers still inside the current job.
  uint64_t epoch_ = 0;           // Bumped once per job.
  bool stop_ = false;
};

}  // namespace pevm

#endif  // SRC_EXEC_THREAD_POOL_H_
