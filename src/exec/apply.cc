#include "src/exec/apply.h"

#include "src/evm/host.h"
#include "src/evm/interpreter.h"

namespace pevm {

int64_t IntrinsicGas(const Transaction& tx) {
  int64_t gas = kTxBaseGas;
  for (uint8_t b : tx.data) {
    gas += (b == 0) ? kTxDataZeroGas : kTxDataNonZeroGas;
  }
  return gas;
}

Receipt ApplyTransaction(StateView& view, const BlockContext& block, const Transaction& tx,
                         Tracer* tracer, CodeProvider* provider) {
  Receipt receipt;

  // 1. Nonce check. The observed nonce is recorded in the read set either
  // way, so a speculative mismatch is caught by validation and retried.
  uint64_t nonce = view.GetNonce(tx.from);
  if (tracer != nullptr) {
    tracer->OnTxNonceCheck(tx.from, nonce, tx.nonce);
  }
  if (nonce != tx.nonce) {
    return receipt;  // invalid.
  }

  // 2. Intrinsic gas.
  int64_t intrinsic = IntrinsicGas(tx);
  if (intrinsic > tx.gas_limit) {
    return receipt;  // invalid.
  }

  // 3. Upfront cost: the sender must cover gas_limit * price + value.
  U256 gas_prepay = U256(static_cast<uint64_t>(tx.gas_limit)) * tx.gas_price;
  U256 upfront = gas_prepay + tx.value;
  U256 sender_balance = view.GetBalance(tx.from);
  if (tracer != nullptr) {
    tracer->OnTxDebit(tx.from, sender_balance, gas_prepay, upfront);
  }
  if (sender_balance < upfront) {
    return receipt;  // invalid.
  }
  view.SetBalance(tx.from, sender_balance - gas_prepay);
  view.SetNonce(tx.from, nonce + 1);

  receipt.valid = true;

  // 4. Value transfer + execution under a snapshot so revert undoes both.
  size_t snapshot = view.Snapshot();
  if (!tx.value.IsZero()) {
    U256 from_before = view.GetBalance(tx.from);
    // Upfront check covered value, so this cannot underflow.
    view.SetBalance(tx.from, from_before - tx.value);
    // The credit reads *after* the debit so a self-transfer (from == to) nets
    // to zero — the SubBalance/AddBalance order of real EVM clients, and the
    // dataflow the SSA log records for redo.
    U256 to_before = view.GetBalance(tx.to);
    view.SetBalance(tx.to, to_before + tx.value);
    if (tracer != nullptr) {
      tracer->OnValueTransfer(tx.from, from_before, tx.to, to_before, tx.value);
    }
  }

  TxContext tx_ctx{tx.from, tx.gas_price};
  StateViewHost host(view);
  Interpreter interp(host, block, tx_ctx, tracer, provider);
  Message msg;
  msg.call_kind = Opcode::kCall;
  msg.code_address = tx.to;
  msg.storage_address = tx.to;
  msg.caller = tx.from;
  msg.value = tx.value;
  msg.data = tx.data;
  msg.gas = tx.gas_limit - intrinsic;
  EvmResult result = interp.Execute(msg);

  if (result.status != EvmStatus::kSuccess) {
    view.RevertToSnapshot(snapshot);
  }
  receipt.status = result.status;
  receipt.output = std::move(result.output);
  receipt.stats = interp.stats();

  // 5. Gas accounting: refund the unused prepayment, accumulate the fee.
  int64_t gas_left = result.status == EvmStatus::kDependencyAbort ? 0 : result.gas_left;
  receipt.gas_used = tx.gas_limit - gas_left;
  receipt.stats.gas_used = static_cast<uint64_t>(receipt.gas_used);
  U256 refund = U256(static_cast<uint64_t>(gas_left)) * tx.gas_price;
  if (!refund.IsZero()) {
    U256 before = view.GetBalance(tx.from);
    view.SetBalance(tx.from, before + refund);
    if (tracer != nullptr) {
      tracer->OnTxCredit(tx.from, before, refund);
    }
  }
  receipt.fee = U256(static_cast<uint64_t>(receipt.gas_used)) * tx.gas_price;
  return receipt;
}

}  // namespace pevm
