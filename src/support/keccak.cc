#include "src/support/keccak.h"

#include <cstring>

namespace pevm {
namespace {

constexpr int kRounds = 24;
constexpr size_t kRateBytes = 136;  // 1088-bit rate for Keccak-256.

constexpr uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL, 0x8000000080008000ULL,
    0x000000000000808bULL, 0x0000000080000001ULL, 0x8000000080008081ULL, 0x8000000000008009ULL,
    0x000000000000008aULL, 0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL, 0x8000000000008003ULL,
    0x8000000000008002ULL, 0x8000000000000080ULL, 0x000000000000800aULL, 0x800000008000000aULL,
    0x8000000080008081ULL, 0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr int kRotations[5][5] = {
    {0, 36, 3, 41, 18}, {1, 44, 10, 45, 2}, {62, 6, 43, 15, 61}, {28, 55, 25, 21, 56},
    {27, 20, 39, 8, 14},
};

uint64_t Rotl(uint64_t v, int s) { return s == 0 ? v : (v << s) | (v >> (64 - s)); }

void KeccakF1600(uint64_t a[5][5]) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta.
    uint64_t c[5];
    uint64_t d[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4];
    }
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ Rotl(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) {
        a[x][y] ^= d[x];
      }
    }
    // Rho + Pi.
    uint64_t b[5][5];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y][(2 * x + 3 * y) % 5] = Rotl(a[x][y], kRotations[x][y]);
      }
    }
    // Chi.
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x][y] = b[x][y] ^ (~b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
      }
    }
    // Iota.
    a[0][0] ^= kRoundConstants[round];
  }
}

}  // namespace

Hash256 Keccak256(BytesView data) {
  uint64_t state[5][5] = {};
  // Absorb.
  size_t offset = 0;
  while (data.size() - offset >= kRateBytes) {
    for (size_t i = 0; i < kRateBytes / 8; ++i) {
      uint64_t lane;
      std::memcpy(&lane, data.data() + offset + i * 8, 8);  // Little-endian lanes.
      state[i % 5][i / 5] ^= lane;
    }
    KeccakF1600(state);
    offset += kRateBytes;
  }
  // Final block with Keccak (0x01) padding.
  uint8_t block[kRateBytes] = {};
  size_t rem = data.size() - offset;
  if (rem > 0) {
    std::memcpy(block, data.data() + offset, rem);
  }
  block[rem] = 0x01;
  block[kRateBytes - 1] |= 0x80;
  for (size_t i = 0; i < kRateBytes / 8; ++i) {
    uint64_t lane;
    std::memcpy(&lane, block + i * 8, 8);
    state[i % 5][i / 5] ^= lane;
  }
  KeccakF1600(state);
  // Squeeze 32 bytes.
  Hash256 out;
  for (size_t i = 0; i < 4; ++i) {
    uint64_t lane = state[i % 5][i / 5];
    std::memcpy(out.data() + i * 8, &lane, 8);
  }
  return out;
}

U256 Keccak256Word(BytesView data) {
  Hash256 h = Keccak256(data);
  return U256::FromBigEndian(BytesView(h.data(), h.size()));
}

U256 MappingSlot(const U256& key, const U256& slot) {
  std::array<uint8_t, 64> buf;
  std::array<uint8_t, 32> k = key.ToBigEndian();
  std::array<uint8_t, 32> s = slot.ToBigEndian();
  std::copy(k.begin(), k.end(), buf.begin());
  std::copy(s.begin(), s.end(), buf.begin() + 32);
  return Keccak256Word(BytesView(buf.data(), buf.size()));
}

U256 MappingSlot2(const U256& key1, const U256& key2, const U256& slot) {
  return MappingSlot(key2, MappingSlot(key1, slot));
}

}  // namespace pevm
