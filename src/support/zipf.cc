#include "src/support/zipf.h"

#include <cmath>

namespace pevm {

// Following W. Hörmann & G. Derflinger, "Rejection-inversion to generate
// variates from monotone discrete distributions" (1996); the same scheme
// std::discrete-free Zipf samplers (e.g. Apache commons-math) use.
ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  h_imax_ = H(static_cast<double>(n) + 0.5);
  h_x1_ = H(1.5) - 1.0;
  s_threshold_ = 2.0 - HInverse(H(2.5) - Pmf(2));
}

double ZipfDistribution::H(double x) const {
  if (s_ == 1.0) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double u) const {
  if (s_ == 1.0) {
    return std::exp(u);
  }
  return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
}

double ZipfDistribution::Pmf(uint64_t k) const {
  return std::pow(static_cast<double>(k), -s_);
}

}  // namespace pevm
