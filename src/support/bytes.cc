#include "src/support/bytes.h"

namespace pevm {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string HexEncode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::optional<Bytes> HexDecode(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) {
    return std::nullopt;
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return std::nullopt;
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::optional<Address> Address::FromHex(std::string_view hex) {
  std::optional<Bytes> raw = HexDecode(hex);
  if (!raw.has_value() || raw->size() != kSize) {
    return std::nullopt;
  }
  Address a;
  std::copy(raw->begin(), raw->end(), a.bytes_.begin());
  return a;
}

std::string Address::ToHex() const { return "0x" + HexEncode(view()); }

}  // namespace pevm
