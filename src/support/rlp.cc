#include "src/support/rlp.h"

namespace pevm {
namespace {

// Emits the length prefix for a payload of `len` bytes, where `base` is 0x80
// for strings and 0xc0 for lists.
void AppendLengthPrefix(Bytes& out, size_t len, uint8_t base) {
  if (len <= 55) {
    out.push_back(static_cast<uint8_t>(base + len));
    return;
  }
  Bytes len_bytes;
  size_t v = len;
  while (v > 0) {
    len_bytes.insert(len_bytes.begin(), static_cast<uint8_t>(v & 0xff));
    v >>= 8;
  }
  out.push_back(static_cast<uint8_t>(base + 55 + len_bytes.size()));
  out.insert(out.end(), len_bytes.begin(), len_bytes.end());
}

}  // namespace

Bytes RlpEncodeBytes(BytesView data) {
  Bytes out;
  if (data.size() == 1 && data[0] < 0x80) {
    out.push_back(data[0]);
    return out;
  }
  AppendLengthPrefix(out, data.size(), 0x80);
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

Bytes RlpEncodeUint(const U256& value) {
  std::array<uint8_t, 32> be = value.ToBigEndian();
  unsigned len = value.ByteLength();
  return RlpEncodeBytes(BytesView(be.data() + (32 - len), len));
}

Bytes RlpEncodeList(std::span<const Bytes> items) {
  size_t payload = 0;
  for (const Bytes& item : items) {
    payload += item.size();
  }
  Bytes out;
  AppendLengthPrefix(out, payload, 0xc0);
  for (const Bytes& item : items) {
    out.insert(out.end(), item.begin(), item.end());
  }
  return out;
}

}  // namespace pevm
