#include "src/support/u256.h"

#include <algorithm>
#include <span>

namespace pevm {
namespace {

struct DivModResult {
  U256 quotient;
  U256 remainder;
};

bool GetBit(const U256& v, unsigned i) { return (v.limb(i / 64) >> (i % 64)) & 1; }

// Classic restoring long division, one bit at a time. At most 256 iterations;
// DIV/MOD are rare enough in EVM traces that this is not a bottleneck.
DivModResult DivMod(const U256& a, const U256& b) {
  DivModResult out;
  if (b.IsZero()) {
    return out;  // EVM: x / 0 == 0, x % 0 == 0.
  }
  if (a < b) {
    out.remainder = a;
    return out;
  }
  unsigned bits = a.BitLength();
  U256 rem;
  U256 quo;
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    rem = U256::Shl(1, rem);
    if (GetBit(a, static_cast<unsigned>(i))) {
      rem = rem | U256(1);
    }
    if (rem >= b) {
      rem = rem - b;
      quo = quo | U256::Shl(static_cast<uint64_t>(i), U256(1));
    }
  }
  out.quotient = quo;
  out.remainder = rem;
  return out;
}

// Reduces a little-endian limb array (up to 512 bits) modulo n.
U256 ModLimbs(std::span<const uint64_t> limbs, const U256& n) {
  if (n.IsZero()) {
    return U256{};
  }
  U256 rem;
  for (size_t li = limbs.size(); li-- > 0;) {
    for (int bi = 63; bi >= 0; --bi) {
      rem = U256::Shl(1, rem);
      if ((limbs[li] >> bi) & 1) {
        rem = rem | U256(1);
      }
      if (rem >= n) {
        rem = rem - n;
      }
    }
  }
  return rem;
}

}  // namespace

U256 U256::Div(const U256& a, const U256& b) { return DivMod(a, b).quotient; }

U256 U256::Mod(const U256& a, const U256& b) { return DivMod(a, b).remainder; }

U256 U256::SDiv(const U256& a, const U256& b) {
  if (b.IsZero()) {
    return U256{};
  }
  bool neg_a = a.IsNegative();
  bool neg_b = b.IsNegative();
  U256 ua = neg_a ? -a : a;
  U256 ub = neg_b ? -b : b;
  U256 q = Div(ua, ub);
  // Note: SDIV(-2^255, -1) overflows to -2^255; the negate below reproduces
  // that naturally since -(2^255) == 2^255 in wrapping arithmetic.
  return (neg_a != neg_b) ? -q : q;
}

U256 U256::SMod(const U256& a, const U256& b) {
  if (b.IsZero()) {
    return U256{};
  }
  bool neg_a = a.IsNegative();
  U256 ua = neg_a ? -a : a;
  U256 ub = b.IsNegative() ? -b : b;
  U256 r = Mod(ua, ub);
  return neg_a ? -r : r;
}

U256 U256::AddMod(const U256& a, const U256& b, const U256& n) {
  if (n.IsZero()) {
    return U256{};
  }
  U256 ra = Mod(a, n);
  U256 rb = Mod(b, n);
  U256 sum = ra + rb;
  // ra, rb < n <= 2^256 - 1, so ra + rb < 2n. Overflow past 2^256 or sum >= n
  // both mean exactly one subtraction of n is needed (wrapping subtraction is
  // correct in the overflow case).
  bool overflow = sum < ra;
  if (overflow || sum >= n) {
    sum = sum - n;
  }
  return sum;
}

U256 U256::MulMod(const U256& a, const U256& b, const U256& n) {
  if (n.IsZero()) {
    return U256{};
  }
  // Full 512-bit product, then reduce.
  std::array<uint64_t, 8> prod{};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a.limb(i)) * b.limb(j) + prod[i + j] + carry;
      prod[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    prod[i + 4] = static_cast<uint64_t>(carry);
  }
  return ModLimbs(prod, n);
}

U256 U256::Exp(const U256& base, const U256& exponent) {
  U256 result(1);
  U256 b = base;
  for (unsigned i = 0; i < exponent.BitLength(); ++i) {
    if (GetBit(exponent, i)) {
      result = result * b;
    }
    b = b * b;
  }
  return result;
}

U256 U256::SignExtend(const U256& byte_index, const U256& value) {
  if (!byte_index.FitsUint64() || byte_index.AsUint64() >= 31) {
    return value;
  }
  unsigned idx = static_cast<unsigned>(byte_index.AsUint64());
  unsigned sign_bit = idx * 8 + 7;
  U256 mask = Shl(sign_bit + 1, U256(1)) - U256(1);  // Low (idx+1)*8 bits set.
  if (GetBit(value, sign_bit)) {
    return value | ~mask;
  }
  return value & mask;
}

U256 U256::Byte(const U256& i, const U256& value) {
  if (!i.FitsUint64() || i.AsUint64() >= 32) {
    return U256{};
  }
  unsigned shift = (31 - static_cast<unsigned>(i.AsUint64())) * 8;
  return Shr(shift, value) & U256(0xff);
}

U256 U256::FromBigEndian(BytesView bytes) {
  U256 r;
  size_t n = std::min<size_t>(bytes.size(), 32);
  // Right-align: the last byte of input is the least significant.
  for (size_t i = 0; i < n; ++i) {
    uint8_t b = bytes[bytes.size() - 1 - i];
    r.limbs_[i / 8] |= static_cast<uint64_t>(b) << (8 * (i % 8));
  }
  return r;
}

std::array<uint8_t, 32> U256::ToBigEndian() const {
  std::array<uint8_t, 32> out{};
  for (size_t i = 0; i < 32; ++i) {
    out[31 - i] = static_cast<uint8_t>(limbs_[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

Address U256::ToAddress() const {
  std::array<uint8_t, 32> be = ToBigEndian();
  std::array<uint8_t, Address::kSize> a;
  std::copy(be.begin() + 12, be.end(), a.begin());
  return Address(a);
}

std::optional<U256> U256::FromString(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  if (text.starts_with("0x") || text.starts_with("0X")) {
    text.remove_prefix(2);
    if (text.empty() || text.size() > 64) {
      return std::nullopt;
    }
    U256 r;
    for (char c : text) {
      int v;
      if (c >= '0' && c <= '9') {
        v = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        v = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        v = c - 'A' + 10;
      } else {
        return std::nullopt;
      }
      r = Shl(4, r) | U256(static_cast<uint64_t>(v));
    }
    return r;
  }
  U256 r;
  const U256 ten(10);
  for (char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    U256 next = r * ten + U256(static_cast<uint64_t>(c - '0'));
    if (Div(next - U256(static_cast<uint64_t>(c - '0')), ten) != r) {
      return std::nullopt;  // Overflow.
    }
    r = next;
  }
  return r;
}

std::string U256::ToString() const {
  if (IsZero()) {
    return "0";
  }
  std::string digits;
  U256 v = *this;
  const U256 ten(10);
  while (!v.IsZero()) {
    DivModResult dm = DivMod(v, ten);
    digits.push_back(static_cast<char>('0' + dm.remainder.AsUint64()));
    v = dm.quotient;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string U256::ToHexString() const {
  if (IsZero()) {
    return "0x0";
  }
  std::array<uint8_t, 32> be = ToBigEndian();
  std::string hex = HexEncode(BytesView(be.data(), be.size()));
  size_t first = hex.find_first_not_of('0');
  return "0x" + hex.substr(first);
}

}  // namespace pevm
