// Keccak-256 (the pre-NIST-padding variant Ethereum uses everywhere: state
// roots, storage-slot derivation for mappings, function selectors, SHA3).
#ifndef SRC_SUPPORT_KECCAK_H_
#define SRC_SUPPORT_KECCAK_H_

#include <array>
#include <cstdint>

#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

using Hash256 = std::array<uint8_t, 32>;

// One-shot Keccak-256 over `data`.
Hash256 Keccak256(BytesView data);

// Keccak-256 returned as a U256 (big-endian interpretation), the form the
// SHA3 opcode and mapping-slot math want.
U256 Keccak256Word(BytesView data);

// Solidity storage-slot derivation for `mapping(key => v)` held in `slot`:
// keccak256(abi.encode(key, slot)).
U256 MappingSlot(const U256& key, const U256& slot);

// Two-level mapping (e.g. allowances[owner][spender]).
U256 MappingSlot2(const U256& key1, const U256& key2, const U256& slot);

}  // namespace pevm

#endif  // SRC_SUPPORT_KECCAK_H_
