// Recursive Length Prefix encoding (yellow paper appendix B) — the encoding
// the Merkle Patricia Trie nodes and account bodies use.
#ifndef SRC_SUPPORT_RLP_H_
#define SRC_SUPPORT_RLP_H_

#include <span>

#include "src/support/bytes.h"
#include "src/support/u256.h"

namespace pevm {

// Encodes a byte string.
Bytes RlpEncodeBytes(BytesView data);

// Encodes an unsigned integer as its minimal big-endian byte string (zero
// encodes as the empty string, per the yellow paper).
Bytes RlpEncodeUint(const U256& value);

// Wraps already-encoded items into a list.
Bytes RlpEncodeList(std::span<const Bytes> items);

}  // namespace pevm

#endif  // SRC_SUPPORT_RLP_H_
