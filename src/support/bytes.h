// Byte-buffer and address primitives shared by every module.
#ifndef SRC_SUPPORT_BYTES_H_
#define SRC_SUPPORT_BYTES_H_

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pevm {

// Dynamically sized byte buffer (calldata, code, memory snapshots, RLP output).
using Bytes = std::vector<uint8_t>;

// Read-only view over bytes; the preferred parameter type at API boundaries.
using BytesView = std::span<const uint8_t>;

// Hex-encodes `data` without a "0x" prefix, lowercase.
std::string HexEncode(BytesView data);

// Decodes a hex string (with or without "0x" prefix). Returns std::nullopt on
// invalid characters or odd length.
std::optional<Bytes> HexDecode(std::string_view hex);

// A 20-byte Ethereum account address.
class Address {
 public:
  static constexpr size_t kSize = 20;

  constexpr Address() = default;
  explicit constexpr Address(const std::array<uint8_t, kSize>& bytes) : bytes_(bytes) {}

  // Builds an address whose trailing 8 bytes hold `id` big-endian; convenient
  // for tests and synthetic workloads ("address #42").
  static constexpr Address FromId(uint64_t id) {
    Address a;
    for (int i = 0; i < 8; ++i) {
      a.bytes_[kSize - 1 - i] = static_cast<uint8_t>(id >> (8 * i));
    }
    return a;
  }

  // Parses a 40-hex-char address (optionally "0x"-prefixed).
  static std::optional<Address> FromHex(std::string_view hex);

  constexpr const std::array<uint8_t, kSize>& bytes() const { return bytes_; }
  constexpr std::array<uint8_t, kSize>& bytes() { return bytes_; }

  BytesView view() const { return BytesView(bytes_.data(), bytes_.size()); }

  std::string ToHex() const;

  constexpr bool IsZero() const {
    for (uint8_t b : bytes_) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  friend constexpr bool operator==(const Address&, const Address&) = default;
  friend constexpr auto operator<=>(const Address&, const Address&) = default;

 private:
  std::array<uint8_t, kSize> bytes_{};
};

// FNV-1a over arbitrary bytes; used by the hash specializations below and by
// the workload generator for cheap deterministic mixing.
constexpr uint64_t Fnv1a(BytesView data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct AddressHash {
  size_t operator()(const Address& a) const { return Fnv1a(a.view()); }
};

}  // namespace pevm

template <>
struct std::hash<pevm::Address> {
  size_t operator()(const pevm::Address& a) const { return pevm::Fnv1a(a.view()); }
};

#endif  // SRC_SUPPORT_BYTES_H_
