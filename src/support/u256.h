// 256-bit unsigned integer with the exact wrapping/signed semantics the EVM
// specifies (yellow paper appendix H): ADD/SUB/MUL wrap mod 2^256, DIV/MOD
// return 0 on division by zero, SDIV/SMOD use two's-complement with the
// dividend's sign for SMOD, and SDIV(-2^255, -1) = -2^255.
#ifndef SRC_SUPPORT_U256_H_
#define SRC_SUPPORT_U256_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/support/bytes.h"

namespace pevm {

class U256 {
 public:
  constexpr U256() = default;
  constexpr U256(uint64_t v) : limbs_{v, 0, 0, 0} {}  // NOLINT(google-explicit-constructor)
  constexpr U256(uint64_t l3, uint64_t l2, uint64_t l1, uint64_t l0)
      : limbs_{l0, l1, l2, l3} {}  // Most-significant-first, matching literals.

  // Parses decimal or (0x-prefixed) hex. Returns nullopt on bad input/overflow.
  static std::optional<U256> FromString(std::string_view text);

  // Big-endian byte conversions. FromBigEndian accepts 0..32 bytes
  // (right-aligned, as CALLDATALOAD-style zero extension is handled by callers).
  static U256 FromBigEndian(BytesView bytes);
  std::array<uint8_t, 32> ToBigEndian() const;

  static U256 FromAddress(const Address& a) { return FromBigEndian(a.view()); }
  // Truncates to the low 160 bits, the EVM rule for address-typed words.
  Address ToAddress() const;

  constexpr uint64_t limb(size_t i) const { return limbs_[i]; }

  constexpr bool IsZero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }

  // True if the value fits in a uint64_t.
  constexpr bool FitsUint64() const { return (limbs_[1] | limbs_[2] | limbs_[3]) == 0; }
  constexpr uint64_t AsUint64() const { return limbs_[0]; }  // Truncating.

  // Saturates to uint64 max when the value does not fit; handy for gas/length
  // operands where anything above 2^64 is "out of gas" anyway.
  constexpr uint64_t AsUint64Saturated() const {
    return FitsUint64() ? limbs_[0] : ~uint64_t{0};
  }

  constexpr bool IsNegative() const { return (limbs_[3] >> 63) != 0; }

  // --- Wrapping arithmetic (EVM ADD/SUB/MUL). ---
  friend constexpr U256 operator+(const U256& a, const U256& b) {
    U256 r;
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
      unsigned __int128 s = static_cast<unsigned __int128>(a.limbs_[i]) + b.limbs_[i] + carry;
      r.limbs_[i] = static_cast<uint64_t>(s);
      carry = s >> 64;
    }
    return r;
  }

  friend constexpr U256 operator-(const U256& a, const U256& b) {
    U256 r;
    unsigned __int128 borrow = 0;
    for (int i = 0; i < 4; ++i) {
      unsigned __int128 d = static_cast<unsigned __int128>(a.limbs_[i]) - b.limbs_[i] - borrow;
      r.limbs_[i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) & 1;
    }
    return r;
  }

  friend constexpr U256 operator*(const U256& a, const U256& b) {
    U256 r;
    for (int i = 0; i < 4; ++i) {
      unsigned __int128 carry = 0;
      for (int j = 0; i + j < 4; ++j) {
        unsigned __int128 cur = static_cast<unsigned __int128>(a.limbs_[i]) * b.limbs_[j] +
                                r.limbs_[i + j] + carry;
        r.limbs_[i + j] = static_cast<uint64_t>(cur);
        carry = cur >> 64;
      }
    }
    return r;
  }

  constexpr U256 operator-() const { return U256{} - *this; }

  // EVM DIV / MOD: x / 0 == 0, x % 0 == 0.
  static U256 Div(const U256& a, const U256& b);
  static U256 Mod(const U256& a, const U256& b);
  // EVM SDIV / SMOD (two's complement; SMOD result takes the dividend's sign).
  static U256 SDiv(const U256& a, const U256& b);
  static U256 SMod(const U256& a, const U256& b);
  // EVM ADDMOD / MULMOD: intermediate values are not truncated to 256 bits.
  static U256 AddMod(const U256& a, const U256& b, const U256& n);
  static U256 MulMod(const U256& a, const U256& b, const U256& n);
  // EVM EXP (wrapping square-and-multiply).
  static U256 Exp(const U256& base, const U256& exponent);
  // EVM SIGNEXTEND: extends the sign of the byte at index `byte_index` (0 =
  // least significant). byte_index >= 31 returns the value unchanged.
  static U256 SignExtend(const U256& byte_index, const U256& value);
  // EVM BYTE: returns the i-th byte counting from the most significant end;
  // i >= 32 yields 0.
  static U256 Byte(const U256& i, const U256& value);

  // --- Bitwise. ---
  friend constexpr U256 operator&(const U256& a, const U256& b) {
    return Bitwise(a, b, [](uint64_t x, uint64_t y) { return x & y; });
  }
  friend constexpr U256 operator|(const U256& a, const U256& b) {
    return Bitwise(a, b, [](uint64_t x, uint64_t y) { return x | y; });
  }
  friend constexpr U256 operator^(const U256& a, const U256& b) {
    return Bitwise(a, b, [](uint64_t x, uint64_t y) { return x ^ y; });
  }
  constexpr U256 operator~() const {
    return U256(~limbs_[3], ~limbs_[2], ~limbs_[1], ~limbs_[0]);
  }

  // Shifts: amounts >= 256 produce 0 (or the sign fill for Sar).
  static constexpr U256 Shl(const U256& shift, const U256& value) {
    if (!shift.FitsUint64() || shift.limbs_[0] >= 256) {
      return U256{};
    }
    return ShlSmall(value, static_cast<unsigned>(shift.limbs_[0]));
  }
  static constexpr U256 Shr(const U256& shift, const U256& value) {
    if (!shift.FitsUint64() || shift.limbs_[0] >= 256) {
      return U256{};
    }
    return ShrSmall(value, static_cast<unsigned>(shift.limbs_[0]));
  }
  static constexpr U256 Sar(const U256& shift, const U256& value) {
    bool neg = value.IsNegative();
    if (!shift.FitsUint64() || shift.limbs_[0] >= 256) {
      return neg ? ~U256{} : U256{};
    }
    unsigned s = static_cast<unsigned>(shift.limbs_[0]);
    U256 r = ShrSmall(value, s);
    if (neg && s > 0) {
      r = r | ShlSmall(~U256{}, 256 - s);
    }
    return r;
  }

  // --- Comparisons. ---
  friend constexpr bool operator==(const U256&, const U256&) = default;
  friend constexpr bool operator<(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i) {
      if (a.limbs_[i] != b.limbs_[i]) {
        return a.limbs_[i] < b.limbs_[i];
      }
    }
    return false;
  }
  friend constexpr bool operator>(const U256& a, const U256& b) { return b < a; }
  friend constexpr bool operator<=(const U256& a, const U256& b) { return !(b < a); }
  friend constexpr bool operator>=(const U256& a, const U256& b) { return !(a < b); }

  static constexpr bool SLt(const U256& a, const U256& b) {
    if (a.IsNegative() != b.IsNegative()) {
      return a.IsNegative();
    }
    return a < b;
  }

  // Number of significant bits (0 for zero).
  constexpr unsigned BitLength() const {
    for (int i = 3; i >= 0; --i) {
      if (limbs_[i] != 0) {
        return static_cast<unsigned>(i) * 64 + (64 - static_cast<unsigned>(__builtin_clzll(limbs_[i])));
      }
    }
    return 0;
  }

  // Number of significant bytes (0 for zero); used by RLP and EXP gas.
  constexpr unsigned ByteLength() const { return (BitLength() + 7) / 8; }

  std::string ToString() const;  // Decimal.
  std::string ToHexString() const;  // 0x-prefixed minimal hex.

  size_t HashValue() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t l : limbs_) {
      h ^= l + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

 private:
  template <typename Op>
  static constexpr U256 Bitwise(const U256& a, const U256& b, Op op) {
    U256 r;
    for (int i = 0; i < 4; ++i) {
      r.limbs_[i] = op(a.limbs_[i], b.limbs_[i]);
    }
    return r;
  }

  static constexpr U256 ShlSmall(const U256& v, unsigned s) {
    if (s == 0) {
      return v;
    }
    U256 r;
    unsigned limb_shift = s / 64;
    unsigned bit_shift = s % 64;
    for (int i = 3; i >= 0; --i) {
      uint64_t lo = (static_cast<unsigned>(i) >= limb_shift) ? v.limbs_[i - limb_shift] : 0;
      uint64_t hi = (bit_shift != 0 && static_cast<unsigned>(i) >= limb_shift + 1)
                        ? v.limbs_[i - limb_shift - 1]
                        : 0;
      r.limbs_[i] = (bit_shift == 0) ? lo : ((lo << bit_shift) | (hi >> (64 - bit_shift)));
    }
    return r;
  }

  static constexpr U256 ShrSmall(const U256& v, unsigned s) {
    if (s == 0) {
      return v;
    }
    U256 r;
    unsigned limb_shift = s / 64;
    unsigned bit_shift = s % 64;
    for (unsigned i = 0; i < 4; ++i) {
      uint64_t lo = (i + limb_shift < 4) ? v.limbs_[i + limb_shift] : 0;
      uint64_t hi = (bit_shift != 0 && i + limb_shift + 1 < 4) ? v.limbs_[i + limb_shift + 1] : 0;
      r.limbs_[i] = (bit_shift == 0) ? lo : ((lo >> bit_shift) | (hi << (64 - bit_shift)));
    }
    return r;
  }

  // Little-endian limbs: limbs_[0] is least significant.
  std::array<uint64_t, 4> limbs_{};
};

}  // namespace pevm

template <>
struct std::hash<pevm::U256> {
  size_t operator()(const pevm::U256& v) const { return v.HashValue(); }
};

#endif  // SRC_SUPPORT_U256_H_
