// Bounded Zipf(s, n) sampler using Hörmann's rejection-inversion method, so
// sampling stays O(1) even for n in the hundreds of millions (the paper's
// hot-spot measurements cover 10M contracts / 200M storage slots).
#ifndef SRC_SUPPORT_ZIPF_H_
#define SRC_SUPPORT_ZIPF_H_

#include <cstdint>
#include <random>

namespace pevm {

class ZipfDistribution {
 public:
  // P(X = k) ∝ 1 / k^s for k in [1, n]. Requires n >= 1 and s > 0, s != 1 is
  // not required (the helper handles the s == 1 harmonic case).
  ZipfDistribution(uint64_t n, double s);

  // Samples a rank in [1, n]; rank 1 is the hottest item.
  template <typename Rng>
  uint64_t operator()(Rng& rng) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    while (true) {
      double u = h_imax_ + uniform(rng) * (h_x1_ - h_imax_);
      double x = HInverse(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) {
        k = 1;
      }
      if (k > n_) {
        k = n_;
      }
      if (k - x <= s_threshold_ || u >= H(static_cast<double>(k) + 0.5) - Pmf(k)) {
        return k;
      }
    }
  }

 private:
  double H(double x) const;
  double HInverse(double u) const;
  double Pmf(uint64_t k) const;

  uint64_t n_;
  double s_;
  double h_imax_;
  double h_x1_;
  double s_threshold_;
};

}  // namespace pevm

#endif  // SRC_SUPPORT_ZIPF_H_
