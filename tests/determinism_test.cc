// The tentpole guarantee of the real-thread read phase: the OS-thread count
// is invisible in results. The same block must produce identical state roots,
// receipts, and BlockReport conflict/redo counters (and the identical virtual
// makespan) whether the thread pool runs 1, 4, or 16 OS threads — only the
// wall-clock fields may differ. Also exercises the ThreadPool directly.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/baselines/block_stm.h"
#include "src/baselines/occ.h"
#include "src/baselines/serial.h"
#include "src/core/parallel_evm.h"
#include "src/core/scheduled.h"
#include "src/exec/thread_pool.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

struct RunResult {
  std::string root;
  uint64_t digest = 0;
  std::vector<BlockReport> reports;
};

// Everything in BlockReport except the wall-clock fields must match.
void ExpectSameReport(const BlockReport& a, const BlockReport& b, int os_threads, int block) {
  SCOPED_TRACE(testing::Message() << "os_threads=" << os_threads << " block=" << block);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.redo_success, b.redo_success);
  EXPECT_EQ(a.redo_fail, b.redo_fail);
  EXPECT_EQ(a.full_reexecutions, b.full_reexecutions);
  EXPECT_EQ(a.lock_aborts, b.lock_aborts);
  EXPECT_EQ(a.redo_entries_reexecuted, b.redo_entries_reexecuted);
  EXPECT_EQ(a.redo_ns, b.redo_ns);
  EXPECT_EQ(a.oplog_entries, b.oplog_entries);
  EXPECT_EQ(a.instructions, b.instructions);
  // The prefetch hit/miss/wasted counters are computed by the deterministic
  // block-order accounting pass, so they are part of the contract too; only
  // prefetch_wall_ns (wall clock) may differ.
  EXPECT_EQ(a.prefetch_hits, b.prefetch_hits);
  EXPECT_EQ(a.prefetch_misses, b.prefetch_misses);
  EXPECT_EQ(a.prefetch_wasted, b.prefetch_wasted);
  // Conflict attribution is recorded on the block-order commit path and
  // sorted deterministically, so the whole histogram — keys, order, and
  // redo-vs-fallback split — is part of the contract.
  EXPECT_EQ(a.conflict_keys, b.conflict_keys);
  EXPECT_EQ(a.receipts, b.receipts);
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig config;
    config.seed = 4242;
    config.transactions_per_block = 150;
    config.users = 900;
    config.tokens = 5;
    config.pools = 3;
    gen_.emplace(config);
    genesis_ = gen_->MakeGenesis();
    for (int b = 0; b < 2; ++b) {
      blocks_.push_back(gen_->MakeBlock());
    }
  }

  template <typename Run>
  RunResult Execute(Run run, int os_threads) {
    ExecOptions options;
    options.threads = 8;
    options.os_threads = os_threads;
    WorldState state = genesis_;
    RunResult result;
    for (const Block& block : blocks_) {
      result.reports.push_back(run(block, state, options));
    }
    result.root = HexEncode(state.StateRoot());
    result.digest = state.Digest();
    return result;
  }

  template <typename Run>
  void ExpectThreadCountInvisible(Run run) {
    RunResult base = Execute(run, /*os_threads=*/1);
    // The contention workload must actually exercise the conflict/redo paths,
    // or the determinism claim is vacuous. (A scheduled validator reports
    // redo_success but no conflicts for an honest schedule.)
    int conflicts = 0;
    for (const BlockReport& r : base.reports) {
      conflicts += r.conflicts + r.redo_success;
    }
    EXPECT_GT(conflicts, 0);
    for (int os_threads : {4, 16}) {
      RunResult other = Execute(run, os_threads);
      EXPECT_EQ(base.root, other.root) << os_threads << " OS threads";
      EXPECT_EQ(base.digest, other.digest) << os_threads << " OS threads";
      ASSERT_EQ(base.reports.size(), other.reports.size());
      for (size_t b = 0; b < base.reports.size(); ++b) {
        ExpectSameReport(base.reports[b], other.reports[b], os_threads, static_cast<int>(b));
      }
    }
  }

  std::optional<WorkloadGenerator> gen_;
  WorldState genesis_;
  std::vector<Block> blocks_;
};

TEST_F(DeterminismTest, ParallelEvmIsOsThreadCountInvariant) {
  ExpectThreadCountInvisible([](const Block& block, WorldState& state,
                                const ExecOptions& options) {
    return ParallelEvmExecutor(options).Execute(block, state);
  });
}

TEST_F(DeterminismTest, OccIsOsThreadCountInvariant) {
  ExpectThreadCountInvisible([](const Block& block, WorldState& state,
                                const ExecOptions& options) {
    return OccExecutor(options).Execute(block, state);
  });
}

TEST_F(DeterminismTest, BlockStmIsOsThreadCountInvariant) {
  ExpectThreadCountInvisible([](const Block& block, WorldState& state,
                                const ExecOptions& options) {
    return BlockStmExecutor(options).Execute(block, state);
  });
}

// The same invariance with the async prefetch pipeline live: a racy
// background engine plus simulated storage latency must leave every
// deterministic field — including the prefetch hit/miss/wasted counters that
// ExpectSameReport now compares — untouched by the OS-thread count.
TEST_F(DeterminismTest, ParallelEvmWithPrefetchIsOsThreadCountInvariant) {
  ExpectThreadCountInvisible([](const Block& block, WorldState& state,
                                const ExecOptions& options) {
    ExecOptions o = options;
    o.prefetch_depth = 8;
    o.storage.cold_read_ns = 1'000;
    o.storage.warm_read_ns = 100;
    return ParallelEvmExecutor(o).Execute(block, state);
  });
}

TEST_F(DeterminismTest, BlockStmWithPrefetchIsOsThreadCountInvariant) {
  ExpectThreadCountInvisible([](const Block& block, WorldState& state,
                                const ExecOptions& options) {
    ExecOptions o = options;
    o.prefetch_depth = 8;
    return BlockStmExecutor(o).Execute(block, state);
  });
}

TEST_F(DeterminismTest, OccWithPrefetchIsOsThreadCountInvariant) {
  ExpectThreadCountInvisible([](const Block& block, WorldState& state,
                                const ExecOptions& options) {
    ExecOptions o = options;
    o.prefetch_depth = 8;
    return OccExecutor(o).Execute(block, state);
  });
}

// Prefetch depth itself must be invisible in results: any depth produces the
// same root and the same deterministic report fields as depth 0.
TEST_F(DeterminismTest, PrefetchDepthIsInvisibleInResults) {
  auto run_depth = [&](int depth) {
    return Execute(
        [depth](const Block& block, WorldState& state, const ExecOptions& options) {
          ExecOptions o = options;
          o.prefetch_depth = depth;
          return ParallelEvmExecutor(o).Execute(block, state);
        },
        /*os_threads=*/4);
  };
  RunResult cold = run_depth(0);
  for (int depth : {1, 8, 64}) {
    RunResult warm = run_depth(depth);
    EXPECT_EQ(cold.root, warm.root) << "depth " << depth;
    EXPECT_EQ(cold.digest, warm.digest) << "depth " << depth;
    ASSERT_EQ(cold.reports.size(), warm.reports.size());
    for (size_t b = 0; b < cold.reports.size(); ++b) {
      EXPECT_EQ(cold.reports[b].makespan_ns, warm.reports[b].makespan_ns);
      EXPECT_EQ(cold.reports[b].receipts, warm.reports[b].receipts);
      // Counters account the predicted-set quality, not how much of it the
      // engine got to in time, so they engage at every depth.
      EXPECT_GT(warm.reports[b].prefetch_hits + warm.reports[b].prefetch_misses, 0u);
    }
  }
}

// The code cache joins the determinism contract: every provider-backed mode
// (shared, per-block, uncached) must satisfy the full ExpectSameReport
// comparison — oplog_entries and redo counters included — at every OS-thread
// count, because tier-0 analysis is a pure function of the bytecode and the
// log granularity it implies never depends on cache residency.
TEST_F(DeterminismTest, CodeCacheModeIsOsThreadCountInvariant) {
  for (CodeCacheMode mode :
       {CodeCacheMode::kShared, CodeCacheMode::kPerBlock, CodeCacheMode::kUncached}) {
    ExpectThreadCountInvisible([mode](const Block& block, WorldState& state,
                                      const ExecOptions& options) {
      ExecOptions o = options;
      o.code_cache.mode = mode;
      return ParallelEvmExecutor(o).Execute(block, state);
    });
  }
}

TEST_F(DeterminismTest, ProposerIsOsThreadCountInvariant) {
  ExpectThreadCountInvisible([](const Block& block, WorldState& state,
                                const ExecOptions& options) {
    return ProposeBlock(block, state, options).report;
  });
}

TEST_F(DeterminismTest, ScheduledValidatorIsOsThreadCountInvariant) {
  // The validator follows a fixed schedule produced once by the proposer.
  std::vector<BlockSchedule> schedules;
  {
    ExecOptions options;
    options.threads = 8;
    WorldState state = genesis_;
    for (const Block& block : blocks_) {
      schedules.push_back(ProposeBlock(block, state, options).schedule);
    }
  }
  size_t next = 0;
  ExpectThreadCountInvisible([&](const Block& block, WorldState& state,
                                 const ExecOptions& options) {
    const BlockSchedule& schedule = schedules[next++ % schedules.size()];
    return ExecuteWithSchedule(block, schedule, state, options);
  });
}

TEST_F(DeterminismTest, ParallelReadPhaseMatchesSerialExecution) {
  ExecOptions options;
  options.threads = 8;
  options.os_threads = 16;
  WorldState s_serial = genesis_;
  WorldState s_pevm = genesis_;
  SerialExecutor serial(options);
  ParallelEvmExecutor pevm(options);
  for (const Block& block : blocks_) {
    serial.Execute(block, s_serial);
    pevm.Execute(block, s_pevm);
  }
  EXPECT_EQ(HexEncode(s_serial.StateRoot()), HexEncode(s_pevm.StateRoot()));
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int width : {1, 2, 7, 16}) {
    ThreadPool pool(width);
    EXPECT_EQ(pool.threads(), width);
    constexpr size_t kN = 10'000;
    std::vector<std::atomic<int>> visits(kN);
    pool.ParallelFor(kN, [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "index " << i << " width " << width;
    }
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 50u * (99u * 100u / 2u));
}

TEST(ThreadPoolTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ResolveWidthPassesThroughAndCaps) {
  EXPECT_EQ(ThreadPool::ResolveWidth(3), 3);
  int resolved = ThreadPool::ResolveWidth(0);
  EXPECT_GE(resolved, 1);
  EXPECT_LE(resolved, 16);
}

}  // namespace
}  // namespace pevm
