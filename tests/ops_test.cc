// Ops-plane battery (DESIGN.md §4.8): the embedded HTTP admin endpoint, the
// Prometheus exposition, the always-on flight recorder, and the stall
// watchdog — plus the inertness suite proving the whole plane is invisible in
// results: per-block roots and every deterministic BlockReport field are
// bit-identical with the ops plane off versus hammered with concurrent
// scrapes, at every executor width.
//
// Suite names (HttpServerTest / PrometheusTest / FlightRecorderTest /
// WatchdogTest / OpsPlaneTest / OpsInertnessTest) are load-bearing: CI and
// scripts/check_tsan.sh select tests by them.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/chain/chain_runner.h"
#include "src/ops/flight_recorder.h"
#include "src/ops/http_server.h"
#include "src/ops/ops_server.h"
#include "src/ops/watchdog.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/workload/block_gen.h"

namespace pevm {
namespace {

using ops::BlockAnatomy;
using ops::FlightRecorder;
using ops::HttpRequest;
using ops::HttpResponse;
using ops::HttpServer;
using ops::PipelineProgress;
using ops::StageProgress;
using ops::StallDiagnosis;
using ops::StallWatchdog;
using ops::WatchdogOptions;

// --- Raw-socket HTTP client (the tests must not trust the server's own
// parsing, so they speak bytes). One request per connection, mirroring the
// server's Connection: close contract.

struct FetchResult {
  bool ok = false;      // Connected and got a status line.
  int status = 0;
  std::string headers;  // Raw header block.
  std::string body;
};

FetchResult FetchRaw(int port, const std::string& request) {
  FetchResult result;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return result;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos || response.rfind("HTTP/1.", 0) != 0) {
    return result;
  }
  result.status = std::atoi(response.c_str() + sizeof("HTTP/1.1") - 1);
  size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return result;
  }
  result.headers = response.substr(0, header_end);
  result.body = response.substr(header_end + 4);
  result.ok = true;
  return result;
}

FetchResult Get(int port, const std::string& path) {
  return FetchRaw(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

FetchResult Post(int port, const std::string& path, const std::string& body) {
  return FetchRaw(port, "POST " + path + " HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
                            std::to_string(body.size()) + "\r\n\r\n" + body);
}

// Extracts the first unsigned integer following `key` in a JSON blob; -1 if
// absent. Enough structure awareness for the /healthz assertions without a
// JSON parser dependency.
long long JsonNumber(const std::string& json, const std::string& key) {
  size_t at = json.find("\"" + key + "\": ");
  if (at == std::string::npos) {
    return -1;
  }
  at += key.size() + 4;
  long long value = 0;
  bool any = false;
  while (at < json.size() && json[at] >= '0' && json[at] <= '9') {
    value = value * 10 + (json[at] - '0');
    ++at;
    any = true;
  }
  return any ? value : -1;
}

// --- HTTP server: routing, methods, bodies. --------------------------------

TEST(HttpServerTest, RoutesMethodsAndBodies) {
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options);
  server.Route("GET", "/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  server.Route("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  FetchResult ping = Get(server.port(), "/ping");
  ASSERT_TRUE(ping.ok);
  EXPECT_EQ(ping.status, 200);
  EXPECT_EQ(ping.body, "pong");

  // Unknown path → 404; known path, wrong method → 405.
  EXPECT_EQ(Get(server.port(), "/nope").status, 404);
  EXPECT_EQ(Post(server.port(), "/ping", "x").status, 405);

  // POST body round-trips (including binary-ish bytes).
  std::string payload = "line1\nline2\x01\x02";
  FetchResult echo = Post(server.port(), "/echo", payload);
  ASSERT_TRUE(echo.ok);
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, payload);

  // Routed requests count as served; the 404/405 pair counts as rejected.
  EXPECT_GE(server.requests_served(), 2u);
  EXPECT_GE(server.requests_rejected(), 2u);
  server.Stop();
  server.Stop();  // Idempotent.
}

TEST(HttpServerTest, MalformedRequestRejected) {
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options);
  server.Route("GET", "/ping", [](const HttpRequest&) { return HttpResponse{}; });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  FetchResult bad = FetchRaw(server.port(), "NOT-HTTP\r\n\r\n");
  // Either a 400 response or a dropped connection is acceptable; what is not
  // acceptable is a crash or a hang.
  if (bad.ok) {
    EXPECT_EQ(bad.status, 400);
  }
  server.Stop();
}

// --- Prometheus exposition. ------------------------------------------------

TEST(PrometheusTest, CountersGaugesHistogramsRender) {
  telemetry::ClearMetrics();
  telemetry::GetCounter("opstest.counter").Add(7);
  telemetry::GetGauge("opstest.gauge").Set(-3);
  auto& hist = telemetry::GetHistogram("opstest.hist");
  hist.Observe(10);
  hist.Observe(1'000);
  hist.Observe(1'000'000);

  std::string text = telemetry::MetricsPrometheus();
  // Dots sanitize to underscores (Prometheus charset).
  EXPECT_NE(text.find("# TYPE opstest_counter counter\nopstest_counter 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE opstest_gauge gauge\nopstest_gauge -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE opstest_hist histogram\n"), std::string::npos);
  EXPECT_NE(text.find("opstest_hist_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("opstest_hist_sum 1001010\n"), std::string::npos);
  // The +Inf bucket is cumulative and equals _count.
  EXPECT_NE(text.find("opstest_hist_bucket{le=\"+Inf\"} 3\n"), std::string::npos);

  // Cumulative bucket counts are non-decreasing in le order.
  uint64_t prev = 0;
  size_t at = 0;
  int buckets = 0;
  while ((at = text.find("opstest_hist_bucket{le=\"", at)) != std::string::npos) {
    size_t close = text.find("} ", at);
    ASSERT_NE(close, std::string::npos);
    uint64_t count = std::strtoull(text.c_str() + close + 2, nullptr, 10);
    EXPECT_GE(count, prev) << text;
    prev = count;
    ++buckets;
    at = close;
  }
  EXPECT_GE(buckets, 3);  // The three distinct magnitudes plus +Inf overlap.
  telemetry::ClearMetrics();
}

TEST(PrometheusTest, ScrapeEndpointMatchesRegistry) {
  telemetry::ClearMetrics();
  telemetry::GetCounter("opstest.scrape").Add(42);

  FlightRecorder recorder(4);
  ops::OpsServerOptions options;
  options.port = 0;
  ops::OpsServer server(options, recorder, [] {
    PipelineProgress progress;
    progress.running = true;
    return progress;
  });
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  FetchResult scrape = Get(server.port(), "/metrics");
  ASSERT_TRUE(scrape.ok);
  EXPECT_EQ(scrape.status, 200);
  EXPECT_NE(scrape.headers.find("text/plain"), std::string::npos);
  EXPECT_NE(scrape.body.find("opstest_scrape 42\n"), std::string::npos);
  // The scrape refreshed the trace-ring gauges.
  EXPECT_NE(scrape.body.find("trace_ring_threads"), std::string::npos);
  EXPECT_EQ(server.scrapes(), 1u);
  server.Stop();
  telemetry::ClearMetrics();
}

// --- Flight recorder: ring semantics. --------------------------------------

TEST(FlightRecorderTest, WrapsKeepingNewestOldestFirst) {
  FlightRecorder recorder(4);
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_TRUE(recorder.Snapshot().empty());

  for (uint64_t i = 1; i <= 10; ++i) {
    BlockAnatomy anatomy;
    anatomy.block_index = i;
    anatomy.transactions = i * 10;
    recorder.Record(anatomy);
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  std::vector<BlockAnatomy> resident = recorder.Snapshot();
  ASSERT_EQ(resident.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(resident[i].block_index, 7 + i) << "oldest-first order";
    EXPECT_EQ(resident[i].transactions, (7 + i) * 10);
  }
}

TEST(FlightRecorderTest, DurabilityStampIsBestEffort) {
  FlightRecorder recorder(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    BlockAnatomy anatomy;
    anatomy.block_index = i;
    recorder.Record(anatomy);
  }
  // Resident block: stamped. Evicted block (1): silently skipped.
  recorder.StampDurability(5, /*queue_to_durable_ns=*/111, /*persist_ns=*/222,
                           /*commit_batch=*/3);
  recorder.StampDurability(1, 999, 999, 9);
  std::vector<BlockAnatomy> resident = recorder.Snapshot();
  ASSERT_EQ(resident.size(), 4u);
  EXPECT_EQ(resident[2].block_index, 5u);
  EXPECT_EQ(resident[2].queue_to_durable_ns, 111u);
  EXPECT_EQ(resident[2].commit_persist_ns, 222u);
  EXPECT_EQ(resident[2].commit_batch, 3u);
  EXPECT_EQ(resident[0].queue_to_durable_ns, 0u);  // Block 3, never stamped.
}

TEST(FlightRecorderTest, JsonDumpCarriesEveryResidentBlock) {
  FlightRecorder recorder(8);
  for (uint64_t i = 1; i <= 3; ++i) {
    BlockAnatomy anatomy;
    anatomy.block_index = i;
    anatomy.conflicts = static_cast<int>(i);
    recorder.Record(anatomy);
  }
  std::string json = ops::FlightRecorderJson(recorder);
  EXPECT_NE(json.find("\"total_recorded\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"block\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"block\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"conflicts\": 2"), std::string::npos);
}

// --- Watchdog: idle vs busy vs stalled. ------------------------------------

PipelineProgress MakeProgress(uint64_t submitted, uint64_t committed,
                              std::vector<StageProgress> stages) {
  PipelineProgress progress;
  progress.running = true;
  progress.blocks_submitted = submitted;
  progress.blocks_committed = committed;
  progress.stages = std::move(stages);
  return progress;
}

StageProgress MakeStage(const char* name, uint64_t entered, uint64_t exited,
                        size_t queue_depth = 0) {
  StageProgress stage;
  stage.name = name;
  stage.active = true;
  stage.entered = entered;
  stage.exited = exited;
  stage.queue_depth = queue_depth;
  return stage;
}

TEST(WatchdogTest, WedgedStageFiresOnceNamingDeepestStuckStage) {
  // Frozen sample: exec holds a block (entered 3, exited 2) with input
  // backed up; everything upstream is done. The diagnosis must say "exec".
  PipelineProgress wedged = MakeProgress(
      5, 2,
      {MakeStage("warm", 5, 5), MakeStage("spec", 5, 5), MakeStage("exec", 3, 2, 2),
       MakeStage("commit", 2, 2)});
  ASSERT_TRUE(wedged.WorkInFlight());

  std::atomic<int> fired{0};
  std::string stage_named;
  WatchdogOptions options;
  options.deadline_ms = 80;
  options.poll_ms = 10;
  options.log_to_stderr = false;
  options.on_stall = [&](const StallDiagnosis& diagnosis) {
    stage_named = diagnosis.stage;
    fired.fetch_add(1);
  };
  FlightRecorder recorder(4);
  BlockAnatomy anatomy;
  anatomy.block_index = 2;
  recorder.Record(anatomy);
  StallWatchdog watchdog([&] { return wedged; }, &recorder, options);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fired.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(fired.load(), 1);
  EXPECT_EQ(stage_named, "exec");
  std::optional<StallDiagnosis> last_opt = watchdog.last_diagnosis();
  ASSERT_TRUE(last_opt.has_value());
  const StallDiagnosis& last = *last_opt;
  EXPECT_GE(last.stalled_for_ms, options.deadline_ms);
  ASSERT_EQ(last.recent_blocks.size(), 1u);
  EXPECT_EQ(last.recent_blocks[0].block_index, 2u);
  std::string rendered = last.Render();
  EXPECT_NE(rendered.find("exec"), std::string::npos);

  // Fire-once: the same frozen episode must not re-fire on later polls.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(watchdog.stalls_detected(), 1u);
  watchdog.Stop();
}

TEST(WatchdogTest, StuckQueueWithNoStageMidBlockBlamesTheConsumer) {
  // No stage holds a block, but exec's input queue is non-empty and frozen:
  // the consumer is not picking work up.
  PipelineProgress wedged = MakeProgress(
      4, 2,
      {MakeStage("warm", 4, 4), MakeStage("exec", 2, 2, 2), MakeStage("commit", 2, 2)});
  std::atomic<int> fired{0};
  std::string stage_named;
  WatchdogOptions options;
  options.deadline_ms = 60;
  options.poll_ms = 10;
  options.log_to_stderr = false;
  options.on_stall = [&](const StallDiagnosis& diagnosis) {
    stage_named = diagnosis.stage;
    fired.fetch_add(1);
  };
  StallWatchdog watchdog([&] { return wedged; }, nullptr, options);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fired.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(fired.load(), 1);
  EXPECT_EQ(stage_named, "exec");
  watchdog.Stop();
}

TEST(WatchdogTest, BusyPipelineStaysSilent) {
  // Fingerprint changes every sample: never a stall, however long we watch.
  std::atomic<uint64_t> tick{0};
  WatchdogOptions options;
  options.deadline_ms = 50;
  options.poll_ms = 10;
  options.log_to_stderr = false;
  StallWatchdog watchdog(
      [&] {
        uint64_t t = tick.fetch_add(1);
        return MakeProgress(t + 1, t, {MakeStage("exec", t + 1, t)});
      },
      nullptr, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(watchdog.stalls_detected(), 0u);
  watchdog.Stop();
}

TEST(WatchdogTest, IdlePipelineStaysSilent) {
  // Frozen counters but no work in flight — an idle node is healthy.
  PipelineProgress idle =
      MakeProgress(3, 3, {MakeStage("warm", 3, 3), MakeStage("exec", 3, 3),
                          MakeStage("commit", 3, 3)});
  ASSERT_FALSE(idle.WorkInFlight());
  WatchdogOptions options;
  options.deadline_ms = 40;
  options.poll_ms = 10;
  options.log_to_stderr = false;
  StallWatchdog watchdog([&] { return idle; }, nullptr, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(watchdog.stalls_detected(), 0u);
  watchdog.Stop();
}

TEST(WatchdogTest, ReArmsAfterProgressResumes) {
  // Wedge → fire → progress → wedge again → second fire.
  std::atomic<int> phase{0};
  WatchdogOptions options;
  options.deadline_ms = 50;
  options.poll_ms = 10;
  options.log_to_stderr = false;
  StallWatchdog watchdog(
      [&] {
        int p = phase.load();
        // Phase 0/2: frozen wedge (distinct fingerprints so phase 2 is a new
        // episode). Phase 1: brief progress burst.
        if (p == 1) {
          static std::atomic<uint64_t> burst{100};
          uint64_t t = burst.fetch_add(1);
          return MakeProgress(t + 1, t, {MakeStage("exec", t + 1, t)});
        }
        uint64_t base = p == 0 ? 1 : 50;
        return MakeProgress(base + 1, base, {MakeStage("exec", base + 1, base)});
      },
      nullptr, options);
  auto wait_for_stalls = [&](uint64_t want) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (watchdog.stalls_detected() < want &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return watchdog.stalls_detected();
  };
  ASSERT_GE(wait_for_stalls(1), 1u);
  phase.store(1);  // Progress: re-arm.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  phase.store(2);  // Second wedge.
  EXPECT_GE(wait_for_stalls(2), 2u);
  watchdog.Stop();
}

// --- Live chain runner: endpoints mid-run, watchdog on a real wedge. -------

WorkloadConfig OpsConfig(uint64_t seed, int txs = 48, int users = 300) {
  WorkloadConfig config;
  config.seed = seed;
  config.transactions_per_block = txs;
  config.users = users;
  config.tokens = 6;
  config.pools = 3;
  config.funds = 2;
  return config;
}

TEST(OpsPlaneTest, EndpointsAnswerMidRunAndCountersAreMonotone) {
  WorkloadGenerator gen(OpsConfig(81'000));
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks;
  for (int i = 0; i < 4; ++i) {
    blocks.push_back(gen.MakeBlock());
  }

  ChainOptions options;
  options.ops_server.port = 0;
  options.exec.os_threads = 4;
  options.query_tier = true;
  // Real (slept) storage latency stretches the run so mid-run scrapes land
  // while blocks are genuinely in flight.
  options.exec.storage.cold_read_ns = 100'000;
  ChainRunner runner(options, genesis);
  ASSERT_NE(runner.ops_server(), nullptr);
  int port = runner.ops_server()->port();
  ASSERT_GT(port, 0);

  std::thread producer([&] {
    for (const Block& block : blocks) {
      ASSERT_TRUE(runner.Submit(block));
    }
  });

  // Scrape while the pipeline runs; committed counter must be monotone.
  long long last_committed = 0;
  int scrapes_ok = 0;
  for (int i = 0; i < 20; ++i) {
    FetchResult health = Get(port, "/healthz");
    if (health.ok && health.status == 200) {
      ++scrapes_ok;
      EXPECT_NE(health.body.find("\"status\": \"ok\""), std::string::npos);
      EXPECT_NE(health.body.find("\"name\": \"exec\""), std::string::npos);
      long long committed = JsonNumber(health.body, "blocks_committed");
      ASSERT_GE(committed, last_committed) << "committed counter went backwards";
      last_committed = committed;
    }
    FetchResult metrics = Get(port, "/metrics");
    if (metrics.ok) {
      EXPECT_EQ(metrics.status, 200);
      EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  producer.join();
  ChainReport report = runner.Finish();
  EXPECT_EQ(report.blocks_committed, blocks.size());
  EXPECT_GT(scrapes_ok, 0) << "no scrape ever landed (vacuous test)";

  // Post-run: the ops plane outlives Finish; the recorder holds every block.
  FetchResult dump = Get(port, "/debug/blocks");
  ASSERT_TRUE(dump.ok);
  EXPECT_EQ(dump.status, 200);
  for (size_t b = 1; b <= blocks.size(); ++b) {
    EXPECT_NE(dump.body.find("\"block\": " + std::to_string(b)), std::string::npos)
        << dump.body;
  }
  // Healthz reflects quiescence (running until destruction, all committed).
  FetchResult final_health = Get(port, "/healthz");
  ASSERT_TRUE(final_health.ok);
  EXPECT_EQ(JsonNumber(final_health.body, "blocks_committed"),
            static_cast<long long>(blocks.size()));

  // POST /debug/trace exports to the requested path.
  std::string trace_path =
      (std::filesystem::temp_directory_path() / "ops_test_trace.json").string();
  std::remove(trace_path.c_str());
  FetchResult trace = Post(port, "/debug/trace", trace_path + "\n");
  ASSERT_TRUE(trace.ok);
  EXPECT_EQ(trace.status, 200);
  EXPECT_TRUE(std::filesystem::exists(trace_path)) << trace.body;
  std::remove(trace_path.c_str());
}

TEST(OpsPlaneTest, FlightRecorderAnatomyIsCoherent) {
  WorkloadGenerator gen(OpsConfig(82'000));
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(gen.MakeBlock());
  }
  ChainOptions options;
  options.exec.os_threads = 2;
  ChainRunner runner(options, genesis);  // No HTTP, no watchdog: recorder still on.
  ASSERT_EQ(runner.ops_server(), nullptr);
  for (const Block& block : blocks) {
    ASSERT_TRUE(runner.Submit(block));
  }
  ChainReport report = runner.Finish();

  std::vector<BlockAnatomy> anatomy = runner.flight_recorder().Snapshot();
  ASSERT_EQ(anatomy.size(), blocks.size());
  for (size_t b = 0; b < anatomy.size(); ++b) {
    const BlockAnatomy& a = anatomy[b];
    EXPECT_EQ(a.block_index, b + 1);
    EXPECT_EQ(a.transactions, blocks[b].transactions.size());
    EXPECT_EQ(a.root, report.roots[b]);
    const BlockReport& r = report.block_reports[b];
    EXPECT_EQ(a.conflicts, r.conflicts);
    EXPECT_EQ(a.redo_success, r.redo_success);
    EXPECT_EQ(a.oplog_entries, r.oplog_entries);
    EXPECT_EQ(a.instructions, r.instructions);
    EXPECT_GT(a.exec_busy_ns, 0u);
    EXPECT_GT(a.commit_apply_ns, 0u);
    EXPECT_GT(a.queue_to_durable_ns, 0u);
    EXPECT_GT(a.commit_batch, 0u);  // Every batch sealed by Finish.
    EXPECT_GT(a.diff_entries, 0u);
  }
}

TEST(OpsPlaneTest, WatchdogNamesWedgedStageOnRealRunner) {
  // A handful of transactions against 20ms (really slept) cold reads wedges
  // the exec stage for seconds; the watchdog's 150ms deadline fires first and
  // must blame "exec".
  WorkloadGenerator gen(OpsConfig(83'000, /*txs=*/6, /*users=*/50));
  WorldState genesis = gen.MakeGenesis();
  Block block = gen.MakeBlock();

  std::atomic<int> fired{0};
  std::string stage_named;
  ChainOptions options;
  options.exec.os_threads = 1;
  options.exec.storage.cold_read_ns = 20'000'000;
  options.ops_server.watchdog = true;
  options.ops_server.watchdog_deadline_ms = 150;
  options.ops_server.watchdog_poll_ms = 20;
  options.ops_server.watchdog_log_to_stderr = false;
  options.ops_server.on_stall = [&](const StallDiagnosis& diagnosis) {
    // Write before publishing: the main thread reads stage_named as soon as
    // it observes fired != 0. on_stall only ever runs on the watchdog thread,
    // so the unsynchronized load of fired here is single-writer-safe.
    if (fired.load() == 0) {
      stage_named = diagnosis.stage;
    }
    fired.fetch_add(1);
  };
  ChainRunner runner(options, genesis);
  ASSERT_NE(runner.ops_server(), nullptr);
  ASSERT_NE(runner.ops_server()->watchdog(), nullptr);
  ASSERT_TRUE(runner.Submit(block));

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fired.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(fired.load(), 1) << "watchdog never fired on a wedged pipeline";
  EXPECT_EQ(stage_named, "exec");
  ChainReport report = runner.Finish();  // The block eventually completes.
  EXPECT_EQ(report.blocks_committed, 1u);
}

TEST(OpsPlaneTest, WatchdogSilentOnHealthyRunner) {
  WorkloadGenerator gen(OpsConfig(84'000));
  WorldState genesis = gen.MakeGenesis();
  ChainOptions options;
  options.exec.os_threads = 4;
  options.ops_server.watchdog = true;
  options.ops_server.watchdog_deadline_ms = 10'000;  // Generous: never hit.
  options.ops_server.watchdog_poll_ms = 20;
  options.ops_server.watchdog_log_to_stderr = false;
  ChainRunner runner(options, genesis);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(runner.Submit(gen.MakeBlock()));
  }
  ChainReport report = runner.Finish();
  EXPECT_EQ(report.blocks_committed, 3u);
  ASSERT_NE(runner.ops_server()->watchdog(), nullptr);
  EXPECT_EQ(runner.ops_server()->watchdog()->stalls_detected(), 0u);
}

// --- Inertness: ops plane off vs hammered is invisible in results. ---------

struct ChainRunResult {
  std::vector<std::string> roots;
  std::vector<BlockReport> reports;
  uint64_t scrapes = 0;
};

ChainRunResult RunChain(const WorldState& genesis, const std::vector<Block>& blocks,
                        int os_threads, bool hammer_ops) {
  ChainOptions options;
  options.exec.os_threads = os_threads;
  options.exec.prefetch_depth = 0;
  if (hammer_ops) {
    options.ops_server.port = 0;
  }
  ChainRunner runner(options, genesis);

  std::atomic<bool> stop_hammer{false};
  std::thread hammer;
  if (hammer_ops) {
    int port = runner.ops_server()->port();
    hammer = std::thread([port, &stop_hammer] {
      int which = 0;
      while (!stop_hammer.load(std::memory_order_relaxed)) {
        switch (which++ % 3) {
          case 0:
            Get(port, "/metrics");
            break;
          case 1:
            Get(port, "/healthz");
            break;
          default:
            Get(port, "/debug/blocks");
            break;
        }
      }
    });
  }
  for (const Block& block : blocks) {
    EXPECT_TRUE(runner.Submit(block));
  }
  ChainReport report = runner.Finish();
  ChainRunResult result;
  if (hammer_ops) {
    // Keep hammering past Finish too (the plane outlives the pipeline), then
    // record the scrape count as the vacuity guard.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop_hammer.store(true);
    hammer.join();
    result.scrapes = runner.ops_server()->scrapes();
  }
  for (const Hash256& root : report.roots) {
    result.roots.push_back(HexEncode(root));
  }
  result.reports = report.block_reports;
  return result;
}

// Deterministic-field comparison, mirroring telemetry_test's contract.
void ExpectSameDeterministicFields(const ChainRunResult& off, const ChainRunResult& on,
                                   int os_threads) {
  SCOPED_TRACE(testing::Message() << "os_threads=" << os_threads);
  ASSERT_EQ(off.roots.size(), on.roots.size());
  for (size_t b = 0; b < off.roots.size(); ++b) {
    EXPECT_EQ(off.roots[b], on.roots[b]) << "block " << b;
  }
  ASSERT_EQ(off.reports.size(), on.reports.size());
  for (size_t b = 0; b < off.reports.size(); ++b) {
    const BlockReport& x = off.reports[b];
    const BlockReport& y = on.reports[b];
    EXPECT_EQ(x.makespan_ns, y.makespan_ns);
    EXPECT_EQ(x.conflicts, y.conflicts);
    EXPECT_EQ(x.redo_success, y.redo_success);
    EXPECT_EQ(x.redo_fail, y.redo_fail);
    EXPECT_EQ(x.full_reexecutions, y.full_reexecutions);
    EXPECT_EQ(x.oplog_entries, y.oplog_entries);
    EXPECT_EQ(x.instructions, y.instructions);
    EXPECT_EQ(x.conflict_keys, y.conflict_keys);
    EXPECT_EQ(x.receipts, y.receipts);
  }
}

TEST(OpsInertnessTest, HammeredOpsPlaneIsInvisibleInResults) {
  WorkloadGenerator gen(OpsConfig(85'000));
  WorldState genesis = gen.MakeGenesis();
  std::vector<Block> blocks;
  for (int i = 0; i < 3; ++i) {
    blocks.push_back(gen.MakeBlock());
  }
  for (int os_threads : {1, 4, 16}) {
    ChainRunResult off = RunChain(genesis, blocks, os_threads, /*hammer_ops=*/false);
    ChainRunResult hammered = RunChain(genesis, blocks, os_threads, /*hammer_ops=*/true);
    ASSERT_GT(hammered.scrapes, 0u) << "hammer thread never landed a scrape (vacuous)";
    ExpectSameDeterministicFields(off, hammered, os_threads);
  }
}

}  // namespace
}  // namespace pevm
