// Cross-contract SSA tests: dependency chains that flow *through* message
// calls — CALL operands feeding callee calldata (byte provenance), callee
// storage writes, RETURN data flowing back — repaired by the redo phase.
// This is the hardest part of §5.2's log generation: the log is flat across
// frames, so a conflicting AMM reserve read must transitively repair the
// ERC-20 balance updates performed inside the inner transferFrom/transfer
// calls.
#include <gtest/gtest.h>

#include "src/core/redo.h"
#include "src/core/ssa_builder.h"
#include "src/exec/apply.h"
#include "src/state/state_view.h"
#include "src/workload/assembler.h"
#include "src/workload/contracts.h"

namespace pevm {
namespace {

const Address kToken0 = Address::FromId(0x70CE0);
const Address kToken1 = Address::FromId(0x70CE1);
const Address kPool = Address::FromId(0xD00);
const Address kTrader1 = Address::FromId(0x501);
const Address kTrader2 = Address::FromId(0x502);

class CrossContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    genesis_.SetCode(kToken0, BuildErc20Code());
    genesis_.SetCode(kToken1, BuildErc20Code());
    genesis_.SetCode(kPool, BuildAmmCode());
    genesis_.SetStorage(kPool, U256(kAmmToken0Slot), U256::FromAddress(kToken0));
    genesis_.SetStorage(kPool, U256(kAmmToken1Slot), U256::FromAddress(kToken1));
    genesis_.SetStorage(kPool, U256(kAmmReserve0Slot), U256(1'000'000));
    genesis_.SetStorage(kPool, U256(kAmmReserve1Slot), U256(1'000'000));
    genesis_.SetStorage(kToken0, Erc20BalanceSlot(kPool), U256(1'000'000));
    genesis_.SetStorage(kToken1, Erc20BalanceSlot(kPool), U256(1'000'000));
    for (const Address& trader : {kTrader1, kTrader2}) {
      genesis_.SetBalance(trader, U256::Exp(U256(10), U256(18)));
      genesis_.SetStorage(kToken0, Erc20BalanceSlot(trader), U256(100'000));
      genesis_.SetStorage(kToken0, Erc20AllowanceSlot(trader, kPool), ~U256{});
    }
  }

  static Transaction SwapTx(const Address& trader, uint64_t amount_in) {
    Transaction tx;
    tx.from = trader;
    tx.to = kPool;
    tx.data = AmmSwapCall(U256(amount_in), /*zero_for_one=*/true);
    tx.gas_limit = 500'000;
    tx.gas_price = U256(1);
    return tx;
  }

  struct Spec {
    Receipt receipt;
    ReadSet reads;
    WriteSet writes;
    TxLog log;
  };

  Spec Speculate(const WorldState& base, const Transaction& tx) {
    StateView view(base);
    SsaBuilder builder;
    Spec s;
    s.receipt = ApplyTransaction(view, block_, tx, &builder);
    if (!s.receipt.valid) {
      builder.MarkNotRedoable();
    }
    s.log = builder.TakeLog();
    s.reads = view.read_set();
    s.writes = view.take_write_set();
    return s;
  }

  WorldState genesis_;
  BlockContext block_;
};

TEST_F(CrossContractTest, SwapLogReconstructsWriteSet) {
  Spec spec = Speculate(genesis_, SwapTx(kTrader1, 10'000));
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess) << EvmStatusName(spec.receipt.status);
  ASSERT_TRUE(spec.log.redoable);
  WriteSet rebuilt = WriteSetFromLog(spec.log);
  ASSERT_EQ(rebuilt.size(), spec.writes.size());
  for (const auto& [key, value] : spec.writes) {
    EXPECT_EQ(rebuilt.at(key), value) << key.ToString();
  }
}

TEST_F(CrossContractTest, SwapLogSpansAllThreeContracts) {
  Spec spec = Speculate(genesis_, SwapTx(kTrader1, 10'000));
  bool wrote_pool = false;
  bool wrote_token0 = false;
  bool wrote_token1 = false;
  for (const auto& [key, lsn] : spec.log.latest_writes) {
    wrote_pool |= key.address == kPool;
    wrote_token0 |= key.address == kToken0;
    wrote_token1 |= key.address == kToken1;
  }
  EXPECT_TRUE(wrote_pool);
  EXPECT_TRUE(wrote_token0);
  EXPECT_TRUE(wrote_token1);
}

// The paper's central claim at its hardest: two swaps on the same pool.
// The second swap's reserve reads go stale; its amount_out — and therefore
// the token amounts moved inside the *inner ERC-20 calls* — must all be
// repaired by re-executing only the dependent log entries.
TEST_F(CrossContractTest, ConflictingSwapRepairedThroughCallBoundary) {
  Transaction tx1 = SwapTx(kTrader1, 10'000);
  Transaction tx2 = SwapTx(kTrader2, 20'000);

  // Serial oracle.
  WorldState serial = genesis_;
  {
    StateView v1(serial);
    ASSERT_EQ(ApplyTransaction(v1, block_, tx1).status, EvmStatus::kSuccess);
    serial.Apply(v1.write_set());
    StateView v2(serial);
    ASSERT_EQ(ApplyTransaction(v2, block_, tx2).status, EvmStatus::kSuccess);
    serial.Apply(v2.write_set());
  }

  // Speculative execution of both against genesis; commit tx1; redo tx2.
  WorldState state = genesis_;
  Spec s1 = Speculate(state, tx1);
  Spec s2 = Speculate(state, tx2);
  ASSERT_TRUE(s2.log.redoable);
  state.Apply(s1.writes);

  ConflictMap conflicts;
  for (const auto& [key, observed] : s2.reads) {
    U256 current = state.Get(key);
    if (current != observed) {
      conflicts.emplace(key, current);
    }
  }
  ASSERT_FALSE(conflicts.empty());
  // Both reserves and the pool's token balances conflict.
  EXPECT_TRUE(conflicts.contains(StateKey::Storage(kPool, U256(kAmmReserve0Slot))));
  EXPECT_TRUE(conflicts.contains(StateKey::Storage(kPool, U256(kAmmReserve1Slot))));

  RedoResult redo = RunRedo(s2.log, conflicts, [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_GT(redo.reexecuted, 10u);          // The whole swap arithmetic re-ran...
  EXPECT_LT(redo.reexecuted, s2.log.size());  // ...but not the whole log.
  state.Apply(redo.write_set);

  EXPECT_EQ(state.Digest(), serial.Digest());
  EXPECT_EQ(HexEncode(state.StateRoot()), HexEncode(serial.StateRoot()));
  // The trader's received amount reflects the post-tx1 price.
  EXPECT_EQ(state.GetStorage(kToken1, Erc20BalanceSlot(kTrader2)),
            serial.GetStorage(kToken1, Erc20BalanceSlot(kTrader2)));
}

// When the post-conflict reserve can no longer cover the output, the swap's
// require (rOut > out) flips and the redo must abort via the JUMPI guard.
TEST_F(CrossContractTest, ReserveExhaustionAbortsRedo) {
  // Drain the pool almost entirely with tx1 (huge swap), then try tx2.
  genesis_.SetStorage(kToken0, Erc20BalanceSlot(kTrader1), U256::Exp(U256(10), U256(12)));
  Transaction tx1 = SwapTx(kTrader1, 900'000'000);  // Takes nearly all of token1.
  Transaction tx2 = SwapTx(kTrader2, 50'000);

  WorldState state = genesis_;
  Spec s1 = Speculate(state, tx1);
  ASSERT_EQ(s1.receipt.status, EvmStatus::kSuccess);
  Spec s2 = Speculate(state, tx2);
  ASSERT_EQ(s2.receipt.status, EvmStatus::kSuccess);
  state.Apply(s1.writes);

  ConflictMap conflicts;
  for (const auto& [key, observed] : s2.reads) {
    U256 current = state.Get(key);
    if (current != observed) {
      conflicts.emplace(key, current);
    }
  }
  ASSERT_FALSE(conflicts.empty());
  RedoResult redo = RunRedo(s2.log, conflicts, [&](const StateKey& k) { return state.Get(k); });
  // tx2 still succeeds (tiny swap against huge reserves)... unless the pool
  // flipped; either way the redo must agree with a serial re-execution.
  StateView v2(state);
  Receipt serial_r2 = ApplyTransaction(v2, block_, tx2);
  if (redo.success) {
    WorldState redone = state;
    redone.Apply(redo.write_set);
    WorldState serial2 = state;
    serial2.Apply(v2.write_set());
    EXPECT_EQ(redone.Digest(), serial2.Digest());
  } else {
    // Redo declined: acceptable (fallback to full re-execution), but the
    // serial result must then be reachable.
    EXPECT_TRUE(serial_r2.valid);
  }
}

// Calldata provenance: a contract that forwards a storage value as calldata
// to a callee that stores it. The conflict must propagate caller SLOAD ->
// MSTORE -> CALL input -> callee CALLDATALOAD -> callee SSTORE.
TEST_F(CrossContractTest, CalldataProvenancePropagatesThroughCall) {
  // Callee: SSTORE(5, CALLDATALOAD(0)); STOP.
  Assembler callee;
  callee.Push(0).Op(Opcode::kCalldataload).Push(5).Op(Opcode::kSstore).Op(Opcode::kStop);
  Address sink = Address::FromId(0x51);
  genesis_.SetCode(sink, callee.Build());

  // Caller: v = SLOAD(0); MSTORE(0, v); CALL(gas, sink, 0, in=0..32, out=0,0); STOP.
  Assembler caller;
  caller.Push(0).Op(Opcode::kSload);
  caller.Push(0).Op(Opcode::kMstore);
  caller.Push(0).Push(0).Push(0x20).Push(0).Push(0).Push(sink).Op(Opcode::kGas);
  caller.Op(Opcode::kCall).Op(Opcode::kPop);
  caller.Op(Opcode::kStop);
  Address relay = Address::FromId(0x52);
  genesis_.SetCode(relay, caller.Build());
  genesis_.SetStorage(relay, U256(0), U256(111));

  Transaction tx;
  tx.from = kTrader1;
  tx.to = relay;
  tx.gas_limit = 300'000;
  tx.gas_price = U256(1);

  Spec spec = Speculate(genesis_, tx);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  StateKey sink_slot = StateKey::Storage(sink, U256(5));
  ASSERT_EQ(spec.writes.at(sink_slot), U256(111));

  StateKey relay_slot = StateKey::Storage(relay, U256(0));
  WorldState state = genesis_;
  state.Set(relay_slot, U256(222));
  RedoResult redo = RunRedo(spec.log, {{relay_slot, U256(222)}},
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_EQ(redo.write_set.at(sink_slot), U256(222));
}

// Returndata provenance: the callee RETURNs a storage-derived value; the
// caller stores what came back. The chain crosses the frame boundary twice.
TEST_F(CrossContractTest, ReturndataProvenancePropagatesBack) {
  // Callee: v = SLOAD(0); MSTORE(0, v); RETURN(0, 32).
  Assembler callee;
  callee.Push(0).Op(Opcode::kSload);
  callee.Push(0).Op(Opcode::kMstore);
  callee.Push(0x20).Push(0).Op(Opcode::kReturn);
  Address oracle = Address::FromId(0x61);
  genesis_.SetCode(oracle, callee.Build());
  genesis_.SetStorage(oracle, U256(0), U256(500));

  // Caller: CALL(gas, oracle, 0, in 0,0, out 0x40,32); w = MLOAD(0x40);
  //         SSTORE(9, w + 1); STOP.
  Assembler caller;
  caller.Push(0x20).Push(0x40).Push(0).Push(0).Push(0).Push(oracle).Op(Opcode::kGas);
  caller.Op(Opcode::kCall).Op(Opcode::kPop);
  caller.Push(0x40).Op(Opcode::kMload);
  caller.Push(1).Op(Opcode::kAdd);
  caller.Push(9).Op(Opcode::kSstore);
  caller.Op(Opcode::kStop);
  Address consumer = Address::FromId(0x62);
  genesis_.SetCode(consumer, caller.Build());

  Transaction tx;
  tx.from = kTrader1;
  tx.to = consumer;
  tx.gas_limit = 300'000;
  tx.gas_price = U256(1);

  Spec spec = Speculate(genesis_, tx);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  StateKey out_slot = StateKey::Storage(consumer, U256(9));
  ASSERT_EQ(spec.writes.at(out_slot), U256(501));

  StateKey oracle_slot = StateKey::Storage(oracle, U256(0));
  WorldState state = genesis_;
  state.Set(oracle_slot, U256(700));
  RedoResult redo = RunRedo(spec.log, {{oracle_slot, U256(700)}},
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_EQ(redo.write_set.at(out_slot), U256(701));
}

// Value transfers through CALL: an inner call moves ether whose amount is
// storage-derived. The balance debit/credit entries must repair.
TEST_F(CrossContractTest, ValueTransferAmountRepairedThroughRedo) {
  // Forwarder: amt = SLOAD(0); CALL(gas, kTrader2, amt, 0,0, 0,0); STOP.
  Assembler fwd;
  fwd.Push(0).Push(0).Push(0).Push(0);
  fwd.Push(0).Op(Opcode::kSload);  // amount
  fwd.Push(kTrader2).Op(Opcode::kGas);
  fwd.Op(Opcode::kCall).Op(Opcode::kPop).Op(Opcode::kStop);
  Address payer = Address::FromId(0x71);
  genesis_.SetCode(payer, fwd.Build());
  genesis_.SetStorage(payer, U256(0), U256(1000));
  genesis_.SetBalance(payer, U256(50'000));

  Transaction tx;
  tx.from = kTrader1;
  tx.to = payer;
  tx.gas_limit = 300'000;
  tx.gas_price = U256(1);

  Spec spec = Speculate(genesis_, tx);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);
  U256 t2_before = genesis_.GetBalance(kTrader2);
  ASSERT_EQ(spec.writes.at(StateKey::Balance(kTrader2)), t2_before + U256(1000));

  StateKey amt_slot = StateKey::Storage(payer, U256(0));
  WorldState state = genesis_;
  state.Set(amt_slot, U256(2500));
  RedoResult redo = RunRedo(spec.log, {{amt_slot, U256(2500)}},
                            [&](const StateKey& k) { return state.Get(k); });
  ASSERT_TRUE(redo.success);
  EXPECT_EQ(redo.write_set.at(StateKey::Balance(kTrader2)), t2_before + U256(2500));
  EXPECT_EQ(redo.write_set.at(StateKey::Balance(payer)), U256(50'000 - 2500));
}

// If the repaired transfer amount exceeds the payer's balance, the AssertGe
// guard must abort the redo instead of producing a negative balance.
TEST_F(CrossContractTest, ValueTransferGuardAbortsOnInsufficientBalance) {
  Assembler fwd;
  fwd.Push(0).Push(0).Push(0).Push(0);
  fwd.Push(0).Op(Opcode::kSload);
  fwd.Push(kTrader2).Op(Opcode::kGas);
  fwd.Op(Opcode::kCall).Op(Opcode::kPop).Op(Opcode::kStop);
  Address payer = Address::FromId(0x72);
  genesis_.SetCode(payer, fwd.Build());
  genesis_.SetStorage(payer, U256(0), U256(1000));
  genesis_.SetBalance(payer, U256(50'000));

  Transaction tx;
  tx.from = kTrader1;
  tx.to = payer;
  tx.gas_limit = 300'000;
  tx.gas_price = U256(1);

  Spec spec = Speculate(genesis_, tx);
  ASSERT_EQ(spec.receipt.status, EvmStatus::kSuccess);

  StateKey amt_slot = StateKey::Storage(payer, U256(0));
  WorldState state = genesis_;
  state.Set(amt_slot, U256(99'999));  // More than the payer's 50,000 wei.
  RedoResult redo = RunRedo(spec.log, {{amt_slot, U256(99'999)}},
                            [&](const StateKey& k) { return state.Get(k); });
  EXPECT_FALSE(redo.success);
}

}  // namespace
}  // namespace pevm
