// Cross-block speculation battery: with ChainOptions::speculate on, the chain
// runner launches block N+1's read phase against block N's uncommitted write
// overlay and validates every speculative record at the block boundary. The
// determinism contract says all of that is wall-clock only — so this suite
// runs randomized multi-block chains through the executors with speculation
// on and off and demands bit-identical per-block roots, final world states
// and every deterministic BlockReport field (receipts included, output and
// stats and all), plus serial-oracle root agreement for both runs.
//
// The BoundaryValidationTest suite below is the deterministic counterpart:
// hand-built airdrop / hot-owner / stale-output / control-path-flip shapes
// where block N writes exactly the keys block N+1 reads, driven through
// ValidateBoundary directly (no pipeline timing involved), asserting 100%
// stale-read detection and that redo-repaired records are bit-identical to a
// fresh speculation against the committed state.
//
// Repro flags (hence the custom main): a failing scenario prints its absolute
// seed; re-run just that scenario with
//   ./tests/chain_spec_test --seed=<seed> --blocks=1
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/serial.h"
#include "src/chain/chain_runner.h"
#include "src/workload/block_gen.h"
#include "src/workload/contracts.h"

namespace pevm {

// Flag-overridable battery shape, mirroring differential_test: scenarios use
// absolute seeds [g_seed, g_seed + g_blocks); narrowed repro runs skip the
// coverage vacuity checks. Set from main(), hence external linkage.
constexpr uint64_t kDefaultSeed = 91'000;
constexpr int kDefaultBlocks = 200;
uint64_t g_seed = kDefaultSeed;
int g_blocks = kDefaultBlocks;

namespace {

constexpr ExecutorKind kAllExecutors[] = {
    ExecutorKind::kSerial,   ExecutorKind::kTwoPhaseLocking, ExecutorKind::kOcc,
    ExecutorKind::kBlockStm, ExecutorKind::kParallelEvm,
};

// --- Randomized cross-block differential battery. ---------------------------

struct ChainScenario {
  WorkloadConfig config;
  int blocks = 2;
  // When set, the middle block is a MakeErc20ConflictBlock hot-spot pile-up,
  // so consecutive blocks share hot keys (the cross-block stale-read shape).
  bool conflict_chain = false;
  int conflict_txs = 0;
  double conflict_ratio = 0.0;
};

// Shape depends only on the absolute seed so any scenario reproduces
// standalone via --seed (with the default base, s walks 0..199).
ChainScenario MakeChainScenario(uint64_t seed) {
  ChainScenario scenario;
  WorkloadConfig& config = scenario.config;
  config.seed = seed;
  int s = static_cast<int>(seed % 1'000);
  config.transactions_per_block = 16 + (s % 3) * 12;  // 16 / 28 / 40
  config.users = 90 + (s % 5) * 40;                   // 90 .. 250
  config.tokens = 2 + s % 4;
  config.pools = 1 + s % 3;
  config.funds = 1 + s % 2;
  config.erc20_transfer_frac = 0.15 + 0.08 * (s % 5);
  config.erc20_transfer_from_frac = 0.05 + 0.03 * (s % 4);
  config.amm_swap_frac = 0.10 + 0.07 * (s % 3);
  config.crowdfund_frac = (s % 6 == 0) ? 0.15 : 0.05;
  config.failing_tx_frac = (s % 10 == 3) ? 0.25 : 0.02;
  scenario.blocks = 2 + s % 3;  // 2 .. 4
  if (s % 5 == 4) {
    scenario.conflict_chain = true;
    scenario.conflict_txs = 24 + (s % 3) * 8;
    scenario.conflict_ratio = 0.5 * (s % 3);  // 0.0, 0.5, 1.0
  }
  return scenario;
}

struct ChainCase {
  WorldState genesis;
  std::vector<Block> blocks;
  std::vector<Hash256> oracle_roots;  // Serial replay, from-scratch roots.
  WorldState oracle_final;
};

ChainCase MakeChainCase(const ChainScenario& scenario) {
  WorkloadGenerator gen(scenario.config);
  ChainCase chain;
  chain.genesis = gen.MakeGenesis();
  for (int b = 0; b < scenario.blocks; ++b) {
    bool conflict = scenario.conflict_chain && b == scenario.blocks / 2;
    chain.blocks.push_back(conflict ? gen.MakeErc20ConflictBlock(scenario.conflict_txs,
                                                                 scenario.conflict_ratio)
                                    : gen.MakeBlock());
  }
  WorldState state = chain.genesis;
  SerialExecutor oracle(ExecOptions{});
  for (const Block& block : chain.blocks) {
    oracle.Execute(block, state);
    chain.oracle_roots.push_back(state.StateRoot());
  }
  chain.oracle_final = std::move(state);
  return chain;
}

struct ChainRun {
  ChainReport report;
  WorldState final_state;
};

ChainRun RunChain(const ChainCase& chain, ExecutorKind kind, int os_threads, bool speculate) {
  ChainOptions options;
  options.executor = kind;
  options.exec.threads = 8;
  options.exec.os_threads = os_threads;
  options.queue_depth = 3;
  options.speculate = speculate;
  ChainRunner runner(options, chain.genesis);
  for (const Block& block : chain.blocks) {
    EXPECT_TRUE(runner.Submit(block));
  }
  ChainRun run;
  run.report = runner.Finish();
  run.final_state = runner.state();
  return run;
}

void ExpectRootsMatchOracle(const ChainReport& report, const ChainCase& chain,
                            const std::string& label) {
  ASSERT_EQ(report.roots.size(), chain.oracle_roots.size()) << label;
  for (size_t b = 0; b < chain.oracle_roots.size(); ++b) {
    ASSERT_EQ(HexEncode(report.roots[b]), HexEncode(chain.oracle_roots[b]))
        << label << " block " << b;
  }
}

// Every deterministic BlockReport field, bit for bit — receipts via the full
// defaulted operator== (output and stats included), conflict histograms via
// theirs. The wall-clock fields (wall_ns / read_wall_ns / commit_wall_ns /
// prefetch_wall_ns) are deliberately absent: they are the only fields
// speculation is allowed to move.
void ExpectDeterministicReportsIdentical(const std::vector<BlockReport>& off,
                                         const std::vector<BlockReport>& on,
                                         const std::string& label) {
  ASSERT_EQ(off.size(), on.size()) << label;
  for (size_t b = 0; b < off.size(); ++b) {
    SCOPED_TRACE(testing::Message() << label << " block " << b);
    EXPECT_EQ(off[b].makespan_ns, on[b].makespan_ns);
    EXPECT_EQ(off[b].conflicts, on[b].conflicts);
    EXPECT_EQ(off[b].redo_success, on[b].redo_success);
    EXPECT_EQ(off[b].redo_fail, on[b].redo_fail);
    EXPECT_EQ(off[b].full_reexecutions, on[b].full_reexecutions);
    EXPECT_EQ(off[b].lock_aborts, on[b].lock_aborts);
    EXPECT_EQ(off[b].redo_entries_reexecuted, on[b].redo_entries_reexecuted);
    EXPECT_EQ(off[b].redo_ns, on[b].redo_ns);
    EXPECT_EQ(off[b].oplog_entries, on[b].oplog_entries);
    EXPECT_EQ(off[b].instructions, on[b].instructions);
    EXPECT_EQ(off[b].prefetch_hits, on[b].prefetch_hits);
    EXPECT_EQ(off[b].prefetch_misses, on[b].prefetch_misses);
    EXPECT_EQ(off[b].prefetch_wasted, on[b].prefetch_wasted);
    EXPECT_EQ(off[b].conflict_keys, on[b].conflict_keys);
    ASSERT_EQ(off[b].receipts.size(), on[b].receipts.size());
    for (size_t i = 0; i < off[b].receipts.size(); ++i) {
      EXPECT_EQ(off[b].receipts[i], on[b].receipts[i]) << "tx " << i;
    }
  }
}

TEST(ChainSpecDifferentialTest, SpeculationIsBitInvisibleAcrossRandomChains) {
  uint64_t total_blocks_speculated = 0;
  uint64_t total_txs_launched = 0;
  std::set<std::pair<ExecutorKind, int>> coverage;

  for (int b = 0; b < g_blocks; ++b) {
    uint64_t seed = g_seed + static_cast<uint64_t>(b);
    SCOPED_TRACE(testing::Message() << "scenario seed " << seed << " (repro: ./tests/"
                                    << "chain_spec_test --seed=" << seed << " --blocks=1)");
    ChainScenario scenario = MakeChainScenario(seed);
    ChainCase chain = MakeChainCase(scenario);
    int s = static_cast<int>(seed % 1'000);

    // Every 5th seed runs the full 5-executor x {1,4,16}-thread matrix; the
    // rest run a rotating slice so the battery stays fast.
    std::vector<ExecutorKind> kinds;
    std::vector<int> thread_counts;
    if (s % 5 == 0) {
      kinds.assign(std::begin(kAllExecutors), std::end(kAllExecutors));
      thread_counts = {1, 4, 16};
    } else {
      kinds = {ExecutorKind::kParallelEvm};
      if (s % 2 == 0) {
        kinds.push_back(ExecutorKind::kOcc);
      }
      thread_counts = {std::vector<int>{1, 4, 16}[s % 3]};
    }

    for (ExecutorKind kind : kinds) {
      for (int os_threads : thread_counts) {
        std::string label = std::string(ExecutorKindName(kind)) + " os_threads=" +
                            std::to_string(os_threads);
        SCOPED_TRACE(label);
        coverage.emplace(kind, os_threads);
        ChainRun off = RunChain(chain, kind, os_threads, /*speculate=*/false);
        ChainRun on = RunChain(chain, kind, os_threads, /*speculate=*/true);

        ExpectRootsMatchOracle(off.report, chain, label + " spec=off");
        ExpectRootsMatchOracle(on.report, chain, label + " spec=on");
        ASSERT_EQ(off.final_state, chain.oracle_final) << label << " spec=off";
        ASSERT_EQ(on.final_state, chain.oracle_final) << label << " spec=on";
        ExpectDeterministicReportsIdentical(off.report.block_reports, on.report.block_reports,
                                            label);

        // Speculation-off runs must not even start the stage.
        EXPECT_EQ(off.report.speculation.blocks_speculated, 0u);
        EXPECT_EQ(off.report.spec.blocks, 0u);
        const SpecStats& spec = on.report.speculation;
        // Every launched record is accounted for at the boundary.
        EXPECT_EQ(spec.seeds_clean + spec.seeds_redo_repaired + spec.seeds_dropped,
                  spec.txs_launched);
        total_blocks_speculated += spec.blocks_speculated;
        total_txs_launched += spec.txs_launched;
      }
    }
  }

  // Vacuity guards (full default battery only): the stage must actually run
  // and launch work for the seedable executors, and the matrix must cover
  // every executor x thread-count combination.
  if (g_seed == kDefaultSeed && g_blocks == kDefaultBlocks) {
    EXPECT_GT(total_blocks_speculated, 100u);
    EXPECT_GT(total_txs_launched, 1'000u);
    EXPECT_EQ(coverage.size(), std::size(kAllExecutors) * 3u);
  }
}

// --- Deterministic adversarial boundary shapes. -----------------------------
//
// No pipeline, no timing: speculate block N+1's transactions against the
// pre-state (the worst case — every overlay read happened before any of block
// N's writes landed), commit block N, then drive ValidateBoundary directly.

const Address kToken = Address::FromId(0x70CE);
const Address kCoinbase = Address::FromId(0xC0FFEE);
constexpr uint64_t kOwnerId = 0x2000;

Transaction TokenCall(uint64_t from_id, Bytes data, uint64_t nonce = 0) {
  Transaction tx;
  tx.from = Address::FromId(from_id);
  tx.to = kToken;
  tx.gas_limit = 200'000;
  tx.gas_price = U256(1);
  tx.nonce = nonce;
  tx.data = std::move(data);
  return tx;
}

// Token world: everyone ether-funded, `owner` holds a large token balance,
// listed users hold `user_tokens` each.
WorldState TokenWorld(const std::vector<uint64_t>& user_ids, uint64_t user_tokens) {
  WorldState state;
  state.SetCode(kToken, BuildErc20Code());
  state.SetBalance(Address::FromId(kOwnerId), U256::Exp(U256(10), U256(18)));
  state.SetStorage(kToken, Erc20BalanceSlot(Address::FromId(kOwnerId)), U256(1'000'000));
  for (uint64_t id : user_ids) {
    state.SetBalance(Address::FromId(id), U256::Exp(U256(10), U256(18)));
    if (user_tokens > 0) {
      state.SetStorage(kToken, Erc20BalanceSlot(Address::FromId(id)), U256(user_tokens));
    }
  }
  return state;
}

Block MakeN(std::vector<Transaction> txs) {
  Block block;
  block.context.coinbase = kCoinbase;
  block.transactions = std::move(txs);
  return block;
}

// Speculates every transaction of hypothetical block N+1 against `pre`.
std::vector<std::optional<Speculation>> SpeculatePre(const WorldState& pre,
                                                     const BlockContext& context,
                                                     const std::vector<Transaction>& next) {
  std::vector<std::optional<Speculation>> specs(next.size());
  for (size_t i = 0; i < next.size(); ++i) {
    specs[i] = SpeculateTransaction(pre, context, next[i], /*with_log=*/true);
  }
  return specs;
}

void ExpectSeedBitIdenticalToFresh(const Speculation& seed, const WorldState& committed,
                                   const BlockContext& context, const Transaction& tx,
                                   const std::string& label) {
  Speculation fresh = SpeculateTransaction(committed, context, tx, /*with_log=*/true);
  EXPECT_EQ(seed.receipt, fresh.receipt) << label;  // Full ==: output + stats included.
  EXPECT_EQ(seed.reads, fresh.reads) << label;
  EXPECT_EQ(seed.writes, fresh.writes) << label;
  EXPECT_EQ(seed.log.entries.size(), fresh.log.entries.size()) << label;
  EXPECT_EQ(seed.log.redoable, fresh.log.redoable) << label;
}

// Airdrop: block N's owner credits exactly the balances block N+1's senders
// debit. Every speculative record is stale; every one is redo-repairable
// (same control path: the users' pre-airdrop balances already cover their
// onward transfers).
TEST(BoundaryValidationTest, AirdropStaleReadsAllDetectedAndRedoRepaired) {
  std::vector<uint64_t> users = {0x1000, 0x1001, 0x1002, 0x1003};
  std::vector<uint64_t> targets = {0x1100, 0x1101, 0x1102, 0x1103};
  std::vector<uint64_t> everyone = users;
  everyone.insert(everyone.end(), targets.begin(), targets.end());
  WorldState pre = TokenWorld(everyone, /*user_tokens=*/500);

  std::vector<Transaction> airdrop;
  for (size_t i = 0; i < users.size(); ++i) {
    airdrop.push_back(TokenCall(
        kOwnerId, Erc20TransferCall(Address::FromId(users[i]), U256(100)), /*nonce=*/i));
  }
  Block block_n = MakeN(std::move(airdrop));

  std::vector<Transaction> next;
  for (size_t i = 0; i < users.size(); ++i) {
    next.push_back(
        TokenCall(users[i], Erc20TransferCall(Address::FromId(targets[i]), U256(50))));
  }

  std::vector<std::optional<Speculation>> specs = SpeculatePre(pre, block_n.context, next);
  WorldState committed = pre;
  SerialExecutor(ExecOptions{}).Execute(block_n, committed);

  BoundaryOutcome outcome = ValidateBoundary(std::move(specs), committed);
  EXPECT_EQ(outcome.validated, next.size());
  EXPECT_EQ(outcome.clean, 0u);  // 100% stale detection: no record passes clean.
  EXPECT_EQ(outcome.redo_repaired, next.size());
  EXPECT_EQ(outcome.dropped, 0u);  // ...and none needed the fallback path.
  EXPECT_GE(outcome.stale_keys, next.size());
  for (size_t i = 0; i < next.size(); ++i) {
    ASSERT_TRUE(outcome.seeds.specs[i].has_value()) << "tx " << i;
    ExpectSeedBitIdenticalToFresh(*outcome.seeds.specs[i], committed, block_n.context, next[i],
                                  "tx " + std::to_string(i));
  }
}

// Hot owner: block N's last transaction writes exactly the key (the owner's
// balance) block N+1's first transaction reads. A disjoint second transaction
// rides along and must validate clean.
TEST(BoundaryValidationTest, HotOwnerTransferFromRepairsAtBoundary) {
  std::vector<uint64_t> users = {0x1001, 0x1002, 0x1003, 0x1004};
  WorldState pre = TokenWorld(users, /*user_tokens=*/400);
  const Address owner = Address::FromId(kOwnerId);
  pre.SetStorage(kToken, Erc20AllowanceSlot(owner, Address::FromId(0x1001)), U256(5'000));
  pre.SetStorage(kToken, Erc20AllowanceSlot(owner, Address::FromId(0x1002)), U256(5'000));

  Block block_n = MakeN({TokenCall(
      0x1001, Erc20TransferFromCall(owner, Address::FromId(0x1001), U256(1'000)))});

  std::vector<Transaction> next;
  // Reads the owner balance block N just drained: stale, redo-repairable.
  next.push_back(
      TokenCall(0x1002, Erc20TransferFromCall(owner, Address::FromId(0x1002), U256(2'000))));
  // Touches only accounts block N never wrote: must validate clean.
  next.push_back(TokenCall(0x1003, Erc20TransferCall(Address::FromId(0x1004), U256(10))));

  std::vector<std::optional<Speculation>> specs = SpeculatePre(pre, block_n.context, next);
  WorldState committed = pre;
  SerialExecutor(ExecOptions{}).Execute(block_n, committed);

  BoundaryOutcome outcome = ValidateBoundary(std::move(specs), committed);
  EXPECT_EQ(outcome.validated, 2u);
  EXPECT_EQ(outcome.clean, 1u);
  EXPECT_EQ(outcome.redo_repaired, 1u);
  EXPECT_EQ(outcome.dropped, 0u);
  EXPECT_GE(outcome.stale_keys, 1u);
  for (size_t i = 0; i < next.size(); ++i) {
    ASSERT_TRUE(outcome.seeds.specs[i].has_value()) << "tx " << i;
    ExpectSeedBitIdenticalToFresh(*outcome.seeds.specs[i], committed, block_n.context, next[i],
                                  "tx " + std::to_string(i));
  }
}

// Storage-dependent return output: a balanceOf speculated before the balance
// changed must come back from the boundary with its receipt output rebuilt
// from the patched log (the PatchedReturnOutput provenance path), not the
// stale bytes it captured.
TEST(BoundaryValidationTest, StorageDependentReturnOutputIsPatchedByRedo) {
  WorldState pre = TokenWorld({0x1001, 0x1002}, /*user_tokens=*/0);
  const Address owner = Address::FromId(kOwnerId);

  Block block_n =
      MakeN({TokenCall(kOwnerId, Erc20TransferCall(Address::FromId(0x1002), U256(123)))});
  std::vector<Transaction> next = {TokenCall(0x1001, Erc20BalanceOfCall(owner))};

  std::vector<std::optional<Speculation>> specs = SpeculatePre(pre, block_n.context, next);
  ASSERT_TRUE(specs[0].has_value());
  Bytes stale_output = specs[0]->receipt.output;  // The pre-state balance.

  WorldState committed = pre;
  SerialExecutor(ExecOptions{}).Execute(block_n, committed);

  BoundaryOutcome outcome = ValidateBoundary(std::move(specs), committed);
  EXPECT_EQ(outcome.clean, 0u);
  EXPECT_EQ(outcome.redo_repaired, 1u);
  EXPECT_EQ(outcome.dropped, 0u);
  ASSERT_TRUE(outcome.seeds.specs[0].has_value());
  EXPECT_NE(outcome.seeds.specs[0]->receipt.output, stale_output);
  ExpectSeedBitIdenticalToFresh(*outcome.seeds.specs[0], committed, block_n.context, next[0],
                                "balanceOf");
}

// Control-path flip: block N drains the sender below the speculated transfer
// amount, so a fresh execution takes a different path (the transfer fails).
// The redo's constraint guard must catch this and drop the record — repairing
// it would forge a success receipt.
TEST(BoundaryValidationTest, ControlPathFlipIsDroppedNotMisrepaired) {
  WorldState pre = TokenWorld({0x1001, 0x1002, 0x1003}, /*user_tokens=*/100);
  const Address victim = Address::FromId(0x1001);
  pre.SetStorage(kToken, Erc20AllowanceSlot(victim, Address::FromId(0x1002)), U256(1'000));

  // Block N: a spender drains the victim 100 -> 50.
  Block block_n = MakeN(
      {TokenCall(0x1002, Erc20TransferFromCall(victim, Address::FromId(0x1002), U256(50)))});
  // Block N+1: the victim tries to send 90 — fine against the pre-state (100
  // >= 90), impossible against the committed state (50 < 90).
  std::vector<Transaction> next = {
      TokenCall(0x1001, Erc20TransferCall(Address::FromId(0x1003), U256(90)))};

  std::vector<std::optional<Speculation>> specs = SpeculatePre(pre, block_n.context, next);
  WorldState committed = pre;
  SerialExecutor(ExecOptions{}).Execute(block_n, committed);

  BoundaryOutcome outcome = ValidateBoundary(std::move(specs), committed);
  EXPECT_EQ(outcome.validated, 1u);
  EXPECT_EQ(outcome.clean, 0u);
  EXPECT_EQ(outcome.redo_repaired, 0u);
  EXPECT_EQ(outcome.dropped, 1u);
  EXPECT_FALSE(outcome.seeds.specs[0].has_value());  // Nothing leaked downstream.
}

// Disengaged entries (the hot-key gate held them back) must pass through
// untouched, and plain (log-free) records — what OCC-style executors seed —
// must survive clean validation but drop on any conflict.
TEST(BoundaryValidationTest, PlainRecordsReuseCleanAndDropOnAnyConflict) {
  WorldState pre = TokenWorld({0x1001, 0x1002, 0x1003, 0x1004}, /*user_tokens=*/500);

  Block block_n =
      MakeN({TokenCall(kOwnerId, Erc20TransferCall(Address::FromId(0x1001), U256(100)))});
  std::vector<Transaction> next = {
      // Reads the balance block N wrote: stale -> plain records must drop.
      TokenCall(0x1001, Erc20TransferCall(Address::FromId(0x1002), U256(50))),
      // Disjoint from block N: clean reuse.
      TokenCall(0x1003, Erc20TransferCall(Address::FromId(0x1004), U256(50))),
      // Held back by the gate: never engaged.
  };

  std::vector<std::optional<Speculation>> specs(3);
  for (size_t i = 0; i < next.size(); ++i) {
    specs[i] = SpeculateTransaction(pre, block_n.context, next[i], /*with_log=*/false);
  }
  WorldState committed = pre;
  SerialExecutor(ExecOptions{}).Execute(block_n, committed);

  BoundaryOutcome outcome = ValidateBoundary(std::move(specs), committed);
  EXPECT_EQ(outcome.validated, 2u);  // The disengaged slot is not inspected.
  EXPECT_EQ(outcome.clean, 1u);
  EXPECT_EQ(outcome.redo_repaired, 0u);  // No log, nothing to repair.
  EXPECT_EQ(outcome.dropped, 1u);
  EXPECT_FALSE(outcome.seeds.specs[0].has_value());
  ASSERT_TRUE(outcome.seeds.specs[1].has_value());
  EXPECT_FALSE(outcome.seeds.specs[2].has_value());
}

}  // namespace
}  // namespace pevm

// Custom main: gtest_main would reject the repro flags.
int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      pevm::g_seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--blocks=", 0) == 0) {
      pevm::g_blocks = std::stoi(arg.substr(9));
    } else {
      std::fprintf(stderr, "unknown flag: %s (supported: --seed=N --blocks=M)\n", arg.c_str());
      return 2;
    }
  }
  return RUN_ALL_TESTS();
}
